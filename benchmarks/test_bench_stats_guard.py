"""Stats-regression guard: university classification must not get slower.

The recorded baseline (``baseline_university_stats.json``) pins the
tableau-run and branch counters of classifying the shipped university
ontology with the default configuration.  CI fails when either counter
regresses by more than 10% — catching silent search-quality regressions
(a broken optimisation, a de-tuned heuristic) that wall-clock timing on
shared runners cannot detect reliably.

To re-record after an *intentional* change, run this workload and copy
the counters into the JSON file alongside an explanation in the PR.
"""

import json
import os

from repro.dl.parser import parse_kb4
from repro.four_dl import Reasoner4

HERE = os.path.dirname(__file__)
BASELINE_PATH = os.path.join(HERE, "baseline_university_stats.json")
ONTOLOGY_PATH = os.path.join(HERE, os.pardir, "ontologies", "university.kb4")

TOLERANCE = 1.10


def _classify_stats():
    with open(ONTOLOGY_PATH) as handle:
        kb4 = parse_kb4(handle.read())
    reasoner = Reasoner4(kb4)
    reasoner.classify()
    return reasoner.stats


def test_university_classification_counters_within_baseline():
    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)
    stats = _classify_stats()
    assert stats.tableau_runs <= baseline["tableau_runs"] * TOLERANCE, (
        f"tableau runs regressed: {stats.tableau_runs} vs recorded "
        f"{baseline['tableau_runs']} (+10% tolerance); if intentional, "
        f"re-record {BASELINE_PATH}"
    )
    assert stats.branches_explored <= baseline["branches_explored"] * TOLERANCE, (
        f"branches regressed: {stats.branches_explored} vs recorded "
        f"{baseline['branches_explored']} (+10% tolerance); if intentional, "
        f"re-record {BASELINE_PATH}"
    )
    assert stats.budget_aborts == 0, (
        f"unbudgeted classification hit {stats.budget_aborts} budget "
        f"abort(s): the default configuration must never impose a budget"
    )
