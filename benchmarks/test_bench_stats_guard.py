"""Stats-regression guard: university classification must not get slower.

The recorded baseline (``baseline_university_stats.json``) pins the
tableau-run and branch counters of classifying the shipped university
ontology with the default configuration.  CI fails when either counter
regresses by more than 10% — catching silent search-quality regressions
(a broken optimisation, a de-tuned heuristic) that wall-clock timing on
shared runners cannot detect reliably.

To re-record after an *intentional* change, run this workload and copy
the counters into the JSON file alongside an explanation in the PR.
"""

import json
import os
import time

from repro.dl.parser import parse_kb4
from repro.four_dl import Reasoner4
from repro.obs import BenchRecord, Tracer, maybe_write_bench_record, tracing

HERE = os.path.dirname(__file__)
BASELINE_PATH = os.path.join(HERE, "baseline_university_stats.json")
ONTOLOGY_PATH = os.path.join(HERE, os.pardir, "ontologies", "university.kb4")

TOLERANCE = 1.10


def _classify_stats(tracer=None):
    with open(ONTOLOGY_PATH) as handle:
        kb4 = parse_kb4(handle.read())
    reasoner = Reasoner4(kb4)
    with tracing(tracer):
        started = time.perf_counter()
        reasoner.classify()
        seconds = time.perf_counter() - started
    return reasoner.stats, seconds


def test_university_classification_counters_within_baseline():
    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)
    stats, seconds = _classify_stats()
    maybe_write_bench_record(
        BenchRecord(
            name="university_classify",
            workload="Reasoner4.classify() on ontologies/university.kb4",
            seconds=[seconds],
            counters=stats.as_dict(),
        )
    )
    assert stats.tableau_runs <= baseline["tableau_runs"] * TOLERANCE, (
        f"tableau runs regressed: {stats.tableau_runs} vs recorded "
        f"{baseline['tableau_runs']} (+10% tolerance); if intentional, "
        f"re-record {BASELINE_PATH}"
    )
    assert stats.branches_explored <= baseline["branches_explored"] * TOLERANCE, (
        f"branches regressed: {stats.branches_explored} vs recorded "
        f"{baseline['branches_explored']} (+10% tolerance); if intentional, "
        f"re-record {BASELINE_PATH}"
    )
    assert stats.budget_aborts == 0, (
        f"unbudgeted classification hit {stats.budget_aborts} budget "
        f"abort(s): the default configuration must never impose a budget"
    )
    # Which engine answered: the university KB's induced form carries
    # residue axioms (core-mode saturation), so every subsumption probe
    # is declined by the fast path and decided by the tableau.  The
    # dispatcher must still have consulted saturation first each time.
    assert stats.saturation_queries == baseline["saturation_queries"], (
        f"engine split changed: saturation answered "
        f"{stats.saturation_queries} probe(s) vs recorded "
        f"{baseline['saturation_queries']}; if intentional (e.g. the "
        f"fragment widened), re-record {BASELINE_PATH}"
    )
    assert stats.saturation_fallbacks == stats.tableau_runs, (
        f"dispatch accounting broken: {stats.saturation_fallbacks} "
        f"saturation fallbacks but {stats.tableau_runs} tableau runs — "
        f"every tableau decision should follow a saturation decline"
    )
    assert (
        stats.saturation_fallbacks
        <= baseline["saturation_fallbacks"] * TOLERANCE
    ), (
        f"fallbacks regressed: {stats.saturation_fallbacks} vs recorded "
        f"{baseline['saturation_fallbacks']} (+10% tolerance); if "
        f"intentional, re-record {BASELINE_PATH}"
    )


def test_tracing_disabled_causes_zero_counter_drift():
    """The observability instrumentation must be work-neutral.

    The reasoning stack is permanently instrumented with span call
    sites; with no tracer installed they are no-ops, and even with one
    installed they only *observe*.  Either way the reasoner must do
    byte-identical work: every counter equal between a traced and an
    untraced classification of the same ontology.
    """
    plain, _ = _classify_stats(tracer=None)
    traced, _ = _classify_stats(tracer=Tracer())
    assert traced.as_dict() == plain.as_dict(), (
        "observability instrumentation changed the reasoner's work "
        "counters; tracing must be a pure observer"
    )
