"""Benchmarks for the paper's worked Examples 1-3/5: query latency.

Each benchmark runs the full pipeline (transform + classical tableau)
for the queries the paper poses and asserts the paper's answers.
"""

from repro.dl import AtomicConcept, Individual, Reasoner
from repro.four_dl import Reasoner4, collapse_to_classical
from repro.fourvalued import FourValue
from repro.harness import example3_kb4
from repro.workloads import hospital_records, medical_access_control


def test_example1_evidence_queries(benchmark):
    scenario = hospital_records(n_wards=1)
    doctor = AtomicConcept("Doctor")

    def run():
        reasoner = Reasoner4(scenario.kb4)
        return (
            reasoner.evidence_for(Individual("carer0"), doctor),
            reasoner.evidence_against(Individual("carer0"), doctor),
            reasoner.assertion_value(Individual("john"), doctor),
        )

    evidence_for, evidence_against, john_value = benchmark(run)
    assert evidence_for and not evidence_against
    assert john_value is FourValue.BOTH


def test_example2_both_directions(benchmark):
    scenario = medical_access_control(n_staff=1, n_conflicted=1)
    readers = AtomicConcept("ReadPatientRecordTeam")

    def run():
        reasoner = Reasoner4(scenario.kb4)
        john = Individual("staff0")
        return reasoner.assertion_value(john, readers)

    assert benchmark(run) is FourValue.BOTH


def test_example3_exception_reasoning(benchmark):
    fly = AtomicConcept("Fly")
    tweety = Individual("tweety")

    def run():
        reasoner = Reasoner4(example3_kb4())
        return reasoner.assertion_value(tweety, fly), reasoner.is_satisfiable()

    value, satisfiable = benchmark(run)
    assert value is FourValue.FALSE
    assert satisfiable


def test_example3_classical_baseline_collapse(benchmark):
    """The comparison point: the classical reading is unsatisfiable."""
    kb = collapse_to_classical(example3_kb4())

    def run():
        return Reasoner(kb).is_consistent()

    assert benchmark(run) is False
