"""Ablation: the tableau's two search optimisations.

DESIGN.md calls out two implementation decisions:

* **absorption** — inclusions with an atomic left side fire lazily
  instead of adding a universal disjunction to every node;
* **BCP** — immediate-clash screening and fail-first choice on the
  disjunctions that remain.

Measured matrix on the 32-axiom reduction workload (an inconsistent
random ontology), asserted in shape below:

==============  ==========  =======================
configuration   branches    outcome
==============  ==========  =======================
absorption+BCP  ~1          unsat in microseconds
absorption      ~1          unsat in microseconds
BCP only        ~10         unsat in milliseconds
neither         > 20,000    budget exhausted
==============  ==========  =======================
"""

import pytest

from repro.dl import Tableau
from repro.dl.errors import ReasonerLimitExceeded
from repro.workloads import GeneratorConfig, generate_kb


def workload(size: int):
    return generate_kb(
        GeneratorConfig(
            n_concepts=max(4, size // 2),
            n_roles=2,
            n_individuals=max(4, size // 2),
            n_tbox=size // 2,
            n_abox=size - size // 2,
            max_depth=1,
            seed=size * 13 + 1,
        )
    )


HARD_KB = workload(32)


def run_config(use_absorption: bool, use_bcp: bool, budget: int = 20_000):
    tableau = Tableau(
        HARD_KB,
        use_absorption=use_absorption,
        use_bcp=use_bcp,
        max_branches=budget,
    )
    try:
        result = tableau.is_satisfiable()
    except ReasonerLimitExceeded:
        result = None
    return result, tableau._branches_used


def test_full_optimisations(benchmark):
    result, branches = benchmark(run_config, True, True)
    assert result is False
    assert branches <= 10


def test_absorption_only(benchmark):
    result, branches = benchmark(run_config, True, False)
    assert result is False
    assert branches <= 10


def test_bcp_only(benchmark):
    result, branches = benchmark(run_config, False, True)
    assert result is False
    assert branches <= 1000


def test_neither_exhausts_budget(benchmark):
    result, branches = benchmark.pedantic(
        lambda: run_config(False, False, budget=5_000), rounds=1, iterations=1
    )
    assert result is None  # budget exhausted, no answer
    assert branches > 5_000


def test_all_configurations_agree_when_they_terminate():
    reference, _branches = run_config(True, True)
    for use_absorption, use_bcp in ((True, False), (False, True)):
        result, _branches = run_config(use_absorption, use_bcp)
        assert result == reference
