"""Benchmarks for paper Tables 1-3: the two semantic evaluators.

Regenerates the constructor/axiom semantics checks and measures evaluator
throughput — the cost of one full pass over every Table row.
"""

from repro.harness.experiments import (
    experiment_table1,
    experiment_table2,
    experiment_table3,
)


def test_table1_classical_evaluator(benchmark):
    result = benchmark(experiment_table1)
    assert result.passed, result.render()
    assert len(result.rows) == 12  # one row per Table 1 constructor checked


def test_table2_four_valued_evaluator(benchmark):
    result = benchmark(experiment_table2)
    assert result.passed, result.render()
    assert len(result.rows) == 10


def test_table3_axiom_semantics(benchmark):
    result = benchmark(experiment_table3)
    assert result.passed, result.render()
    # Every case decides all three inclusion strengths.
    assert all(len(row) == 4 for row in result.rows)
