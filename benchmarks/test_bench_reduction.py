"""Theorem 6 in practice: reduction-based reasoning cost and overhead.

Benchmarks four-valued satisfiability (transform + classical tableau on
the doubled signature) against plain classical satisfiability of the same
ontology, the paper's "same complexity as SHOIN(D)" claim (Section 5).
"""

import pytest

from repro.dl import Reasoner
from repro.four_dl import Reasoner4, from_classical, transform_kb
from repro.workloads import GeneratorConfig, generate_kb

SIZES = [10, 20, 40]


def consistent_kb(size: int):
    """A classical KB that is consistent (needed for a fair comparison)."""
    for attempt in range(20):
        kb = generate_kb(
            GeneratorConfig(
                n_concepts=max(4, size // 2),
                n_roles=2,
                n_individuals=max(4, size // 2),
                n_tbox=size // 2,
                n_abox=size - size // 2,
                max_depth=1,
                seed=size * 31 + attempt,
            )
        )
        if Reasoner(kb).is_consistent():
            return kb
    raise RuntimeError("no consistent KB found")


@pytest.mark.parametrize("size", SIZES)
def test_classical_satisfiability(benchmark, size):
    kb = consistent_kb(size)

    def run():
        return Reasoner(kb).is_consistent()

    assert benchmark(run)


@pytest.mark.parametrize("size", SIZES)
def test_four_valued_satisfiability_via_reduction(benchmark, size):
    kb4 = from_classical(consistent_kb(size))

    def run():
        return Reasoner4(kb4).is_satisfiable()

    assert benchmark(run)


@pytest.mark.parametrize("size", SIZES)
def test_transformation_alone(benchmark, size):
    """How much of the reduction cost is the transformation itself
    (answer: a negligible slice — the tableau dominates)."""
    kb4 = from_classical(consistent_kb(size))
    induced = benchmark(transform_kb, kb4)
    assert len(induced) >= len(kb4)
