"""Propositions 3-4 as a benchmark: duality-law evaluation throughput."""

import random

from repro.dl import And, AtLeast, AtMost, BOTTOM, Exists, Forall, Not, Or, TOP
from repro.fourvalued import BilatticePair
from repro.semantics import FourInterpretation, RolePair
from repro.workloads import Signature, random_concept

DOMAIN = [f"d{i}" for i in range(6)]


def build_interpretation(seed: int) -> FourInterpretation:
    rng = random.Random(seed)
    signature = Signature.of_size(4, 2, 0)
    return FourInterpretation(
        domain=frozenset(DOMAIN),
        concept_ext={
            concept: BilatticePair(
                frozenset(x for x in DOMAIN if rng.random() < 0.5),
                frozenset(x for x in DOMAIN if rng.random() < 0.5),
            )
            for concept in signature.concepts
        },
        role_ext={
            role: RolePair(
                frozenset(
                    (x, y) for x in DOMAIN for y in DOMAIN if rng.random() < 0.3
                ),
                frozenset(
                    (x, y) for x in DOMAIN for y in DOMAIN if rng.random() < 0.3
                ),
            )
            for role in signature.roles
        },
    )


def check_dualities(seed: int) -> int:
    """Evaluate every Prop 3/4 law on a random concept; returns checks done."""
    rng = random.Random(seed)
    signature = Signature.of_size(4, 2, 0)
    interp = build_interpretation(seed)
    checks = 0
    for _ in range(10):
        concept = random_concept(rng, signature, depth=2, allow_counting=True)
        role = rng.choice(signature.roles)
        assert interp.extension(And.of(concept, TOP)) == interp.extension(concept)
        assert interp.extension(Or.of(concept, BOTTOM)) == interp.extension(concept)
        assert interp.extension(Not(Not(concept))) == interp.extension(concept)
        assert interp.extension(Not(Exists(role, concept))) == interp.extension(
            Forall(role, Not(concept))
        )
        assert interp.extension(Not(AtLeast(2, role))) == interp.extension(
            AtMost(1, role)
        )
        checks += 5
    return checks


def test_duality_evaluation_throughput(benchmark):
    checks = benchmark(check_dualities, 7)
    assert checks == 50
