"""Benchmark for paper Table 4: enumerating Example 4's four-valued models.

Measures the full enumeration over {smith, kate} (864 models) and checks
the projection equals the paper's nine patterns M1-M9 exactly.
"""

from repro.dl import AtLeast, AtomicConcept, AtomicRole, Individual
from repro.harness import TABLE4_EXPECTED, example4_kb4
from repro.semantics import enumerate_four_models, truth_patterns


def regenerate_table4():
    kb4 = example4_kb4()
    has_child = AtomicRole("hasChild")
    smith, kate = Individual("smith"), Individual("kate")
    models = list(enumerate_four_models(kb4, irreflexive_roles=[has_child]))
    queries = [
        ("hasChild(s,k)", (has_child, smith, kate)),
        (">=1.hasChild(s)", (AtLeast(1, has_child), smith)),
        ("Parent(s)", (AtomicConcept("Parent"), smith)),
        ("Married(s)", (AtomicConcept("Married"), smith)),
    ]
    return models, truth_patterns(models, queries)


def test_table4_model_enumeration(benchmark):
    models, patterns = benchmark(regenerate_table4)
    assert patterns == TABLE4_EXPECTED
    assert len(patterns) == 9
    assert len(models) == 864


def test_table4_reduction_queries(benchmark):
    """The entailment-level view of Example 4 through the reduction."""
    from repro.four_dl import Reasoner4
    from repro.fourvalued import FourValue

    smith = Individual("smith")

    def run():
        reasoner = Reasoner4(example4_kb4())
        return (
            reasoner.assertion_value(smith, AtomicConcept("Parent")),
            reasoner.assertion_value(smith, AtomicConcept("Married")),
        )

    parent_value, married_value = benchmark(run)
    assert parent_value is FourValue.TRUE
    assert married_value is FourValue.FALSE
