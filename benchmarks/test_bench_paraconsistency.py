"""The paraconsistency claim: informative answers under contradictions.

Regenerates the experiment comparing classical reasoning, subset
selection, stratification, and SHOIN(D)4 as contradictions are injected,
asserting the paper's qualitative shape: the classical baseline collapses
at the first contradiction while the four-valued system keeps every
informative answer and localises each conflict.
"""

import pytest

from repro.baselines import ClassicalBaseline
from repro.four_dl import Reasoner4, collapse_to_classical
from repro.fourvalued import FourValue
from repro.harness.experiments import experiment_paraconsistency
from repro.workloads import inject_contradictions4, medical_access_control


def test_paraconsistency_experiment(benchmark):
    result = benchmark(experiment_paraconsistency, (0, 1, 2))
    assert result.passed, result.render()
    # Shape: classical column collapses to 0 after the first injection,
    # the four-valued column stays at its consistent-case level.
    baseline_row = result.rows[0]
    conflicted_rows = result.rows[1:]
    four_informative = baseline_row[4]
    for row in conflicted_rows:
        assert row[1].startswith("0/")
        assert row[4] == four_informative


@pytest.mark.parametrize("contradictions", [1, 4, 8])
def test_four_valued_query_cost_vs_contradictions(benchmark, contradictions):
    """Query latency as the number of contradictions grows."""
    scenario = medical_access_control(n_staff=6, n_conflicted=0)
    inject_contradictions4(scenario.kb4, contradictions, seed=contradictions)
    reasoner = Reasoner4(scenario.kb4)
    individual, concept = scenario.queries[0]

    value = benchmark(reasoner.assertion_value, individual, concept)
    assert value in tuple(FourValue)


def test_classical_collapse_is_cheap_but_useless(benchmark):
    scenario = medical_access_control(n_staff=6, n_conflicted=1)
    kb = collapse_to_classical(scenario.kb4)
    baseline = ClassicalBaseline(kb)

    assert benchmark(baseline.is_trivial)
