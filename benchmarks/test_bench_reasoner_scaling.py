"""Reasoner scaling on the paper's scenario shapes at growing size."""

import pytest

from repro.dl import AtomicConcept, Individual
from repro.four_dl import Reasoner4
from repro.fourvalued import FourValue
from repro.workloads import (
    hospital_records,
    medical_access_control,
    penguin_taxonomy,
)


@pytest.mark.parametrize("n_staff", [4, 8, 16])
def test_medical_roster_scaling(benchmark, n_staff):
    scenario = medical_access_control(n_staff=n_staff, n_conflicted=2)

    def run():
        reasoner = Reasoner4(scenario.kb4)
        return reasoner.contradictory_facts()

    conflicts = benchmark(run)
    assert len(conflicts) == 2


@pytest.mark.parametrize("n_wards", [2, 6, 12])
def test_hospital_propagation_scaling(benchmark, n_wards):
    scenario = hospital_records(n_wards=n_wards)
    doctor = AtomicConcept("Doctor")

    def run():
        reasoner = Reasoner4(scenario.kb4)
        return [
            reasoner.evidence_for(Individual(f"carer{i}"), doctor)
            for i in range(n_wards)
        ]

    answers = benchmark(run)
    assert all(answers)


@pytest.mark.parametrize("n_species", [2, 4, 8])
def test_penguin_taxonomy_scaling(benchmark, n_species):
    scenario = penguin_taxonomy(n_species=n_species)
    fly = AtomicConcept("Fly")
    deepest = Individual(f"bird_{n_species - 1}_0")

    def run():
        return Reasoner4(scenario.kb4).assertion_value(deepest, fly)

    assert benchmark(run) is FourValue.FALSE
