"""Classification and query-cache benchmarks with counter assertions.

Times traversal against the pairwise sweep on the shipped university
ontology and on generated taxonomies, and measures what the cross-query
cache saves on repeated probe batteries.  Each benchmark also asserts
the counter relationship the optimisation promises, so a regression in
*work* fails even on a fast machine.
"""

import os

import pytest

from repro.dl import Reasoner
from repro.dl.parser import parse_kb4
from repro.four_dl import Reasoner4, transform_kb
from repro.obs import BenchRecord, maybe_write_bench_record
from repro.workloads import GeneratorConfig, generate_kb

ONTOLOGY_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "ontologies")


def _emit_record(name, workload, benchmark, stats):
    """Persist a BENCH_*.json record iff REPRO_BENCH_OUT is set."""
    try:
        samples = list(benchmark.stats.stats.data)
    except AttributeError:  # pytest-benchmark internals moved
        samples = []
    maybe_write_bench_record(
        BenchRecord(
            name=name,
            workload=workload,
            seconds=samples,
            counters=stats.as_dict(),
        )
    )


@pytest.fixture(scope="module")
def university_induced():
    with open(os.path.join(ONTOLOGY_DIR, "university.kb4")) as handle:
        return transform_kb(parse_kb4(handle.read()))


def test_university_traversal_classification(benchmark, university_induced):
    def run():
        reasoner = Reasoner(university_induced)
        hierarchy = reasoner.classify()
        return reasoner, hierarchy

    reasoner, hierarchy = benchmark(run)
    n = len(university_induced.concepts_in_signature())
    assert len(hierarchy) == n
    assert reasoner.stats.tableau_runs < n * n
    _emit_record(
        "university_traversal_classification",
        "Reasoner.classify() on the induced university KB",
        benchmark,
        reasoner.stats,
    )


def test_university_pairwise_classification(benchmark, university_induced):
    def run():
        reasoner = Reasoner(university_induced, use_cache=False)
        hierarchy = reasoner.classify_pairwise()
        return reasoner, hierarchy

    reasoner, hierarchy = benchmark(run)
    n = len(university_induced.concepts_in_signature())
    assert len(hierarchy) == n
    assert reasoner.stats.tableau_runs == n * n
    _emit_record(
        "university_pairwise_classification",
        "Reasoner.classify_pairwise() on the induced university KB",
        benchmark,
        reasoner.stats,
    )


@pytest.mark.parametrize("n_concepts", [8, 16])
def test_generated_taxonomy_classification(benchmark, n_concepts):
    kb = generate_kb(
        GeneratorConfig(
            n_concepts=n_concepts,
            n_roles=2,
            n_individuals=4,
            n_tbox=n_concepts,
            n_abox=6,
            max_depth=1,
            seed=303,
        )
    )

    def run():
        reasoner = Reasoner(kb)
        return reasoner, reasoner.classify()

    reasoner, hierarchy = benchmark(run)
    assert reasoner.classify_pairwise() == hierarchy


def test_repeated_query_battery_with_cache(benchmark):
    with open(os.path.join(ONTOLOGY_DIR, "university.kb4")) as handle:
        kb4 = parse_kb4(handle.read())
    atoms = sorted(kb4.concepts_in_signature(), key=lambda a: a.name)[:6]
    individuals = sorted(
        kb4.individuals_in_signature(), key=lambda i: i.name
    )[:4]
    pairs = [(i, a) for i in individuals for a in atoms]

    def run():
        reasoner = Reasoner4(kb4)
        first = reasoner.assertion_values(pairs)
        second = reasoner.assertion_values(pairs)  # fully cache-served
        return reasoner, first, second

    reasoner, first, second = benchmark(run)
    assert first == second
    assert reasoner.stats.cache_hits >= len(pairs)
