"""Shared fixtures for the benchmark suite.

Benchmarks double as reproduction checks: each module asserts the
paper-shape result (who wins, what stays satisfiable) and measures the
cost of the operation that produces it.  ``pytest benchmarks/
--benchmark-only`` therefore both regenerates and times every artefact.
"""

import pytest

from repro.workloads import GeneratorConfig, generate_kb, generate_kb4


@pytest.fixture(scope="session")
def small_kb():
    """A consistent classical KB of ~20 axioms."""
    return generate_kb(
        GeneratorConfig(n_tbox=8, n_abox=12, max_depth=1, seed=101)
    )


@pytest.fixture(scope="session")
def small_kb4():
    """A four-valued KB of ~20 axioms with mixed inclusion kinds."""
    return generate_kb4(
        GeneratorConfig(n_tbox=8, n_abox=12, max_depth=1, seed=101)
    )


@pytest.fixture(scope="session")
def medium_kb4():
    """A four-valued KB of ~120 axioms."""
    return generate_kb4(
        GeneratorConfig(
            n_concepts=24,
            n_roles=4,
            n_individuals=30,
            n_tbox=40,
            n_abox=80,
            max_depth=2,
            seed=202,
        )
    )
