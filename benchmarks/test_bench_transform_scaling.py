"""The polynomial-transformation claim (paper Section 4.1).

Definition 5-7 transformation cost across a size sweep: the benchmark
fixture times each size; the shape assertion checks the induced KB grows
by a bounded constant factor (strong inclusions at most double).
"""

import pytest

from repro.four_dl import transform_kb
from repro.workloads import GeneratorConfig, generate_kb4

SIZES = [25, 100, 400]


@pytest.mark.parametrize("size", SIZES)
def test_transform_scaling(benchmark, size):
    kb4 = generate_kb4(
        GeneratorConfig(
            n_concepts=max(4, size // 4),
            n_roles=3,
            n_individuals=max(4, size // 4),
            n_tbox=size // 2,
            n_abox=size - size // 2,
            max_depth=2,
            seed=size,
        )
    )
    induced = benchmark(transform_kb, kb4)
    assert len(induced) >= len(kb4)
    assert len(induced) <= 2 * len(kb4)


def test_transform_per_axiom_cost_is_flat():
    """Linear scaling: per-axiom time must not grow across the sweep."""
    import time

    per_axiom = []
    for size in (50, 200, 800):
        kb4 = generate_kb4(
            GeneratorConfig(
                n_concepts=max(4, size // 4),
                n_roles=3,
                n_individuals=max(4, size // 4),
                n_tbox=size // 2,
                n_abox=size - size // 2,
                max_depth=2,
                seed=size,
            )
        )
        started = time.perf_counter()
        for _ in range(3):
            transform_kb(kb4)
        per_axiom.append((time.perf_counter() - started) / 3 / size)
    assert per_axiom[-1] < per_axiom[0] * 10
