"""Benchmarks for the follow-up features: metrics and adjudication."""

import pytest

from repro.dl import AtomicConcept, Individual
from repro.four_dl import (
    DefeasibleReasoner4,
    Reasoner4,
    conflict_profile,
    default_stratification4,
)
from repro.fourvalued import FourValue
from repro.workloads import inject_contradictions4, medical_access_control


def scenario_kb4(n_staff: int, conflicts: int):
    scenario = medical_access_control(n_staff=n_staff, n_conflicted=0)
    if conflicts:
        inject_contradictions4(scenario.kb4, conflicts, seed=conflicts)
    return scenario.kb4


@pytest.mark.parametrize("n_staff", [4, 8])
def test_conflict_profile_cost(benchmark, n_staff):
    reasoner = Reasoner4(scenario_kb4(n_staff, conflicts=2))

    profile = benchmark(conflict_profile, reasoner)
    assert profile.total > 0
    assert 0.0 <= profile.inconsistency_degree <= 1.0


def test_inconsistency_degree_tracks_conflicts(benchmark):
    def run():
        degrees = []
        for conflicts in (0, 2, 4):
            reasoner = Reasoner4(scenario_kb4(4, conflicts))
            profile = conflict_profile(reasoner, include_roles=False)
            degrees.append(profile.inconsistency_degree)
        return degrees

    degrees = benchmark.pedantic(run, rounds=1, iterations=1)
    assert degrees[0] == 0.0
    assert degrees[0] <= degrees[1] <= degrees[2]


def test_adjudication_cost(benchmark):
    kb4 = scenario_kb4(6, conflicts=2)
    reasoner = DefeasibleReasoner4(default_stratification4(kb4))

    report = benchmark(reasoner.conflict_report)
    assert report
    # Every conflicted fact gets a preferred reading and a blame stratum.
    for verdict in report.values():
        assert verdict.value is FourValue.BOTH
        assert verdict.conflict_stratum is not None
