"""Head-to-head query cost: the three baselines vs the reduction reasoner.

Same inconsistent workload, same query, four strategies.  Shape
assertions encode the paper's comparison (Section 5): selection and
stratification answer from a pruned KB, SHOIN(D)4 answers from the whole
KB with the conflict flagged.
"""

import pytest

from repro.baselines import (
    ClassicalBaseline,
    SelectionReasoner,
    StratifiedReasoner,
    default_stratification,
)
from repro.dl import AtomicConcept, Individual
from repro.four_dl import Reasoner4, collapse_to_classical
from repro.fourvalued import FourValue
from repro.workloads import medical_access_control

SCENARIO = medical_access_control(n_staff=4, n_conflicted=1)
CLASSICAL_KB = collapse_to_classical(SCENARIO.kb4)
CONFLICTED = Individual("staff0")
READERS = AtomicConcept("ReadPatientRecordTeam")


def test_classical_baseline_query(benchmark):
    baseline = ClassicalBaseline(CLASSICAL_KB)
    status = benchmark(baseline.query_status, CONFLICTED, READERS)
    assert status == "both"  # explosion artefact


def test_selection_baseline_query(benchmark):
    baseline = SelectionReasoner(CLASSICAL_KB)
    status = benchmark(baseline.query, CONFLICTED, READERS)
    assert status == "undetermined"  # the conflict sits in the first ring


def test_stratified_baseline_query(benchmark):
    baseline = StratifiedReasoner(default_stratification(CLASSICAL_KB))
    status = benchmark(baseline.query, CONFLICTED, READERS)
    assert status == "undetermined"  # the breaking stratum is drowned


def test_four_valued_query(benchmark):
    reasoner = Reasoner4(SCENARIO.kb4)
    value = benchmark(reasoner.assertion_value, CONFLICTED, READERS)
    assert value is FourValue.BOTH  # both directions of the conflict kept


def test_four_valued_unconflicted_query(benchmark):
    """An unconflicted member still gets a classical-quality answer."""
    reasoner = Reasoner4(SCENARIO.kb4)
    value = benchmark(reasoner.assertion_value, Individual("staff1"), READERS)
    assert value is FourValue.TRUE


def test_conflict_report(benchmark):
    reasoner = Reasoner4(SCENARIO.kb4)
    report = benchmark(reasoner.contradictory_facts)
    assert CONFLICTED in report
