"""Diagnosis/repair cost vs the four-valued reduction.

Pinpointing justifications costs many satisfiability calls (quadratic in
KB size per justification); the four-valued conflict report needs two
entailment checks per queried fact.  The shape assertion: both find the
same conflicts, repair semantics deletes, SHOIN(D)4 keeps.
"""

import pytest

from repro.baselines import RepairReasoner
from repro.dl import AtomicConcept, Individual
from repro.four_dl import Reasoner4, collapse_to_classical
from repro.fourvalued import FourValue
from repro.workloads import medical_access_control

SCENARIO = medical_access_control(n_staff=4, n_conflicted=1)
CLASSICAL_KB = collapse_to_classical(SCENARIO.kb4)
CONFLICTED = Individual("staff0")
READERS = AtomicConcept("ReadPatientRecordTeam")


def test_justification_finding(benchmark):
    def run():
        return RepairReasoner(CLASSICAL_KB, max_subsets=5).justifications

    justifications = benchmark(run)
    assert len(justifications) >= 1
    # The conflicted staffer's memberships appear in some justification.
    union = frozenset().union(*justifications)
    assert any(
        getattr(axiom, "individual", None) == CONFLICTED for axiom in union
    )


def test_repair_query(benchmark):
    reasoner = RepairReasoner(CLASSICAL_KB, max_subsets=5)
    verdict = benchmark(reasoner.query, CONFLICTED, READERS)
    assert verdict == "undetermined"  # information deleted


def test_four_valued_conflict_report_same_target(benchmark):
    reasoner = Reasoner4(SCENARIO.kb4)
    report = benchmark(reasoner.contradictory_facts)
    assert CONFLICTED in report
    assert reasoner.assertion_value(CONFLICTED, READERS) is FourValue.BOTH
