"""Propositional four-valued reasoning: truth tables vs SAT reduction.

The truth-table engine enumerates ``4**n`` valuations; the doubled-atom
SAT reduction scales with formula structure instead.  The benchmark shows
the crossover — the propositional miniature of the paper's argument for
reducing to classical reasoners.
"""

import random

import pytest

from repro.fourvalued import Atom, entails
from repro.fourvalued.reduction import entails_by_reduction


def sequent(n_atoms: int, n_premises: int, seed: int):
    rng = random.Random(seed)
    atoms = [Atom(f"x{i}") for i in range(n_atoms)]

    def formula(depth=2):
        if depth == 0 or rng.random() < 0.3:
            return rng.choice(atoms)
        kind = rng.choice(["not", "and", "or", "int", "strong"])
        left = formula(depth - 1)
        if kind == "not":
            return ~left
        right = formula(depth - 1)
        return {
            "and": left & right,
            "or": left | right,
            "int": left.internal(right),
            "strong": left.strong(right),
        }[kind]

    return [formula() for _ in range(n_premises)], formula()


@pytest.mark.parametrize("n_atoms", [4, 7])
def test_truth_table_engine(benchmark, n_atoms):
    premises, conclusion = sequent(n_atoms, 4, seed=n_atoms)

    result = benchmark(entails, premises, conclusion)
    assert result in (True, False)


@pytest.mark.parametrize("n_atoms", [4, 7, 12])
def test_sat_reduction_engine(benchmark, n_atoms):
    premises, conclusion = sequent(n_atoms, 4, seed=n_atoms)

    result = benchmark(entails_by_reduction, premises, conclusion)
    assert result in (True, False)


def test_engines_agree_on_benchmark_inputs():
    for n_atoms in (4, 7):
        premises, conclusion = sequent(n_atoms, 4, seed=n_atoms)
        assert entails(premises, conclusion) == entails_by_reduction(
            premises, conclusion
        )
