#!/usr/bin/env python
"""Validate a JSON-lines span dump against the span schema.

Used by the CI observability and serve jobs (and handy locally):

    python scripts/check_span_schema.py spans.jsonl [more.jsonl ...]
    python scripts/check_span_schema.py --require-trace trace.jsonl

Exit status 0 when every line of every file is a valid span record and
the parent/child structure reconstructs; 1 otherwise, with one line per
problem.  ``--require-trace`` additionally demands the distributed-
tracing contract of ``GET /trace/<id>`` dumps: every span tagged with
one shared ``trace_id`` and a ``process`` label, children timed inside
their parents.  The schema itself lives in ``repro.obs.export``
(SPAN_FIELDS, SPAN_OPTIONAL_FIELDS, SPAN_SCHEMA_VERSION) and is
documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.obs.export import (  # noqa: E402  (path bootstrap above)
    PHASE_SPANS,
    read_spans_jsonl,
    validate_span_record,
)


def check_text(text: str, where: str, require_trace: bool = False) -> list:
    """Every schema problem found in one span dump's text."""
    problems = []
    if not text.strip():
        return [f"{where}: empty span dump"]
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            problems.append(f"{where}:{line_number}: not JSON ({error})")
            continue
        for problem in validate_span_record(record):
            problems.append(f"{where}:{line_number}: {problem}")
    if problems:
        return problems
    # Structural pass: the forest must reconstruct, and a dump from the
    # instrumented pipeline should contain at least one known phase.
    try:
        roots = read_spans_jsonl(text)
    except ValueError as error:
        return [f"{where}: {error}"]
    names = {span.name for root in roots for span in root.walk()}
    if not names & PHASE_SPANS:
        problems.append(
            f"{where}: no known phase span present "
            f"(expected one of {', '.join(sorted(PHASE_SPANS))})"
        )
    if require_trace:
        problems.extend(check_trace_contract(roots, where))
    return problems


def check_trace_contract(roots, where: str) -> list:
    """The extra invariants of a reassembled ``GET /trace/<id>`` dump."""
    problems = []
    trace_ids = set()
    for root in roots:
        for span in root.walk():
            if span.trace_id is None:
                problems.append(
                    f"{where}: span {span.name!r} carries no trace_id"
                )
            else:
                trace_ids.add(span.trace_id)
            if span.process is None:
                problems.append(
                    f"{where}: span {span.name!r} carries no process label"
                )
            lo, hi = span.start, span.start + span.duration
            for child in span.children:
                if (
                    child.start < lo - 1e-6
                    or child.start + child.duration > hi + 1e-6
                ):
                    problems.append(
                        f"{where}: child {child.name!r} overflows its "
                        f"parent {span.name!r} window"
                    )
    if len(trace_ids) > 1:
        problems.append(
            f"{where}: {len(trace_ids)} distinct trace ids in one trace: "
            f"{sorted(trace_ids)}"
        )
    return problems


def check_file(path: str, require_trace: bool = False) -> list:
    """Every schema problem found in one span dump file."""
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as error:
        return [f"{path}: {error}"]
    return check_text(text, path, require_trace=require_trace)


def main(argv: list) -> int:
    require_trace = "--require-trace" in argv
    paths = [arg for arg in argv if arg != "--require-trace"]
    if not paths:
        print(
            "usage: check_span_schema.py [--require-trace] "
            "SPANFILE [SPANFILE ...]"
        )
        return 2
    all_problems = []
    for path in paths:
        all_problems.extend(check_file(path, require_trace=require_trace))
    for problem in all_problems:
        print(problem)
    if not all_problems:
        print(f"{len(paths)} span dump(s) valid")
    return 1 if all_problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
