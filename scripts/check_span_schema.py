#!/usr/bin/env python
"""Validate a --profile JSON-lines span dump against the span schema.

Used by the CI observability job (and handy locally):

    python scripts/check_span_schema.py spans.jsonl [more.jsonl ...]

Exit status 0 when every line of every file is a valid span record and
the parent/child structure reconstructs; 1 otherwise, with one line per
problem.  The schema itself lives in ``repro.obs.export`` (SPAN_FIELDS,
SPAN_SCHEMA_VERSION) and is documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.obs.export import (  # noqa: E402  (path bootstrap above)
    PHASE_SPANS,
    read_spans_jsonl,
    validate_span_record,
)


def check_file(path: str) -> list:
    """Every schema problem found in one span dump."""
    problems = []
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as error:
        return [f"{path}: {error}"]
    if not text.strip():
        return [f"{path}: empty span dump"]
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            problems.append(f"{path}:{line_number}: not JSON ({error})")
            continue
        for problem in validate_span_record(record):
            problems.append(f"{path}:{line_number}: {problem}")
    if problems:
        return problems
    # Structural pass: the forest must reconstruct, and a dump from the
    # instrumented pipeline should contain at least one known phase.
    try:
        roots = read_spans_jsonl(text)
    except ValueError as error:
        return [f"{path}: {error}"]
    names = {span.name for root in roots for span in root.walk()}
    if not names & PHASE_SPANS:
        problems.append(
            f"{path}: no known phase span present "
            f"(expected one of {', '.join(sorted(PHASE_SPANS))})"
        )
    return problems


def main(argv: list) -> int:
    if not argv:
        print("usage: check_span_schema.py SPANFILE [SPANFILE ...]")
        return 2
    all_problems = []
    for path in argv:
        all_problems.extend(check_file(path))
    for problem in all_problems:
        print(problem)
    if not all_problems:
        print(f"{len(argv)} span dump(s) valid")
    return 1 if all_problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
