#!/usr/bin/env python
"""End-to-end smoke test for the `repro serve` daemon.

Boots the real CLI daemon as a subprocess, then walks the fault-
tolerance story: answer a probe, pull its reassembled distributed
trace off ``GET /trace/<id>`` and schema-validate it, kill a worker
mid-request and prove the service recovers (with honest UNKNOWN
accounting in /metrics), then SIGTERM and demand a clean drain with
exit code 0 — leaving the structured request journal behind as a file
(``SERVE_SMOKE_JOURNAL`` overrides the path; CI uploads it as an
artifact).

Run from the repository root (CI wraps it in coreutils timeout):

    PYTHONPATH=src timeout 120 python scripts/serve_smoke.py
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ONTOLOGY = os.path.join(REPO_ROOT, "ontologies", "university.kb4")
JOURNAL_PATH = os.environ.get(
    "SERVE_SMOKE_JOURNAL",
    os.path.join(REPO_ROOT, "serve-smoke-journal.jsonl"),
)

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from check_span_schema import check_text  # noqa: E402  (path above)


def fail(message):
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def free_port():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def get(base, path, timeout=5.0):
    try:
        with urllib.request.urlopen(base + path, timeout=timeout) as raw:
            return raw.status, raw.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


def post(base, payload, timeout=30.0):
    request = urllib.request.Request(
        base + "/probe",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as raw:
            return raw.status, raw.read().decode("utf-8"), dict(raw.headers)
    except urllib.error.HTTPError as error:
        return (
            error.code,
            error.read().decode("utf-8"),
            dict(error.headers),
        )


def wait_for(predicate, what, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if predicate():
                return
        except (urllib.error.URLError, ConnectionError, socket.timeout):
            pass
        time.sleep(0.1)
    fail(f"timed out waiting for {what}")


def main():
    port = free_port()
    base = f"http://127.0.0.1:{port}"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    if os.path.exists(JOURNAL_PATH):
        os.remove(JOURNAL_PATH)
    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            f"university={ONTOLOGY}",
            "--port", str(port),
            "--workers", "1",
            "--chaos",            # enables the debug_crash probe below
            "--drain-timeout", "10",
            "--journal", JOURNAL_PATH,
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    try:
        # 1. The daemon comes up and reports alive + ready.
        wait_for(lambda: get(base, "/healthz")[0] == 200, "healthz")
        wait_for(lambda: get(base, "/readyz")[0] == 200, "readyz")
        print("serve_smoke: daemon alive and ready")

        # 2. A real probe answers with a decided verdict.
        status, body, headers = post(base, {
            "schema": 1, "kind": "satisfiable", "kb": "university",
            "deadline_ms": 20000,
        })
        if status != 200:
            fail(f"probe returned HTTP {status}: {body}")
        first = json.loads(body)
        if first.get("status") != "ok" or first.get("value") is not True:
            fail(f"unexpected probe answer: {body}")
        print(f"serve_smoke: satisfiable(university) -> {body}")

        # 2b. The probe's distributed trace reassembles across processes:
        #     one schema-valid tree carrying server- and worker-side
        #     spans, all stamped with the request's trace id.
        trace_id = headers.get("X-Trace-Id")
        if not trace_id:
            fail("probe response carried no X-Trace-Id header")
        status, trace_text = get(base, f"/trace/{trace_id}")
        if status != 200:
            fail(f"/trace/{trace_id} returned HTTP {status}: {trace_text}")
        problems = check_text(
            trace_text, f"/trace/{trace_id}", require_trace=True
        )
        if problems:
            fail("trace schema violations: " + "; ".join(problems))
        names = [
            json.loads(line)["name"]
            for line in trace_text.splitlines() if line.strip()
        ]
        for needed in ("serve_request", "admission", "dispatch",
                       "probe_execute"):
            if needed not in names:
                fail(f"trace lacks the {needed!r} span: {names}")
        if names.count("serve_request") != 1:
            fail(f"serve_request appears {names.count('serve_request')}x")
        processes = {
            json.loads(line).get("process")
            for line in trace_text.splitlines() if line.strip()
        }
        if "server" not in processes or not any(
            p and p.startswith("worker-") for p in processes
        ):
            fail(f"trace lacks cross-process spans: {sorted(processes)}")
        print(
            f"serve_smoke: trace {trace_id} reassembled "
            f"({len(names)} spans, processes {sorted(processes)})"
        )

        # 3. Kill the worker mid-request: the in-flight request must be
        #    answered UNKNOWN(worker_crash), never hung or lied about.
        status, body, _ = post(base, {
            "schema": 1, "kind": "debug_crash", "kb": "university",
            "deadline_ms": 20000,
        })
        crash = json.loads(body)
        if crash.get("status") != "unknown":
            fail(f"crash probe not degraded: HTTP {status} {body}")
        if crash.get("reason") != "worker_crash":
            fail(f"crash probe wrong reason: {body}")
        print(f"serve_smoke: worker kill degraded honestly -> {body}")

        # 4. The supervisor restarts the shard and service resumes with
        #    the same answer as before the fault.
        wait_for(lambda: get(base, "/readyz")[0] == 200, "post-crash readyz")
        status, body, _ = post(base, {
            "schema": 1, "kind": "satisfiable", "kb": "university",
            "deadline_ms": 20000,
        })
        if status != 200 or body != json.dumps(first, sort_keys=True):
            fail(f"post-recovery answer diverged: HTTP {status} {body}")
        print("serve_smoke: recovered, verdict byte-identical")

        # One more warm repeat: this one hits the restarted worker's
        # now-warm cache, so the per-KB hit-rate series has a hit.
        post(base, {
            "schema": 1, "kind": "satisfiable", "kb": "university",
            "deadline_ms": 20000,
        })

        # 5. The books balance: one restart, one worker_crash UNKNOWN,
        #    and the new trace/journal series are exposed.
        _, metrics = get(base, "/metrics")
        for needle in (
            'repro_serve_unknown_total{reason="worker_crash"} 1',
            "repro_serve_worker_restarts_total 1",
            "repro_serve_trace_store_traces",
            "repro_serve_journal_lines_total",
            'repro_serve_cache_hits_total{kb="university"}',
        ):
            if needle not in metrics:
                fail(f"metrics missing {needle!r}")
        print("serve_smoke: metrics account for the crash")

        # 5b. The journal endpoint has one record per request so far.
        status, journal_text = get(base, "/journal")
        if status != 200:
            fail(f"/journal returned HTTP {status}")
        records = [
            json.loads(line)
            for line in journal_text.splitlines() if line.strip()
        ]
        statuses = [record["status"] for record in records]
        if statuses.count("ok") < 2 or "unknown" not in statuses:
            fail(f"journal does not cover the session: {statuses}")
        if not any(
            record["reason"] == "worker_crash" for record in records
        ):
            fail("journal lacks the worker_crash line")
        print(f"serve_smoke: journal covers {len(records)} requests")

        # 6. SIGTERM drains and exits 0.
        daemon.send_signal(signal.SIGTERM)
        try:
            code = daemon.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            fail("daemon did not exit within 30s of SIGTERM")
        if code != 0:
            fail(f"daemon exited {code} after SIGTERM")
        stderr = daemon.stderr.read().decode("utf-8")
        if "drained and stopped" not in stderr:
            fail(f"daemon did not report a clean drain: {stderr!r}")
        print("serve_smoke: SIGTERM drained cleanly, exit 0")

        # 7. The journal file survived the drain (CI uploads it).
        if not os.path.exists(JOURNAL_PATH):
            fail(f"journal file {JOURNAL_PATH} was not written")
        with open(JOURNAL_PATH) as handle:
            lines = [line for line in handle if line.strip()]
        if len(lines) < len(records):
            fail(
                f"journal file has {len(lines)} lines, endpoint showed "
                f"{len(records)}"
            )
        print(f"serve_smoke: journal artifact at {JOURNAL_PATH} "
              f"({len(lines)} lines)")
        print("serve_smoke: OK")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=10.0)


if __name__ == "__main__":
    main()
