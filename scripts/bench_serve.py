#!/usr/bin/env python
"""Seeded load benchmark for the `repro serve` daemon.

Boots an in-process server over the university ontology and drives it
with N concurrent clients issuing a seeded, shuffled mix of the four
probe kinds.  Records wall-clock per request wave plus the service's
own accounting (requests by status, UNKNOWN reasons, restarts) as a
``BENCH_serve.json`` trajectory record.

The load runs **twice**: wave 0 with per-request tracing disabled,
wave 1 with tracing and the request journal on (the production
default).  The traced wave must stay within 2x the untraced wave — the
bound that keeps "tracing always on" an acceptable default — and the
journal must cover every served request.

    PYTHONPATH=src python scripts/bench_serve.py \
        --out benchmarks/trajectory [--clients 8] [--requests 25] [--seed 0]

The probe mix is a pure function of the seed; timing fields are the
only thing that varies between runs (`scripts/bench_compare.py` strips
them).
"""

import argparse
import collections
import json
import os
import random
import sys
import threading
import time
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.obs.bench import BenchRecord, write_bench_record  # noqa: E402
from repro.serve.client import ReproClient  # noqa: E402
from repro.serve.protocol import ProbeRequest  # noqa: E402
from repro.serve.server import ReproServer  # noqa: E402

ONTOLOGY = os.path.join(REPO_ROOT, "ontologies", "university.kb4")

#: The probe vocabulary the seeded mix draws from (university.kb4).
INDIVIDUALS = ("ada", "grace", "alan", "anna")
ATOMS = ("Person", "Student", "Professor", "Doctorate", "Teacher")


def seeded_battery(seed, count):
    """A deterministic shuffled mix of the four probe kinds."""
    rng = random.Random(f"bench-serve-{seed}")
    battery = []
    for index in range(count):
        kind = rng.choice(
            ("satisfiable", "instance", "subsumption", "assertion_value")
        )
        if kind == "satisfiable":
            request = ProbeRequest(
                kind=kind, kb="university", deadline_ms=20000.0
            )
        elif kind == "subsumption":
            sub, sup = rng.sample(ATOMS, 2)
            request = ProbeRequest(
                kind=kind, kb="university", sub=sub, sup=sup,
                deadline_ms=20000.0,
            )
        else:
            request = ProbeRequest(
                kind=kind, kb="university",
                individual=rng.choice(INDIVIDUALS),
                concept=rng.choice(ATOMS),
                deadline_ms=20000.0,
            )
        battery.append(request)
    return battery


def run_load(clients, requests_per_client, seed, workers, tracing=True):
    server = ReproServer(
        {"university": ONTOLOGY},
        port=0,
        workers=workers,
        max_queue=max(16, clients * 2),
        tracing_enabled=tracing,
    )
    server.start()
    statuses = collections.Counter()
    wave_seconds = []
    try:
        host, port = server.address
        base = f"http://{host}:{port}"
        batteries = [
            seeded_battery(f"{seed}-{index}", requests_per_client)
            for index in range(clients)
        ]
        lock = threading.Lock()
        failures = []

        def client_body(index):
            client = ReproClient(base, retries=2, backoff=0.05)
            try:
                for request in batteries[index]:
                    response = client.probe(request)
                    with lock:
                        statuses[response.status] += 1
            except Exception as error:  # noqa: BLE001 - recorded below
                with lock:
                    failures.append(f"client {index}: {error}")

        started = time.perf_counter()
        threads = [
            threading.Thread(target=client_body, args=(index,))
            for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wave_seconds.append(time.perf_counter() - started)
        if failures:
            raise SystemExit("bench_serve: " + "; ".join(failures))
        with urllib.request.urlopen(f"{base}/metrics", timeout=10.0) as raw:
            metrics_text = raw.read().decode("utf-8")
        journal_lines = server.journal.lines_total
        traces_stored = len(server.traces)
        total = sum(statuses.values())
        if journal_lines < total:
            raise SystemExit(
                f"bench_serve: journal covered {journal_lines} of "
                f"{total} answered probes"
            )
        if tracing and traces_stored == 0:
            raise SystemExit("bench_serve: tracing on but no traces stored")
        if not tracing and traces_stored != 0:
            raise SystemExit("bench_serve: tracing off but traces stored")
    finally:
        server.close()
    return statuses, wave_seconds, metrics_text


def scrape(metrics_text, series):
    for line in metrics_text.splitlines():
        if line.startswith(series + " "):
            return float(line.split()[-1])
    return 0.0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=25,
                        help="probes per client")
    parser.add_argument("--seed", default="0")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--out", default=None,
                        help="directory for BENCH_serve.json (omit to print)")
    args = parser.parse_args()

    # Wave 0: tracing off, the overhead baseline.  Wave 1: tracing and
    # the journal on (the production default) — the measured record.
    _, untraced_seconds, _ = run_load(
        args.clients, args.requests, args.seed, args.workers, tracing=False
    )
    statuses, wave_seconds, metrics_text = run_load(
        args.clients, args.requests, args.seed, args.workers, tracing=True
    )
    overhead = wave_seconds[0] / max(untraced_seconds[0], 1e-9)
    wave_seconds = untraced_seconds + wave_seconds
    total = sum(statuses.values())
    counters = {
        "requests": total,
        "requests_ok": statuses.get("ok", 0),
        "requests_unknown": statuses.get("unknown", 0),
        "requests_rejected": statuses.get("rejected", 0),
        "requests_error": statuses.get("error", 0),
        "worker_restarts": int(
            scrape(metrics_text, "repro_serve_worker_restarts_total")
        ),
    }
    record = BenchRecord(
        name="serve",
        workload=(
            f"{args.clients} concurrent clients x {args.requests} seeded "
            f"probes vs university.kb4, {args.workers} worker(s); "
            "wave 0 untraced, wave 1 traced + journalled"
        ),
        seconds=wave_seconds,
        counters=counters,
        metadata={
            "seed": str(args.seed),
            "clients": str(args.clients),
            "requests_per_client": str(args.requests),
            "workers": str(args.workers),
            "kb": "university.kb4",
            "tracing": "wave0=disabled wave1=enabled",
        },
    )
    if args.out:
        path = write_bench_record(record, args.out)
        print(f"bench_serve: wrote {path}")
    else:
        json.dump(record.as_dict(), sys.stdout, indent=2, sort_keys=True)
        print()
    if counters["requests_error"]:
        raise SystemExit("bench_serve: errors under load")
    print(
        f"bench_serve: {total} probes in {wave_seconds[1]:.2f}s traced "
        f"({total / wave_seconds[1]:.0f}/s), "
        f"{counters['requests_ok']} ok / "
        f"{counters['requests_unknown']} unknown / "
        f"{counters['requests_rejected']} rejected; "
        f"tracing+journal overhead {overhead:.2f}x"
    )
    if overhead > 2.0:
        raise SystemExit(
            f"bench_serve: tracing overhead {overhead:.2f}x exceeds the "
            "2x bound"
        )


if __name__ == "__main__":
    main()
