#!/usr/bin/env python
"""Gate eval runs on p95 regressions against the committed baseline.

Compares the per-probe p50/p95 timings of one or more eval run
directories (``repro eval run`` output: ``manifest.json`` +
``metrics.jsonl``) against ``benchmarks/BASELINE.json``::

    python scripts/bench_compare.py eval/results/<run-id> [more-runs...]
    python scripts/bench_compare.py --update eval/results/<run-id>

Exit status 0 when every probe is within tolerance, 1 on any p95
regression or probe missing from the run, 2 on usage/IO errors.  A
regression is ``run_p95 > max(baseline_p95, min_seconds) * p95_ratio``:
the ratio tolerance absorbs machine noise and the ``min_seconds`` floor
keeps microsecond probes from gating on scheduler jitter.  Tolerances
come from the baseline file and can be overridden per invocation
(``--p95-tolerance``, ``--min-seconds``).

``--update`` refreshes the baseline from the run instead of comparing —
the *only* honest way to move the baseline (see docs/EVAL.md: refresh
from a quiet machine, commit the diff with the run's manifest data, and
explain the movement in the PR).  Probes the run no longer produces are
dropped from that suite's baseline section on update.
"""

from __future__ import annotations

import argparse
import datetime
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.eval.manifest import (  # noqa: E402  (path bootstrap above)
    read_metrics_jsonl,
    validate_manifest,
)
from repro.harness.tables import format_table  # noqa: E402

BASELINE_SCHEMA_VERSION = 1

DEFAULT_BASELINE = REPO / "benchmarks" / "BASELINE.json"

#: Default tolerances written into fresh baselines (overridable there).
DEFAULT_TOLERANCES = {
    "p95_ratio": 1.6,
    "min_seconds": 0.005,
}


class CompareError(Exception):
    """Usage or IO problem (exit status 2)."""


def load_run(run_dir: Path) -> Tuple[str, Dict[str, Dict[str, float]]]:
    """``(suite, {probe: {p50, p95, phase, status}})`` of one run dir."""
    manifest_path = run_dir / "manifest.json"
    metrics_path = run_dir / "metrics.jsonl"
    if not manifest_path.is_file() or not metrics_path.is_file():
        raise CompareError(
            f"{run_dir}: not an eval run directory "
            f"(need manifest.json and metrics.jsonl)"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise CompareError(f"{manifest_path}: {error}") from None
    problems = validate_manifest(manifest)
    if problems:
        raise CompareError(f"{manifest_path}: {'; '.join(problems)}")
    try:
        records = read_metrics_jsonl(metrics_path.read_text())
    except (OSError, ValueError) as error:
        raise CompareError(f"{metrics_path}: {error}") from None
    probes = {
        record["probe"]: {
            "p50": float(record["seconds"]["p50"]),
            "p95": float(record["seconds"]["p95"]),
            "count": int(record["seconds"]["count"]),
            "phase": record["phase"],
            "status": record["status"],
        }
        for record in records
    }
    return manifest["suite"], probes


def _is_empty(entry: Dict[str, float]) -> bool:
    """A probe that measured nothing: zero samples or a 0.0 p95.

    Either way the timing is vacuous — comparing it against a baseline
    would pass trivially (0.0 is under every threshold), silently
    masking a probe that crashed, was skipped, or answered UNKNOWN
    everywhere.  Such probes fail the gate like MISSING ones.
    """
    return int(entry.get("count", 1)) <= 0 or float(entry["p95"]) <= 0.0


def load_baseline(path: Path) -> Dict:
    if not path.is_file():
        raise CompareError(
            f"{path}: baseline not found; create it with --update"
        )
    try:
        baseline = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise CompareError(f"{path}: {error}") from None
    if baseline.get("schema") not in (None, BASELINE_SCHEMA_VERSION):
        raise CompareError(
            f"{path}: unknown baseline schema {baseline.get('schema')!r}"
        )
    baseline.setdefault("suites", {})
    baseline.setdefault("tolerances", dict(DEFAULT_TOLERANCES))
    return baseline


def compare_suite(
    suite: str,
    run_probes: Dict[str, Dict[str, float]],
    baseline: Dict,
    p95_ratio: Optional[float] = None,
    min_seconds: Optional[float] = None,
) -> Tuple[List[Tuple], bool]:
    """``(table_rows, failed)`` for one run against the baseline.

    Rows are ``(probe, phase, base p95, run p95, ratio, verdict)``;
    verdicts: ``ok``, ``improved``, ``REGRESSED``, ``MISSING`` (probe in
    baseline but absent from the run), ``EMPTY`` (probe present but
    measured nothing — zero samples or a 0.0 p95), ``new``
    (informational).  ``MISSING`` and ``EMPTY`` fail the gate like a
    regression does.
    """
    tolerances = baseline.get("tolerances", {})
    ratio_cap = (
        p95_ratio
        if p95_ratio is not None
        else float(tolerances.get("p95_ratio", DEFAULT_TOLERANCES["p95_ratio"]))
    )
    floor = (
        min_seconds
        if min_seconds is not None
        else float(
            tolerances.get("min_seconds", DEFAULT_TOLERANCES["min_seconds"])
        )
    )
    base_suite = baseline["suites"].get(suite)
    if base_suite is None:
        raise CompareError(
            f"baseline has no suite {suite!r}; record one with --update"
        )
    rows: List[Tuple] = []
    failed = False

    def fmt(seconds: Optional[float]) -> str:
        return "-" if seconds is None else f"{seconds * 1e3:.2f} ms"

    for probe in sorted(base_suite):
        base_p95 = float(base_suite[probe]["p95"])
        entry = run_probes.get(probe)
        if entry is None:
            rows.append((probe, base_suite[probe].get("phase", "?"),
                         fmt(base_p95), "-", "-", "MISSING"))
            failed = True
            continue
        if _is_empty(entry):
            rows.append((probe, entry["phase"], fmt(base_p95),
                         fmt(entry["p95"]), "-", "EMPTY"))
            failed = True
            continue
        run_p95 = entry["p95"]
        allowed = max(base_p95, floor) * ratio_cap
        ratio = run_p95 / max(base_p95, floor)
        if run_p95 > allowed:
            verdict = "REGRESSED"
            failed = True
        elif base_p95 > floor and run_p95 < base_p95 / ratio_cap:
            verdict = "improved"
        else:
            verdict = "ok"
        rows.append(
            (probe, entry["phase"], fmt(base_p95), fmt(run_p95),
             f"{ratio:.2f}x", verdict)
        )
    for probe in sorted(set(run_probes) - set(base_suite)):
        entry = run_probes[probe]
        if _is_empty(entry):
            rows.append((probe, entry["phase"], "-", fmt(entry["p95"]),
                         "-", "EMPTY"))
            failed = True
            continue
        rows.append(
            (probe, entry["phase"], "-", fmt(entry["p95"]), "-", "new")
        )
    return rows, failed


def update_baseline(
    path: Path, suite: str, run_probes: Dict[str, Dict[str, float]]
) -> None:
    """Rewrite ``suite``'s section of the baseline from the run.

    Refuses to bake an empty probe into the baseline: a 0.0 p95 there
    would let any future timing pass the gate for that probe.
    """
    empty = sorted(p for p, e in run_probes.items() if _is_empty(e))
    if empty:
        raise CompareError(
            f"refusing to record empty probes into the baseline "
            f"(zero samples or 0.0 p95): {', '.join(empty)}"
        )
    if path.is_file():
        baseline = load_baseline(path)
    else:
        baseline = {
            "schema": BASELINE_SCHEMA_VERSION,
            "tolerances": dict(DEFAULT_TOLERANCES),
            "suites": {},
            "metadata": {},
        }
    baseline["schema"] = BASELINE_SCHEMA_VERSION
    baseline["suites"][suite] = {
        probe: {
            "phase": entry["phase"],
            "p50": round(entry["p50"], 6),
            "p95": round(entry["p95"], 6),
        }
        for probe, entry in sorted(run_probes.items())
    }
    metadata = baseline.setdefault("metadata", {})
    metadata[suite] = {
        "updated": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "runs", nargs="+", metavar="RUN_DIR", help="eval run directories"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--p95-tolerance",
        type=float,
        default=None,
        metavar="RATIO",
        help="override the baseline's p95 ratio tolerance",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=None,
        metavar="S",
        help="override the baseline's micro-probe floor",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="refresh the baseline from the runs instead of comparing",
    )
    args = parser.parse_args(argv)

    try:
        failed = False
        for run_arg in args.runs:
            run_dir = Path(run_arg)
            suite, run_probes = load_run(run_dir)
            if args.update:
                update_baseline(args.baseline, suite, run_probes)
                print(
                    f"baseline {args.baseline}: suite {suite!r} refreshed "
                    f"from {run_dir.name} ({len(run_probes)} probes)"
                )
                continue
            baseline = load_baseline(args.baseline)
            rows, suite_failed = compare_suite(
                suite,
                run_probes,
                baseline,
                p95_ratio=args.p95_tolerance,
                min_seconds=args.min_seconds,
            )
            failed = failed or suite_failed
            print(
                format_table(
                    ["probe", "phase", "baseline p95", "run p95", "ratio",
                     "verdict"],
                    rows,
                    title=f"{suite} vs {args.baseline.name}:",
                )
            )
            bad = [
                row
                for row in rows
                if row[-1] in ("REGRESSED", "MISSING", "EMPTY")
            ]
            if bad:
                print(
                    f"{len(bad)} probe(s) regressed, missing, or empty in "
                    f"{run_dir.name}"
                )
            print()
    except CompareError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if failed:
        print("p95 regression gate: FAILED")
        return 1
    if not args.update:
        print("p95 regression gate: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
