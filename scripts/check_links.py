#!/usr/bin/env python
"""Fail on broken intra-repository Markdown links.

Scans every tracked ``*.md`` file for inline links and images
(``[text](target)``), resolves relative targets against the containing
file, and exits 1 listing any target that does not exist.  External
links (``http(s)://``, ``mailto:``) and pure in-page anchors (``#...``)
are skipped; a ``file.md#anchor`` target is checked for the file part
only.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SKIP_DIRS = {".git", ".pytest_cache", "__pycache__", ".claude", "node_modules"}
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")


def markdown_files() -> list:
    files = []
    for path in REPO.rglob("*.md"):
        if any(part in SKIP_DIRS for part in path.parts):
            continue
        files.append(path)
    return sorted(files)


def check_file(path: Path) -> list:
    broken = []
    for match in LINK.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            broken.append((target, resolved))
    return broken


def main() -> int:
    failures = 0
    for path in markdown_files():
        for target, resolved in check_file(path):
            print(
                f"{path.relative_to(REPO)}: broken link '{target}' "
                f"(no such file: {resolved})",
                file=sys.stderr,
            )
            failures += 1
    if failures:
        print(f"{failures} broken link(s)", file=sys.stderr)
        return 1
    print(f"all intra-repo links OK across {len(markdown_files())} files")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
