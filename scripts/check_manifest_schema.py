#!/usr/bin/env python
"""Validate eval run directories against the manifest/metric schemas.

Sibling of ``check_span_schema.py``, for ``repro eval run`` output::

    python scripts/check_manifest_schema.py eval/results/<run-id> [...]

Each argument is a run directory; its ``manifest.json`` is checked
against :data:`repro.eval.manifest.MANIFEST_FIELDS`, every line of its
``metrics.jsonl`` against :data:`~repro.eval.manifest.METRIC_FIELDS`,
and the two are cross-checked (the metric records must cover exactly
the manifest's probe list, with matching suite and seed).  Exit status
0 when every directory is valid; 1 otherwise, one line per problem.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.eval.manifest import (  # noqa: E402  (path bootstrap above)
    validate_manifest,
    validate_metric_record,
)


def check_run_dir(path_arg: str) -> list:
    """Every schema problem found in one run directory."""
    run_dir = Path(path_arg)
    problems = []
    manifest_path = run_dir / "manifest.json"
    metrics_path = run_dir / "metrics.jsonl"
    if not run_dir.is_dir():
        return [f"{run_dir}: not a directory"]

    manifest = None
    try:
        manifest = json.loads(manifest_path.read_text())
    except OSError as error:
        problems.append(f"{manifest_path}: {error}")
    except json.JSONDecodeError as error:
        problems.append(f"{manifest_path}: not JSON ({error})")
    if manifest is not None:
        problems += [
            f"{manifest_path}: {problem}"
            for problem in validate_manifest(manifest)
        ]

    records = []
    try:
        text = metrics_path.read_text()
    except OSError as error:
        problems.append(f"{metrics_path}: {error}")
        text = ""
    if not text.strip() and not problems:
        problems.append(f"{metrics_path}: empty metrics dump")
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            problems.append(
                f"{metrics_path}:{line_number}: not JSON ({error})"
            )
            continue
        line_problems = validate_metric_record(record)
        problems += [
            f"{metrics_path}:{line_number}: {problem}"
            for problem in line_problems
        ]
        if not line_problems:
            records.append((line_number, record))

    # Cross-checks only make sense on individually-valid artefacts.
    if manifest is not None and records and not problems:
        recorded = [record["probe"] for _, record in records]
        if recorded != list(manifest.get("probes", [])):
            problems.append(
                f"{run_dir}: metrics.jsonl probes disagree with the "
                f"manifest probe list"
            )
        for line_number, record in records:
            for field in ("suite", "seed"):
                if record.get(field) != manifest.get(field):
                    problems.append(
                        f"{metrics_path}:{line_number}: {field} "
                        f"{record.get(field)!r} != manifest "
                        f"{manifest.get(field)!r}"
                    )
    return problems


def main(argv: list) -> int:
    if not argv:
        print("usage: check_manifest_schema.py RUN_DIR [RUN_DIR ...]")
        return 2
    all_problems = []
    for path in argv:
        all_problems.extend(check_run_dir(path))
    for problem in all_problems:
        print(problem)
    if not all_problems:
        print(f"{len(argv)} run director{'y' if len(argv) == 1 else 'ies'} valid")
    return 1 if all_problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
