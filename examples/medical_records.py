"""Paper Examples 1-2: medical record access control under conflict.

Reproduces the introduction's motivating scenario: john belongs to both
the surgical team (no record access) and the urgency team (record
access).  Classically the ontology is trivial; four-valuedly the system
answers *both* access questions "yes, there is such information" while
everything else stays informative — and scales the same pattern to a
whole staff roster.

Run:  python examples/medical_records.py
"""

from repro.dl import AtomicConcept, Individual, Reasoner
from repro.four_dl import Reasoner4, collapse_to_classical
from repro.fourvalued import FourValue
from repro.harness import print_table
from repro.workloads import hospital_records, medical_access_control


def example2_core() -> None:
    """The paper's Example 2, verbatim."""
    scenario = medical_access_control(n_staff=1, n_conflicted=1)
    reasoner = Reasoner4(scenario.kb4)
    john = Individual("staff0")
    readers = AtomicConcept("ReadPatientRecordTeam")

    print("== Example 2: conflicting team membership ==")
    print(
        "classically consistent?",
        Reasoner(collapse_to_classical(scenario.kb4)).is_consistent(),
    )
    print("four-valued satisfiable?", reasoner.is_satisfiable())
    print(
        "information that john MAY read records:",
        reasoner.evidence_for(john, readers),
    )
    print(
        "information that john may NOT read records:",
        reasoner.evidence_against(john, readers),
    )
    print(
        "information that john is a patient:",
        reasoner.evidence_for(john, AtomicConcept("Patient")),
        "/",
        reasoner.evidence_against(john, AtomicConcept("Patient")),
    )


def example1_propagation() -> None:
    """The paper's Example 1: inference survives an unrelated conflict."""
    scenario = hospital_records(n_wards=2)
    reasoner = Reasoner4(scenario.kb4)
    doctor = AtomicConcept("Doctor")

    print("\n== Example 1: propagation through hasPatient ==")
    rows = []
    for individual, concept in scenario.queries:
        if concept != doctor:
            continue
        rows.append(
            (
                individual.name,
                str(reasoner.assertion_value(individual, concept)),
            )
        )
    print_table(["individual", "Doctor status"], rows)
    print(
        "carer* are doctors because they have patients; the contradictory\n"
        "john stays TOP without poisoning those inferences."
    )


def staff_roster_audit() -> None:
    """The same pattern at roster scale, with a conflict report."""
    scenario = medical_access_control(n_staff=8, n_conflicted=2)
    reasoner = Reasoner4(scenario.kb4)
    readers = AtomicConcept("ReadPatientRecordTeam")

    print("\n== Roster audit: 8 staff, 2 conflicting memberships ==")
    rows = []
    for index in range(8):
        member = Individual(f"staff{index}")
        value = reasoner.assertion_value(member, readers)
        note = {
            FourValue.TRUE: "may read",
            FourValue.FALSE: "may not read",
            FourValue.BOTH: "CONFLICT - review membership",
            FourValue.NEITHER: "no information",
        }[value]
        rows.append((member.name, str(value), note))
    print_table(["staff", "record access", "action"], rows)
    print("conflicts localised to:", sorted(
        i.name for i in reasoner.contradictory_facts()
    ))


def main() -> None:
    example2_core()
    example1_propagation()
    staff_roster_audit()


if __name__ == "__main__":
    main()
