"""Diagnosis and repair vs. paraconsistent tolerance.

The paper lists three ways to live with an inconsistent ontology:
select a consistent subset, diagnose-and-repair, or reason
paraconsistently.  This script runs the second and third side by side
on one broken KB:

* axiom pinpointing finds the minimal inconsistent subsets and the
  minimal repairs (what you would *delete*);
* SHOIN(D)4 keeps everything and reports the same conflict as a
  localised BOTH fact, plus an inconsistency degree.

Run:  python examples/diagnosis_repair.py
"""

from repro.baselines import RepairReasoner
from repro.dl import AtomicConcept, Individual
from repro.dl.parser import parse_kb
from repro.dl.printer import render_axiom
from repro.four_dl import (
    Reasoner4,
    conflict_profile,
    from_classical,
)
from repro.harness import print_table

ONTOLOGY = """
# project-staffing rules with one corrupted import
Developer subclassof Employee
Contractor subclassof not Employee
ExternalAuditor subclassof Contractor
dana : Developer
dana : Contractor          # <- corrupted: dana imported twice
rory : ExternalAuditor
quinn : Developer
"""


def main() -> None:
    kb = parse_kb(ONTOLOGY)
    print("Ontology:")
    print(ONTOLOGY)

    # ------------------------------------------------------------------
    # Approach 2: diagnose and repair.
    # ------------------------------------------------------------------
    repairer = RepairReasoner(kb)
    print("== Diagnosis (axiom pinpointing) ==")
    for index, justification in enumerate(repairer.justifications, start=1):
        print(f"justification {index}:")
        for axiom in sorted(justification, key=repr):
            print(f"  {render_axiom(axiom)}")
    print("\nminimal repairs (delete any one set):")
    for index, repair in enumerate(repairer.repair_sets, start=1):
        axioms = "; ".join(sorted(render_axiom(a) for a in repair))
        print(f"  repair {index}: remove {{ {axioms} }}")

    employee = AtomicConcept("Employee")
    dana, rory, quinn = Individual("dana"), Individual("rory"), Individual("quinn")
    print("\nrepair-semantics answers:")
    for individual in (dana, rory, quinn):
        print(
            f"  Employee({individual.name}): "
            f"IAR={repairer.iar_query(individual, employee)}, "
            f"cautious={repairer.query(individual, employee)}, "
            f"brave={repairer.brave_query(individual, employee)}"
        )

    # ------------------------------------------------------------------
    # Approach 3: the paper — keep everything, localise the conflict.
    # ------------------------------------------------------------------
    print("\n== SHOIN(D)4 (keep everything) ==")
    reasoner = Reasoner4(from_classical(kb))
    rows = [
        (
            individual.name,
            str(reasoner.assertion_value(individual, employee)),
        )
        for individual in (dana, rory, quinn)
    ]
    print_table(["individual", "Employee status"], rows)
    profile = conflict_profile(reasoner, include_roles=False)
    print(f"inconsistency degree: {profile.inconsistency_degree:.3f}")
    print(f"information degree:   {profile.information_degree:.3f}")
    print(
        "\nThe repair approaches must pick what to delete before answering;"
        "\nSHOIN(D)4 answers immediately and hands the justifications to a"
        "\nhuman as a prioritised fix list."
    )


if __name__ == "__main__":
    main()
