"""Auditing a large inconsistent ontology: SHOIN(D)4 vs the baselines.

A realistic maintenance workflow: a generated department ontology picks
up contradictions (conflicting data imports).  The script compares four
strategies on the same query load —

* classical reasoning (trivialises),
* consistent-subset selection (Huang et al.),
* priority stratification (Benferhat et al.),
* the paper's SHOIN(D)4 reduction —

and prints who still answers what, plus the four-valued conflict report
that pinpoints the corrupted facts.

Run:  python examples/ontology_audit.py
"""

from repro.baselines import (
    ClassicalBaseline,
    SelectionReasoner,
    StratifiedReasoner,
    default_stratification,
)
from repro.four_dl import Reasoner4, collapse_to_classical
from repro.fourvalued import FourValue
from repro.harness import print_table
from repro.workloads import (
    inject_contradictions4,
    medical_access_control,
)


def main() -> None:
    scenario = medical_access_control(n_staff=6, n_conflicted=1)
    kb4 = scenario.kb4
    injected = inject_contradictions4(kb4, 2, seed=4)
    print(
        "Ontology:",
        len(kb4),
        "axioms;",
        len(injected) + len(scenario.expected_conflicts),
        "conflicts (1 modelled, 2 injected).",
    )

    classical_kb = collapse_to_classical(kb4)
    classical = ClassicalBaseline(classical_kb)
    selection = SelectionReasoner(classical_kb)
    stratified = StratifiedReasoner(default_stratification(classical_kb))
    reasoner4 = Reasoner4(kb4)

    rows = []
    informative = {"classical": 0, "selection": 0, "stratified": 0, "four": 0}
    for individual, concept in scenario.queries:
        classical_answer = (
            "EXPLODED" if classical.is_trivial()
            else classical.query_status(individual, concept)
        )
        selection_answer = selection.query(individual, concept)
        stratified_answer = stratified.query(individual, concept)
        four_answer = str(reasoner4.assertion_value(individual, concept))
        rows.append(
            (
                f"{individual.name} : {concept.name}",
                classical_answer,
                selection_answer,
                stratified_answer,
                four_answer,
            )
        )
        informative["classical"] += classical_answer not in ("EXPLODED", "both")
        informative["selection"] += selection_answer != "undetermined"
        informative["stratified"] += stratified_answer != "undetermined"
        informative["four"] += four_answer != str(FourValue.NEITHER)

    print_table(
        ["query", "classical", "selection", "stratified", "SHOIN(D)4"],
        rows,
        title="\nAnswers per strategy:",
    )
    total = len(scenario.queries)
    print_table(
        ["strategy", "informative answers"],
        [
            ("classical", f"{informative['classical']}/{total}"),
            ("selection", f"{informative['selection']}/{total}"),
            ("stratified", f"{informative['stratified']}/{total}"),
            ("SHOIN(D)4", f"{informative['four']}/{total}"),
        ],
        title="\nSummary:",
    )

    print("\nConflict report (what to fix):")
    for individual, concepts in sorted(reasoner4.contradictory_facts().items()):
        names = ", ".join(sorted(c.name for c in concepts))
        print(f"  {individual.name}: contradictory about {names}")


if __name__ == "__main__":
    main()
