"""Prioritised paraconsistent reasoning: the paper's future-work combo.

The access-control domain the paper borrows from Benferhat et al. has
naturally *stratified* knowledge: legal requirements outrank hospital
policy, which outranks imported department data.  This script keeps the
whole (inconsistent) policy base, reasons four-valuedly, and adjudicates
each conflict by priority — every answer comes with the stratum that
caused the disagreement.

Run:  python examples/prioritized_policies.py
"""

from repro.dl import AtomicConcept, ConceptAssertion, Individual, Not
from repro.four_dl import DefeasibleReasoner4, internal, material
from repro.harness import print_table

surgical = AtomicConcept("SurgicalTeam")
urgency = AtomicConcept("UrgencyTeam")
trainee = AtomicConcept("Trainee")
readers = AtomicConcept("ReadRecordsTeam")

john, ines, tomas = Individual("john"), Individual("ines"), Individual("tomas")

# Priority 0: legal requirements.  Priority 1: hospital policy.
# Priority 2: the (partly corrupted) staff-roster import.
STRATA = [
    (internal(surgical, Not(readers)), 0),
    (internal(urgency, readers), 0),
    (material(trainee, Not(readers)), 1),
    (ConceptAssertion(john, surgical), 1),
    (ConceptAssertion(ines, urgency), 1),
    (ConceptAssertion(tomas, trainee), 1),
    # the roster import disagrees with policy:
    (ConceptAssertion(john, urgency), 2),
    (ConceptAssertion(tomas, readers), 2),
]


def main() -> None:
    reasoner = DefeasibleReasoner4(STRATA)
    print("Stratified policy base (0 = legal, 1 = policy, 2 = import):")
    for axiom, priority in STRATA:
        print(f"  [{priority}] {axiom!r}")

    rows = []
    for member in (john, ines, tomas):
        verdict = reasoner.adjudicate(member, readers)
        rows.append(
            (
                member.name,
                str(verdict.value),
                str(verdict.preferred),
                verdict.conflict_stratum
                if verdict.conflict_stratum is not None
                else "-",
            )
        )
    print_table(
        ["staff", "four-valued status", "preferred reading", "conflict stratum"],
        rows,
        title="\nRecord access, adjudicated by priority:",
    )
    print(
        "\njohn's conflict comes from the import (stratum 2): the preferred"
        "\nreading follows policy and denies access, but the BOTH status"
        "\nkeeps the disagreement visible instead of silently deleting it."
    )


if __name__ == "__main__":
    main()
