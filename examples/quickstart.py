"""Quickstart: keep reasoning when your OWL DL ontology goes inconsistent.

Builds a small employment ontology with a conflicted individual, shows the
classical reasoner trivialising, then answers the same queries
paraconsistently with SHOIN(D)4.

Run:  python examples/quickstart.py
"""

from repro.dl import AtomicConcept, Individual, Reasoner
from repro.dl.parser import parse_kb
from repro.four_dl import Reasoner4, from_classical
from repro.harness import print_table

ONTOLOGY = """
# A tiny HR ontology with a contradiction about pat.
Employee subclassof Person
Contractor subclassof not Employee
pat : Employee
pat : Contractor
sam : Employee
"""


def main() -> None:
    kb = parse_kb(ONTOLOGY)
    print("Ontology:")
    print(ONTOLOGY)

    # --- Classical OWL DL reasoning: one contradiction poisons everything.
    classical = Reasoner(kb)
    print(f"classically consistent? {classical.is_consistent()}")
    zebra = AtomicConcept("Zebra")
    print(
        "classical entailment of the absurd 'sam : Zebra':",
        classical.is_instance(Individual("sam"), zebra),
    )

    # --- Four-valued reading: same axioms, inclusion read internally.
    kb4 = from_classical(kb)
    reasoner = Reasoner4(kb4)
    print(f"\nfour-valued satisfiable? {reasoner.is_satisfiable()}")

    concepts = [AtomicConcept(n) for n in ("Employee", "Contractor", "Person")]
    rows = []
    for name in ("pat", "sam"):
        individual = Individual(name)
        rows.append(
            [name]
            + [str(reasoner.assertion_value(individual, c)) for c in concepts]
            + [str(reasoner.assertion_value(individual, zebra))]
        )
    print_table(
        ["individual", "Employee", "Contractor", "Person", "Zebra"],
        rows,
        title="\nEntailed Belnap status per individual "
        "(t=true, f=false, TOP=contradictory, BOT=unknown):",
    )

    print("\nLocalised contradictions:", dict(reasoner.contradictory_facts()))
    print(
        "\nThe conflict about pat stays local: sam's facts and pat's "
        "personhood survive, and nothing absurd is entailed."
    )


if __name__ == "__main__":
    main()
