"""Paper Examples 3 and 5: exceptions via material inclusion.

The classical penguin ontology is unsatisfiable (penguins are birds with
wings, so they must fly; but they don't).  Rewriting the defeasible rule
as a *material* inclusion and the taxonomic rules as *internal*
inclusions makes the SHOIN(D)4 ontology satisfiable: tweety simply
becomes an exception.  The script also prints the Definition 5-7
transformation — the classical induced KB of Example 5 — and shows that
ordinary classical reasoning over it answers the four-valued queries.

Run:  python examples/penguin_exceptions.py
"""

from repro.dl import AtomicConcept, Individual, Reasoner
from repro.dl.parser import parse_kb4
from repro.dl.printer import render_axiom, render_kb4
from repro.four_dl import Reasoner4, collapse_to_classical, transform_kb
from repro.harness import print_table
from repro.workloads import penguin_taxonomy

PAPER_ONTOLOGY = """
# Example 3: |-> tolerates exceptions, < does not.
Bird and (hasWing some Wing) |-> Fly
Penguin < Bird
Penguin < hasWing some Wing
Penguin < not Fly
tweety : Bird
tweety : Penguin
w : Wing
hasWing(tweety, w)
"""


def example3_and_5() -> None:
    kb4 = parse_kb4(PAPER_ONTOLOGY)
    print("== SHOIN(D)4 ontology (paper Example 3) ==")
    print(render_kb4(kb4))

    print(
        "classical reading consistent?",
        Reasoner(collapse_to_classical(kb4)).is_consistent(),
    )
    reasoner = Reasoner4(kb4)
    print("four-valued satisfiable?", reasoner.is_satisfiable())

    tweety = Individual("tweety")
    fly = AtomicConcept("Fly")
    print("\nQueries (paper Example 5):")
    print("  Fly-(tweety) holds:", reasoner.evidence_against(tweety, fly))
    print("  Fly+(tweety) holds:", reasoner.evidence_for(tweety, fly))
    print("  entailed status of Fly(tweety):", reasoner.assertion_value(tweety, fly))

    print("\n== Classical induced KB (Definitions 5-7) ==")
    induced = transform_kb(kb4)
    for axiom in induced.axioms():
        print(" ", render_axiom(axiom))

    print("\nClassical tableau over the induced KB:")
    classical = Reasoner(induced)
    print("  consistent?", classical.is_consistent())
    print(
        "  Fly__neg(tweety):",
        classical.is_instance(tweety, AtomicConcept("Fly__neg")),
    )
    print(
        "  Fly__pos(tweety):",
        classical.is_instance(tweety, AtomicConcept("Fly__pos")),
    )


def scaled_taxonomy() -> None:
    print("\n== The same pattern over a taxonomy of flightless species ==")
    scenario = penguin_taxonomy(n_species=4, n_birds_per_species=2)
    reasoner = Reasoner4(scenario.kb4)
    fly = AtomicConcept("Fly")
    bird = AtomicConcept("Bird")
    rows = []
    for individual, concept in scenario.queries:
        if concept == fly:
            rows.append(
                (
                    individual.name,
                    str(reasoner.assertion_value(individual, bird)),
                    str(reasoner.assertion_value(individual, fly)),
                )
            )
    print_table(["bird", "Bird status", "Fly status"], rows)
    print(
        "every species is an exception to the flying rule; no bird is"
        " contradictory and the ontology never trivialises."
    )


def main() -> None:
    example3_and_5()
    scaled_taxonomy()


if __name__ == "__main__":
    main()
