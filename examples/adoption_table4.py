"""Paper Example 4 and Table 4: number restrictions with exceptions.

Single Smith adopts Kate: ``hasChild min 1`` makes Smith a parent, and
parents are *generally* (materially) married — but Smith isn't.  The
script answers the paper's queries, then regenerates Table 4 by
enumerating every four-valued model over {smith, kate} and projecting
each onto the four reported truth values.

Run:  python examples/adoption_table4.py
"""

from repro.dl import AtLeast, AtomicConcept, AtomicRole, Individual, Reasoner
from repro.four_dl import Reasoner4, collapse_to_classical
from repro.harness import TABLE4_EXPECTED, example4_kb4, print_table
from repro.semantics import enumerate_four_models, truth_patterns


def queries_and_exceptions() -> None:
    kb4 = example4_kb4()
    reasoner = Reasoner4(kb4)
    smith = Individual("smith")

    print("== Example 4: single Smith adopts Kate ==")
    print(
        "classical reading consistent?",
        Reasoner(collapse_to_classical(kb4)).is_consistent(),
    )
    print("four-valued satisfiable?", reasoner.is_satisfiable())
    print(
        "Parent(smith):",
        reasoner.assertion_value(smith, AtomicConcept("Parent")),
    )
    print(
        "Married(smith):",
        reasoner.assertion_value(smith, AtomicConcept("Married")),
    )
    print(
        "Smith is an exception to 'parents are married', not a "
        "contradiction:", reasoner.contradictory_facts() == {},
    )


def regenerate_table4() -> None:
    kb4 = example4_kb4()
    has_child = AtomicRole("hasChild")
    smith, kate = Individual("smith"), Individual("kate")

    models = list(enumerate_four_models(kb4, irreflexive_roles=[has_child]))
    queries = [
        ("hasChild(s,k)", (has_child, smith, kate)),
        (">=1.hasChild(s)", (AtLeast(1, has_child), smith)),
        ("Parent(s)", (AtomicConcept("Parent"), smith)),
        ("Married(s)", (AtomicConcept("Married"), smith)),
    ]
    patterns = truth_patterns(models, queries)

    print(f"\n== Table 4 regenerated from {len(models)} enumerated models ==")
    rows = [
        (f"M{index + 1}", *pattern)
        for index, pattern in enumerate(sorted(patterns))
    ]
    print_table(
        ["model", "hasChild(s,k)", ">=1.hasChild(s)", "Parent(s)", "Married(s)"],
        rows,
    )
    print(
        "matches the paper's nine patterns M1-M9 exactly:",
        patterns == TABLE4_EXPECTED,
    )


def main() -> None:
    queries_and_exceptions()
    regenerate_table4()


if __name__ == "__main__":
    main()
