"""Unit tests for Belnap's FOUR: values, orders, connectives."""

import pytest

from repro.fourvalued import ALL_VALUES, DESIGNATED, FourValue, from_classical, from_evidence
from repro.fourvalued.truth import big_conj, big_disj

T, F, TOP, BOT = FourValue.TRUE, FourValue.FALSE, FourValue.BOTH, FourValue.NEITHER


class TestValueBasics:
    def test_four_distinct_values(self):
        assert len(set(ALL_VALUES)) == 4

    def test_evidence_bits(self):
        assert T.has_truth and not T.has_falsity
        assert F.has_falsity and not F.has_truth
        assert TOP.has_truth and TOP.has_falsity
        assert not BOT.has_truth and not BOT.has_falsity

    def test_designated_set_is_t_and_top(self):
        assert DESIGNATED == {T, TOP}
        assert T.is_designated and TOP.is_designated
        assert not F.is_designated and not BOT.is_designated

    def test_classical_embedding(self):
        assert from_classical(True) is T
        assert from_classical(False) is F
        assert T.is_classical and F.is_classical
        assert not TOP.is_classical and not BOT.is_classical

    def test_from_evidence(self):
        assert from_evidence(True, False) is T
        assert from_evidence(False, True) is F
        assert from_evidence(True, True) is TOP
        assert from_evidence(False, False) is BOT

    def test_str_symbols(self):
        assert str(T) == "t" and str(F) == "f"
        assert str(TOP) == "TOP" and str(BOT) == "BOT"


class TestNegation:
    def test_negation_swaps_t_f(self):
        assert ~T is F
        assert ~F is T

    def test_negation_fixes_top_and_bottom(self):
        assert ~TOP is TOP
        assert ~BOT is BOT

    @pytest.mark.parametrize("value", ALL_VALUES)
    def test_double_negation(self, value):
        assert ~~value is value


class TestConjunctionDisjunction:
    def test_classical_fragment(self):
        assert (T & T) is T and (T & F) is F and (F & F) is F
        assert (T | F) is T and (F | F) is F

    def test_top_bottom_meet(self):
        # TOP and BOT meet to f in the truth order: conj of (t-evidence
        # only present in one, f-evidence from TOP) has falsity, no truth.
        assert (TOP & BOT) is F
        assert (TOP | BOT) is T

    def test_conj_with_top(self):
        assert (T & TOP) is TOP
        assert (F & TOP) is F
        assert (BOT & TOP) is F

    def test_disj_with_top(self):
        assert (T | TOP) is T
        assert (F | TOP) is TOP
        assert (BOT | TOP) is T

    @pytest.mark.parametrize("a", ALL_VALUES)
    @pytest.mark.parametrize("b", ALL_VALUES)
    def test_commutativity(self, a, b):
        assert (a & b) is (b & a)
        assert (a | b) is (b | a)

    @pytest.mark.parametrize("a", ALL_VALUES)
    @pytest.mark.parametrize("b", ALL_VALUES)
    def test_de_morgan(self, a, b):
        assert ~(a & b) is (~a | ~b)
        assert ~(a | b) is (~a & ~b)

    @pytest.mark.parametrize("a", ALL_VALUES)
    def test_idempotence(self, a):
        assert (a & a) is a
        assert (a | a) is a

    def test_big_conj_disj(self):
        assert big_conj([]) is T
        assert big_disj([]) is F
        assert big_conj([T, TOP, T]) is TOP
        assert big_disj([F, BOT, F]) is BOT


class TestImplications:
    def test_material_definition(self):
        for a in ALL_VALUES:
            for b in ALL_VALUES:
                assert a.material_implies(b) is (~a | b)

    def test_material_tolerates_contradictory_antecedent(self):
        # phi = TOP, psi = f: material implication still designated.
        assert TOP.material_implies(F).is_designated

    def test_internal_designated_antecedent_passes_consequent(self):
        for b in ALL_VALUES:
            assert T.internal_implies(b) is b
            assert TOP.internal_implies(b) is b

    def test_internal_undesignated_antecedent_gives_t(self):
        for b in ALL_VALUES:
            assert F.internal_implies(b) is T
            assert BOT.internal_implies(b) is T

    def test_strong_definition(self):
        for a in ALL_VALUES:
            for b in ALL_VALUES:
                expected = a.internal_implies(b) & (~b).internal_implies(~a)
                assert a.strong_implies(b) is expected

    def test_strong_rejects_exceptions(self):
        # Strong implication from TOP to f is not designated.
        assert not TOP.strong_implies(F).is_designated

    def test_strong_lack_of_information_propagates_back(self):
        # Antecedent BOT: the forward internal implication is t, but the
        # contrapositive (~psi > ~phi) can undercut designation when the
        # consequent carries falsity evidence.
        assert BOT.strong_implies(BOT).is_designated
        assert not BOT.strong_implies(F).is_designated
        assert BOT.strong_implies(T).is_designated

    def test_equivalence_reflexive(self):
        for a in ALL_VALUES:
            assert a.equivalent(a).is_designated


class TestOrders:
    def test_truth_order_extremes(self):
        for value in ALL_VALUES:
            assert F.truth_leq(value)
            assert value.truth_leq(T)

    def test_truth_order_top_bottom_incomparable(self):
        assert not TOP.truth_leq(BOT)
        assert not BOT.truth_leq(TOP)

    def test_knowledge_order_extremes(self):
        for value in ALL_VALUES:
            assert BOT.knowledge_leq(value)
            assert value.knowledge_leq(TOP)

    def test_knowledge_order_t_f_incomparable(self):
        assert not T.knowledge_leq(F)
        assert not F.knowledge_leq(T)

    def test_consensus_and_gullibility(self):
        assert T.consensus(F) is BOT
        assert T.gullibility(F) is TOP
        assert T.consensus(TOP) is T
        assert BOT.gullibility(F) is F

    @pytest.mark.parametrize("a", ALL_VALUES)
    @pytest.mark.parametrize("b", ALL_VALUES)
    def test_meet_join_are_bounds(self, a, b):
        meet, join = a & b, a | b
        assert meet.truth_leq(a) and meet.truth_leq(b)
        assert a.truth_leq(join) and b.truth_leq(join)
