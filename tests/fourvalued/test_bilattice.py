"""Unit and property tests for evidence pairs (paper Definition 1)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fourvalued import BilatticePair, FourValue, bottom, top

DOMAIN = frozenset({"a", "b", "c"})

subsets = st.frozensets(st.sampled_from(sorted(DOMAIN)))
pairs = st.builds(BilatticePair, subsets, subsets)


class TestProjections:
    def test_definition1(self):
        pair = BilatticePair.of({"a"}, {"b"})
        assert pair.proj_positive() == frozenset({"a"})
        assert pair.proj_negative() == frozenset({"b"})

    def test_of_accepts_iterables(self):
        pair = BilatticePair.of(["a", "a"], ())
        assert pair.positive == frozenset({"a"})
        assert pair.negative == frozenset()

    def test_classical_embedding(self):
        pair = BilatticePair.classical({"a"}, DOMAIN)
        assert pair.positive == frozenset({"a"})
        assert pair.negative == frozenset({"b", "c"})
        assert pair.is_classical_over(DOMAIN)

    def test_overlap_is_not_classical(self):
        pair = BilatticePair.of({"a"}, {"a", "b", "c"})
        assert not pair.is_classical_over(DOMAIN)

    def test_gap_is_not_classical(self):
        pair = BilatticePair.of({"a"}, {"b"})
        assert not pair.is_classical_over(DOMAIN)


class TestOperations:
    def test_negation_swaps(self):
        pair = BilatticePair.of({"a"}, {"b"})
        assert ~pair == BilatticePair.of({"b"}, {"a"})

    def test_meet_join_truth(self):
        left = BilatticePair.of({"a", "b"}, {"c"})
        right = BilatticePair.of({"b"}, {"a"})
        assert (left & right) == BilatticePair.of({"b"}, {"a", "c"})
        assert (left | right) == BilatticePair.of({"a", "b"}, set())

    def test_top_bottom(self):
        assert top(DOMAIN) == BilatticePair(DOMAIN, frozenset())
        assert bottom(DOMAIN) == BilatticePair(frozenset(), DOMAIN)

    def test_value_of(self):
        pair = BilatticePair.of({"a", "b"}, {"b"})
        assert pair.value_of("a") is FourValue.TRUE
        assert pair.value_of("b") is FourValue.BOTH
        assert pair.value_of("c") is FourValue.NEITHER
        assert (~pair).value_of("a") is FourValue.FALSE


class TestLatticeLaws:
    @given(pairs, pairs)
    @settings(max_examples=80, deadline=None)
    def test_de_morgan(self, left, right):
        assert ~(left & right) == (~left | ~right)
        assert ~(left | right) == (~left & ~right)

    @given(pairs)
    @settings(max_examples=80, deadline=None)
    def test_double_negation(self, pair):
        assert ~~pair == pair

    @given(pairs, pairs)
    @settings(max_examples=80, deadline=None)
    def test_meet_join_are_truth_bounds(self, left, right):
        meet, join = left & right, left | right
        assert meet.truth_leq(left) and meet.truth_leq(right)
        assert left.truth_leq(join) and right.truth_leq(join)

    @given(pairs, pairs)
    @settings(max_examples=80, deadline=None)
    def test_knowledge_bounds(self, left, right):
        assert left.meet_k(right).knowledge_leq(left)
        assert left.knowledge_leq(left.join_k(right))

    @given(pairs, pairs, pairs)
    @settings(max_examples=60, deadline=None)
    def test_associativity(self, a, b, c):
        assert (a & b) & c == a & (b & c)
        assert (a | b) | c == a | (b | c)

    @given(pairs, pairs)
    @settings(max_examples=60, deadline=None)
    def test_absorption(self, a, b):
        assert a & (a | b) == a
        assert a | (a & b) == a

    @given(pairs)
    @settings(max_examples=40, deadline=None)
    def test_units(self, pair):
        # Proposition 3 at the bilattice level.
        assert pair & top(DOMAIN | pair.positive | pair.negative) == pair
        assert pair | bottom(DOMAIN | pair.positive | pair.negative) == pair

    @given(pairs)
    @settings(max_examples=40, deadline=None)
    def test_pointwise_value_matches_sets(self, pair):
        for element in sorted(DOMAIN):
            value = pair.value_of(element)
            assert value.has_truth == (element in pair.positive)
            assert value.has_falsity == (element in pair.negative)
