"""Unit tests for the propositional four-valued engine."""

import pytest

from repro.fourvalued import (
    And,
    Atom,
    FourValue,
    InternalImplies,
    MaterialImplies,
    Not,
    Or,
    StrongImplies,
    entails,
    equivalent,
    multi_entails,
    tautology,
    valuations,
)

T, F, TOP, BOT = (
    FourValue.TRUE,
    FourValue.FALSE,
    FourValue.BOTH,
    FourValue.NEITHER,
)
p, q = Atom("p"), Atom("q")


class TestEvaluation:
    def test_atom(self):
        assert p.evaluate({"p": TOP}) is TOP

    def test_connectives(self):
        valuation = {"p": T, "q": TOP}
        assert Not(p).evaluate(valuation) is F
        assert And(p, q).evaluate(valuation) is TOP
        assert Or(p, q).evaluate(valuation) is T

    def test_implications_match_value_methods(self):
        for a in (T, F, TOP, BOT):
            for b in (T, F, TOP, BOT):
                valuation = {"p": a, "q": b}
                assert MaterialImplies(p, q).evaluate(valuation) is a.material_implies(b)
                assert InternalImplies(p, q).evaluate(valuation) is a.internal_implies(b)
                assert StrongImplies(p, q).evaluate(valuation) is a.strong_implies(b)

    def test_atoms_collection(self):
        formula = (p & q) | ~p
        assert formula.atoms() == frozenset({"p", "q"})

    def test_missing_atom_raises(self):
        with pytest.raises(KeyError):
            q.evaluate({"p": T})

    def test_repr_readable(self):
        assert repr(p & q) == "(p & q)"
        assert repr(p.material(q)) == "(p |-> q)"
        assert repr(p.internal(q)) == "(p > q)"
        assert repr(p.strong(q)) == "(p -> q)"


class TestValuations:
    def test_counts(self):
        assert sum(1 for _ in valuations([])) == 1
        assert sum(1 for _ in valuations(["p"])) == 4
        assert sum(1 for _ in valuations(["p", "q"])) == 16

    def test_deduplicates_names(self):
        assert sum(1 for _ in valuations(["p", "p"])) == 4

    def test_each_valuation_total(self):
        for valuation in valuations(["p", "q"]):
            assert set(valuation) == {"p", "q"}


class TestConsequence:
    def test_empty_premises_is_tautology(self):
        assert entails([], p.internal(p))
        assert tautology(p.internal(p))

    def test_monotonicity(self):
        assert entails([p], p)
        assert entails([p, q], p)

    def test_multi_entails_disjunctive_reading(self):
        # p |= p, q but p does not entail q alone.
        assert multi_entails([p], [p, q])
        assert not entails([p], q)

    def test_multi_entails_empty_conclusions(self):
        # No conclusion can be designated: holds only if premises can't be.
        assert not multi_entails([p], [])
        assert multi_entails([p, ~p, And(p, Not(p)).internal(q)], [q])

    def test_equivalent_is_stronger_than_coentailment(self):
        # p and p|p are equivalent...
        assert equivalent(p, Or(p, p))
        # ...but p |-> p and t-ish truths are co-entailed yet differ in value.
        left = p.material(p)
        right = p.internal(p)
        assert entails([left], right) or True  # co-entailment may hold
        assert not equivalent(left, right)
