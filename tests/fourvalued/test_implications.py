"""Propositions 1-2 and the implication counterexamples (paper Section 2.2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fourvalued import (
    Atom,
    FourValue,
    entails,
    equivalent,
    multi_entails,
    tautology,
    valuations,
)

p, q, r = Atom("p"), Atom("q"), Atom("r")


class TestProposition1:
    """Internal implication obeys the deduction theorem and modus ponens."""

    def test_deduction_theorem_forward(self):
        # Gamma, psi |=4 phi implies Gamma |=4 psi > phi.
        assert entails([p, q], q)
        assert entails([p], q.internal(q))

    def test_deduction_theorem_both_directions_small(self):
        # For a battery of sequents: Gamma, psi |= phi iff Gamma |= psi > phi.
        gammas = [[], [p], [~p], [p, ~p]]
        for gamma in gammas:
            for psi in (p, q, ~q):
                for phi in (p, q, p & q, p | q):
                    left = entails(list(gamma) + [psi], phi)
                    right = entails(gamma, psi.internal(phi))
                    assert left == right, (gamma, psi, phi)

    def test_modus_ponens(self):
        # If Gamma |= psi and Gamma |= psi > phi then Gamma |= phi.
        gamma = [p, p.internal(q)]
        assert entails(gamma, p)
        assert entails(gamma, p.internal(q))
        assert entails(gamma, q)

    def test_multi_conclusion_form(self):
        # Gamma, psi |=4 phi, Delta iff Gamma |=4 psi > phi, Delta.
        assert multi_entails([p, q], [r, q]) == multi_entails(
            [p], [q.internal(r), q]
        )


class TestImplicationCounterexamples:
    """The paper's two counterexamples separating the implications."""

    def test_material_fails_modus_ponens(self):
        # {psi, ~psi, ~phi} |=4 psi |-> phi, but not |=4 phi.
        premises = [p, ~p, ~q]
        assert entails(premises, p.material(q))
        assert not entails(premises, q)

    def test_strong_fails_deduction_theorem(self):
        # {psi, phi, ~phi} |=4 phi, but {phi, ~phi} does not entail
        # psi -> phi.
        assert entails([p, q, ~q], q)
        assert not entails([q, ~q], p.strong(q))

    def test_internal_not_contraposable(self):
        # q > p designated does not make ~p > ~q designated: find a
        # valuation separating them.
        separated = False
        for valuation in valuations(["p", "q"]):
            forward = q.internal(p).evaluate(valuation).is_designated
            contra = (~p).internal(~q).evaluate(valuation).is_designated
            if forward and not contra:
                separated = True
        assert separated

    def test_strong_is_contraposable(self):
        for valuation in valuations(["p", "q"]):
            forward = p.strong(q).evaluate(valuation)
            contra = (~q).strong(~p).evaluate(valuation)
            assert forward.is_designated == contra.is_designated


class TestProposition2:
    """Strong equivalence is a congruence: substitution preserves it."""

    def test_congruence_under_negation(self):
        assert entails([p.iff(q)], (~p).iff(~q))

    def test_congruence_under_conjunction(self):
        assert entails([p.iff(q)], (p & r).iff(q & r))

    def test_congruence_under_disjunction(self):
        assert entails([p.iff(q)], (p | r).iff(q | r))

    def test_congruence_under_nesting(self):
        context = lambda x: ~(x & r) | (x & ~r)
        assert entails([p.iff(q)], context(p).iff(context(q)))

    def test_material_equivalence_is_not_congruent(self):
        # Material biconditional does not support substitution: exhibit
        # the failure for the negation context.
        mat_iff = (p.material(q)) & (q.material(p))
        assert not entails([mat_iff], (~p).iff(~q))


class TestConsequenceBasics:
    def test_no_classical_tautologies_of_excluded_middle(self):
        # p or ~p is NOT a four-valued tautology (p = BOT undercuts it).
        assert not tautology(p | ~p)

    def test_no_explosion(self):
        # p, ~p does not entail arbitrary q: paraconsistency at the
        # propositional core.
        assert not entails([p, ~p], q)

    def test_conjunction_elimination(self):
        assert entails([p & q], p)
        assert entails([p & q], q)

    def test_disjunction_introduction(self):
        assert entails([p], p | q)

    def test_entailment_reflexive_monotone(self):
        assert entails([p], p)
        assert entails([p, q], p)


@st.composite
def formulas(draw, depth=2):
    if depth == 0:
        return draw(st.sampled_from([p, q, r]))
    kind = draw(st.sampled_from(["atom", "not", "and", "or", "mat", "int", "strong"]))
    if kind == "atom":
        return draw(st.sampled_from([p, q, r]))
    left = draw(formulas(depth=depth - 1))
    if kind == "not":
        return ~left
    right = draw(formulas(depth=depth - 1))
    if kind == "and":
        return left & right
    if kind == "or":
        return left | right
    if kind == "mat":
        return left.material(right)
    if kind == "int":
        return left.internal(right)
    return left.strong(right)


class TestPropertyBased:
    @given(formulas())
    @settings(max_examples=60, deadline=None)
    def test_double_negation_equivalence(self, formula):
        assert equivalent(formula, ~~formula)

    @given(formulas(), formulas())
    @settings(max_examples=60, deadline=None)
    def test_de_morgan_equivalence(self, left, right):
        assert equivalent(~(left & right), ~left | ~right)
        assert equivalent(~(left | right), ~left & ~right)

    @given(formulas(), formulas())
    @settings(max_examples=60, deadline=None)
    def test_entailment_cut(self, left, right):
        # If |= left and left |= right then |= right.
        if tautology(left) and entails([left], right):
            assert tautology(right)

    @given(formulas())
    @settings(max_examples=40, deadline=None)
    def test_material_implication_is_definable(self, formula):
        assert equivalent(formula.material(q), ~formula | q)
