"""The propositional four-valued -> classical reduction (refs [15]-[17])."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fourvalued import Atom, entails, tautology
from repro.fourvalued.propositional import valuations
from repro.fourvalued.reduction import (
    CAnd,
    CAtom,
    CFalse,
    CNot,
    COr,
    CTrue,
    dpll,
    entails_by_reduction,
    neg_encode,
    pos_encode,
    satisfiable_by_reduction,
    tautology_by_reduction,
    to_cnf,
)

p, q, r = Atom("p"), Atom("q"), Atom("r")


def _rand_formula(rng: random.Random, depth: int = 2):
    if depth == 0 or rng.random() < 0.3:
        return rng.choice([p, q, r])
    kind = rng.choice(["not", "and", "or", "mat", "int", "strong"])
    left = _rand_formula(rng, depth - 1)
    if kind == "not":
        return ~left
    right = _rand_formula(rng, depth - 1)
    return {
        "and": left & right,
        "or": left | right,
        "mat": left.material(right),
        "int": left.internal(right),
        "strong": left.strong(right),
    }[kind]


class TestEncoding:
    def test_atom_split(self):
        assert pos_encode(p) == CAtom("p+")
        assert neg_encode(p) == CAtom("p-")

    def test_negation_swaps(self):
        assert pos_encode(~p) == CAtom("p-")
        assert neg_encode(~p) == CAtom("p+")

    def test_de_morgan_shape(self):
        assert pos_encode(p & q) == CAnd(CAtom("p+"), CAtom("q+"))
        assert neg_encode(p & q) == COr(CAtom("p-"), CAtom("q-"))

    def test_encoding_matches_truth_tables_pointwise(self):
        """pos_encode is designated-ness: check all 16 valuations of two
        atoms for every connective."""
        from repro.fourvalued import FourValue

        formulas = [
            p & q, p | q, ~p,
            p.material(q), p.internal(q), p.strong(q),
        ]
        for formula in formulas:
            for valuation in valuations(["p", "q"]):
                classical = {}
                for name, value in valuation.items():
                    classical[name + "+"] = value.has_truth
                    classical[name + "-"] = value.has_falsity
                expected_pos = formula.evaluate(valuation).has_truth
                expected_neg = formula.evaluate(valuation).has_falsity
                assert _eval_classical(pos_encode(formula), classical) == expected_pos
                assert _eval_classical(neg_encode(formula), classical) == expected_neg


def _eval_classical(formula, assignment):
    if isinstance(formula, CAtom):
        return assignment[formula.name]
    if isinstance(formula, CNot):
        return not _eval_classical(formula.operand, assignment)
    if isinstance(formula, CAnd):
        return _eval_classical(formula.left, assignment) and _eval_classical(
            formula.right, assignment
        )
    if isinstance(formula, COr):
        return _eval_classical(formula.left, assignment) or _eval_classical(
            formula.right, assignment
        )
    if isinstance(formula, CTrue):
        return True
    if isinstance(formula, CFalse):
        return False
    raise TypeError(formula)


class TestDpll:
    def test_empty_cnf_satisfiable(self):
        assert dpll([]) == {}

    def test_unit_propagation(self):
        clauses = to_cnf([CAtom("x"), COr(CNot(CAtom("x")), CAtom("y"))])
        model = dpll(clauses)
        assert model == {"x": True, "y": True}

    def test_unsatisfiable(self):
        clauses = to_cnf([CAtom("x"), CNot(CAtom("x"))])
        assert dpll(clauses) is None

    def test_splitting(self):
        clauses = to_cnf(
            [COr(CAtom("x"), CAtom("y")), COr(CNot(CAtom("x")), CNot(CAtom("y")))]
        )
        model = dpll(clauses)
        assert model is not None
        assert model["x"] != model["y"]

    def test_model_satisfies_clauses(self):
        rng = random.Random(3)
        atoms = [CAtom(f"v{i}") for i in range(5)]
        formulas = []
        for _ in range(8):
            lits = [
                a if rng.random() < 0.5 else CNot(a)
                for a in rng.sample(atoms, 3)
            ]
            formulas.append(COr(COr(lits[0], lits[1]), lits[2]))
        clauses = to_cnf(formulas)
        model = dpll(clauses)
        if model is not None:
            for clause in clauses:
                assert any(
                    model.get(name, False) is value for (name, value) in clause
                )


class TestReductionAgreesWithTruthTables:
    def test_paraconsistency(self):
        assert not entails_by_reduction([p, ~p], q)
        assert satisfiable_by_reduction([p, ~p])

    def test_modus_ponens_internal(self):
        assert entails_by_reduction([p, p.internal(q)], q)

    def test_material_no_detachment(self):
        assert not entails_by_reduction([p, ~p, ~q, p.material(q)], q)

    def test_excluded_middle_fails(self):
        assert not tautology_by_reduction(p | ~p)
        assert tautology_by_reduction(p.internal(p))

    @given(st.integers(0, 10**6))
    @settings(max_examples=150, deadline=None)
    def test_random_sequents_agree(self, seed):
        rng = random.Random(seed)
        premises = [_rand_formula(rng) for _ in range(rng.randint(0, 3))]
        conclusion = _rand_formula(rng)
        assert entails_by_reduction(premises, conclusion) == entails(
            premises, conclusion
        )

    @given(st.integers(0, 10**6))
    @settings(max_examples=80, deadline=None)
    def test_tautology_agreement(self, seed):
        rng = random.Random(seed)
        formula = _rand_formula(rng, depth=3)
        assert tautology_by_reduction(formula) == tautology(formula)
