"""Four-valued evaluator: Table 2 concept semantics and Table 3 axioms."""

import pytest

from repro.dl import (
    And,
    AtLeast,
    AtMost,
    AtomicConcept,
    AtomicRole,
    BOTTOM,
    ConceptAssertion,
    DataValue,
    DifferentIndividuals,
    Exists,
    Forall,
    Individual,
    Not,
    OneOf,
    Or,
    RoleAssertion,
    SameIndividual,
    TOP,
)
from repro.four_dl import (
    KnowledgeBase4,
    Transitivity4,
    internal,
    material,
    strong,
)
from repro.four_dl.axioms4 import RoleInclusion4, InclusionKind
from repro.fourvalued import BilatticePair, FourValue
from repro.semantics import FourInterpretation, RolePair

A, B = AtomicConcept("A"), AtomicConcept("B")
r = AtomicRole("r")
a, b = Individual("a"), Individual("b")


def pair(p, n):
    return BilatticePair(frozenset(p), frozenset(n))


@pytest.fixture
def interp():
    return FourInterpretation(
        domain=frozenset({"x", "y"}),
        concept_ext={
            A: pair({"x"}, {"x", "y"}),
            B: pair({"x", "y"}, set()),
        },
        role_ext={
            r: RolePair(frozenset({("x", "y")}), frozenset({("x", "x"), ("x", "y")}))
        },
        individual_map={a: "x", b: "y"},
    )


class TestConceptExtensions:
    def test_negation_swaps(self, interp):
        assert interp.extension(Not(A)) == pair({"x", "y"}, {"x"})

    def test_boolean(self, interp):
        assert interp.extension(A & B) == pair({"x"}, {"x", "y"})
        assert interp.extension(A | B) == pair({"x", "y"}, set())

    def test_top_bottom(self, interp):
        assert interp.extension(TOP) == pair({"x", "y"}, set())
        assert interp.extension(BOTTOM) == pair(set(), {"x", "y"})

    def test_oneof_negative_is_empty(self, interp):
        assert interp.extension(OneOf.of("a")) == pair({"x"}, set())

    def test_exists(self, interp):
        # positive: x has positive r-edge to y with y in proj+(B).
        # negative: all positive successors in proj-(B)={}: only y (vacuous).
        assert interp.extension(Exists(r, B)) == pair({"x"}, {"y"})

    def test_forall(self, interp):
        assert interp.extension(Forall(r, B)) == pair({"x", "y"}, set())
        # Forall r.A: x's successor y not in proj+(A) -> x out; negative:
        # y in proj-(A) -> x in negative part.
        assert interp.extension(Forall(r, A)) == pair({"y"}, {"x"})

    def test_atleast(self, interp):
        # positive counts proj+ successors; negative counts non-negative.
        assert interp.extension(AtLeast(1, r)) == pair({"x"}, {"x"})
        # y has two not-negatively-excluded successors, so only x lands in
        # the negative part of ">= 2 r".
        assert interp.extension(AtLeast(2, r)) == pair(set(), {"x"})

    def test_atmost(self, interp):
        assert interp.extension(AtMost(0, r)) == pair({"x"}, {"x"})
        assert interp.extension(AtMost(2, r)) == pair({"x", "y"}, set())

    def test_inverse_role_pair(self, interp):
        flipped = interp.role_pair(r.inverse())
        assert flipped.positive == frozenset({("y", "x")})
        assert flipped.negative == frozenset({("x", "x"), ("y", "x")})


class TestTruthValues:
    def test_concept_value(self, interp):
        assert interp.concept_value(A, a) is FourValue.BOTH
        assert interp.concept_value(A, b) is FourValue.FALSE
        assert interp.concept_value(B, a) is FourValue.TRUE
        assert interp.concept_value(AtomicConcept("C"), a) is FourValue.NEITHER

    def test_role_value(self, interp):
        assert interp.role_value(r, a, b) is FourValue.BOTH
        assert interp.role_value(r, a, a) is FourValue.FALSE
        assert interp.role_value(r, b, a) is FourValue.NEITHER


class TestAxiomSatisfaction:
    def test_internal(self, interp):
        assert interp.satisfies(internal(A, B))
        assert not interp.satisfies(internal(B, A))

    def test_material(self, interp):
        # domain minus proj-(A) = {} -> trivially material-included in B.
        assert interp.satisfies(material(A, B))
        # domain minus proj-(B) = {x,y} must be inside proj+(A)={x}.
        assert not interp.satisfies(material(B, A))

    def test_strong(self, interp):
        # strong A->B: positive ok; proj-(B)={} subset of proj-(A) ok.
        assert interp.satisfies(strong(A, B))
        assert not interp.satisfies(strong(B, A))

    def test_role_inclusions(self, interp):
        assert interp.satisfies(
            RoleInclusion4(r, r, InclusionKind.INTERNAL)
        )
        # material r |-> r: all pairs minus proj-(r) must be in proj+(r);
        # (y,x) is in neither -> fails.
        assert not interp.satisfies(
            RoleInclusion4(r, r, InclusionKind.MATERIAL)
        )

    def test_transitivity4_checks_positive_part(self):
        interp = FourInterpretation(
            domain=frozenset({"x", "y", "z"}),
            role_ext={
                r: RolePair(
                    frozenset({("x", "y"), ("y", "z")}), frozenset()
                )
            },
        )
        assert not interp.satisfies(Transitivity4(r))
        closed = FourInterpretation(
            domain=frozenset({"x", "y", "z"}),
            role_ext={
                r: RolePair(
                    frozenset({("x", "y"), ("y", "z"), ("x", "z")}),
                    frozenset({("z", "z")}),
                )
            },
        )
        assert closed.satisfies(Transitivity4(r))

    def test_assertions(self, interp):
        assert interp.satisfies(ConceptAssertion(a, A))
        assert interp.satisfies(ConceptAssertion(a, Not(A)))
        assert not interp.satisfies(ConceptAssertion(b, A))
        assert interp.satisfies(ConceptAssertion(b, Not(A)))
        assert interp.satisfies(RoleAssertion(r, a, b))
        assert not interp.satisfies(RoleAssertion(r, b, a))

    def test_equality(self, interp):
        assert not interp.satisfies(SameIndividual(a, b))
        assert interp.satisfies(DifferentIndividuals(a, b))

    def test_is_model(self, interp):
        kb4 = KnowledgeBase4().add(
            internal(A, B), ConceptAssertion(a, A), ConceptAssertion(a, Not(A))
        )
        assert interp.is_model(kb4)
        kb4.add(ConceptAssertion(b, A))
        assert not interp.is_model(kb4)


class TestStructuralProperties:
    def test_is_classical_detects_gaps_and_gluts(self, interp):
        assert not interp.is_classical()
        classical = FourInterpretation(
            domain=frozenset({"x", "y"}),
            concept_ext={A: pair({"x"}, {"y"})},
            role_ext={
                r: RolePair(
                    frozenset({("x", "y")}),
                    frozenset({("x", "x"), ("y", "x"), ("y", "y")}),
                )
            },
        )
        assert classical.is_classical()

    def test_product_form(self):
        interp = FourInterpretation(
            domain=frozenset({"x", "y"}),
            role_ext={
                r: RolePair(
                    frozenset({("x", "x"), ("x", "y")}),
                    frozenset({("x", "y"), ("y", "x")}),
                )
            },
        )
        # positive {x} x {x,y} is a product; negative is not.
        assert not interp.is_product_form(r)
        interp2 = FourInterpretation(
            domain=frozenset({"x", "y"}),
            role_ext={
                r: RolePair(
                    frozenset({("x", "x"), ("x", "y")}), frozenset()
                )
            },
        )
        assert interp2.is_product_form(r)
