"""Tests for exhaustive classical and four-valued model enumeration."""

import pytest

from repro.dl import (
    AtomicConcept,
    AtomicRole,
    ConceptAssertion,
    ConceptInclusion,
    DataAssertion,
    DataValue,
    DatatypeRole,
    Individual,
    KnowledgeBase,
    Not,
    RoleAssertion,
    UnsupportedFeature,
)
from repro.four_dl import KnowledgeBase4, internal
from repro.semantics import (
    classical_satisfiable_by_enumeration,
    enumerate_classical_models,
    enumerate_four_models,
    four_satisfiable_by_enumeration,
    truth_patterns,
)

A, B = AtomicConcept("A"), AtomicConcept("B")
r = AtomicRole("r")
a, b = Individual("a"), Individual("b")


class TestClassicalEnumeration:
    def test_empty_kb_has_models(self):
        models = list(enumerate_classical_models(KnowledgeBase()))
        assert models  # single anonymous element, free extensions

    def test_model_counts_single_atom(self):
        kb = KnowledgeBase().add(ConceptAssertion(a, A))
        models = list(enumerate_classical_models(kb))
        # Domain {a}; A must contain a (1 choice): 1 model.
        assert len(models) == 1

    def test_model_counts_two_concepts(self):
        kb = KnowledgeBase().add(ConceptAssertion(a, A))
        kb.add(ConceptInclusion(A, B))
        models = list(enumerate_classical_models(kb))
        # A={a} forced, B must contain a: 1 model.
        assert len(models) == 1

    def test_unsatisfiable_has_no_models(self):
        kb = KnowledgeBase().add(
            ConceptAssertion(a, A), ConceptAssertion(a, Not(A))
        )
        assert list(enumerate_classical_models(kb)) == []
        assert not classical_satisfiable_by_enumeration(kb)

    def test_every_yielded_interpretation_is_model(self):
        kb = KnowledgeBase().add(
            ConceptInclusion(A, B),
            RoleAssertion(r, a, b),
        )
        models = list(enumerate_classical_models(kb))
        assert models
        assert all(m.is_model(kb) for m in models)

    def test_extra_elements_extend_domain(self):
        kb = KnowledgeBase().add(ConceptAssertion(a, A))
        model = next(enumerate_classical_models(kb, extra_elements=2))
        assert len(model.domain) == 3

    def test_enumerate_maps_allows_merging(self):
        from repro.dl import SameIndividual

        kb = KnowledgeBase().add(
            SameIndividual(a, b), ConceptAssertion(a, A)
        )
        # Identity maps cannot satisfy a = b; map enumeration can.
        assert list(enumerate_classical_models(kb)) == []
        models = list(enumerate_classical_models(kb, enumerate_maps=True))
        assert models
        assert all(m.individual_map[a] == m.individual_map[b] for m in models)

    def test_datatype_rejected(self):
        kb = KnowledgeBase().add(
            DataAssertion(DatatypeRole("u"), a, DataValue.of(1))
        )
        with pytest.raises(UnsupportedFeature):
            list(enumerate_classical_models(kb))


class TestFourEnumeration:
    def test_contradiction_still_has_models(self):
        kb4 = KnowledgeBase4().add(
            ConceptAssertion(a, A), ConceptAssertion(a, Not(A))
        )
        models = list(enumerate_four_models(kb4))
        assert models
        assert all(m.is_model(kb4) for m in models)
        assert four_satisfiable_by_enumeration(kb4)

    def test_model_count_single_assertion(self):
        kb4 = KnowledgeBase4().add(ConceptAssertion(a, A))
        # Domain {a}: P must contain a (1 way), N free (2 ways).
        assert len(list(enumerate_four_models(kb4))) == 2

    def test_internal_inclusion_constrains(self):
        kb4 = KnowledgeBase4().add(internal(A, B), ConceptAssertion(a, A))
        models = list(enumerate_four_models(kb4))
        # P_A={a} forced; P_B must contain a; N_A, N_B free: 2*2 = 4.
        assert len(models) == 4

    def test_irreflexive_restriction(self):
        kb4 = KnowledgeBase4().add(RoleAssertion(r, a, b))
        unrestricted = list(enumerate_four_models(kb4))
        restricted = list(enumerate_four_models(kb4, irreflexive_roles=[r]))
        assert len(restricted) < len(unrestricted)
        assert all(
            (x, x) not in m.role_ext[r].positive
            for m in restricted
            for x in m.domain
        )

    def test_product_role_restriction(self):
        kb4 = KnowledgeBase4().add(RoleAssertion(r, a, b))
        products = list(enumerate_four_models(kb4, product_roles=True))
        assert products
        assert all(m.is_product_form(r) for m in products)

    def test_truth_patterns_projection(self):
        kb4 = KnowledgeBase4().add(
            ConceptAssertion(a, A), ConceptAssertion(a, Not(A))
        )
        models = enumerate_four_models(kb4)
        patterns = truth_patterns(models, [("A(a)", (A, a))])
        assert patterns == frozenset({("TOP",)})

    def test_truth_patterns_role_probe(self):
        kb4 = KnowledgeBase4().add(RoleAssertion(r, a, b))
        models = enumerate_four_models(kb4)
        patterns = truth_patterns(models, [("r(a,b)", (r, a, b))])
        assert patterns == frozenset({("t",), ("TOP",)})
