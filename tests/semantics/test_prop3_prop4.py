"""Propositions 3 and 4: unit laws and dualities hold four-valuedly.

These are the paper's sanity theorems for the Table 2 semantics: the
top/bottom unit laws (Prop. 3) and the involution / De Morgan / quantifier
/ counting dualities (Prop. 4).  Checked as properties over random
four-valued interpretations and random concepts.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dl import (
    AtLeast,
    AtMost,
    And,
    BOTTOM,
    Exists,
    Forall,
    Not,
    Or,
    TOP,
)
from repro.fourvalued import BilatticePair
from repro.semantics import FourInterpretation, RolePair
from repro.workloads import Signature, random_concept

DOMAIN = ["d0", "d1", "d2"]


def random_four_interpretation(rng: random.Random, signature: Signature) -> FourInterpretation:
    def random_subset():
        return frozenset(x for x in DOMAIN if rng.random() < 0.5)

    def random_pairs():
        return frozenset(
            (x, y) for x in DOMAIN for y in DOMAIN if rng.random() < 0.35
        )

    return FourInterpretation(
        domain=frozenset(DOMAIN),
        concept_ext={
            concept: BilatticePair(random_subset(), random_subset())
            for concept in signature.concepts
        },
        role_ext={
            role: RolePair(random_pairs(), random_pairs())
            for role in signature.roles
        },
        individual_map={i: rng.choice(DOMAIN) for i in signature.individuals},
    )


def draw_concept(seed: int, depth: int = 2):
    rng = random.Random(seed)
    signature = Signature.of_size(3, 2, 2)
    concept = random_concept(
        rng, signature, depth=depth, allow_counting=True, allow_nominals=True
    )
    return concept, random_four_interpretation(rng, signature), rng, signature


class TestProposition3:
    """Unit laws: C n Thing = C, C u Thing = Thing, etc."""

    @given(st.integers(0, 10**6))
    @settings(max_examples=100, deadline=None)
    def test_units(self, seed):
        concept, interp, _rng, _sig = draw_concept(seed)
        extension = interp.extension(concept)
        assert interp.extension(And.of(concept, TOP)) == extension
        assert interp.extension(Or.of(concept, TOP)) == interp.extension(TOP)
        assert interp.extension(And.of(concept, BOTTOM)) == interp.extension(BOTTOM)
        assert interp.extension(Or.of(concept, BOTTOM)) == extension


class TestProposition4:
    """Dualities: double negation, De Morgan, quantifiers, counting."""

    @given(st.integers(0, 10**6))
    @settings(max_examples=100, deadline=None)
    def test_double_negation(self, seed):
        concept, interp, _rng, _sig = draw_concept(seed)
        assert interp.extension(Not(Not(concept))) == interp.extension(concept)

    def test_top_bottom_duals(self):
        _c, interp, _rng, _sig = draw_concept(0)
        assert interp.extension(Not(TOP)) == interp.extension(BOTTOM)
        assert interp.extension(Not(BOTTOM)) == interp.extension(TOP)

    @given(st.integers(0, 10**6))
    @settings(max_examples=100, deadline=None)
    def test_de_morgan(self, seed):
        left, interp, rng, signature = draw_concept(seed)
        right = random_concept(rng, signature, depth=2)
        assert interp.extension(Not(Or.of(left, right))) == interp.extension(
            And.of(Not(left), Not(right))
        )
        assert interp.extension(Not(And.of(left, right))) == interp.extension(
            Or.of(Not(left), Not(right))
        )

    @given(st.integers(0, 10**6))
    @settings(max_examples=100, deadline=None)
    def test_quantifier_duals(self, seed):
        filler, interp, rng, signature = draw_concept(seed, depth=1)
        role = rng.choice(signature.roles)
        assert interp.extension(Not(Forall(role, filler))) == interp.extension(
            Exists(role, Not(filler))
        )
        assert interp.extension(Not(Exists(role, filler))) == interp.extension(
            Forall(role, Not(filler))
        )

    @given(st.integers(0, 10**6), st.integers(1, 3))
    @settings(max_examples=100, deadline=None)
    def test_counting_duals(self, seed, n):
        _c, interp, rng, signature = draw_concept(seed)
        role = rng.choice(signature.roles)
        # not(>= n r) = (<= n-1 r), not(<= n r) = (>= n+1 r).
        assert interp.extension(Not(AtLeast(n, role))) == interp.extension(
            AtMost(n - 1, role)
        )
        assert interp.extension(Not(AtMost(n, role))) == interp.extension(
            AtLeast(n + 1, role)
        )

    @given(st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_classical_restriction_recovers_table1(self, seed):
        """When extensions satisfy the classical constraints, proj+ agrees
        with the two-valued evaluator (paper Section 3.2 closing remark)."""
        from repro.semantics import Interpretation

        rng = random.Random(seed)
        signature = Signature.of_size(3, 2, 2)
        domain = frozenset(DOMAIN)
        concept_ext = {}
        classical_ext = {}
        for concept in signature.concepts:
            positive = frozenset(x for x in DOMAIN if rng.random() < 0.5)
            concept_ext[concept] = BilatticePair(positive, domain - positive)
            classical_ext[concept] = positive
        role_ext = {}
        classical_roles = {}
        all_pairs = {(x, y) for x in DOMAIN for y in DOMAIN}
        for role in signature.roles:
            positive = frozenset(
                p for p in all_pairs if rng.random() < 0.35
            )
            role_ext[role] = RolePair(positive, frozenset(all_pairs) - positive)
            classical_roles[role] = positive
        individual_map = {i: rng.choice(DOMAIN) for i in signature.individuals}
        four = FourInterpretation(
            domain=domain,
            concept_ext=concept_ext,
            role_ext=role_ext,
            individual_map=individual_map,
        )
        two = Interpretation(
            domain=domain,
            concept_ext=classical_ext,
            role_ext=classical_roles,
            individual_map=individual_map,
        )
        concept = random_concept(rng, signature, depth=2, allow_counting=True)
        four_pair = four.extension(concept)
        classical = two.extension(concept)
        assert four_pair.positive == classical
        assert four_pair.negative == domain - classical
