"""Classical interpretation evaluator: Table 1 semantics, axiom by axiom."""

import pytest

from repro.dl import (
    And,
    AtLeast,
    AtMost,
    AtomicConcept,
    AtomicRole,
    BOTTOM,
    ConceptAssertion,
    ConceptEquivalence,
    ConceptInclusion,
    DataAssertion,
    DataAtLeast,
    DataAtMost,
    DataExists,
    DataForall,
    DataValue,
    DatatypeRole,
    DatatypeRoleInclusion,
    DifferentIndividuals,
    Exists,
    Forall,
    INTEGER,
    Individual,
    IntRange,
    KnowledgeBase,
    Not,
    OneOf,
    Or,
    RoleAssertion,
    RoleInclusion,
    SameIndividual,
    TOP,
    Transitivity,
)
from repro.semantics import Interpretation

A, B = AtomicConcept("A"), AtomicConcept("B")
r, s = AtomicRole("r"), AtomicRole("s")
u = DatatypeRole("u")
a, b = Individual("a"), Individual("b")


@pytest.fixture
def interp():
    return Interpretation(
        domain=frozenset({"x", "y", "z"}),
        concept_ext={A: frozenset({"x", "y"}), B: frozenset({"y"})},
        role_ext={
            r: frozenset({("x", "y"), ("y", "z")}),
            s: frozenset({("x", "y"), ("y", "z"), ("x", "z")}),
        },
        data_role_ext={
            u: frozenset({("x", DataValue.of(1)), ("x", DataValue.of(9))})
        },
        individual_map={a: "x", b: "y"},
    )


class TestConceptExtensions:
    def test_boolean(self, interp):
        assert interp.extension(Not(A)) == frozenset({"z"})
        assert interp.extension(A & B) == frozenset({"y"})
        assert interp.extension(A | B) == frozenset({"x", "y"})
        assert interp.extension(TOP) == frozenset({"x", "y", "z"})
        assert interp.extension(BOTTOM) == frozenset()

    def test_oneof_uses_individual_map(self, interp):
        assert interp.extension(OneOf.of("a", "b")) == frozenset({"x", "y"})

    def test_oneof_skips_unmapped(self, interp):
        assert interp.extension(OneOf.of("ghost")) == frozenset()

    def test_quantifiers(self, interp):
        assert interp.extension(Exists(r, B)) == frozenset({"x"})
        # forall: x's successor y is in A; y's successor z is not; z vacuous.
        assert interp.extension(Forall(r, A)) == frozenset({"x", "z"})

    def test_inverse_quantifier(self, interp):
        # inverse(r)-successors: y -> x, z -> y.
        assert interp.extension(Exists(r.inverse(), A)) == frozenset({"y", "z"})

    def test_counting(self, interp):
        assert interp.extension(AtLeast(1, s)) == frozenset({"x", "y"})
        assert interp.extension(AtLeast(2, s)) == frozenset({"x"})
        assert interp.extension(AtMost(0, s)) == frozenset({"z"})

    def test_data_quantifiers(self, interp):
        assert interp.extension(DataExists(u, IntRange(0, 5))) == frozenset({"x"})
        assert interp.extension(DataForall(u, IntRange(0, 5))) == frozenset(
            {"y", "z"}
        )
        assert interp.extension(DataForall(u, INTEGER)) == frozenset(
            {"x", "y", "z"}
        )

    def test_data_counting(self, interp):
        assert interp.extension(DataAtLeast(2, u)) == frozenset({"x"})
        assert interp.extension(DataAtMost(0, u)) == frozenset({"y", "z"})

    def test_unknown_atomic_is_empty(self, interp):
        assert interp.extension(AtomicConcept("Unknown")) == frozenset()


class TestAxiomSatisfaction:
    def test_concept_inclusion(self, interp):
        assert interp.satisfies(ConceptInclusion(B, A))
        assert not interp.satisfies(ConceptInclusion(A, B))

    def test_equivalence(self, interp):
        assert interp.satisfies(ConceptEquivalence(A, A | B))
        assert not interp.satisfies(ConceptEquivalence(A, B))

    def test_role_inclusion(self, interp):
        assert interp.satisfies(RoleInclusion(r, s))
        assert not interp.satisfies(RoleInclusion(s, r))

    def test_role_inclusion_with_inverses(self, interp):
        assert interp.satisfies(RoleInclusion(r.inverse(), s.inverse()))

    def test_transitivity(self, interp):
        assert interp.satisfies(Transitivity(s))
        assert not interp.satisfies(Transitivity(r))

    def test_assertions(self, interp):
        assert interp.satisfies(ConceptAssertion(a, A))
        assert not interp.satisfies(ConceptAssertion(b, Not(A)))
        assert interp.satisfies(RoleAssertion(r, a, b))
        assert not interp.satisfies(RoleAssertion(r, b, a))
        assert interp.satisfies(RoleAssertion(r.inverse(), b, a))
        assert interp.satisfies(DataAssertion(u, a, DataValue.of(1)))
        assert not interp.satisfies(DataAssertion(u, b, DataValue.of(1)))

    def test_equality_axioms(self, interp):
        assert not interp.satisfies(SameIndividual(a, b))
        assert interp.satisfies(DifferentIndividuals(a, b))

    def test_datatype_role_inclusion(self, interp):
        assert interp.satisfies(DatatypeRoleInclusion(u, u))
        v = DatatypeRole("v")
        assert not interp.satisfies(DatatypeRoleInclusion(u, v))

    def test_is_model(self, interp):
        kb = KnowledgeBase().add(
            ConceptInclusion(B, A), ConceptAssertion(a, A), RoleAssertion(r, a, b)
        )
        assert interp.is_model(kb)
        kb.add(ConceptAssertion(a, B))
        assert not interp.is_model(kb)


class TestNamedConstructor:
    def test_named_identity_map(self):
        interp = Interpretation.named(
            [a, b], concept_ext={A: [a]}, role_ext={r: [(a, b)]}
        )
        assert interp.domain == frozenset({a, b})
        assert interp.satisfies(ConceptAssertion(a, A))
        assert interp.satisfies(RoleAssertion(r, a, b))
