"""Scaling corpus tests: determinism, size/density control, scale smoke."""

import pytest

from repro.dl.parser import parse_kb4
from repro.dl.printer import render_kb4
from repro.four_dl.axioms4 import ConceptInclusion4
from repro.four_dl.transform import transform_kb
from repro.workloads import (
    ScalingConfig,
    ScalingProfile,
    generate_scaling_kb4,
    measured_clash_density,
    scaling_sweep,
)


class TestConfig:
    def test_rejects_tiny_corpus(self):
        with pytest.raises(ValueError):
            ScalingConfig(n_axioms=4)

    def test_rejects_out_of_range_density(self):
        with pytest.raises(ValueError):
            ScalingConfig(n_axioms=100, clash_density=0.75)
        with pytest.raises(ValueError):
            ScalingConfig(n_axioms=100, clash_density=-0.1)

    def test_name_slug(self):
        config = ScalingConfig(
            n_axioms=500, profile=ScalingProfile.TBOX_HEAVY, seed=7
        )
        assert config.name == "tbox_heavy-n500-s7"


class TestDeterminism:
    @pytest.mark.parametrize("profile", list(ScalingProfile))
    def test_same_config_byte_identical(self, profile):
        config = ScalingConfig(n_axioms=400, profile=profile, seed=3)
        first = render_kb4(generate_scaling_kb4(config))
        second = render_kb4(generate_scaling_kb4(config))
        assert first == second

    def test_seed_changes_corpus(self):
        base = ScalingConfig(n_axioms=400, seed=0)
        other = ScalingConfig(n_axioms=400, seed=1)
        assert render_kb4(generate_scaling_kb4(base)) != render_kb4(
            generate_scaling_kb4(other)
        )

    def test_profiles_differ(self):
        texts = {
            render_kb4(
                generate_scaling_kb4(
                    ScalingConfig(n_axioms=400, profile=profile)
                )
            )
            for profile in ScalingProfile
        }
        assert len(texts) == len(ScalingProfile)


class TestSizeAndDensity:
    @pytest.mark.parametrize("profile", list(ScalingProfile))
    @pytest.mark.parametrize("n", [8, 100, 1000])
    def test_axiom_count_exact(self, profile, n):
        config = ScalingConfig(n_axioms=n, profile=profile)
        assert len(generate_scaling_kb4(config)) == n

    @pytest.mark.parametrize("density", [0.0, 0.05, 0.2])
    def test_clash_density_within_one_pair(self, density):
        config = ScalingConfig(
            n_axioms=1000,
            profile=ScalingProfile.CLASH_DENSITY,
            clash_density=density,
        )
        measured = measured_clash_density(generate_scaling_kb4(config))
        # The builders emit exactly ``2 * (budget // 2)`` clash-pair
        # axioms; filler may collide and add at most a handful more.
        assert measured >= density - 2 / 1000
        assert measured <= density + 0.01

    def test_tbox_heavy_is_mostly_terminology(self):
        config = ScalingConfig(
            n_axioms=1000, profile=ScalingProfile.TBOX_HEAVY
        )
        kb4 = generate_scaling_kb4(config)
        inclusions = sum(
            isinstance(axiom, ConceptInclusion4) for axiom in kb4.tbox()
        )
        assert inclusions >= 850

    def test_abox_heavy_is_mostly_assertions(self):
        config = ScalingConfig(
            n_axioms=1000, profile=ScalingProfile.ABOX_HEAVY
        )
        kb4 = generate_scaling_kb4(config)
        inclusions = sum(
            isinstance(axiom, ConceptInclusion4) for axiom in kb4.tbox()
        )
        assert inclusions <= 150

    def test_exception_chain_blocks(self):
        config = ScalingConfig(
            n_axioms=100, profile=ScalingProfile.EXCEPTION_CHAIN
        )
        text = render_kb4(generate_scaling_kb4(config))
        # 20 full blocks: each has a material default over base concepts.
        assert "A0 |-> D0" in text
        assert "A19 |-> D19" in text


class TestPipeline:
    @pytest.mark.parametrize("profile", list(ScalingProfile))
    def test_round_trip_and_transform(self, profile):
        config = ScalingConfig(n_axioms=200, profile=profile)
        kb4 = generate_scaling_kb4(config)
        reparsed = parse_kb4(render_kb4(kb4))
        assert render_kb4(reparsed) == render_kb4(kb4)
        # Strong inclusions reduce to two classical inclusions each, so
        # the doubled-signature KB is at least as large, at most double.
        classical = transform_kb(reparsed)
        assert len(kb4) <= len(classical) <= 2 * len(kb4)

    def test_sweep_is_cross_product(self):
        sweep = scaling_sweep((100, 200), seed=5)
        assert len(sweep) == 2 * len(ScalingProfile)
        assert all(config.seed == 5 for config in sweep)


@pytest.mark.slow
class TestScale:
    @pytest.mark.parametrize("profile", list(ScalingProfile))
    def test_ten_thousand_axioms_parse_and_transform(self, profile):
        config = ScalingConfig(n_axioms=10_000, profile=profile)
        kb4 = generate_scaling_kb4(config)
        assert len(kb4) == 10_000
        reparsed = parse_kb4(render_kb4(kb4))
        assert len(reparsed) == 10_000
        assert len(transform_kb(reparsed)) >= 10_000
