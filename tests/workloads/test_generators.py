"""Generator tests: determinism, size control, contradiction injection."""

import pytest

from repro.dl import Not, Reasoner
from repro.dl.printer import render_kb, render_kb4
from repro.four_dl import Reasoner4
from repro.fourvalued import FourValue
from repro.workloads import (
    GeneratorConfig,
    Signature,
    generate_kb,
    generate_kb4,
    inject_contradictions,
    inject_contradictions4,
)


class TestSignature:
    def test_of_size(self):
        signature = Signature.of_size(3, 2, 4)
        assert len(signature.concepts) == 3
        assert len(signature.roles) == 2
        assert len(signature.individuals) == 4

    def test_names_are_stable(self):
        assert Signature.of_size(2, 1, 1).concepts[0].name == "C0"


class TestDeterminism:
    def test_same_seed_same_kb(self):
        config = GeneratorConfig(seed=42)
        assert render_kb(generate_kb(config)) == render_kb(generate_kb(config))

    def test_different_seed_different_kb(self):
        assert render_kb(generate_kb(GeneratorConfig(seed=1))) != render_kb(
            generate_kb(GeneratorConfig(seed=2))
        )

    def test_same_seed_same_kb4(self):
        config = GeneratorConfig(seed=42)
        assert render_kb4(generate_kb4(config)) == render_kb4(
            generate_kb4(config)
        )


class TestSizeControl:
    def test_axiom_counts(self):
        config = GeneratorConfig(n_tbox=7, n_abox=11, seed=0)
        kb = generate_kb(config)
        assert len(kb.concept_inclusions) == 7
        assert len(list(kb.abox())) == 11

    def test_signature_bounds_respected(self):
        config = GeneratorConfig(
            n_concepts=3, n_roles=2, n_individuals=4, seed=5
        )
        kb = generate_kb(config)
        assert len(kb.concepts_in_signature()) <= 3
        assert len(kb.object_roles_in_signature()) <= 2
        assert len(kb.individuals_in_signature()) <= 4

    def test_constructor_flags(self):
        config = GeneratorConfig(
            allow_quantifiers=False,
            allow_negation=False,
            n_tbox=10,
            n_abox=0,
            seed=3,
        )
        kb = generate_kb(config)
        rendered = render_kb(kb)
        assert "some" not in rendered and "only" not in rendered
        assert "not" not in rendered

    def test_inclusion_weights(self):
        config = GeneratorConfig(
            n_tbox=30, n_abox=0, inclusion_weights=(1.0, 0.0, 0.0), seed=1
        )
        kb4 = generate_kb4(config)
        from repro.four_dl import InclusionKind

        assert all(
            inc.kind is InclusionKind.MATERIAL for inc in kb4.concept_inclusions
        )


class TestContradictionInjection:
    def test_injection_makes_classically_inconsistent(self):
        config = GeneratorConfig(n_tbox=2, n_abox=4, max_depth=1, seed=9)
        kb = generate_kb(config)
        injected = inject_contradictions(kb, 2, seed=1)
        assert len(injected) == 2
        assert not Reasoner(kb).is_consistent()

    def test_injection4_yields_both_values(self):
        config = GeneratorConfig(n_tbox=1, n_abox=3, max_depth=1, seed=9)
        kb4 = generate_kb4(config)
        injected = inject_contradictions4(kb4, 1, seed=1)
        individual, concept = injected[0]
        assert Reasoner4(kb4).assertion_value(individual, concept) is FourValue.BOTH

    def test_injection_requires_signature(self):
        from repro.dl import KnowledgeBase

        with pytest.raises(ValueError):
            inject_contradictions(KnowledgeBase(), 1)

    def test_injection_reproducible(self):
        config = GeneratorConfig(n_tbox=1, n_abox=3, seed=9)
        kb_a, kb_b = generate_kb(config), generate_kb(config)
        assert inject_contradictions(kb_a, 3, seed=7) == inject_contradictions(
            kb_b, 3, seed=7
        )
