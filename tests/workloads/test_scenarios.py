"""Scenario builders: expected conflicts and paraconsistent answers."""

import pytest

from repro.dl import AtomicConcept, Individual, Reasoner
from repro.four_dl import Reasoner4, collapse_to_classical
from repro.fourvalued import FourValue
from repro.workloads import (
    ALL_SCENARIOS,
    adoption_families,
    hospital_records,
    medical_access_control,
    penguin_taxonomy,
)


class TestScenarioShapes:
    @pytest.mark.parametrize("builder", ALL_SCENARIOS)
    def test_default_scenarios_are_4_satisfiable(self, builder):
        scenario = builder()
        assert Reasoner4(scenario.kb4).is_satisfiable(), scenario.name

    @pytest.mark.parametrize("builder", ALL_SCENARIOS)
    def test_queries_reference_signature(self, builder):
        scenario = builder()
        individuals = scenario.kb4.individuals_in_signature()
        for individual, _concept in scenario.queries:
            assert individual in individuals


class TestMedicalAccessControl:
    def test_conflicted_member_is_both(self):
        scenario = medical_access_control(n_staff=3, n_conflicted=1)
        reasoner = Reasoner4(scenario.kb4)
        readers = AtomicConcept("ReadPatientRecordTeam")
        assert reasoner.assertion_value(Individual("staff0"), readers) is (
            FourValue.BOTH
        )

    def test_unconflicted_members_classical(self):
        scenario = medical_access_control(n_staff=3, n_conflicted=1)
        reasoner = Reasoner4(scenario.kb4)
        readers = AtomicConcept("ReadPatientRecordTeam")
        # staff1 is odd -> urgency -> may read.
        assert reasoner.assertion_value(Individual("staff1"), readers) is (
            FourValue.TRUE
        )
        # staff2 is even -> surgical -> may not read.
        assert reasoner.assertion_value(Individual("staff2"), readers) is (
            FourValue.FALSE
        )

    def test_classical_projection_inconsistent_iff_conflicted(self):
        clean = medical_access_control(n_staff=2, n_conflicted=0)
        assert Reasoner(collapse_to_classical(clean.kb4)).is_consistent()
        conflicted = medical_access_control(n_staff=2, n_conflicted=1)
        assert not Reasoner(
            collapse_to_classical(conflicted.kb4)
        ).is_consistent()

    def test_expected_conflicts_found(self):
        scenario = medical_access_control(n_staff=4, n_conflicted=2)
        reasoner = Reasoner4(scenario.kb4)
        for individual, concept in scenario.expected_conflicts:
            assert reasoner.assertion_value(individual, concept) is FourValue.BOTH


class TestHospitalRecords:
    def test_propagation_survives_contradiction(self):
        scenario = hospital_records(n_wards=2)
        reasoner = Reasoner4(scenario.kb4)
        doctor = AtomicConcept("Doctor")
        assert reasoner.assertion_value(Individual("carer0"), doctor) is (
            FourValue.TRUE
        )
        assert reasoner.assertion_value(Individual("john"), doctor) is (
            FourValue.BOTH
        )

    def test_scaling_parameter(self):
        small = hospital_records(n_wards=1)
        large = hospital_records(n_wards=5)
        assert len(large.kb4) > len(small.kb4)


class TestPenguinTaxonomy:
    def test_species_chain_flightless(self):
        scenario = penguin_taxonomy(n_species=2)
        reasoner = Reasoner4(scenario.kb4)
        fly = AtomicConcept("Fly")
        assert reasoner.assertion_value(Individual("bird_0_0"), fly) is (
            FourValue.FALSE
        )
        assert reasoner.assertion_value(Individual("bird_1_0"), fly) is (
            FourValue.FALSE
        )

    def test_classical_projection_trivialises(self):
        scenario = penguin_taxonomy(n_species=1)
        assert not Reasoner(collapse_to_classical(scenario.kb4)).is_consistent()

    def test_no_expected_conflicts(self):
        # Material inclusion makes penguins exceptions, not contradictions.
        scenario = penguin_taxonomy(n_species=2)
        assert scenario.expected_conflicts == []
        reasoner = Reasoner4(scenario.kb4)
        assert reasoner.contradictory_facts() == {}


class TestAdoptionFamilies:
    def test_parent_true_married_false(self):
        scenario = adoption_families(n_families=2)
        reasoner = Reasoner4(scenario.kb4)
        assert reasoner.assertion_value(
            Individual("adopter0"), AtomicConcept("Parent")
        ) is FourValue.TRUE
        assert reasoner.assertion_value(
            Individual("adopter1"), AtomicConcept("Married")
        ) is FourValue.FALSE

    def test_children_unconstrained(self):
        scenario = adoption_families(n_families=1)
        reasoner = Reasoner4(scenario.kb4)
        assert reasoner.assertion_value(
            Individual("child0"), AtomicConcept("Parent")
        ) is FourValue.NEITHER
