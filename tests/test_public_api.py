"""API surface stability: the documented public names exist and work.

These tests pin down the public API a downstream user depends on, so an
accidental rename or dropped export fails loudly.
"""

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    def test_subpackages(self):
        for name in (
            "fourvalued",
            "dl",
            "semantics",
            "four_dl",
            "baselines",
            "workloads",
            "harness",
            "eval",
        ):
            assert hasattr(repro, name), name


class TestDlSurface:
    def test_all_exports_resolve(self):
        from repro import dl

        for name in dl.__all__:
            assert hasattr(dl, name), name

    def test_core_types_importable(self):
        from repro.dl import (
            AtomicConcept,
            AtomicRole,
            Individual,
            KnowledgeBase,
            Reasoner,
            Tableau,
        )

        kb = KnowledgeBase()
        assert Reasoner(kb).is_consistent()


class TestFourDlSurface:
    def test_all_exports_resolve(self):
        from repro import four_dl

        for name in four_dl.__all__:
            assert hasattr(four_dl, name), name

    def test_quickstart_snippet(self):
        """The README quickstart, verbatim."""
        from repro.dl import AtomicConcept, ConceptAssertion, Individual, Not
        from repro.four_dl import KnowledgeBase4, Reasoner4, internal
        from repro.fourvalued import FourValue

        employee, person = AtomicConcept("Employee"), AtomicConcept("Person")
        pat = Individual("pat")
        kb4 = KnowledgeBase4().add(
            internal(employee, person),
            ConceptAssertion(pat, employee),
            ConceptAssertion(pat, Not(employee)),
        )
        reasoner = Reasoner4(kb4)
        assert reasoner.is_satisfiable()
        assert reasoner.assertion_value(pat, employee) is FourValue.BOTH
        assert reasoner.assertion_value(pat, person) is FourValue.TRUE
        assert reasoner.contradictory_facts() == {pat: frozenset({employee})}


class TestFourvaluedSurface:
    def test_all_exports_resolve(self):
        from repro import fourvalued

        for name in fourvalued.__all__:
            assert hasattr(fourvalued, name), name


class TestOtherSurfaces:
    def test_semantics_exports(self):
        from repro import semantics

        for name in semantics.__all__:
            assert hasattr(semantics, name), name

    def test_baselines_exports(self):
        from repro import baselines

        for name in baselines.__all__:
            assert hasattr(baselines, name), name

    def test_workloads_exports(self):
        from repro import workloads

        for name in workloads.__all__:
            assert hasattr(workloads, name), name

    def test_harness_exports(self):
        from repro import harness

        for name in harness.__all__:
            assert hasattr(harness, name), name

    def test_cli_entrypoint(self):
        from repro.cli import build_parser, main

        parser = build_parser()
        assert parser.prog == "repro"
        with pytest.raises(SystemExit):
            parser.parse_args([])  # command is required
