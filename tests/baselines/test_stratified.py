"""Stratification baseline: possibilistic and lexicographic policies."""

from repro.baselines import StratifiedReasoner, default_stratification
from repro.dl import (
    AtomicConcept,
    ConceptAssertion,
    ConceptInclusion,
    Individual,
    KnowledgeBase,
    Not,
)

A, B, C = AtomicConcept("A"), AtomicConcept("B"), AtomicConcept("C")
a, b = Individual("a"), Individual("b")


class TestDefaultStratification:
    def test_tbox_over_abox(self):
        kb = KnowledgeBase().add(
            ConceptInclusion(A, B), ConceptAssertion(a, A)
        )
        ranked = default_stratification(kb)
        priorities = {repr(axiom): priority for axiom, priority in ranked}
        assert priorities["A [= B"] == 0
        assert priorities["a : A"] == 1


class TestPossibilisticPolicy:
    def test_consistent_keeps_everything(self):
        kb = KnowledgeBase().add(
            ConceptInclusion(A, B), ConceptAssertion(a, A)
        )
        reasoner = StratifiedReasoner(default_stratification(kb))
        assert len(reasoner.retained_kb) == 2
        assert reasoner.dropped_axioms() == []
        assert reasoner.query(a, B) == "accepted"

    def test_breaking_stratum_dropped_entirely(self):
        # Stratum 0 is consistent; stratum 1 breaks -> whole stratum
        # (including the innocent b-assertion) is drowned.
        stratification = [
            (ConceptInclusion(A, B), 0),
            (ConceptAssertion(a, A), 1),
            (ConceptAssertion(a, Not(B)), 1),
            (ConceptAssertion(b, C), 1),
        ]
        reasoner = StratifiedReasoner(stratification)
        assert len(reasoner.retained_kb) == 1
        assert reasoner.query(b, C) == "undetermined"  # drowned

    def test_priority_order_respected(self):
        # The higher-certainty assertion wins over the conflicting one.
        stratification = [
            (ConceptAssertion(a, A), 0),
            (ConceptAssertion(a, Not(A)), 1),
        ]
        reasoner = StratifiedReasoner(stratification)
        assert reasoner.query(a, A) == "accepted"
        assert reasoner.dropped_axioms() == [ConceptAssertion(a, Not(A))]


class TestLexicographicPolicy:
    def test_innocent_axioms_survive(self):
        stratification = [
            (ConceptInclusion(A, B), 0),
            (ConceptAssertion(a, A), 1),
            (ConceptAssertion(a, Not(B)), 1),
            (ConceptAssertion(b, C), 1),
        ]
        reasoner = StratifiedReasoner(stratification, lexicographic=True)
        # The axiom-by-axiom pass keeps what it can from the broken
        # stratum, including the unrelated b : C.
        assert reasoner.query(b, C) == "accepted"

    def test_later_strata_still_considered(self):
        stratification = [
            (ConceptAssertion(a, A), 0),
            (ConceptAssertion(a, Not(A)), 1),  # conflicts, dropped
            (ConceptAssertion(b, B), 2),  # must survive
        ]
        reasoner = StratifiedReasoner(stratification, lexicographic=True)
        assert reasoner.query(b, B) == "accepted"

    def test_order_within_stratum_is_greedy(self):
        # Whichever of the two conflicting axioms comes first survives.
        stratification = [
            (ConceptAssertion(a, A), 0),
            (ConceptAssertion(a, Not(A)), 0),
        ]
        reasoner = StratifiedReasoner(stratification, lexicographic=True)
        assert reasoner.query(a, A) == "accepted"
        assert reasoner.dropped_axioms() == [ConceptAssertion(a, Not(A))]
