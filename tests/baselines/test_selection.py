"""Selection baseline: syntactic relevance rings and linear extension."""

from repro.baselines import SelectionReasoner, axiom_symbols, query_symbols
from repro.dl import (
    AtomicConcept,
    AtomicRole,
    ConceptAssertion,
    ConceptInclusion,
    Exists,
    Individual,
    KnowledgeBase,
    Not,
    RoleAssertion,
)

A, B, C = AtomicConcept("A"), AtomicConcept("B"), AtomicConcept("C")
r = AtomicRole("r")
a, b, c = Individual("a"), Individual("b"), Individual("c")


class TestAxiomSymbols:
    def test_inclusion_symbols(self):
        axiom = ConceptInclusion(A, Exists(r, B))
        assert axiom_symbols(axiom) == frozenset({"A", "r", "B"})

    def test_assertion_symbols(self):
        assert axiom_symbols(ConceptAssertion(a, Not(A))) == frozenset({"a", "A"})
        assert axiom_symbols(RoleAssertion(r, a, b)) == frozenset({"r", "a", "b"})

    def test_query_symbols(self):
        assert query_symbols(a, A & B) == frozenset({"a", "A", "B"})


class TestRelevanceRings:
    def test_ring_order(self):
        kb = KnowledgeBase().add(
            ConceptAssertion(a, A),        # ring 0 (shares a / A)
            ConceptInclusion(A, B),        # ring 0 (shares A)
            ConceptInclusion(B, C),        # ring 1 (reached via B)
            ConceptAssertion(c, C),        # ring 2? shares C after ring1
        )
        reasoner = SelectionReasoner(kb)
        rings = reasoner.relevance_rings(a, A)
        assert ConceptAssertion(a, A) in rings[0]
        assert ConceptInclusion(A, B) in rings[0]
        assert ConceptInclusion(B, C) in rings[1]

    def test_disconnected_axioms_in_final_ring(self):
        unrelated = ConceptAssertion(Individual("zz"), AtomicConcept("ZZ"))
        kb = KnowledgeBase().add(ConceptAssertion(a, A), unrelated)
        rings = SelectionReasoner(kb).relevance_rings(a, A)
        assert unrelated in rings[-1]


class TestQuerying:
    def test_consistent_kb_full_answers(self):
        kb = KnowledgeBase().add(
            ConceptInclusion(A, B), ConceptAssertion(a, A)
        )
        reasoner = SelectionReasoner(kb)
        assert reasoner.query(a, B) == "accepted"
        assert reasoner.query(a, Not(B)) == "rejected"
        assert reasoner.query(b, B) == "undetermined"

    def test_inconsistent_kb_still_answers_from_consistent_prefix(self):
        # The contradiction involves b; queries about a's ring still work
        # as long as the relevant prefix stays consistent.
        kb = KnowledgeBase().add(
            ConceptAssertion(a, A),
            ConceptAssertion(b, B),
            ConceptAssertion(b, Not(B)),
        )
        reasoner = SelectionReasoner(kb)
        assert reasoner.query(a, A) == "accepted"

    def test_contradiction_in_first_ring_undetermined(self):
        kb = KnowledgeBase().add(
            ConceptAssertion(a, A), ConceptAssertion(a, Not(A))
        )
        reasoner = SelectionReasoner(kb)
        assert reasoner.query(a, A) == "undetermined"

    def test_selection_loses_conclusions_the_paper_keeps(self):
        """The paper's Section 5 point: selection ignores conflicting
        axioms entirely, so a query whose evidence sits in the conflicted
        ring gets no answer, while SHOIN(D)4 answers BOTH."""
        from repro.four_dl import KnowledgeBase4, Reasoner4, internal
        from repro.fourvalued import FourValue

        kb = KnowledgeBase().add(
            ConceptInclusion(A, B),
            ConceptAssertion(a, A),
            ConceptAssertion(a, Not(B)),
        )
        selection = SelectionReasoner(kb)
        assert selection.query(a, B) == "undetermined"
        kb4 = KnowledgeBase4().add(
            internal(A, B),
            ConceptAssertion(a, A),
            ConceptAssertion(a, Not(B)),
        )
        assert Reasoner4(kb4).assertion_value(a, B) is FourValue.BOTH

    def test_survey(self):
        kb = KnowledgeBase().add(ConceptAssertion(a, A))
        results = SelectionReasoner(kb).survey([(a, A), (a, B)])
        assert results[0][2] == "accepted"
        assert results[1][2] == "undetermined"

    def test_selected_subset_is_consistent(self):
        kb = KnowledgeBase().add(
            ConceptAssertion(a, A),
            ConceptAssertion(a, Not(A)),
            ConceptAssertion(b, B),
        )
        from repro.dl import Reasoner

        subset = SelectionReasoner(kb).selected_subset(b, B)
        assert Reasoner(subset).is_consistent()
