"""Classical baseline: honest answers when consistent, collapse when not."""

from repro.baselines import ClassicalBaseline
from repro.dl import (
    AtomicConcept,
    ConceptAssertion,
    ConceptInclusion,
    Individual,
    KnowledgeBase,
    Not,
)

A, B = AtomicConcept("A"), AtomicConcept("B")
a, b = Individual("a"), Individual("b")


def consistent_kb() -> KnowledgeBase:
    return KnowledgeBase().add(
        ConceptInclusion(A, B), ConceptAssertion(a, A), ConceptAssertion(b, Not(A))
    )


def inconsistent_kb() -> KnowledgeBase:
    kb = consistent_kb()
    kb.add(ConceptAssertion(b, A))
    return kb


class TestConsistentBehaviour:
    def test_not_trivial(self):
        assert not ClassicalBaseline(consistent_kb()).is_trivial()

    def test_queries_answered_honestly(self):
        baseline = ClassicalBaseline(consistent_kb())
        assert baseline.query(a, A)
        assert baseline.query(a, B)
        assert not baseline.query(b, A)

    def test_query_status(self):
        baseline = ClassicalBaseline(consistent_kb())
        assert baseline.query_status(a, A) == "yes"
        assert baseline.query_status(b, A) == "no"
        # b is not known to be B either way.
        assert baseline.query_status(b, B) == "no"

    def test_meaningful_answers_all_informative(self):
        baseline = ClassicalBaseline(consistent_kb())
        answers = baseline.meaningful_answers([(a, A), (b, A)])
        assert "both" not in answers.values()


class TestCollapse:
    def test_trivial(self):
        assert ClassicalBaseline(inconsistent_kb()).is_trivial()

    def test_everything_entailed(self):
        baseline = ClassicalBaseline(inconsistent_kb())
        unrelated = AtomicConcept("CompletelyUnrelated")
        assert baseline.query(a, unrelated)
        assert baseline.query(a, Not(unrelated))

    def test_all_statuses_both(self):
        baseline = ClassicalBaseline(inconsistent_kb())
        answers = baseline.meaningful_answers([(a, A), (b, B)])
        assert set(answers.values()) == {"both"}
