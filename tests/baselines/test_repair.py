"""Diagnosis and repair: justifications, hitting sets, repair semantics."""

import pytest

from repro.baselines import (
    RepairReasoner,
    minimal_inconsistent_subsets,
    repairs,
    shrink_to_minimal,
)
from repro.dl import (
    AtomicConcept,
    ConceptAssertion,
    ConceptInclusion,
    Individual,
    KnowledgeBase,
    Not,
    Reasoner,
)

A, B, C = AtomicConcept("A"), AtomicConcept("B"), AtomicConcept("C")
a, b = Individual("a"), Individual("b")


def simple_conflict() -> KnowledgeBase:
    return KnowledgeBase().add(
        ConceptInclusion(A, B),
        ConceptAssertion(a, A),
        ConceptAssertion(a, Not(B)),
        ConceptAssertion(b, C),  # innocent bystander
    )


def two_conflicts() -> KnowledgeBase:
    kb = simple_conflict()
    kb.add(ConceptAssertion(b, B), ConceptAssertion(b, Not(B)))
    return kb


class TestShrinking:
    def test_minimal_core(self):
        core = shrink_to_minimal(list(simple_conflict().axioms()))
        assert set(core) == {
            ConceptInclusion(A, B),
            ConceptAssertion(a, A),
            ConceptAssertion(a, Not(B)),
        }

    def test_core_is_minimal(self):
        core = list(shrink_to_minimal(list(simple_conflict().axioms())))
        for index in range(len(core)):
            rest = KnowledgeBase.of(core[:index] + core[index + 1:])
            assert Reasoner(rest).is_consistent()


class TestJustifications:
    def test_consistent_kb_has_none(self):
        kb = KnowledgeBase().add(ConceptAssertion(a, A))
        assert minimal_inconsistent_subsets(kb) == []

    def test_single_justification(self):
        mises = minimal_inconsistent_subsets(simple_conflict())
        assert len(mises) == 1
        assert ConceptAssertion(b, C) not in mises[0]

    def test_two_independent_justifications(self):
        mises = minimal_inconsistent_subsets(two_conflicts())
        assert len(mises) == 2
        union = frozenset().union(*mises)
        assert ConceptAssertion(b, B) in union
        assert ConceptAssertion(a, A) in union

    def test_bound_respected(self):
        mises = minimal_inconsistent_subsets(two_conflicts(), max_subsets=1)
        assert len(mises) == 1


class TestRepairs:
    def test_consistent_kb_needs_no_repair(self):
        kb = KnowledgeBase().add(ConceptAssertion(a, A))
        assert repairs(kb) == []

    def test_each_repair_restores_consistency(self):
        kb = two_conflicts()
        for repair in repairs(kb):
            repaired = KnowledgeBase.of(
                axiom for axiom in kb.axioms() if axiom not in repair
            )
            assert Reasoner(repaired).is_consistent()

    def test_repairs_are_minimal(self):
        kb = two_conflicts()
        for repair in repairs(kb):
            for axiom in repair:
                smaller = repair - {axiom}
                repaired = KnowledgeBase.of(
                    x for x in kb.axioms() if x not in smaller
                )
                assert not Reasoner(repaired).is_consistent()

    def test_single_conflict_has_three_repairs(self):
        found = repairs(simple_conflict())
        assert len(found) == 3
        assert all(len(repair) == 1 for repair in found)


class TestRepairReasoner:
    def test_iar_keeps_innocent_facts(self):
        reasoner = RepairReasoner(simple_conflict())
        assert reasoner.iar_query(b, C)
        assert not reasoner.iar_query(a, B)

    def test_free_vs_blamed_partition(self):
        reasoner = RepairReasoner(simple_conflict())
        assert reasoner.free_axioms() == frozenset({ConceptAssertion(b, C)})
        assert len(reasoner.blamed_axioms()) == 3

    def test_cautious_and_brave(self):
        reasoner = RepairReasoner(simple_conflict())
        # Under some repairs a is B (drop "a : not B"), under others not.
        assert reasoner.brave_query(a, A)
        assert not reasoner.cautious_query(a, A)
        assert reasoner.cautious_query(b, C)

    def test_query_verdicts(self):
        reasoner = RepairReasoner(simple_conflict())
        assert reasoner.query(b, C) == "accepted"
        assert reasoner.query(a, B) == "undetermined"

    def test_consistent_kb_behaves_classically(self):
        kb = KnowledgeBase().add(
            ConceptInclusion(A, B), ConceptAssertion(a, A)
        )
        reasoner = RepairReasoner(kb)
        assert reasoner.justifications == []
        assert reasoner.query(a, B) == "accepted"
        assert reasoner.iar_query(a, B)

    def test_comparison_with_four_valued(self):
        """Repair semantics loses what SHOIN(D)4 keeps: the conflicted
        fact is undetermined after repair but BOTH four-valuedly."""
        from repro.four_dl import Reasoner4, from_classical
        from repro.fourvalued import FourValue

        kb = simple_conflict()
        repair_reasoner = RepairReasoner(kb)
        assert repair_reasoner.query(a, B) == "undetermined"
        four = Reasoner4(from_classical(kb))
        assert four.assertion_value(a, B) is FourValue.BOTH
