"""Unit tests for the span tracer (repro.obs.spans)."""

import pytest

from repro.dl.stats import ReasonerStats
from repro.obs import (
    Tracer,
    active_tracer,
    add_event,
    set_gauge,
    span,
    tracing,
)
from repro.obs.spans import _NULL_SPAN


class TestDisabledPath:
    def test_span_returns_shared_null_singleton(self):
        assert active_tracer() is None
        first = span("tableau_run")
        second = span("cache_probe", stats=ReasonerStats())
        assert first is second is _NULL_SPAN

    def test_null_span_is_inert(self):
        with span("anything") as sp:
            sp.set("key", "value")
            sp.event("mark")
        assert active_tracer() is None

    def test_add_event_and_set_gauge_are_noops(self):
        add_event("cache_eviction")
        set_gauge("repro_query_cache_entries", 7)


class TestTracing:
    def test_install_and_restore(self):
        tracer = Tracer()
        assert active_tracer() is None
        with tracing(tracer):
            assert active_tracer() is tracer
        assert active_tracer() is None

    def test_nested_install_restores_previous(self):
        outer, inner = Tracer(), Tracer()
        with tracing(outer):
            with tracing(inner):
                assert active_tracer() is inner
            assert active_tracer() is outer

    def test_tracing_none_disables_inside_a_scope(self):
        tracer = Tracer()
        with tracing(tracer):
            with tracing(None):
                assert span("x") is _NULL_SPAN
            assert active_tracer() is tracer


class TestSpanTrees:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracing(tracer):
            with span("query"):
                with span("cache_probe"):
                    pass
                with span("tableau_run"):
                    pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "query"
        assert [child.name for child in root.children] == [
            "cache_probe",
            "tableau_run",
        ]
        assert root.duration >= sum(c.duration for c in root.children)
        assert root.self_time >= 0.0

    def test_sibling_roots_accumulate_in_order(self):
        tracer = Tracer()
        with tracing(tracer):
            with span("first"):
                pass
            with span("second"):
                pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_attributes_and_events(self):
        tracer = Tracer()
        with tracing(tracer):
            with span("tableau_run") as sp:
                sp.set("search", "trail")
                sp.event("clash", {"node": 3})
        root = tracer.roots[0]
        assert root.attributes == {"search": "trail"}
        assert len(root.events) == 1
        assert root.events[0].name == "clash"
        assert root.events[0].attributes == {"node": 3}
        assert root.events[0].at >= 0.0

    def test_add_event_lands_on_innermost_open_span(self):
        tracer = Tracer()
        with tracing(tracer):
            with span("outer"):
                with span("inner"):
                    add_event("cache_eviction", {"entries": 4})
        inner = tracer.roots[0].children[0]
        assert [event.name for event in inner.events] == ["cache_eviction"]

    def test_walk_is_depth_first(self):
        tracer = Tracer()
        with tracing(tracer):
            with span("a"):
                with span("b"):
                    with span("c"):
                        pass
                with span("d"):
                    pass
        names = [sp.name for sp in tracer.roots[0].walk()]
        assert names == ["a", "b", "c", "d"]


class TestStatsDeltas:
    def test_delta_keeps_only_changed_counters(self):
        stats = ReasonerStats(tableau_runs=5)
        tracer = Tracer()
        with tracing(tracer):
            with span("tableau_run", stats=stats):
                stats.tableau_runs += 1
                stats.branches_explored += 3
        assert tracer.roots[0].stats_delta == {
            "tableau_runs": 1,
            "branches_explored": 3,
        }

    def test_no_stats_object_means_no_delta(self):
        tracer = Tracer()
        with tracing(tracer):
            with span("cache_probe"):
                pass
        assert tracer.roots[0].stats_delta is None

    def test_counter_totals_do_not_double_count_nested_spans(self):
        stats = ReasonerStats()
        tracer = Tracer()
        with tracing(tracer):
            with span("classify", stats=stats):
                with span("tableau_run", stats=stats):
                    stats.tableau_runs += 1
        assert tracer.counter_totals()["tableau_runs"] == 1

    def test_counter_totals_sum_distinct_stats_objects(self):
        four, classical = ReasonerStats(), ReasonerStats()
        tracer = Tracer()
        with tracing(tracer):
            with span("a", stats=four):
                four.tableau_runs += 2
            with span("b", stats=classical):
                classical.tableau_runs += 3
        assert tracer.counter_totals()["tableau_runs"] == 5

    def test_watch_stats_is_idempotent(self):
        stats = ReasonerStats(tableau_runs=4)
        tracer = Tracer()
        tracer.watch_stats(stats)
        tracer.watch_stats(stats)
        assert tracer.watched_stats == [stats]
        assert tracer.counter_totals()["tableau_runs"] == 4


class TestExceptionEvents:
    def test_budget_abort_exception_becomes_event(self):
        class FakeReason:
            value = "deadline"

        class FakeBudgetExceeded(Exception):
            reason = FakeReason()

        tracer = Tracer()
        with tracing(tracer):
            with pytest.raises(FakeBudgetExceeded):
                with span("tableau_run"):
                    raise FakeBudgetExceeded("out of time")
        events = tracer.roots[0].events
        assert [event.name for event in events] == ["budget_abort"]
        assert events[0].attributes == {"reason": "deadline"}

    def test_plain_exception_recorded_generically(self):
        tracer = Tracer()
        with tracing(tracer):
            with pytest.raises(ValueError):
                with span("parse"):
                    raise ValueError("bad syntax")
        events = tracer.roots[0].events
        assert [event.name for event in events] == ["exception"]
        assert events[0].attributes == {"type": "ValueError"}

    def test_span_still_closed_and_attached_after_exception(self):
        tracer = Tracer()
        with tracing(tracer):
            with span("outer"):
                with pytest.raises(RuntimeError):
                    with span("inner"):
                        raise RuntimeError("boom")
        assert [c.name for c in tracer.roots[0].children] == ["inner"]
        assert tracer.current is None


class TestRegistryFeed:
    def test_every_span_close_feeds_duration_histogram(self):
        tracer = Tracer()
        with tracing(tracer):
            for _ in range(3):
                with span("tableau_run"):
                    pass
        histogram = tracer.registry.span_duration("tableau_run")
        assert histogram.count == 3

    def test_set_gauge_reaches_registry(self):
        tracer = Tracer()
        with tracing(tracer):
            set_gauge("repro_query_cache_entries", 11)
        assert tracer.registry.gauge("repro_query_cache_entries").value == 11
