"""Overhead guarantees of the observability layer.

Two promises the subsystem makes:

* **Disabled is free of side effects** — with no tracer installed, the
  instrumented reasoning stack performs *byte-identical* work: every
  ``ReasonerStats`` counter matches a run with tracing enabled (the
  instrumentation can never change what the reasoner computes, only
  observe it).
* **Enabled is cheap** — full span tracing on the university-ontology
  classification costs less than 2x the untraced wall-clock time.

Wall-clock assertions are best-of-three to shrug off scheduler noise.
"""

import json
import os
import time

from repro.dl.parser import parse_kb4
from repro.four_dl import Reasoner4
from repro.obs import Tracer, active_tracer, spans_to_jsonl, tracing

ONTOLOGY_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "ontologies"
)


def _university_kb4():
    with open(os.path.join(ONTOLOGY_DIR, "university.kb4")) as handle:
        return parse_kb4(handle.read())


def _classify(kb4, tracer):
    reasoner = Reasoner4(kb4)
    with tracing(tracer):
        hierarchy = reasoner.classify()
    return hierarchy, reasoner.stats


def test_null_recorder_keeps_stats_byte_identical():
    assert active_tracer() is None
    kb4 = _university_kb4()
    plain_hierarchy, plain_stats = _classify(kb4, None)
    traced_hierarchy, traced_stats = _classify(kb4, Tracer())
    assert traced_hierarchy == plain_hierarchy
    plain_bytes = json.dumps(plain_stats.as_dict(), sort_keys=True).encode()
    traced_bytes = json.dumps(traced_stats.as_dict(), sort_keys=True).encode()
    assert traced_bytes == plain_bytes


def test_enabled_tracer_stays_under_two_x():
    kb4 = _university_kb4()
    _classify(kb4, None)  # warm any lazy imports/caches

    def best_of(tracer_factory, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            _classify(kb4, tracer_factory())
            best = min(best, time.perf_counter() - started)
        return best

    untraced = best_of(lambda: None)
    traced = best_of(Tracer)
    assert traced < untraced * 2.0, (
        f"enabled tracing cost {traced / untraced:.2f}x "
        f"({traced:.3f}s vs {untraced:.3f}s untraced)"
    )


def test_traced_classification_produces_a_coherent_forest():
    kb4 = _university_kb4()
    tracer = Tracer()
    _classify(kb4, tracer)
    names = {sp.name for root in tracer.roots for sp in root.walk()}
    assert "classify" in names
    assert "tableau_run" in names
    # The forest serialises without error and is non-trivial.
    assert len(spans_to_jsonl(tracer.roots).splitlines()) > 10
