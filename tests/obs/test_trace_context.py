"""Trace-context tests: thread-local tracers, the extended span
schema, clock rebasing, and cross-process grafting."""

import random
import threading

import pytest

from repro.obs.export import (
    read_spans_jsonl,
    span_to_dict,
    spans_from_records,
    spans_to_jsonl,
    spans_to_records,
    validate_span_record,
)
from repro.obs.spans import Span, Tracer, active_tracer, span, tracing
from repro.obs.trace import (
    fit_within,
    graft_spans,
    new_trace_id,
    rebase_spans,
    sanitize_trace_id,
)


def make_span(tracer, name, start, duration, children=()):
    built = Span(tracer, name)
    built.start = start
    built.duration = duration
    built.children.extend(children)
    return built


class TestThreadLocalTracer:
    def test_each_thread_gets_its_own_tracer(self):
        """Concurrent server threads must not share one span stack."""
        barrier = threading.Barrier(2)
        tracers = {}
        errors = []

        def work(label):
            tracer = Tracer(trace_id=label, process="server")
            tracers[label] = tracer
            try:
                with tracing(tracer):
                    barrier.wait(timeout=5.0)  # both threads traced at once
                    if active_tracer() is not tracer:
                        errors.append(f"{label}: wrong active tracer")
                    with span(f"work_{label}"):
                        barrier.wait(timeout=5.0)
            except Exception as exc:  # pragma: no cover - diagnostics
                errors.append(f"{label}: {exc!r}")

        threads = [
            threading.Thread(target=work, args=(label,))
            for label in ("alpha", "beta")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert errors == []
        for label in ("alpha", "beta"):
            roots = tracers[label].roots
            assert [root.name for root in roots] == [f"work_{label}"]
            assert roots[0].trace_id == label

    def test_installing_in_one_thread_leaves_others_disabled(self):
        seen = []

        def observer():
            seen.append(active_tracer())

        with tracing(Tracer()):
            thread = threading.Thread(target=observer)
            thread.start()
            thread.join(timeout=5.0)
        assert seen == [None]


class TestTraceStamping:
    def test_spans_inherit_tracer_trace_context(self):
        tracer = Tracer(trace_id="trace-1", process="worker-0")
        with tracing(tracer):
            with span("outer"):
                with span("inner"):
                    pass
        (outer,) = tracer.roots
        assert outer.trace_id == "trace-1"
        assert outer.process == "worker-0"
        assert outer.children[0].trace_id == "trace-1"
        assert outer.children[0].process == "worker-0"

    def test_local_tracing_stays_untagged(self):
        tracer = Tracer()
        with tracing(tracer):
            with span("local"):
                pass
        (root,) = tracer.roots
        assert root.trace_id is None and root.process is None
        record = span_to_dict(root, 0, None)
        assert "trace_id" not in record and "process" not in record


class TestExtendedSchemaRoundTrip:
    def build_forest(self):
        tracer = Tracer(trace_id="t-42", process="worker-1")
        with tracing(tracer):
            with span("probe_execute") as outer:
                outer.set("kind", "satisfiable")
                with span("cache_probe") as probe:
                    probe.set("hit", False)
                    probe.event("miss", {"kb": "university"})
        return tracer.roots

    def assert_forest(self, roots):
        (outer,) = roots
        assert outer.name == "probe_execute"
        assert outer.trace_id == "t-42"
        assert outer.process == "worker-1"
        assert outer.attributes == {"kind": "satisfiable"}
        (probe,) = outer.children
        assert probe.attributes == {"hit": False}
        assert probe.trace_id == "t-42"
        assert [event.name for event in probe.events] == ["miss"]

    def test_records_roundtrip(self):
        roots = self.build_forest()
        self.assert_forest(spans_from_records(spans_to_records(roots)))

    def test_jsonl_roundtrip(self):
        roots = self.build_forest()
        self.assert_forest(read_spans_jsonl(spans_to_jsonl(roots)))

    def test_optional_fields_validated_when_present(self):
        record = span_to_dict(self.build_forest()[0], 0, None)
        assert validate_span_record(record) == []
        record["trace_id"] = 99
        assert any(
            "trace_id" in problem for problem in validate_span_record(record)
        )

    def test_bad_record_raises_with_index(self):
        records = spans_to_records(self.build_forest())
        del records[1]["name"]
        with pytest.raises(ValueError, match="record 1"):
            spans_from_records(records)


class TestTraceIds:
    def test_new_trace_ids_are_unique_and_sanitary(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for trace_id in ids:
            assert sanitize_trace_id(trace_id) == trace_id

    @pytest.mark.parametrize(
        "value",
        ["abc-123", "A.B_c-9", "x" * 64],
    )
    def test_acceptable_ids_pass_through(self, value):
        assert sanitize_trace_id(value) == value

    @pytest.mark.parametrize(
        "value",
        [
            None,
            7,
            "",
            "x" * 65,
            "../../etc/passwd",
            "a/b",
            "has space",
            "new\nline",
            "sneaky%2e%2e/",
        ],
    )
    def test_hostile_or_malformed_ids_rejected(self, value):
        assert sanitize_trace_id(value) is None


class TestClockNormalisation:
    def test_rebase_shifts_every_span(self):
        tracer = Tracer()
        child = make_span(tracer, "child", 1.5, 0.5)
        root = make_span(tracer, "root", 1.0, 2.0, [child])
        rebase_spans([root], -0.25)
        assert root.start == pytest.approx(0.75)
        assert child.start == pytest.approx(1.25)

    def test_fit_within_honest_clocks_is_a_noop(self):
        tracer = Tracer()
        child = make_span(tracer, "child", 1.2, 0.3)
        root = make_span(tracer, "root", 1.0, 2.0, [child])
        assert fit_within([root], 0.5, 4.0) == 0
        assert (root.start, root.duration) == (1.0, 2.0)
        assert (child.start, child.duration) == (1.2, 0.3)

    def test_fit_within_keeps_children_inside_parents_under_skew(self):
        """Property test: any skewed forest clamps into a consistent tree."""
        rng = random.Random(7)

        def random_forest(tracer, depth=0):
            spans = []
            for _ in range(rng.randint(1, 3)):
                start = rng.uniform(-5.0, 5.0)
                duration = rng.uniform(0.0, 3.0)
                children = (
                    random_forest(tracer, depth + 1) if depth < 3 else []
                )
                spans.append(
                    make_span(tracer, f"s{depth}", start, duration, children)
                )
            return spans

        def check(spans, lo, hi):
            for checked in spans:
                assert checked.start >= lo - 1e-9
                assert checked.start + checked.duration <= hi + 1e-9
                assert checked.duration >= 0.0
                check(
                    checked.children,
                    checked.start,
                    checked.start + checked.duration,
                )

        tracer = Tracer()
        for _ in range(50):
            roots = random_forest(tracer)
            offset = rng.uniform(-100.0, 100.0)
            lo = rng.uniform(-2.0, 2.0)
            hi = lo + rng.uniform(0.0, 4.0)
            rebase_spans(roots, offset)
            fit_within(roots, lo, hi)
            check(roots, lo, hi)

    def test_fit_within_counts_adjustments(self):
        tracer = Tracer()
        stray = make_span(tracer, "stray", 100.0, 1.0)
        assert fit_within([stray], 0.0, 2.0) == 1
        assert stray.start == pytest.approx(1.0)
        assert stray.duration == pytest.approx(1.0)


class TestGrafting:
    def test_worker_forest_lands_inside_dispatch_window(self):
        server = Tracer(trace_id="t-graft", process="server")
        dispatch = make_span(server, "dispatch", 1.0, 2.0)
        worker = Tracer(trace_id="t-graft", process="worker-0")
        inner = make_span(worker, "cache_probe", 0.65, 0.1)
        outer = make_span(worker, "probe_execute", 0.5, 0.8, [inner])
        shipment = {
            # The worker epoch is 0.6s later than the server's, so its
            # offsets translate by +0.6 onto the server clock.
            "epoch": server.epoch + 0.6,
            "spans": spans_to_records([outer]),
        }
        grafted = graft_spans(dispatch, shipment, server.epoch)
        assert [g.name for g in grafted] == ["probe_execute"]
        assert dispatch.children == grafted
        (got,) = grafted
        assert got.start == pytest.approx(1.1)
        assert got.process == "worker-0"
        assert got.trace_id == "t-graft"
        (got_inner,) = got.children
        assert got_inner.start == pytest.approx(1.25)

    def test_skewed_shipment_is_clamped_not_dropped(self):
        server = Tracer()
        dispatch = make_span(server, "dispatch", 1.0, 0.5)
        worker = Tracer(process="worker-0")
        outer = make_span(worker, "probe_execute", 0.0, 4.0)
        shipment = {
            "epoch": server.epoch + 1000.0,  # absurd skew
            "spans": spans_to_records([outer]),
        }
        (got,) = graft_spans(dispatch, shipment, server.epoch)
        assert got.start >= dispatch.start
        assert got.start + got.duration <= dispatch.start + dispatch.duration

    def test_empty_or_missing_spans_graft_nothing(self):
        server = Tracer()
        dispatch = make_span(server, "dispatch", 0.0, 1.0)
        assert graft_spans(dispatch, {"epoch": 0.0, "spans": []}, 0.0) == []
        assert graft_spans(dispatch, {}, 0.0) == []
        assert dispatch.children == []
