"""Unit tests for the span/metric exporters (repro.obs.export)."""

import json

import pytest

from repro.dl.stats import ReasonerStats
from repro.obs import (
    MetricsRegistry,
    Tracer,
    folded_stacks,
    phase_breakdown,
    phase_durations,
    read_spans_jsonl,
    render_prometheus,
    render_span_tree,
    span,
    spans_to_jsonl,
    tracing,
    validate_span_record,
)
from repro.obs.export import PHASE_SPANS, SPAN_SCHEMA_VERSION


def _sample_forest():
    """A small realistic forest: query > (parse, 2x probe > tableau)."""
    stats = ReasonerStats()
    tracer = Tracer()
    with tracing(tracer):
        with span("query") as root:
            root.set("exit_status", 0)
            with span("parse") as parse:
                parse.set("axioms", 35)
            for direction in ("for", "against"):
                with span("evidence_probe") as probe:
                    probe.set("direction", direction)
                    with span("tableau_run", stats=stats) as run:
                        stats.tableau_runs += 1
                        run.event("clash", {"node": 1})
    return tracer.roots


class TestJsonLines:
    def test_round_trip_preserves_everything(self):
        roots = _sample_forest()
        restored = read_spans_jsonl(spans_to_jsonl(roots))
        assert len(restored) == 1
        original, copy = roots[0], restored[0]
        assert [s.name for s in original.walk()] == [
            s.name for s in copy.walk()
        ]
        for before, after in zip(original.walk(), copy.walk()):
            assert after.attributes == before.attributes
            assert after.stats_delta == before.stats_delta
            assert after.duration == pytest.approx(before.duration)
            assert [e.name for e in after.events] == [
                e.name for e in before.events
            ]

    def test_parents_emitted_before_children(self):
        lines = spans_to_jsonl(_sample_forest()).splitlines()
        seen = set()
        for line in lines:
            record = json.loads(line)
            assert record["parent"] is None or record["parent"] in seen
            seen.add(record["id"])

    def test_every_line_is_schema_valid(self):
        for line in spans_to_jsonl(_sample_forest()).splitlines():
            assert validate_span_record(json.loads(line)) == []

    def test_read_rejects_non_json(self):
        with pytest.raises(ValueError, match="line 1"):
            read_spans_jsonl("not json\n")

    def test_read_rejects_missing_fields(self):
        with pytest.raises(ValueError, match="missing field"):
            read_spans_jsonl(json.dumps({"schema": SPAN_SCHEMA_VERSION}) + "\n")

    def test_read_rejects_orphan_child(self):
        record = {
            "schema": SPAN_SCHEMA_VERSION,
            "id": 5,
            "parent": 99,
            "name": "x",
            "start": 0.0,
            "duration": 0.0,
            "attributes": {},
            "events": [],
            "stats": None,
        }
        with pytest.raises(ValueError, match="parent 99"):
            read_spans_jsonl(json.dumps(record) + "\n")

    def test_validate_flags_bad_types_and_versions(self):
        record = {
            "schema": 999,
            "id": "zero",
            "parent": None,
            "name": "x",
            "start": 0.0,
            "duration": -1.0,
            "attributes": {},
            "events": [{"oops": True}],
            "stats": None,
        }
        problems = validate_span_record(record)
        assert any("schema" in p for p in problems)
        assert any("'id'" in p for p in problems)
        assert any("negative duration" in p for p in problems)
        assert any("event #0" in p for p in problems)

    def test_empty_forest_serialises_to_empty_text(self):
        assert spans_to_jsonl([]) == ""
        assert read_spans_jsonl("") == []


class TestFoldedStacks:
    def test_lines_match_flamegraph_input_format(self):
        text = folded_stacks(_sample_forest())
        assert text.endswith("\n")
        for line in text.splitlines():
            path, _, micros = line.rpartition(" ")
            assert path
            assert micros.isdigit()
            for frame in path.split(";"):
                assert frame
                assert " " not in frame

    def test_self_times_sum_to_root_total(self):
        roots = _sample_forest()
        text = folded_stacks(roots)
        total_micros = sum(
            int(line.rpartition(" ")[2]) for line in text.splitlines()
        )
        root_micros = int(round(roots[0].duration * 1e6))
        # Integer rounding may drop/add <1us per span.
        assert abs(total_micros - root_micros) <= len(text.splitlines())

    def test_frame_names_sanitised(self):
        tracer = Tracer()
        with tracing(tracer):
            with span("bad;name with spaces"):
                pass
        line = folded_stacks(tracer.roots).splitlines()[0]
        assert line.startswith("bad:name_with_spaces ")


class TestPrometheus:
    def test_histogram_family_and_counters(self):
        roots = _sample_forest()
        tracer = Tracer()
        for root in roots:
            for sp in root.walk():
                tracer.registry.span_duration(sp.name).observe(sp.duration)
        text = render_prometheus(
            tracer.registry, counters={"tableau_runs": 2, "cache_hits": 0}
        )
        assert "# TYPE repro_span_duration_seconds histogram" in text
        assert 'span="tableau_run"' in text
        assert 'le="+Inf"' in text
        assert "# TYPE repro_tableau_runs_total counter" in text
        assert "repro_tableau_runs_total 2" in text
        assert "repro_cache_hits_total 0" in text

    def test_bucket_counts_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.span_duration("x")
        for value in (1e-6, 1e-3, 1e-1):
            histogram.observe(value)
        text = render_prometheus(registry)
        counts = [
            int(line.rpartition(" ")[2])
            for line in text.splitlines()
            if line.startswith("repro_span_duration_seconds_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 3

    def test_gauges_render(self):
        registry = MetricsRegistry()
        registry.gauge("repro_query_cache_entries").set(42)
        text = render_prometheus(registry)
        assert "# TYPE repro_query_cache_entries gauge" in text
        assert "repro_query_cache_entries 42.0" in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestHumanRenderings:
    def test_span_tree_shows_names_attributes_events(self):
        text = render_span_tree(_sample_forest())
        assert "query" in text
        assert "direction=for" in text
        assert "! clash" in text
        assert "  parse" in text  # indented child

    def test_deep_trees_elide_below_max_depth(self):
        tracer = Tracer()
        with tracing(tracer):
            with span("a"), span("b"), span("c"), span("d"):
                pass
        text = render_span_tree(tracer.roots, max_depth=2)
        assert "children elided" in text
        assert "  c" not in text


class TestPhaseAttribution:
    def test_phase_spans_cover_the_instrumented_names(self):
        assert {"parse", "transform", "tableau_run", "justify"} <= PHASE_SPANS

    def test_nested_phases_attribute_exclusively(self):
        tracer = Tracer()
        with tracing(tracer):
            with span("query"):
                with span("justify"):
                    with span("shrink_probe"):
                        with span("tableau_run"):
                            pass
        totals = phase_durations(tracer.roots)
        assert set(totals) == {"justify"}

    def test_phases_sum_to_at_most_root_duration(self):
        roots = _sample_forest()
        totals = phase_durations(roots)
        assert sum(totals.values()) <= roots[0].duration * 1.001

    def test_breakdown_rows_shape(self):
        rows = phase_breakdown(_sample_forest())
        names = [row[0] for row in rows]
        assert "query" in names and "tableau_run" in names
        for name, count, total, p50, p95, peak, share in rows:
            assert count >= 1
            assert 0.0 <= p50 <= p95 <= peak <= total + 1e-9
            assert share == "" or share.endswith("%")
