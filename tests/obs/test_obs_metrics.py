"""Unit tests for histograms, gauges, and the metrics registry."""

import math

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)


class TestPercentile:
    def test_empty_yields_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_sample(self):
        assert percentile([3.0], 0.95) == 3.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5

    def test_extremes(self):
        samples = [5.0, 1.0, 3.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 5.0

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == percentile(
            [1.0, 2.0, 3.0], 0.5
        )

    def test_rejects_out_of_range_quantile(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestHistogram:
    def test_default_buckets_are_log_scale_powers_of_two(self):
        assert DEFAULT_BUCKETS[0] == 2.0 ** -20
        assert DEFAULT_BUCKETS[-1] == 2.0 ** 10
        ratios = {
            DEFAULT_BUCKETS[i + 1] / DEFAULT_BUCKETS[i]
            for i in range(len(DEFAULT_BUCKETS) - 1)
        }
        assert ratios == {2.0}

    def test_exact_count_sum_min_max(self):
        histogram = Histogram("t")
        for value in (0.001, 0.003, 0.010):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(0.014)
        assert histogram.min == 0.001
        assert histogram.max == 0.010
        assert histogram.mean == pytest.approx(0.014 / 3)

    def test_negative_observations_clamp_to_zero(self):
        histogram = Histogram("t")
        histogram.observe(-1.0)
        assert histogram.min == 0.0
        assert histogram.sum == 0.0

    def test_overflow_bucket(self):
        histogram = Histogram("t", bounds=(0.1, 1.0))
        histogram.observe(50.0)
        assert histogram.overflow == 1
        bound, cumulative = histogram.cumulative_buckets()[-1]
        assert bound == math.inf
        assert cumulative == 1

    def test_cumulative_buckets_are_monotone_and_end_at_count(self):
        histogram = Histogram("t")
        for value in (1e-6, 1e-4, 1e-2, 1.0, 5.0):
            histogram.observe(value)
        pairs = histogram.cumulative_buckets()
        counts = [cumulative for _, cumulative in pairs]
        assert counts == sorted(counts)
        assert counts[-1] == histogram.count

    def test_quantile_is_bracketed_by_min_and_max(self):
        histogram = Histogram("t")
        for value in (0.002, 0.004, 0.008, 0.016, 0.5):
            histogram.observe(value)
        for q in (0.1, 0.5, 0.9, 0.95):
            assert histogram.min <= histogram.quantile(q) <= histogram.max

    def test_quantile_of_empty_is_zero(self):
        assert Histogram("t").quantile(0.5) == 0.0
        assert Histogram("t").p50 == 0.0
        assert Histogram("t").p95 == 0.0

    def test_p95_at_least_p50(self):
        histogram = Histogram("t")
        for value in (0.001, 0.001, 0.002, 0.004, 0.1):
            histogram.observe(value)
        assert histogram.p95 >= histogram.p50

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("t", bounds=(1.0, 0.1))


class TestQuantileProperties:
    """Property-style sweeps: the quantile estimate must always live in
    the exactly-tracked ``[min, max]`` envelope and be monotone in q."""

    QS = [i / 20 for i in range(21)]  # 0.0, 0.05, ..., 1.0

    def _random_histograms(self):
        import random

        rng = random.Random(0xC0FFEE)
        for _ in range(25):
            histogram = Histogram("t")
            for _ in range(rng.randint(1, 60)):
                # log-uniform across the bucket range, plus overflow
                histogram.observe(2.0 ** rng.uniform(-22, 12))
            yield histogram

    def test_quantiles_always_bracketed_by_min_and_max(self):
        for histogram in self._random_histograms():
            for q in self.QS:
                assert histogram.min <= histogram.quantile(q) <= histogram.max

    def test_quantiles_are_monotone_in_q(self):
        for histogram in self._random_histograms():
            values = [histogram.quantile(q) for q in self.QS]
            assert values == sorted(values)

    def test_extreme_quantiles_hit_the_exact_envelope(self):
        for histogram in self._random_histograms():
            assert histogram.quantile(0.0) == histogram.min
            assert histogram.quantile(1.0) == histogram.max

    def test_single_observation_is_every_quantile(self):
        # Regression: interpolation from the bucket's lower bound used
        # to undershoot the only observation for small q.
        histogram = Histogram("t")
        histogram.observe(0.9)  # near the top of the (0.5, 1.0] bucket
        for q in self.QS:
            assert histogram.quantile(q) == 0.9

    def test_all_overflow_observations_report_the_max(self):
        histogram = Histogram("t", bounds=(0.1, 1.0))
        histogram.observe(50.0)
        histogram.observe(70.0)
        for q in self.QS:
            assert 50.0 <= histogram.quantile(q) <= 70.0
        assert histogram.quantile(1.0) == 70.0


class TestGaugeAndRegistry:
    def test_gauge_last_value_wins(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.set(7.0)
        assert gauge.value == 7.0

    def test_registry_creates_on_first_use_and_reuses(self):
        registry = MetricsRegistry()
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.span_duration("parse") is registry.span_duration(
            "parse"
        )

    def test_span_duration_family_keyed_by_span_name(self):
        registry = MetricsRegistry()
        registry.span_duration("parse").observe(0.001)
        registry.span_duration("tableau_run").observe(0.002)
        assert set(registry.span_durations) == {"parse", "tableau_run"}
