"""Unit tests for BENCH_*.json run records (repro.obs.bench)."""

import json
import os

import pytest

from repro.obs.bench import (
    BENCH_OUT_ENV,
    BENCH_SCHEMA_VERSION,
    BenchRecord,
    maybe_write_bench_record,
    write_bench_record,
)


def _record():
    return BenchRecord(
        name="university_classify",
        workload="classify ontologies/university.kb4 (internal)",
        seconds=[0.5, 0.7, 0.6],
        counters={"tableau_runs": 110, "branches_explored": 3865},
        metadata={"search": "trail"},
    )


class TestBenchRecord:
    def test_as_dict_shape(self):
        data = _record().as_dict()
        assert data["schema"] == BENCH_SCHEMA_VERSION
        assert data["name"] == "university_classify"
        assert data["seconds"]["count"] == 3
        assert data["seconds"]["total"] == pytest.approx(1.8)
        assert data["seconds"]["max"] == 0.7
        assert data["seconds"]["p50"] == 0.6
        assert data["counters"]["tableau_runs"] == 110
        assert data["metadata"]["search"] == "trail"
        assert "python" in data["metadata"]

    def test_empty_samples_yield_zero_statistics(self):
        data = BenchRecord(name="n", workload="w").as_dict()
        assert data["seconds"] == {
            "count": 0,
            "total": 0,
            "mean": 0.0,
            "p50": 0.0,
            "p95": 0.0,
            "max": 0.0,
        }

    def test_filename_sanitised(self):
        record = BenchRecord(name="uni/classify v2", workload="w")
        assert record.filename == "BENCH_uni_classify_v2.json"

    def test_record_is_json_serialisable(self):
        json.dumps(_record().as_dict())


class TestWriting:
    def test_write_bench_record_creates_file(self, tmp_path):
        path = write_bench_record(_record(), str(tmp_path / "out"))
        assert os.path.basename(path) == "BENCH_university_classify.json"
        with open(path) as handle:
            data = json.load(handle)
        assert data["schema"] == BENCH_SCHEMA_VERSION

    def test_maybe_write_is_noop_without_env(self, monkeypatch):
        monkeypatch.delenv(BENCH_OUT_ENV, raising=False)
        assert maybe_write_bench_record(_record()) is None

    def test_maybe_write_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(BENCH_OUT_ENV, str(tmp_path))
        path = maybe_write_bench_record(_record())
        assert path is not None and os.path.exists(path)
