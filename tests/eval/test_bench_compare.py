"""Regression-gate tests: bench_compare exit codes, verdicts, --update."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.eval.manifest import METRIC_SCHEMA_VERSION, build_manifest

SCRIPT = (
    Path(__file__).resolve().parents[2] / "scripts" / "bench_compare.py"
)

spec = importlib.util.spec_from_file_location("bench_compare", SCRIPT)
bench_compare = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_compare)


def make_run(root, suite, probes, seed=0):
    """A minimal schema-valid run directory with controlled p95 timings.

    A probe value may be a plain p95 float or a ``(p95, count)`` tuple
    (for modelling probes that measured nothing).
    """
    run_dir = root / f"{suite}-seed{seed}-fixture"
    counter = 2
    while run_dir.exists():
        run_dir = root / f"{suite}-seed{seed}-fixture-{counter}"
        counter += 1
    run_dir.mkdir(parents=True)
    manifest = build_manifest(
        run_id=run_dir.name,
        suite=suite,
        description="fixture",
        seed=seed,
        repeats=1,
        scale=False,
        created="2026-08-08T00:00:00+00:00",
        probes=list(probes),
    )
    (run_dir / "manifest.json").write_text(json.dumps(manifest) + "\n")
    lines = []
    for probe, spec_ in probes.items():
        p95, count = spec_ if isinstance(spec_, tuple) else (spec_, 1)
        lines.append(
            json.dumps(
                {
                    "schema": METRIC_SCHEMA_VERSION,
                    "suite": suite,
                    "probe": probe,
                    "phase": "parse",
                    "seed": seed,
                    "status": "ok",
                    "seconds": {
                        "count": count,
                        "total": p95,
                        "mean": p95,
                        "p50": p95 * 0.9,
                        "p95": p95,
                        "max": p95,
                    },
                    "counters": {},
                    "extra": {},
                }
            )
        )
    (run_dir / "metrics.jsonl").write_text("\n".join(lines) + "\n")
    return run_dir


@pytest.fixture
def baseline(tmp_path):
    """A committed-style baseline recorded from a clean fixture run."""
    path = tmp_path / "BASELINE.json"
    run = make_run(tmp_path, "demo", {"fast": 0.001, "slow": 0.100})
    assert bench_compare.main(["--baseline", str(path), "--update", str(run)]) == 0
    return path


class TestCompare:
    def test_identical_run_passes(self, tmp_path, baseline, capsys):
        run = make_run(tmp_path, "demo", {"fast": 0.001, "slow": 0.100})
        code = bench_compare.main(["--baseline", str(baseline), str(run)])
        out = capsys.readouterr().out
        assert code == 0
        assert "p95 regression gate: ok" in out

    def test_two_x_p95_slowdown_fails(self, tmp_path, baseline, capsys):
        run = make_run(tmp_path, "demo", {"fast": 0.001, "slow": 0.200})
        code = bench_compare.main(["--baseline", str(baseline), str(run)])
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSED" in out
        assert "p95 regression gate: FAILED" in out

    def test_micro_probe_jitter_does_not_gate(self, tmp_path, baseline):
        # 3x on a 1 ms probe stays under the 5 ms floor * 1.6 ratio.
        run = make_run(tmp_path, "demo", {"fast": 0.003, "slow": 0.100})
        assert bench_compare.main(["--baseline", str(baseline), str(run)]) == 0

    def test_improvement_is_reported_not_failed(
        self, tmp_path, baseline, capsys
    ):
        run = make_run(tmp_path, "demo", {"fast": 0.001, "slow": 0.020})
        code = bench_compare.main(["--baseline", str(baseline), str(run)])
        out = capsys.readouterr().out
        assert code == 0
        assert "improved" in out

    def test_missing_probe_fails(self, tmp_path, baseline, capsys):
        run = make_run(tmp_path, "demo", {"fast": 0.001})
        code = bench_compare.main(["--baseline", str(baseline), str(run)])
        out = capsys.readouterr().out
        assert code == 1
        assert "MISSING" in out

    def test_new_probe_is_informational(self, tmp_path, baseline, capsys):
        run = make_run(
            tmp_path, "demo", {"fast": 0.001, "slow": 0.100, "extra": 0.050}
        )
        code = bench_compare.main(["--baseline", str(baseline), str(run)])
        out = capsys.readouterr().out
        assert code == 0
        assert "new" in out

    def test_zero_sample_probe_fails_as_empty(
        self, tmp_path, baseline, capsys
    ):
        run = make_run(
            tmp_path, "demo", {"fast": 0.001, "slow": (0.0, 0)}
        )
        code = bench_compare.main(["--baseline", str(baseline), str(run)])
        out = capsys.readouterr().out
        assert code == 1
        assert "EMPTY" in out
        assert "p95 regression gate: FAILED" in out

    def test_zero_p95_probe_fails_even_with_samples(
        self, tmp_path, baseline, capsys
    ):
        # A 0.0 p95 would trivially pass every threshold; it must gate.
        run = make_run(
            tmp_path, "demo", {"fast": 0.001, "slow": (0.0, 5)}
        )
        code = bench_compare.main(["--baseline", str(baseline), str(run)])
        out = capsys.readouterr().out
        assert code == 1
        assert "EMPTY" in out

    def test_new_probe_with_no_samples_also_fails(
        self, tmp_path, baseline, capsys
    ):
        run = make_run(
            tmp_path,
            "demo",
            {"fast": 0.001, "slow": 0.100, "extra": (0.0, 0)},
        )
        code = bench_compare.main(["--baseline", str(baseline), str(run)])
        out = capsys.readouterr().out
        assert code == 1
        assert "EMPTY" in out

    def test_tolerance_override_tightens_gate(self, tmp_path, baseline):
        run = make_run(tmp_path, "demo", {"fast": 0.001, "slow": 0.120})
        assert bench_compare.main(["--baseline", str(baseline), str(run)]) == 0
        assert (
            bench_compare.main(
                [
                    "--baseline", str(baseline),
                    "--p95-tolerance", "1.1",
                    str(run),
                ]
            )
            == 1
        )


class TestUsageErrors:
    def test_missing_baseline(self, tmp_path, capsys):
        run = make_run(tmp_path, "demo", {"fast": 0.001})
        code = bench_compare.main(
            ["--baseline", str(tmp_path / "nope.json"), str(run)]
        )
        assert code == 2
        assert "create it with --update" in capsys.readouterr().err

    def test_not_a_run_directory(self, tmp_path, baseline, capsys):
        code = bench_compare.main(
            ["--baseline", str(baseline), str(tmp_path / "empty")]
        )
        assert code == 2
        assert "not an eval run directory" in capsys.readouterr().err

    def test_suite_absent_from_baseline(self, tmp_path, baseline, capsys):
        run = make_run(tmp_path, "other_suite", {"fast": 0.001})
        code = bench_compare.main(["--baseline", str(baseline), str(run)])
        assert code == 2
        assert "no suite 'other_suite'" in capsys.readouterr().err


class TestUpdate:
    def test_update_creates_and_refreshes(self, tmp_path):
        path = tmp_path / "BASELINE.json"
        first = make_run(tmp_path, "demo", {"fast": 0.001, "slow": 0.100})
        assert (
            bench_compare.main(["--baseline", str(path), "--update", str(first)])
            == 0
        )
        written = json.loads(path.read_text())
        assert written["schema"] == bench_compare.BASELINE_SCHEMA_VERSION
        assert set(written["suites"]["demo"]) == {"fast", "slow"}
        assert written["tolerances"]["p95_ratio"] == pytest.approx(1.6)

        # Refreshing drops probes the run no longer produces.
        second = make_run(tmp_path, "demo", {"fast": 0.002})
        assert (
            bench_compare.main(
                ["--baseline", str(path), "--update", str(second)]
            )
            == 0
        )
        rewritten = json.loads(path.read_text())
        assert set(rewritten["suites"]["demo"]) == {"fast"}
        assert "updated" in rewritten["metadata"]["demo"]

    def test_update_refuses_empty_probes(self, tmp_path, capsys):
        path = tmp_path / "BASELINE.json"
        run = make_run(tmp_path, "demo", {"fast": 0.001, "slow": (0.0, 0)})
        code = bench_compare.main(
            ["--baseline", str(path), "--update", str(run)]
        )
        assert code == 2
        assert "refusing to record empty probes" in capsys.readouterr().err
        assert not path.is_file()

    def test_update_preserves_other_suites(self, tmp_path):
        path = tmp_path / "BASELINE.json"
        demo = make_run(tmp_path, "demo", {"fast": 0.001})
        other = make_run(tmp_path, "other", {"probe": 0.050})
        bench_compare.main(["--baseline", str(path), "--update", str(demo)])
        bench_compare.main(["--baseline", str(path), "--update", str(other)])
        written = json.loads(path.read_text())
        assert set(written["suites"]) == {"demo", "other"}


class TestCommittedBaseline:
    def test_committed_baseline_is_schema_valid(self):
        committed = SCRIPT.parents[1] / "benchmarks" / "BASELINE.json"
        assert committed.is_file(), "benchmarks/BASELINE.json must be committed"
        baseline = bench_compare.load_baseline(committed)
        assert baseline["schema"] == bench_compare.BASELINE_SCHEMA_VERSION
        assert set(baseline["suites"]) >= {"classification", "scaling_small"}
        for suite, probes in baseline["suites"].items():
            for probe, entry in probes.items():
                assert entry["p95"] >= 0, (suite, probe)
                assert entry["p50"] >= 0, (suite, probe)
