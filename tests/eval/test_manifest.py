"""Manifest/metric schema tests: validators, strip_timing, jsonl parsing."""

import json

import pytest

from repro.eval.manifest import (
    MANIFEST_SCHEMA_VERSION,
    METRIC_SCHEMA_VERSION,
    METRIC_STATUSES,
    TIMING_FIELDS,
    build_manifest,
    git_revision,
    read_metrics_jsonl,
    strip_timing,
    validate_manifest,
    validate_metric_record,
)


def good_metric(**overrides):
    record = {
        "schema": METRIC_SCHEMA_VERSION,
        "suite": "paper",
        "probe": "theorem4",
        "phase": "experiment",
        "seed": 0,
        "status": "ok",
        "seconds": {
            "count": 3,
            "total": 0.3,
            "mean": 0.1,
            "p50": 0.1,
            "p95": 0.12,
            "max": 0.12,
        },
        "counters": {"rows": 4},
        "extra": {"passed": True},
    }
    record.update(overrides)
    return record


class TestBuildManifest:
    def test_is_schema_valid(self):
        manifest = build_manifest(
            run_id="paper-seed0-x",
            suite="paper",
            description="the paper's artefacts",
            seed=0,
            repeats=None,
            scale=False,
            created="2026-08-08T00:00:00+00:00",
            probes=["theorem4", "theorem5"],
        )
        assert validate_manifest(manifest) == []
        assert manifest["schema"] == MANIFEST_SCHEMA_VERSION
        assert manifest["schema_versions"]["metric"] == METRIC_SCHEMA_VERSION

    def test_git_revision_in_checkout(self):
        git = git_revision()
        assert set(git) == {"rev", "dirty"}
        # In this repo the rev resolves; elsewhere both fields are None.
        assert git["rev"] is None or len(git["rev"]) == 40

    def test_git_revision_outside_checkout(self, tmp_path):
        assert git_revision(str(tmp_path)) == {"rev": None, "dirty": None}


class TestValidateManifest:
    def test_rejects_non_object(self):
        assert validate_manifest([1, 2]) == ["manifest is not a JSON object"]

    def test_reports_missing_fields(self):
        problems = validate_manifest({"schema": MANIFEST_SCHEMA_VERSION})
        assert any("missing field 'suite'" in p for p in problems)
        assert any("missing field 'probes'" in p for p in problems)

    def test_rejects_unknown_schema(self):
        manifest = build_manifest(
            run_id="x", suite="s", description="d", seed=0,
            repeats=None, scale=False, created="t", probes=["p"],
        )
        manifest["schema"] = 99
        assert any(
            "unknown schema" in p for p in validate_manifest(manifest)
        )

    def test_rejects_empty_probe_list(self):
        manifest = build_manifest(
            run_id="x", suite="s", description="d", seed=0,
            repeats=None, scale=False, created="t", probes=["p"],
        )
        manifest["probes"] = []
        assert "empty probe list" in validate_manifest(manifest)


class TestValidateMetricRecord:
    def test_good_record(self):
        assert validate_metric_record(good_metric()) == []

    def test_statuses(self):
        for status in METRIC_STATUSES:
            assert validate_metric_record(good_metric(status=status)) == []
        problems = validate_metric_record(good_metric(status="sideways"))
        assert any("unknown status" in p for p in problems)

    def test_seconds_block_checked(self):
        bad = good_metric()
        del bad["seconds"]["p95"]
        assert any(
            "seconds block missing p95" in p
            for p in validate_metric_record(bad)
        )
        negative = good_metric()
        negative["seconds"]["p50"] = -1.0
        assert any(
            "negative" in p for p in validate_metric_record(negative)
        )

    def test_counters_must_be_integers(self):
        bad = good_metric(counters={"rows": 1.5})
        assert any(
            "not an integer" in p for p in validate_metric_record(bad)
        )


class TestTiming:
    def test_strip_timing_removes_only_seconds(self):
        record = good_metric()
        stripped = strip_timing(record)
        assert set(record) - set(stripped) == set(TIMING_FIELDS)
        assert stripped["counters"] == {"rows": 4}

    def test_strip_timing_makes_same_seed_runs_equal(self):
        fast = good_metric()
        slow = good_metric()
        slow["seconds"] = {k: v * 10 for k, v in fast["seconds"].items()}
        assert strip_timing(fast) == strip_timing(slow)


class TestReadMetricsJsonl:
    def test_round_trip(self):
        text = json.dumps(good_metric()) + "\n" + json.dumps(
            good_metric(probe="theorem5")
        ) + "\n"
        records = read_metrics_jsonl(text)
        assert [r["probe"] for r in records] == ["theorem4", "theorem5"]

    def test_rejects_non_json_line(self):
        with pytest.raises(ValueError, match="line 1"):
            read_metrics_jsonl("not json\n")

    def test_rejects_invalid_record(self):
        with pytest.raises(ValueError, match="line 2"):
            read_metrics_jsonl(
                json.dumps(good_metric())
                + "\n"
                + json.dumps(good_metric(status="sideways"))
                + "\n"
            )
