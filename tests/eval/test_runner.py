"""Eval runner tests: run directories, self-validation, determinism, CLI."""

import json

import pytest

from repro.cli import main as cli_main
from repro.eval import (
    ALL_SUITES,
    EvalRunError,
    get_suite,
    read_metrics_jsonl,
    run_suite,
    strip_timing,
    validate_manifest,
)

# The cheapest real probes: parsing/transforming the bundled ontology.
FAST = dict(suite_name="classification", only=["parse", "transform"], repeats=1)


class TestRunDirectory:
    def test_writes_all_artefacts(self, tmp_path):
        result = run_suite(out_root=str(tmp_path), **FAST)
        assert result.directory.parent == tmp_path
        assert result.manifest_path.is_file()
        assert result.metrics_path.is_file()
        assert result.summary_path.is_file()
        assert result.bench_path.name == "BENCH_classification.json"
        assert result.bench_path.is_file()

    def test_manifest_is_valid_and_pinned(self, tmp_path):
        result = run_suite(out_root=str(tmp_path), **FAST)
        manifest = json.loads(result.manifest_path.read_text())
        assert validate_manifest(manifest) == []
        assert manifest["suite"] == "classification"
        assert manifest["probes"] == ["parse", "transform"]
        assert manifest["environment"]["python"]

    def test_metrics_records_parse(self, tmp_path):
        result = run_suite(out_root=str(tmp_path), **FAST)
        records = read_metrics_jsonl(result.metrics_path.read_text())
        assert [r["probe"] for r in records] == ["parse", "transform"]
        assert all(r["status"] == "ok" for r in records)
        assert all(r["seconds"]["count"] == 1 for r in records)

    def test_summary_mentions_probes(self, tmp_path):
        result = run_suite(out_root=str(tmp_path), **FAST)
        text = result.summary_path.read_text()
        assert "| parse |" in text
        assert "repro eval run --suite classification" in text

    def test_run_ids_do_not_collide(self, tmp_path):
        first = run_suite(out_root=str(tmp_path), **FAST)
        second = run_suite(out_root=str(tmp_path), **FAST)
        assert first.run_id != second.run_id
        assert first.directory != second.directory


class TestDeterminism:
    def test_same_seed_identical_modulo_timing(self, tmp_path):
        first = run_suite(out_root=str(tmp_path), seed=0, **FAST)
        second = run_suite(out_root=str(tmp_path), seed=0, **FAST)
        first_records = read_metrics_jsonl(first.metrics_path.read_text())
        second_records = read_metrics_jsonl(second.metrics_path.read_text())
        assert [strip_timing(r) for r in first_records] == [
            strip_timing(r) for r in second_records
        ]


class TestUsageErrors:
    def test_unknown_suite(self, tmp_path):
        with pytest.raises(EvalRunError, match="unknown suite"):
            run_suite("no_such_suite", out_root=str(tmp_path))

    def test_unknown_probe(self, tmp_path):
        with pytest.raises(EvalRunError, match="unknown probes: bogus"):
            run_suite(
                "classification", out_root=str(tmp_path), only=["bogus"]
            )

    def test_scale_suite_needs_flag(self, tmp_path):
        with pytest.raises(EvalRunError, match="--scale"):
            run_suite("scaling_large", out_root=str(tmp_path))


class TestSuiteRegistry:
    def test_expected_suites(self):
        assert set(ALL_SUITES) == {
            "paper",
            "classification",
            "scaling_small",
            "scaling_large",
        }
        assert ALL_SUITES["scaling_large"].needs_scale
        assert not ALL_SUITES["scaling_small"].needs_scale

    def test_get_suite_raises_with_choices(self):
        with pytest.raises(KeyError, match="classification"):
            get_suite("nope")

    def test_suites_build_distinctly_named_probes(self):
        for name in ("classification", "scaling_small"):
            suite = ALL_SUITES[name]
            from repro.eval import EvalSettings

            probes = suite.build(EvalSettings(seed=0, scale=False))
            names = [probe.name for probe in probes]
            assert len(names) == len(set(names))


class TestCli:
    def test_eval_list(self, capsys):
        assert cli_main(["eval", "list"]) == 0
        out = capsys.readouterr().out
        assert "classification" in out
        assert "scaling_large" in out

    def test_eval_run_exit_zero(self, tmp_path, capsys):
        code = cli_main(
            [
                "eval", "run", "--suite", "classification",
                "--out", str(tmp_path),
                "--only", "parse", "--repeats", "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "run directory:" in out

    def test_eval_run_usage_error(self, tmp_path, capsys):
        code = cli_main(
            [
                "eval", "run", "--suite", "scaling_large",
                "--out", str(tmp_path),
            ]
        )
        assert code == 2
