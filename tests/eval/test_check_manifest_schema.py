"""check_manifest_schema.py tests: valid dirs pass, defects are reported."""

import importlib.util
import json
from pathlib import Path

from repro.eval import run_suite

SCRIPT = (
    Path(__file__).resolve().parents[2]
    / "scripts"
    / "check_manifest_schema.py"
)

spec = importlib.util.spec_from_file_location("check_manifest_schema", SCRIPT)
check_manifest_schema = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_manifest_schema)


def real_run(tmp_path):
    return run_suite(
        "classification",
        out_root=str(tmp_path),
        only=["parse"],
        repeats=1,
    )


class TestValidRun:
    def test_real_run_dir_passes(self, tmp_path, capsys):
        result = real_run(tmp_path)
        code = check_manifest_schema.main([str(result.directory)])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 run directory valid" in out


class TestDefects:
    def test_usage_error_without_args(self, capsys):
        assert check_manifest_schema.main([]) == 2
        assert "usage" in capsys.readouterr().out

    def test_missing_directory(self, tmp_path, capsys):
        code = check_manifest_schema.main([str(tmp_path / "nope")])
        assert code == 1
        assert "not a directory" in capsys.readouterr().out

    def test_corrupt_manifest(self, tmp_path, capsys):
        result = real_run(tmp_path)
        result.manifest_path.write_text("{not json")
        code = check_manifest_schema.main([str(result.directory)])
        assert code == 1
        assert "not JSON" in capsys.readouterr().out

    def test_invalid_metric_record(self, tmp_path, capsys):
        result = real_run(tmp_path)
        record = json.loads(result.metrics_path.read_text())
        record["status"] = "sideways"
        result.metrics_path.write_text(json.dumps(record) + "\n")
        code = check_manifest_schema.main([str(result.directory)])
        assert code == 1
        assert "unknown status" in capsys.readouterr().out

    def test_probe_list_mismatch(self, tmp_path, capsys):
        result = real_run(tmp_path)
        manifest = json.loads(result.manifest_path.read_text())
        manifest["probes"] = ["parse", "phantom"]
        result.manifest_path.write_text(json.dumps(manifest) + "\n")
        code = check_manifest_schema.main([str(result.directory)])
        assert code == 1
        assert "disagree" in capsys.readouterr().out

    def test_seed_mismatch(self, tmp_path, capsys):
        result = real_run(tmp_path)
        manifest = json.loads(result.manifest_path.read_text())
        manifest["seed"] = 99
        result.manifest_path.write_text(json.dumps(manifest) + "\n")
        code = check_manifest_schema.main([str(result.directory)])
        assert code == 1
        assert "seed" in capsys.readouterr().out
