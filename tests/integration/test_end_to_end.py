"""End-to-end flows a downstream user would run."""

from repro.baselines import ClassicalBaseline, SelectionReasoner
from repro.dl import (
    AtomicConcept,
    Individual,
    Reasoner,
)
from repro.dl.parser import parse_kb, parse_kb4
from repro.dl.printer import render_kb4
from repro.dl.owl import from_functional, to_functional
from repro.four_dl import (
    Reasoner4,
    collapse_to_classical,
    from_classical,
    transform_kb,
)
from repro.fourvalued import FourValue
from repro.workloads import GeneratorConfig, generate_kb4, inject_contradictions4


class TestAdoptInconsistentOntology:
    """The paper's pitch: take an inconsistent OWL DL ontology, move to
    SHOIN(D)4, keep reasoning."""

    SOURCE = """
    Employee subclassof Person
    Contractor subclassof not Employee
    pat : Employee
    pat : Contractor
    """

    def test_classical_collapse_then_recovery(self):
        kb = parse_kb(self.SOURCE)
        assert not Reasoner(kb).is_consistent()
        assert ClassicalBaseline(kb).is_trivial()

        kb4 = from_classical(kb)
        reasoner4 = Reasoner4(kb4)
        pat = Individual("pat")
        assert reasoner4.is_satisfiable()
        assert reasoner4.assertion_value(pat, AtomicConcept("Employee")) is (
            FourValue.BOTH
        )
        # The untouched part of the ontology still behaves classically.
        assert reasoner4.assertion_value(pat, AtomicConcept("Person")) is (
            FourValue.TRUE
        )
        # And the conflict is localised, not global.
        conflicts = reasoner4.contradictory_facts()
        assert pat in conflicts
        assert AtomicConcept("Person") not in conflicts[pat]


class TestFullToolchainRoundTrip:
    def test_parse_render_transform_owl_reason(self):
        kb4 = parse_kb4(
            """
            Bird and (hasWing some Wing) |-> Fly
            Penguin < Bird
            Penguin < not Fly
            tweety : Penguin
            """
        )
        # Text round trip.
        assert render_kb4(parse_kb4(render_kb4(kb4))) == render_kb4(kb4)
        # Transformation exports to standard OWL and reasons classically.
        induced = transform_kb(kb4)
        owl_doc = to_functional(induced)
        classical = Reasoner(from_functional(owl_doc))
        assert classical.is_consistent()

    def test_random_kb4_pipeline(self):
        config = GeneratorConfig(n_tbox=6, n_abox=8, max_depth=1, seed=11)
        kb4 = generate_kb4(config)
        inject_contradictions4(kb4, 2, seed=0)
        reasoner = Reasoner4(kb4)
        assert reasoner.is_satisfiable()
        report = reasoner.contradictory_facts()
        assert report  # injected conflicts are visible
        # The classical projection of the same KB is inconsistent.
        assert not Reasoner(collapse_to_classical(kb4)).is_consistent()


class TestBaselineComparison:
    def test_three_systems_on_one_conflict(self):
        kb = parse_kb(
            """
            A subclassof B
            x : A
            x : not B
            y : A
            """
        )
        x, y = Individual("x"), Individual("y")
        B = AtomicConcept("B")

        classical = ClassicalBaseline(kb)
        assert classical.is_trivial()

        selection = SelectionReasoner(kb)
        assert selection.query(x, B) == "undetermined"
        # y's evidence routes through the same conflicted symbols here, so
        # selection answers only if its relevant prefix stays consistent.

        reasoner4 = Reasoner4(from_classical(kb))
        assert reasoner4.assertion_value(x, B) is FourValue.BOTH
        assert reasoner4.assertion_value(y, B) is FourValue.TRUE
