"""Counter-backed evidence that trail search with backjumping beats copying.

Acceptance is measured in *work* (branch counters), not wall-clock: on
the shipped university ontology the trail engine must never explore more
branches than the copy-per-branch oracle, agree with it on every
verdict, and on a refutation query whose clash is independent of the
ontology's many root-level disjunction choices it must answer within a
branch budget the chronological search provably blows through.
"""

import os

import pytest

from repro.dl import And, Exists, Not, Or, Reasoner
from repro.dl.concepts import AtomicConcept
from repro.dl.errors import ReasonerLimitExceeded
from repro.dl.parser import parse_kb4
from repro.dl.roles import AtomicRole
from repro.four_dl import positive_concept, positive_role, transform_kb

ONTOLOGY_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "ontologies"
)


def _induced(name):
    with open(os.path.join(ONTOLOGY_DIR, name)) as handle:
        return transform_kb(parse_kb4(handle.read()))


def _pos(name):
    return positive_concept(AtomicConcept(name))


#: A concept unsatisfiable w.r.t. the university TBox: anything supervised
#: that is a professor or a lecturer is a person (via the Faculty/Staff
#: chain), so it cannot also lack positive Person evidence.  Refuting it
#: requires branching on the Professor/Lecturer disjunct *below* every
#: unrelated root-level choice the ontology's ABox opens.
def _impossible_supervisee():
    return Exists(
        positive_role(AtomicRole("supervises")),
        And.of(Or.of(_pos("Professor"), _pos("Lecturer")), Not(_pos("Person"))),
    )


def test_university_trail_answers_within_a_budget_copying_blows():
    induced = _induced("university.kb4")
    trail = Reasoner(induced, search="trail", use_cache=False)
    assert not trail.is_satisfiable(_impossible_supervisee())
    assert trail.stats.branches_explored < 100
    assert trail.stats.backjumps > 0
    assert trail.stats.branch_points_skipped > 0
    # the probe grows fresh successors, so incremental blocking actually ran
    assert trail.stats.blocking_checks > 0

    copying = Reasoner(
        induced, search="copying", use_cache=False, max_branches=5000
    )
    with pytest.raises(ReasonerLimitExceeded):
        copying.is_satisfiable(_impossible_supervisee())
    # strictly fewer branches: the oracle burnt its whole budget and the
    # trail finished in under 2% of it
    assert trail.stats.branches_explored < copying.stats.branches_explored


def test_university_battery_verdicts_agree_and_trail_never_does_more():
    induced = _induced("university.kb4")
    atoms = sorted(induced.concepts_in_signature(), key=lambda c: c.name)
    individuals = sorted(induced.individuals_in_signature())

    def battery(reasoner):
        answers = [reasoner.is_consistent()]
        answers += [
            reasoner.is_instance(individual, atom)
            for individual in individuals[:4]
            for atom in atoms
        ]
        return answers

    trail = Reasoner(induced, search="trail", use_cache=False)
    copying = Reasoner(induced, search="copying", use_cache=False)
    assert battery(trail) == battery(copying)
    assert trail.stats.branches_explored <= copying.stats.branches_explored
    assert trail.stats.tableau_runs == copying.stats.tableau_runs


def test_university_classification_identical_across_modes():
    induced = _induced("university.kb4")
    trail = Reasoner(induced, search="trail", use_cache=False)
    copying = Reasoner(induced, search="copying", use_cache=False)
    assert trail.classify() == copying.classify()
    assert trail.stats.branches_explored <= copying.stats.branches_explored
