"""Counter-backed evidence that traversal classification beats pairwise.

The acceptance criterion for the enhanced classifier is not wall-clock
(machine-dependent) but *work*: on the university ontology it must issue
strictly fewer tableau runs than the n^2 pairwise sweep, measured by the
reasoner's own counters.
"""

import os

import pytest

from repro.dl import Reasoner
from repro.dl.parser import parse_kb4
from repro.four_dl import transform_kb

ONTOLOGY_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "ontologies"
)


def _induced(name):
    with open(os.path.join(ONTOLOGY_DIR, name)) as handle:
        return transform_kb(parse_kb4(handle.read()))


def test_university_traversal_beats_pairwise_in_tableau_runs():
    induced = _induced("university.kb4")
    n = len(induced.concepts_in_signature())
    assert n >= 15  # the ontology is big enough for the gap to matter
    reasoner = Reasoner(induced)
    reasoner.classify()
    assert reasoner.stats.tableau_runs < n * n
    # the saving comes from told subsumers and traversal pruning
    assert reasoner.stats.told_subsumptions > 0


def test_pairwise_counter_baseline_is_quadratic():
    """``classify_pairwise`` honestly performs ~n^2 distinct tableau runs."""
    induced = _induced("penguin.kb4")
    n = len(induced.concepts_in_signature())
    # The counter baseline is about tableau work, so pin the engine.
    reasoner = Reasoner(induced, use_cache=False, engine="tableau")
    reasoner.classify_pairwise()
    assert reasoner.stats.tableau_runs == n * n


def test_university_traversal_beats_pairwise_head_to_head():
    """Same ontology, both classifiers, counters compared directly."""
    induced = _induced("university.kb4")
    traversal = Reasoner(induced)
    traversal.classify()
    pairwise = Reasoner(induced, use_cache=False)
    pairwise.classify_pairwise()
    assert traversal.stats.tableau_runs < pairwise.stats.tableau_runs


def test_classify_stats_survive_in_reasoner4():
    from repro.four_dl import Reasoner4

    with open(os.path.join(ONTOLOGY_DIR, "university.kb4")) as handle:
        kb4 = parse_kb4(handle.read())
    reasoner4 = Reasoner4(kb4)
    reasoner4.classify()
    n = len(transform_kb(kb4).concepts_in_signature())
    assert 0 < reasoner4.stats.tableau_runs < n * n
    assert reasoner4.stats.subsumption_tests > 0
