"""Cache-soundness regressions: no stale answers, traversal == pairwise.

The query cache and the traversal classifier are pure optimisations —
they must be observationally invisible.  These tests pin that down on the
shipped paper ontologies and on explicit mutate-after-query scenarios,
the exact situations where an unsound cache would first leak.
"""

import glob
import os

import pytest

from repro.dl import (
    AtomicConcept,
    ConceptAssertion,
    ConceptInclusion,
    Individual,
    KnowledgeBase,
    Not,
    Reasoner,
)
from repro.dl.parser import parse_kb4
from repro.four_dl import Reasoner4, transform_kb
from repro.fourvalued.truth import FourValue

ONTOLOGY_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "ontologies"
)
ONTOLOGY_FILES = sorted(glob.glob(os.path.join(ONTOLOGY_DIR, "*.kb4")))


def _load(path):
    with open(path) as handle:
        return parse_kb4(handle.read())


@pytest.mark.parametrize(
    "path", ONTOLOGY_FILES, ids=[os.path.basename(p) for p in ONTOLOGY_FILES]
)
def test_traversal_classification_matches_pairwise(path):
    """The enhanced classifier equals the old pairwise sweep exactly.

    Runs on the induced classical KB of each shipped ontology — the
    hierarchies the four-valued layer actually computes over.
    """
    induced = transform_kb(_load(path))
    traversal = Reasoner(induced).classify()
    pairwise = Reasoner(induced, use_cache=False).classify_pairwise()
    assert traversal == pairwise


@pytest.mark.parametrize(
    "path", ONTOLOGY_FILES, ids=[os.path.basename(p) for p in ONTOLOGY_FILES]
)
def test_cached_and_cold_audits_agree(path):
    """Full contradiction audits with and without the cache coincide."""
    kb4 = _load(path)
    assert (
        Reasoner4(kb4).contradictory_facts()
        == Reasoner4(kb4, use_cache=False).contradictory_facts()
    )


class TestMutationInvalidation:
    def test_new_inclusion_changes_the_answer(self):
        A, B = AtomicConcept("A"), AtomicConcept("B")
        x = Individual("x")
        kb = KnowledgeBase()
        kb.add(ConceptAssertion(x, A))
        reasoner = Reasoner(kb)
        assert not reasoner.is_instance(x, B)
        kb.add(ConceptInclusion(A, B))
        assert reasoner.is_instance(x, B)

    def test_new_assertion_flips_consistency(self):
        A = AtomicConcept("A")
        x = Individual("x")
        kb = KnowledgeBase()
        kb.add(ConceptAssertion(x, A))
        reasoner = Reasoner(kb)
        assert reasoner.is_consistent()
        kb.add(ConceptAssertion(x, Not(A)))
        assert not reasoner.is_consistent()

    def test_subsumption_cache_invalidates(self):
        A, B = AtomicConcept("A"), AtomicConcept("B")
        kb = KnowledgeBase()
        kb.add(ConceptAssertion(Individual("x"), A))
        reasoner = Reasoner(kb)
        assert not reasoner.subsumes(B, A)
        kb.add(ConceptInclusion(A, B))
        assert reasoner.subsumes(B, A)

    def test_classification_recomputes_after_mutation(self):
        A, B = AtomicConcept("A"), AtomicConcept("B")
        kb = KnowledgeBase()
        kb.add(ConceptAssertion(Individual("x"), A))
        kb.add(ConceptAssertion(Individual("y"), B))
        reasoner = Reasoner(kb)
        before = reasoner.classify()
        assert B not in before[A]
        kb.add(ConceptInclusion(A, B))
        after = reasoner.classify()
        assert B in after[A]

    def test_reasoner4_notices_kb4_mutation(self):
        A = AtomicConcept("A")
        x = Individual("x")
        kb4 = _load(os.path.join(ONTOLOGY_DIR, "adoption.kb4"))
        reasoner = Reasoner4(kb4)
        assert reasoner.assertion_value(x, A) is FourValue.NEITHER
        kb4.add(ConceptAssertion(x, A))
        assert reasoner.assertion_value(x, A) is FourValue.TRUE
        kb4.add(ConceptAssertion(x, Not(A)))
        assert reasoner.assertion_value(x, A) is FourValue.BOTH

    def test_transform_memo_refreshes_on_mutation(self):
        kb4 = _load(os.path.join(ONTOLOGY_DIR, "penguin.kb4"))
        first = transform_kb(kb4)
        from repro.four_dl import cached_transform_kb

        memoised = cached_transform_kb(kb4)
        assert memoised == first
        assert cached_transform_kb(kb4) is memoised  # served from the memo
        kb4.add(ConceptAssertion(Individual("opus"), AtomicConcept("Bird")))
        refreshed = cached_transform_kb(kb4)
        # The memo is updated *in place* (same object, so delegated
        # reasoners can watch its change log) and matches a transform
        # from scratch.
        assert refreshed is memoised
        assert refreshed == transform_kb(kb4)
        assert sorted(map(repr, refreshed.axioms())) == sorted(
            map(repr, transform_kb(kb4).axioms())
        )


class TestSharedCache:
    def test_two_reasoners_over_one_kb_share_verdicts(self):
        A, B = AtomicConcept("A"), AtomicConcept("B")
        x = Individual("x")
        kb = KnowledgeBase()
        kb.add(ConceptAssertion(x, A), ConceptInclusion(A, B))
        from repro.dl import QueryCache

        shared = QueryCache()
        first = Reasoner(kb, cache=shared)
        second = Reasoner(kb, cache=shared)
        assert first.is_instance(x, B)
        baseline = second.stats.snapshot()
        assert second.is_instance(x, B)
        delta = second.stats - baseline
        assert delta.tableau_runs == 0
        assert delta.cache_hits == 1

    def test_reasoner4_and_its_classical_reasoner_share_one_cache(self):
        kb4 = _load(os.path.join(ONTOLOGY_DIR, "penguin.kb4"))
        reasoner4 = Reasoner4(kb4)
        assert reasoner4.cache is reasoner4.classical_reasoner.cache
        assert reasoner4.stats is reasoner4.classical_reasoner.stats


class TestAbortedProbesNeverPoison:
    """Decided-only commit: aborted searches must leave no cache entry.

    Interleaves budget-aborted probes with successful ones on a single
    reasoner and demands that (a) nothing was stored for the aborted
    ask and (b) every later answer equals a cold reasoner's.
    """

    def _conflicted_kb(self):
        A, B = AtomicConcept("A"), AtomicConcept("B")
        x = Individual("x")
        kb = KnowledgeBase()
        kb.add(
            ConceptAssertion(x, A),
            ConceptInclusion(A, B),
            ConceptAssertion(Individual("y"), Not(B)),
        )
        return kb, A, B, x

    def test_aborted_probe_stores_nothing(self):
        from repro.dl import Budget

        kb, A, B, x = self._conflicted_kb()
        # Node caps only constrain the tableau; pin the engine so the
        # tiny budget actually aborts instead of saturation answering.
        reasoner = Reasoner(kb, engine="tableau")
        tight = Budget(max_nodes=1)
        verdict = reasoner.instance_verdict(x, B, budget=tight)
        # The probe must actually have been aborted for this test to bite.
        assert verdict.is_unknown()
        assert len(reasoner.cache) == 0
        assert reasoner.stats.budget_aborts >= 1

    def test_interleaved_aborts_match_cold_answers(self):
        from repro.dl import Budget

        kb, A, B, x = self._conflicted_kb()
        victim = Reasoner(kb)
        cold = Reasoner(kb, use_cache=False)
        tight = Budget(max_nodes=1)
        probes = [
            lambda r, budget=None: r.consistency_verdict(budget=budget),
            lambda r, budget=None: r.instance_verdict(x, B, budget=budget),
            lambda r, budget=None: r.instance_verdict(x, Not(A), budget=budget),
        ]
        for probe in probes:
            probe(victim, tight)  # may abort; must not commit
            warm = probe(victim)  # unbudgeted: decides and commits
            probe(victim, tight)  # abort again, now with a warm cache
            again = probe(victim)
            reference = probe(cold)
            assert not warm.is_unknown()
            assert bool(warm) == bool(again) == bool(reference)

    def test_abort_then_mutation_then_fresh_answers(self):
        from repro.dl import Budget

        kb, A, B, x = self._conflicted_kb()
        reasoner = Reasoner(kb, engine="tableau")
        tight = Budget(max_nodes=1)
        assert reasoner.instance_verdict(x, B, budget=tight).is_unknown()
        kb.add(ConceptAssertion(x, Not(B)))
        fresh = Reasoner(kb, use_cache=False)
        assert reasoner.is_consistent() == fresh.is_consistent()
        assert reasoner.is_instance(x, B) == fresh.is_instance(x, B)
