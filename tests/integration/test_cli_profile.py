"""CLI observability integration tests (--profile / --metrics-out / profile).

Includes the acceptance criterion of the telemetry subsystem: a profiled
``repro query`` on the shipped university ontology emits a span tree
whose exclusively-attributed phase durations sum to within 10% of the
root span's total, and the JSON-lines dump round-trips.
"""

import json
import os
import re

import pytest

from repro.cli import main
from repro.obs import phase_durations, read_spans_jsonl

ONTOLOGY_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "ontologies"
)
UNIVERSITY = os.path.join(ONTOLOGY_DIR, "university.kb4")
PENGUIN = os.path.join(ONTOLOGY_DIR, "penguin.kb4")


class TestProfileFlag:
    def test_bare_profile_prints_span_tree_and_breakdown(self, capsys):
        status = main(["query", UNIVERSITY, "anna", "Student", "--profile"])
        out = capsys.readouterr().out
        assert status in (0, 1)
        assert "query" in out
        assert "tableau_run" in out
        assert "Phase breakdown:" in out

    def test_profile_file_writes_round_trippable_jsonl(self, tmp_path, capsys):
        span_file = str(tmp_path / "spans.jsonl")
        main(["query", UNIVERSITY, "anna", "Student", "--profile", span_file])
        capsys.readouterr()
        with open(span_file) as handle:
            text = handle.read()
        for line in text.splitlines():
            json.loads(line)  # every line is standalone JSON
        roots = read_spans_jsonl(text)
        assert len(roots) == 1
        assert roots[0].name == "query"
        names = {span.name for span in roots[0].walk()}
        assert {"parse", "evidence_probe", "tableau_run"} <= names

    def test_phase_durations_sum_within_ten_percent_of_total(
        self, tmp_path, capsys
    ):
        span_file = str(tmp_path / "spans.jsonl")
        main(["query", UNIVERSITY, "anna", "Student", "--profile", span_file])
        capsys.readouterr()
        with open(span_file) as handle:
            roots = read_spans_jsonl(handle.read())
        total = sum(root.duration for root in roots)
        covered = sum(phase_durations(roots).values())
        assert total > 0
        assert covered <= total * 1.001  # exclusive attribution never exceeds
        assert covered >= total * 0.90, (
            f"phases cover only {100 * covered / total:.1f}% of the "
            f"{total:.4f}s root span"
        )

    def test_unknown_verdict_recorded_as_event(self, tmp_path, capsys):
        span_file = str(tmp_path / "spans.jsonl")
        status = main(
            [
                "query",
                UNIVERSITY,
                "anna",
                "Student",
                "--max-branches",
                "1",
                "--profile",
                span_file,
            ]
        )
        capsys.readouterr()
        assert status == 3
        with open(span_file) as handle:
            roots = read_spans_jsonl(handle.read())
        events = [
            event.name
            for root in roots
            for span in root.walk()
            for event in span.events
        ]
        assert "unknown_verdict" in events
        assert "budget_abort" in events


class TestMetricsOut:
    def test_metrics_file_is_prometheus_text(self, tmp_path, capsys):
        metrics_file = str(tmp_path / "metrics.prom")
        main(["check", PENGUIN, "--metrics-out", metrics_file])
        capsys.readouterr()
        with open(metrics_file) as handle:
            text = handle.read()
        assert "# TYPE repro_span_duration_seconds histogram" in text
        assert "# TYPE repro_tableau_runs_total counter" in text
        # Counter totals reflect real work (the check ran tableaux).
        match = re.search(r"^repro_tableau_runs_total (\d+)$", text, re.M)
        assert match and int(match.group(1)) > 0

    def test_metric_names_match_documented_schema(self, tmp_path, capsys):
        metrics_file = str(tmp_path / "metrics.prom")
        main(["check", PENGUIN, "--metrics-out", metrics_file])
        capsys.readouterr()
        with open(metrics_file) as handle:
            text = handle.read()
        for line in text.splitlines():
            if line.startswith("#") or not line.strip():
                continue
            name = re.match(r"([a-zA-Z_:][a-zA-Z0-9_:]*)", line).group(1)
            assert name.startswith("repro_"), f"undocumented metric {name!r}"


class TestProfileSubcommand:
    @pytest.fixture
    def span_file(self, tmp_path, capsys):
        path = str(tmp_path / "spans.jsonl")
        main(["query", UNIVERSITY, "anna", "Student", "--profile", path])
        capsys.readouterr()
        return path

    def test_report_table(self, span_file, capsys):
        status = main(["profile", span_file])
        out = capsys.readouterr().out
        assert status == 0
        assert "tableau_run" in out
        assert "share" in out

    def test_tree_flag(self, span_file, capsys):
        main(["profile", span_file, "--tree"])
        out = capsys.readouterr().out
        assert "  parse" in out

    def test_folded_output_is_flamegraph_compatible(
        self, span_file, tmp_path, capsys
    ):
        folded = str(tmp_path / "out.folded")
        status = main(["profile", span_file, "--folded", folded])
        capsys.readouterr()
        assert status == 0
        with open(folded) as handle:
            lines = handle.read().splitlines()
        assert lines
        for line in lines:
            assert re.fullmatch(r"[^ ]+(;[^ ]+)* \d+", line), line

    def test_rejects_malformed_span_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema": 1}\n')
        status = main(["profile", str(bad)])
        capsys.readouterr()
        assert status == 2


class TestFlagParity:
    """Every reasoning subcommand accepts the observability flags."""

    CASES = [
        ("check", [PENGUIN]),
        ("query", [PENGUIN, "tweety", "Fly"]),
        ("audit", [PENGUIN]),
        ("classify", [PENGUIN]),
        ("repair", [PENGUIN]),
    ]

    @pytest.mark.parametrize(
        "command,operands", CASES, ids=[c for c, _ in CASES]
    )
    def test_stats_flag(self, command, operands, capsys):
        status = main([command, *operands, "--stats"])
        out = capsys.readouterr().out
        assert status in (0, 1)
        assert "work: tableau runs:" in out

    @pytest.mark.parametrize(
        "command,operands", CASES, ids=[c for c, _ in CASES]
    )
    def test_profile_flag(self, command, operands, tmp_path, capsys):
        span_file = str(tmp_path / "spans.jsonl")
        status = main([command, *operands, "--profile", span_file])
        capsys.readouterr()
        assert status in (0, 1)
        with open(span_file) as handle:
            roots = read_spans_jsonl(handle.read())
        assert [root.name for root in roots] == [command]

    @pytest.mark.parametrize(
        "command,operands", CASES, ids=[c for c, _ in CASES]
    )
    def test_metrics_out_flag(self, command, operands, tmp_path, capsys):
        metrics_file = str(tmp_path / "metrics.prom")
        status = main([command, *operands, "--metrics-out", metrics_file])
        capsys.readouterr()
        assert status in (0, 1)
        with open(metrics_file) as handle:
            assert "repro_span_duration_seconds" in handle.read()


class TestNoObservabilityByDefault:
    def test_plain_run_writes_no_artefacts(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        status = main(["check", PENGUIN])
        capsys.readouterr()
        assert status in (0, 1)
        assert os.listdir(tmp_path) == []
