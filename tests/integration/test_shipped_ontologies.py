"""The ontology files shipped in ontologies/ parse, audit, and round-trip."""

import glob
import os

import pytest

from repro.cli import main
from repro.dl import Reasoner
from repro.dl.owl import from_functional, to_functional
from repro.dl.parser import parse_kb4
from repro.dl.printer import render_kb4
from repro.four_dl import Reasoner4, transform_kb

ONTOLOGY_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "ontologies"
)
ONTOLOGY_FILES = sorted(glob.glob(os.path.join(ONTOLOGY_DIR, "*.kb4")))


def test_directory_is_populated():
    names = {os.path.basename(path) for path in ONTOLOGY_FILES}
    assert {
        "penguin.kb4",
        "medical.kb4",
        "adoption.kb4",
        "university.kb4",
    } <= names


@pytest.mark.parametrize("path", ONTOLOGY_FILES, ids=os.path.basename)
class TestEveryShippedOntology:
    def test_parses(self, path):
        with open(path) as handle:
            kb4 = parse_kb4(handle.read())
        assert len(kb4) > 0

    def test_four_valued_satisfiable(self, path):
        with open(path) as handle:
            kb4 = parse_kb4(handle.read())
        assert Reasoner4(kb4).is_satisfiable()

    def test_text_round_trip(self, path):
        with open(path) as handle:
            kb4 = parse_kb4(handle.read())
        assert list(parse_kb4(render_kb4(kb4)).axioms()) == list(kb4.axioms())

    def test_induced_kb_exports_to_owl(self, path):
        with open(path) as handle:
            kb4 = parse_kb4(handle.read())
        induced = transform_kb(kb4)
        recovered = from_functional(to_functional(induced))
        assert list(recovered.axioms()) == list(induced.axioms())
        assert Reasoner(recovered).is_consistent()

    def test_cli_check(self, path, capsys):
        assert main(["check", path]) == 0
        assert "four-valued satisfiable: True" in capsys.readouterr().out


class TestPaperOntologiesCollapseClassically:
    """All three paper ontologies are classically inconsistent on purpose."""

    @pytest.mark.parametrize("name", ["penguin", "medical", "university"])
    def test_classical_collapse(self, name):
        from repro.four_dl import collapse_to_classical

        path = os.path.join(ONTOLOGY_DIR, f"{name}.kb4")
        with open(path) as handle:
            kb4 = parse_kb4(handle.read())
        assert not Reasoner(collapse_to_classical(kb4)).is_consistent()
