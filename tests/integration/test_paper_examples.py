"""Integration: the paper's worked Examples 1-5, end to end."""

import pytest

from repro.fourvalued import FourValue
from repro.harness.experiments import (
    experiment_example1,
    experiment_example2,
    experiment_example3_5,
    experiment_example4_queries,
    experiment_table4,
)


@pytest.mark.parametrize(
    "experiment",
    [
        experiment_example1,
        experiment_example2,
        experiment_example3_5,
        experiment_example4_queries,
        experiment_table4,
    ],
)
def test_experiment_reproduces_paper(experiment):
    result = experiment()
    assert result.passed, result.render()


class TestExample1FromConcreteSyntax:
    """Example 1 driven through the parser, like a real user would."""

    def test_full_pipeline(self):
        from repro.dl import AtomicConcept, Individual
        from repro.dl.parser import parse_kb4
        from repro.four_dl import Reasoner4

        kb4 = parse_kb4(
            """
            hasPatient some Patient < Doctor
            john : Doctor
            john : not Doctor
            mary : Patient
            hasPatient(bill, mary)
            """
        )
        reasoner = Reasoner4(kb4)
        bill, john = Individual("bill"), Individual("john")
        doctor = AtomicConcept("Doctor")
        assert reasoner.is_satisfiable()
        assert reasoner.evidence_for(bill, doctor)
        assert not reasoner.evidence_against(bill, doctor)
        assert reasoner.assertion_value(john, doctor) is FourValue.BOTH


class TestExample3ThroughOwlExchange:
    """Example 3's induced KB survives an OWL functional-syntax round trip
    and still answers the paper's queries (Example 5's point: any classical
    OWL DL system can do the reasoning)."""

    def test_induced_kb_owl_round_trip(self):
        from repro.dl import AtomicConcept, Individual, Reasoner
        from repro.dl.owl import from_functional, to_functional
        from repro.four_dl import transform_kb
        from repro.harness import example3_kb4

        induced = transform_kb(example3_kb4())
        recovered = from_functional(to_functional(induced))
        reasoner = Reasoner(recovered)
        tweety = Individual("tweety")
        assert reasoner.is_consistent()
        assert reasoner.is_instance(tweety, AtomicConcept("Fly__neg"))
        assert not reasoner.is_instance(tweety, AtomicConcept("Fly__pos"))
