"""CLI integration tests (python -m repro ...)."""

import pytest

from repro.cli import main

PENGUIN = """
Bird and (hasWing some Wing) |-> Fly
Penguin < Bird
Penguin < hasWing some Wing
Penguin < not Fly
tweety : Bird
tweety : Penguin
w : Wing
hasWing(tweety, w)
"""

CONFLICTED = """
SurgicalTeam < not ReadTeam
UrgencyTeam < ReadTeam
john : SurgicalTeam
john : UrgencyTeam
"""


@pytest.fixture
def penguin_file(tmp_path):
    path = tmp_path / "penguin.kb4"
    path.write_text(PENGUIN)
    return str(path)


@pytest.fixture
def conflicted_file(tmp_path):
    path = tmp_path / "teams.kb4"
    path.write_text(CONFLICTED)
    return str(path)


class TestCheck:
    def test_satisfiable_ontology(self, penguin_file, capsys):
        assert main(["check", penguin_file]) == 0
        output = capsys.readouterr().out
        assert "four-valued satisfiable: True" in output
        assert "classically consistent:  False" in output

    def test_missing_file(self, capsys):
        assert main(["check", "/nonexistent/file.kb4"]) == 2
        assert "error" in capsys.readouterr().err

    def test_parse_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.kb4"
        bad.write_text("this is ~~nonsense~~\n")
        assert main(["check", str(bad)]) == 2
        assert "parse error" in capsys.readouterr().err


class TestQuery:
    def test_false_status_exits_nonzero(self, penguin_file, capsys):
        assert main(["query", penguin_file, "tweety", "Fly"]) == 1
        assert "Fly(tweety) = f" in capsys.readouterr().out

    def test_true_status(self, penguin_file, capsys):
        assert main(["query", penguin_file, "tweety", "Penguin"]) == 0
        assert "= t" in capsys.readouterr().out

    def test_both_status(self, conflicted_file, capsys):
        assert main(["query", conflicted_file, "john", "ReadTeam"]) == 0
        assert "TOP" in capsys.readouterr().out

    def test_complex_concept_query(self, penguin_file, capsys):
        code = main(
            ["query", penguin_file, "tweety", "Bird and (hasWing some Wing)"]
        )
        assert code == 0


class TestAudit:
    def test_conflict_report(self, conflicted_file, capsys):
        assert main(["audit", conflicted_file, "--no-roles"]) == 1
        output = capsys.readouterr().out
        assert "inconsistency degree" in output
        assert "john" in output
        assert "ReadTeam" in output

    def test_clean_ontology_exits_zero(self, penguin_file, capsys):
        assert main(["audit", penguin_file, "--no-roles"]) == 0
        assert "no contradictions entailed" in capsys.readouterr().out

    def test_full_census(self, conflicted_file, capsys):
        main(["audit", conflicted_file, "--full", "--no-roles"])
        assert "Full fact census" in capsys.readouterr().out


class TestClassify:
    def test_internal_hierarchy(self, penguin_file, capsys):
        assert main(["classify", penguin_file]) == 0
        output = capsys.readouterr().out
        assert "Hierarchy (internal inclusion)" in output
        assert "Penguin" in output
        assert "Bird" in output

    def test_material_kind(self, penguin_file, capsys):
        assert main(["classify", penguin_file, "--kind", "material"]) == 0
        assert "material" in capsys.readouterr().out


class TestStatsFlag:
    def test_check_prints_work_counters(self, penguin_file, capsys):
        assert main(["check", penguin_file, "--stats"]) == 0
        output = capsys.readouterr().out
        assert "work: tableau runs:" in output
        assert "cache:" in output

    def test_query_prints_work_counters(self, penguin_file, capsys):
        main(["query", penguin_file, "tweety", "Penguin", "--stats"])
        assert "work: tableau runs:" in capsys.readouterr().out

    def test_audit_prints_work_counters(self, conflicted_file, capsys):
        main(["audit", conflicted_file, "--no-roles", "--stats"])
        assert "work: tableau runs:" in capsys.readouterr().out

    def test_classify_prints_work_counters(self, penguin_file, capsys):
        main(["classify", penguin_file, "--stats"])
        output = capsys.readouterr().out
        assert "work: tableau runs:" in output
        assert "subsumption tests:" in output

    def test_without_flag_no_counters(self, penguin_file, capsys):
        main(["check", penguin_file])
        assert "work:" not in capsys.readouterr().out


class TestSearchFlag:
    def test_trail_is_the_default_and_reports_trail_counters(
        self, penguin_file, capsys
    ):
        assert main(["check", penguin_file, "--stats"]) == 0
        assert "trail:" in capsys.readouterr().out

    def test_copying_mode_omits_trail_counters(self, penguin_file, capsys):
        assert main(["check", penguin_file, "--stats", "--search", "copying"]) == 0
        assert "trail:" not in capsys.readouterr().out

    def test_modes_agree_on_the_answer(self, penguin_file, capsys):
        trail = main(["query", penguin_file, "tweety", "Penguin", "--search", "trail"])
        trail_out = capsys.readouterr().out.splitlines()[0]
        copying = main(
            ["query", penguin_file, "tweety", "Penguin", "--search", "copying"]
        )
        copying_out = capsys.readouterr().out.splitlines()[0]
        assert trail == copying
        assert trail_out == copying_out

    def test_unknown_mode_is_a_usage_error(self, penguin_file, capsys):
        with pytest.raises(SystemExit):
            main(["check", penguin_file, "--search", "dfs"])


class TestTransformAndExport:
    def test_transform_prints_induced_kb(self, penguin_file, capsys):
        assert main(["transform", penguin_file]) == 0
        output = capsys.readouterr().out
        assert "Penguin__pos subclassof Fly__neg" in output

    def test_export_owl(self, penguin_file, capsys):
        assert main(["export-owl", penguin_file, "--iri", "http://x"]) == 0
        output = capsys.readouterr().out
        assert output.startswith("Prefix(:=<http://x#>)")
        assert "SubClassOf(:Penguin__pos :Fly__neg)" in output

    def test_exported_owl_parses_back(self, penguin_file, capsys):
        from repro.dl.owl import from_functional

        main(["export-owl", penguin_file])
        document = capsys.readouterr().out
        kb = from_functional(document)
        assert len(kb) > 0


class TestRepair:
    def test_diagnoses_conflicted_ontology(self, conflicted_file, capsys):
        assert main(["repair", conflicted_file]) == 1
        output = capsys.readouterr().out
        assert "justifications found: 1" in output
        assert "minimal repairs: 4" in output

    def test_consistent_ontology_needs_nothing(self, penguin_file, capsys):
        # The penguin KB4 is classically consistent once the material
        # inclusion is transformed away?  No: its *collapse* is
        # inconsistent, so repair reports justifications.
        code = main(["repair", penguin_file])
        output = capsys.readouterr().out
        assert code == 1
        assert "justifications found" in output

    def test_clean_file(self, tmp_path, capsys):
        clean = tmp_path / "clean.kb4"
        clean.write_text("A < B\nx : A\n")
        assert main(["repair", str(clean)]) == 0
        assert "nothing to repair" in capsys.readouterr().out


class TestExperimentsCommand:
    def test_single_experiment(self, capsys):
        assert main(["experiments", "table1"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output and "PASS" in output

    def test_unknown_experiment(self, capsys):
        assert main(["experiments", "nope"]) == 2
        assert "unknown experiments" in capsys.readouterr().err
