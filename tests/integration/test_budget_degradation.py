"""End-to-end degradation: every public service answers UNKNOWN, not a crash.

Covers the acceptance scenario (an exponential KB blowing a 100ms
deadline degrades fast and decides under escalation), the four-valued
degrading services, skip-and-record in all four baselines, and the CLI
budget flags with exit status 3.
"""

import time

import pytest

from repro.cli import main
from repro.dl import (
    And,
    AtomicConcept,
    Budget,
    ConceptAssertion,
    ConceptInclusion,
    DegradationReason,
    Individual,
    KnowledgeBase,
    Not,
    Or,
    Reasoner,
    retry_with_escalation,
)
from repro.four_dl import ConceptInclusion4, InclusionKind, Reasoner4, from_classical
from repro.fourvalued.truth import FourValue

X = Individual("x")


def exponential_kb(levels):
    """Forced full exploration: x picks one of {A_i, B_i} per level, every
    total choice derives all Q_i, their conjunction forces P, and x : not P
    clashes only at the leaves — so refutation visits ~2^levels branches
    and dependency-directed backjumping cannot prune (each clash depends
    on every level's choice)."""
    kb = KnowledgeBase()
    P = AtomicConcept("P")
    picks, qs = [], []
    for i in range(levels):
        A, B, Q = (
            AtomicConcept(f"A{i}"),
            AtomicConcept(f"B{i}"),
            AtomicConcept(f"Q{i}"),
        )
        kb.add(ConceptInclusion(A, Q), ConceptInclusion(B, Q))
        picks.append(Or.of(A, B))
        qs.append(Q)
    kb.add(ConceptInclusion(And.of(*qs), P))
    kb.add(ConceptAssertion(X, And.of(*picks)))
    kb.add(ConceptAssertion(X, Not(P)))
    return kb


def conflicted_kb4():
    kb = KnowledgeBase()
    Penguin, Bird, CanFly = (
        AtomicConcept("Penguin"),
        AtomicConcept("Bird"),
        AtomicConcept("CanFly"),
    )
    tweety = Individual("tweety")
    kb.add(
        ConceptInclusion(Penguin, Bird),
        ConceptInclusion(Penguin, Not(CanFly)),
        ConceptInclusion(Bird, CanFly),
        ConceptAssertion(tweety, Penguin),
    )
    return from_classical(kb), tweety, CanFly


class TestExponentialKBAcceptance:
    """The headline robustness scenario from the issue."""

    def test_100ms_deadline_degrades_within_500ms(self):
        reasoner = Reasoner(exponential_kb(12), use_cache=False)
        started = time.monotonic()
        verdict = reasoner.consistency_verdict(budget=Budget(deadline=0.1))
        elapsed = time.monotonic() - started
        assert verdict.is_unknown()
        assert verdict.reason is DegradationReason.DEADLINE
        assert elapsed < 0.5, f"degradation took {elapsed:.3f}s"
        assert reasoner.stats.budget_aborts == 1

    def test_escalation_turns_unknown_into_a_decision(self):
        reasoner = Reasoner(exponential_kb(12), use_cache=False)

        def probe(budget):
            return reasoner.consistency_verdict(budget=budget)

        verdict = retry_with_escalation(
            probe,
            Budget(deadline=0.1),
            factor=8.0,
            attempts=3,
            stats=reasoner.stats,
        )
        assert verdict.is_false()  # the KB is inconsistent by construction
        assert reasoner.stats.escalations >= 1

    def test_branch_escalation_is_deterministic(self):
        """Timing-free variant: escalate a branch cap, not a deadline."""
        reasoner = Reasoner(exponential_kb(8), use_cache=False)

        def probe(budget):
            return reasoner.consistency_verdict(budget=budget)

        first = probe(Budget(max_branches=100))
        assert first.is_unknown()
        assert first.reason is DegradationReason.BRANCHES
        verdict = retry_with_escalation(
            probe, Budget(max_branches=100), factor=16.0, attempts=3
        )
        assert verdict.is_false()


class TestReasoner4Degradation:
    def test_satisfiability_verdict_degrades(self):
        kb4, tweety, CanFly = conflicted_kb4()
        # Work caps are tableau-specific; pin the engine so the tiny
        # trail budget actually bites instead of saturation answering.
        reasoner = Reasoner4(kb4, engine="tableau")
        verdict = reasoner.is_satisfiable_verdict(budget=Budget(max_trail=1))
        assert verdict.is_unknown()
        assert reasoner.is_satisfiable() is True  # reusable afterwards

    def test_assertion_value_bounded_degrades_and_recovers(self):
        kb4, tweety, CanFly = conflicted_kb4()
        reasoner = Reasoner4(kb4, engine="tableau")
        bounded = reasoner.assertion_value_bounded(
            tweety, CanFly, budget=Budget(max_trail=1)
        )
        assert bounded.is_unknown()
        assert bounded.value is None
        full = reasoner.assertion_value_bounded(tweety, CanFly)
        assert not full.is_unknown()
        assert full.value is FourValue.BOTH
        assert reasoner.assertion_value(tweety, CanFly) is FourValue.BOTH

    def test_entails_verdict_matches_entails(self):
        kb4, tweety, CanFly = conflicted_kb4()
        reasoner = Reasoner4(kb4)
        axiom = ConceptAssertion(tweety, CanFly)
        assert bool(reasoner.entails_verdict(axiom)) == reasoner.entails(axiom)

    def test_classify_bounded_partial_rows_match_full(self):
        kb4, tweety, CanFly = conflicted_kb4()
        full = Reasoner4(kb4).classify(kind=InclusionKind.INTERNAL)
        partial = Reasoner4(kb4).classify_bounded(
            kind=InclusionKind.INTERNAL, budget=Budget(max_branches=8)
        )
        for atom, supers in partial.hierarchy.items():
            assert supers == full[atom]
        decided = sum(1 for _ in partial.hierarchy)
        assert decided < len(full) or partial.complete

    def test_classify_bounded_unbudgeted_is_complete(self):
        kb4, tweety, CanFly = conflicted_kb4()
        reasoner = Reasoner4(kb4)
        partial = reasoner.classify_bounded(kind=InclusionKind.INTERNAL)
        assert partial.complete
        assert partial.hierarchy == reasoner.classify(
            kind=InclusionKind.INTERNAL
        )


class TestBaselineDegradation:
    def _classical_conflicted(self):
        kb4, tweety, CanFly = conflicted_kb4()
        from repro.four_dl import collapse_to_classical

        return collapse_to_classical(kb4), tweety, CanFly

    def _residual_conflicted(self):
        """The conflicted KB with its clash routed through a disjunction.

        ``Or`` keeps every consistency probe outside the saturation
        fragment, so the baselines' internal reasoners must run the
        tableau and the crafted work budgets below genuinely bite.
        """
        from repro.dl import BOTTOM, ConceptInclusion, KnowledgeBase, Or

        kb, tweety, CanFly = self._classical_conflicted()
        residual = KnowledgeBase()
        for axiom in kb.axioms():
            if isinstance(axiom, ConceptInclusion) and axiom.sup == CanFly:
                residual.add(
                    ConceptInclusion(axiom.sub, Or.of(CanFly, BOTTOM))
                )
            else:
                residual.add(axiom)
        return residual, tweety, CanFly

    def test_repair_reasoner_records_and_returns(self):
        from repro.baselines import RepairReasoner

        kb, tweety, CanFly = self._residual_conflicted()
        repairer = RepairReasoner(kb, budget=Budget(max_trail=1))
        assert repairer.justifications == []
        assert repairer.degradations, "expected skip-and-record entries"
        assert all(
            record.reason is DegradationReason.TRAIL
            for record in repairer.degradations
        )

    def test_repair_reasoner_unbudgeted_still_works(self):
        from repro.baselines import RepairReasoner

        kb, tweety, CanFly = self._classical_conflicted()
        repairer = RepairReasoner(kb)
        assert repairer.justifications
        assert repairer.degradations == []
        assert repairer.query(tweety, CanFly) in {
            "accepted",
            "rejected",
            "undetermined",
        }

    def test_selection_reasoner_degrades_to_undetermined(self):
        from repro.baselines import SelectionReasoner

        kb, tweety, CanFly = self._residual_conflicted()
        selector = SelectionReasoner(kb, budget=Budget(max_trail=1))
        # the undecidable ring stops the linear extension and is recorded;
        # the query still answers soundly over the rings decided so far
        assert selector.query(tweety, CanFly) in {
            "accepted",
            "rejected",
            "undetermined",
        }
        assert selector.degradations

    def test_selection_reasoner_unbudgeted_unchanged(self):
        from repro.baselines import SelectionReasoner

        kb, tweety, CanFly = self._classical_conflicted()
        selector = SelectionReasoner(kb)
        assert selector.query(tweety, CanFly) in {
            "accepted",
            "rejected",
            "undetermined",
        }
        assert selector.degradations == []

    def test_stratified_reasoner_drops_undecidable_strata(self):
        from repro.baselines import StratifiedReasoner, default_stratification

        kb, tweety, CanFly = self._residual_conflicted()
        bounded = StratifiedReasoner(
            default_stratification(kb), budget=Budget(max_trail=1)
        )
        assert bounded.degradations
        # conservative: nothing retained when nothing was provable
        assert bounded.query(tweety, CanFly) == "undetermined"

    def test_stratified_reasoner_unbudgeted_unchanged(self):
        from repro.baselines import StratifiedReasoner, default_stratification

        kb, tweety, CanFly = self._classical_conflicted()
        plain = StratifiedReasoner(default_stratification(kb))
        assert plain.degradations == []
        assert plain.query(tweety, CanFly) in {
            "accepted",
            "rejected",
            "undetermined",
        }

    def test_classical_baseline_query_status_unknown(self):
        from repro.baselines import ClassicalBaseline

        kb, tweety, CanFly = self._classical_conflicted()
        baseline = ClassicalBaseline(kb, budget=Budget(max_trail=1))
        assert baseline.query_status(tweety, CanFly) == "unknown"
        unbounded = ClassicalBaseline(kb)
        assert unbounded.query_status(tweety, CanFly) == "both"


CONFLICTED_TEXT = """
Penguin subclassof Bird
Penguin subclassof not CanFly
Bird subclassof CanFly
tweety : Penguin
"""


class TestCLIBudgetFlags:
    @pytest.fixture()
    def ontology(self, tmp_path):
        path = tmp_path / "conflicted.kb4"
        path.write_text(CONFLICTED_TEXT)
        return str(path)

    def test_check_timeout_exits_3(self, ontology, capsys):
        code = main(["check", ontology, "--timeout", "0.000001"])
        out = capsys.readouterr().out
        assert code == 3
        assert "unknown" in out
        assert "Traceback" not in out

    def test_check_generous_budget_decides(self, ontology, capsys):
        code = main(["check", ontology, "--timeout", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "four-valued satisfiable: True" in out

    def test_query_branch_cap_exits_3(self, ontology, capsys):
        code = main(
            [
                "query",
                ontology,
                "tweety",
                "CanFly",
                "--max-branches",
                "1",
                "--engine",
                "tableau",
            ]
        )
        out = capsys.readouterr().out
        assert code == 3
        assert "unknown" in out

    def test_query_unbudgeted_still_answers_both(self, ontology, capsys):
        code = main(["query", ontology, "tweety", "CanFly"])
        out = capsys.readouterr().out
        assert code == 0
        assert "contradictory evidence" in out

    def test_classify_partial_hierarchy_exits_3(self, ontology, capsys):
        code = main(
            ["classify", ontology, "--max-branches", "1", "--engine", "tableau"]
        )
        out = capsys.readouterr().out
        assert code == 3
        assert "undecided" in out

    def test_classify_with_room_exits_0(self, ontology, capsys):
        code = main(["classify", ontology, "--timeout", "30"])
        assert code == 0

    def test_repair_timeout_exits_3(self, ontology, capsys):
        code = main(["repair", ontology, "--timeout", "0.000001"])
        out = capsys.readouterr().out
        assert code == 3
        assert "unknown" in out

    def test_repair_unbudgeted_unchanged(self, ontology, capsys):
        code = main(["repair", ontology])
        out = capsys.readouterr().out
        assert code == 1
        assert "justifications found" in out

    def test_max_nodes_flag_exits_3(self, tmp_path, capsys):
        # an existential forces a second completion-graph node
        path = tmp_path / "deep.kb4"
        path.write_text(
            CONFLICTED_TEXT + "tweety : hasAncestor some Bird\n"
        )
        code = main(
            ["check", str(path), "--max-nodes", "1", "--engine", "tableau"]
        )
        assert code == 3
