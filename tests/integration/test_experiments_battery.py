"""The whole experiment battery must reproduce the paper."""

import pytest

from repro.harness import ALL_EXPERIMENTS

FAST_EXPERIMENTS = [
    name
    for name in ALL_EXPERIMENTS
    if name not in ("theorem6", "transform_scaling", "reduction_overhead")
]


@pytest.mark.parametrize("name", FAST_EXPERIMENTS)
def test_fast_experiment_passes(name):
    result = ALL_EXPERIMENTS[name]()
    assert result.passed, result.render()


def test_theorem6_experiment_smaller_sample():
    from repro.harness.experiments import experiment_theorem6

    result = experiment_theorem6(trials=8, seed=3)
    assert result.passed, result.render()


def test_transform_scaling_short_sweep():
    from repro.harness.experiments import experiment_transform_scaling

    result = experiment_transform_scaling(sizes=(10, 40, 120))
    assert result.passed, result.render()


def test_results_render_as_tables():
    result = ALL_EXPERIMENTS["table1"]()
    rendered = result.render()
    assert "Table 1" in rendered
    assert rendered.count("|") > 10
