"""A realistic multi-feature ontology, end to end through the text syntax.

One mid-sized university ontology exercising most of the implemented
language: taxonomy with all three inclusion strengths, role hierarchy,
inverse roles, transitivity, qualified counting, datatypes, nominals,
negative role assertions, and a couple of deliberately conflicting
imports.  The tests pin down dozens of expected entailments.
"""

import pytest

from repro.dl import AtomicConcept, AtomicRole, Individual, Reasoner
from repro.dl.parser import parse_kb4
from repro.four_dl import (
    Reasoner4,
    collapse_to_classical,
    conflict_profile,
    transform_kb,
)
from repro.fourvalued import FourValue

ONTOLOGY = """
# ---- declarations -------------------------------------------------
dataproperty credits
transitive partOfOrg

# ---- terminology --------------------------------------------------
Professor < Faculty
Lecturer < Faculty
Faculty < Staff
Staff < Person
Student < Person
# exact: whoever teaches something is staff (strong: not-staff can't teach)
teaches some Course -> Staff
# generally, faculty hold doctorates (exceptions tolerated)
Faculty |-> Doctorate
# supervising two funded students makes you a ProjectLead
supervises min 2 FundedStudent < ProjectLead
FundedStudent < Student
# courses worth credits
Course < credits some integer[1..30]
# heads of department are professors, and the department is an organisation
headOf some Department -> Professor
Department < Organisation
# role hierarchy
headOf subpropertyof memberOf
memberOf subpropertyof affiliatedWith

# ---- facts ---------------------------------------------------------
ada : Professor
ada : Doctorate
grace : Lecturer
# grace has no doctorate -- an exception, not a contradiction:
grace : not Doctorate
alan : Student
kurt : FundedStudent
emmy : FundedStudent
kurt != emmy
supervises(ada, kurt)
supervises(ada, emmy)
teaches(grace, logic101)
logic101 : Course
credits(logic101, 10)
headOf(ada, mathsDept)
mathsDept : Department
partOfOrg(mathsDept, scienceFaculty)
partOfOrg(scienceFaculty, university)
# corrupted import: alan recorded both as enrolled and as not enrolled
enrolledIn(alan, logic101)
not enrolledIn(alan, logic101)
# nominal: the rector is a specific person
Rector < {ada}
"""


@pytest.fixture(scope="module")
def reasoner():
    return Reasoner4(parse_kb4(ONTOLOGY))


def value(reasoner, name, concept_name):
    return reasoner.assertion_value(
        Individual(name), AtomicConcept(concept_name)
    )


class TestTaxonomy:
    def test_professor_chain(self, reasoner):
        assert value(reasoner, "ada", "Faculty") is FourValue.TRUE
        assert value(reasoner, "ada", "Staff") is FourValue.TRUE
        assert value(reasoner, "ada", "Person") is FourValue.TRUE

    def test_lecturer_chain(self, reasoner):
        assert value(reasoner, "grace", "Staff") is FourValue.TRUE

    def test_students_are_persons(self, reasoner):
        assert value(reasoner, "alan", "Person") is FourValue.TRUE
        assert value(reasoner, "kurt", "Person") is FourValue.TRUE

    def test_no_overreach(self, reasoner):
        assert value(reasoner, "alan", "Staff") is FourValue.NEITHER
        assert value(reasoner, "ada", "Student") is FourValue.NEITHER


class TestExceptionsAndConflicts:
    def test_grace_is_an_exception_not_a_conflict(self, reasoner):
        # Material Faculty |-> Doctorate tolerates grace.
        assert value(reasoner, "grace", "Doctorate") is FourValue.FALSE
        assert value(reasoner, "ada", "Doctorate") is FourValue.TRUE

    def test_alan_enrolment_is_conflicted(self, reasoner):
        enrolled = AtomicRole("enrolledIn")
        status = reasoner.role_value(
            enrolled, Individual("alan"), Individual("logic101")
        )
        assert status is FourValue.BOTH

    def test_conflicts_are_localised(self, reasoner):
        # The enrolment conflict does not contaminate concept facts.
        assert reasoner.contradictory_facts() == {}

    def test_whole_kb_satisfiable_classically_not(self, reasoner):
        assert reasoner.is_satisfiable()
        assert not Reasoner(
            collapse_to_classical(reasoner.kb4)
        ).is_consistent()


class TestQualifiedCounting:
    def test_ada_is_project_lead(self, reasoner):
        assert value(reasoner, "ada", "ProjectLead") is FourValue.TRUE

    def test_single_supervision_insufficient(self):
        single = ONTOLOGY.replace("supervises(ada, emmy)\n", "")
        reasoner = Reasoner4(parse_kb4(single))
        assert value(reasoner, "ada", "ProjectLead") is FourValue.NEITHER


class TestStrongInclusions:
    def test_teaching_implies_staff(self, reasoner):
        assert value(reasoner, "grace", "Staff") is FourValue.TRUE

    def test_head_of_department_is_professor(self, reasoner):
        assert value(reasoner, "ada", "Professor") is FourValue.TRUE

    def test_contraposition_of_strong_inclusion(self):
        # Strong: not-Staff propagates back to "teaches nothing relevant".
        extended = ONTOLOGY + "\nvisitor : not Staff\n"
        reasoner = Reasoner4(parse_kb4(extended))
        from repro.dl.parser import parse_concept

        teaches_course = parse_concept("teaches some Course")
        assert reasoner.evidence_against(Individual("visitor"), teaches_course)


class TestRoleMachinery:
    def test_role_hierarchy(self, reasoner):
        affiliated = AtomicRole("affiliatedWith")
        assert reasoner.role_evidence_for(
            affiliated, Individual("ada"), Individual("mathsDept")
        )

    def test_transitive_organisation(self, reasoner):
        part_of = AtomicRole("partOfOrg")
        assert reasoner.role_evidence_for(
            part_of, Individual("mathsDept"), Individual("university")
        )

    def test_nominal_rector(self):
        extended = ONTOLOGY + "\nsomeone : Rector\n"
        reasoner = Reasoner4(parse_kb4(extended))
        # The rector collapses onto ada, so someone is a professor.
        assert value(reasoner, "someone", "Professor") is FourValue.TRUE


class TestMetricsOnRealisticOntology:
    def test_profile(self, reasoner):
        profile = conflict_profile(reasoner)
        assert profile.inconsistency_degree < 0.05
        assert profile.information_degree > 0.1
        # the only BOTH is the role conflict
        assert profile.count(FourValue.BOTH) == 1


class TestTransformationScale:
    def test_induced_kb_parses_and_reasons(self, reasoner):
        induced = transform_kb(reasoner.kb4)
        classical = Reasoner(induced)
        assert classical.is_consistent()
        assert classical.is_instance(
            Individual("ada"), AtomicConcept("ProjectLead__pos")
        )
