"""Differential fuzzing: every reasoning path must agree with its oracle.

Three independent implementations answer overlapping questions, so on
seeded random KBs we cross-check them pairwise:

* **cached vs cold** — a :class:`Reasoner` with the query cache enabled
  must give exactly the answers of one with the cache disabled, on the
  same probe sequence (including deliberately repeated probes, the case
  the cache actually rewrites);
* **Reasoner4 vs transform-then-classical** — every four-valued verdict
  is recomputed by hand through :func:`transform_kb` plus a fresh
  classical reasoner, bypassing ``Reasoner4``'s shared cache and
  memoised transform entirely;
* **tableau vs model enumeration** — on tiny signatures the brute-force
  enumerator is conclusive and arbitrates both of the above;
* **trail vs copying search** — the backjumping trail engine must match
  the copy-per-branch oracle verdict for verdict while never exploring
  more branches;
* **saturation vs trail tableau** — on seeded KBs drawn entirely from
  the tractable fragment, the consequence-driven fast path must agree
  with a tableau-pinned reasoner on satisfiability verdicts, the
  classification taxonomy and four-valued assertion values, while
  actually answering (zero tableau fallbacks on complete-mode KBs);
* **incremental vs cold** — seeded add/remove/re-add edit sequences
  over scaling-corpus KB4s, where a long-lived reasoner using
  fine-grained invalidation must answer byte-identically to a reasoner
  built from scratch after every single mutation, while its survival
  counters prove entries actually outlived the edits.

The seeds are fixed ranges, not hypothesis draws, so a failure names the
exact KB: rebuild it with ``generate_kb(GeneratorConfig(seed=...))``.
Across the parametrised cases the suite covers well over 200 distinct
seeded KBs with the cache both on and off.
"""

import random

import pytest

from repro.dl import (
    TOP,
    And,
    AtomicConcept,
    AtomicRole,
    ConceptAssertion,
    ConceptInclusion,
    Exists,
    Forall,
    Individual,
    KnowledgeBase,
    Not,
    RoleAssertion,
    RoleInclusion,
    fragment_report,
)
from repro.dl.reasoner import Reasoner
from repro.four_dl.axioms4 import ConceptInclusion4, InclusionKind
from repro.four_dl.reasoner4 import Reasoner4
from repro.four_dl.transform import neg_transform, pos_transform, transform_kb
from repro.fourvalued.truth import from_evidence
from repro.semantics import classical_satisfiable_by_enumeration
from repro.workloads import (
    GeneratorConfig,
    ScalingConfig,
    ScalingProfile,
    generate_kb,
    generate_kb4,
    generate_scaling_kb4,
)

SMALL = dict(
    n_concepts=3, n_roles=1, n_individuals=2, n_tbox=3, n_abox=4, max_depth=1
)
TINY = dict(
    n_concepts=2,
    n_roles=1,
    n_individuals=2,
    n_tbox=2,
    n_abox=3,
    max_depth=1,
    allow_quantifiers=False,
)


def _signature(kb):
    atoms = sorted(kb.concepts_in_signature(), key=lambda a: a.name)
    individuals = sorted(kb.individuals_in_signature(), key=lambda i: i.name)
    return atoms, individuals


def _probe_answers(reasoner, atoms, individuals):
    """A deterministic battery of queries, each asked twice.

    The duplicate pass makes the cached reasoner actually serve hits;
    a cold reasoner recomputes, so any unsoundness in key canonicalisation
    or storage shows up as a verdict flip between the two passes.
    """
    answers = []
    for _ in range(2):
        answers.append(reasoner.is_consistent())
        for sub in atoms:
            for sup in atoms:
                answers.append(reasoner.subsumes(sub, sup))
        for individual in individuals:
            for atom in atoms:
                answers.append(reasoner.is_instance(individual, atom))
        answers.append(
            reasoner.entails_all(
                ConceptInclusion(sub, sup)
                for sub in atoms
                for sup in atoms
            )
        )
    return answers


class TestCachedVsCold:
    @pytest.mark.parametrize("seed", range(100))
    def test_classical_verdicts_agree(self, seed):
        kb = generate_kb(GeneratorConfig(seed=seed, **SMALL))
        atoms, individuals = _signature(kb)
        cached = Reasoner(kb)
        cold = Reasoner(kb, use_cache=False)
        assert _probe_answers(cached, atoms, individuals) == _probe_answers(
            cold, atoms, individuals
        )
        # the duplicate pass must have been served from the cache
        assert cached.stats.cache_hits > 0
        assert cold.stats.cache_hits == 0

    @pytest.mark.parametrize("seed", range(40))
    def test_classification_agrees(self, seed):
        kb = generate_kb(GeneratorConfig(seed=seed, **SMALL))
        cached = Reasoner(kb).classify()
        cold = Reasoner(kb, use_cache=False).classify()
        pairwise = Reasoner(kb, use_cache=False).classify_pairwise()
        assert cached == cold == pairwise


class TestReasoner4VsTransform:
    @pytest.mark.parametrize("seed", range(60))
    def test_assertion_values_match_manual_reduction(self, seed):
        kb4 = generate_kb4(GeneratorConfig(seed=seed, **SMALL))
        atoms = sorted(kb4.concepts_in_signature(), key=lambda a: a.name)
        individuals = sorted(
            kb4.individuals_in_signature(), key=lambda i: i.name
        )
        reasoner4 = Reasoner4(kb4)
        # independent path: re-transform from scratch, no shared cache
        induced = transform_kb(kb4)
        oracle = Reasoner(induced, use_cache=False)
        for individual in individuals:
            for atom in atoms:
                expected = from_evidence(
                    oracle.entails(
                        ConceptAssertion(individual, pos_transform(atom))
                    ),
                    oracle.entails(
                        ConceptAssertion(individual, neg_transform(atom))
                    ),
                )
                assert (
                    reasoner4.assertion_value(individual, atom) is expected
                ), f"seed={seed} {atom.name}({individual.name})"

    @pytest.mark.parametrize("seed", range(30))
    def test_batched_values_match_singles(self, seed):
        kb4 = generate_kb4(GeneratorConfig(seed=seed, **SMALL))
        atoms = sorted(kb4.concepts_in_signature(), key=lambda a: a.name)
        individuals = sorted(
            kb4.individuals_in_signature(), key=lambda i: i.name
        )
        pairs = [(i, a) for i in individuals for a in atoms]
        batched = Reasoner4(kb4).assertion_values(pairs)
        cold = Reasoner4(kb4, use_cache=False)
        for individual, atom in pairs:
            assert batched[(individual, atom)] is cold.assertion_value(
                individual, atom
            )

    @pytest.mark.parametrize("seed", range(30))
    def test_internal_classification_matches_pairwise_inclusions(self, seed):
        kb4 = generate_kb4(GeneratorConfig(seed=seed, **SMALL))
        atoms = sorted(kb4.concepts_in_signature(), key=lambda a: a.name)
        hierarchy = Reasoner4(kb4).classify(kind=InclusionKind.INTERNAL)
        oracle = Reasoner4(kb4, use_cache=False)
        for sub in atoms:
            expected = frozenset(
                sup
                for sup in atoms
                if oracle.entails_inclusion(
                    ConceptInclusion4(sub, sup, InclusionKind.INTERNAL)
                )
            )
            assert hierarchy[sub] == expected, f"seed={seed} {sub.name}"


class TestTableauVsEnumeration:
    """The brute-force enumerator arbitrates on tiny signatures."""

    @pytest.mark.parametrize("seed", range(60))
    def test_cached_reasoner_agrees_with_enumerator(self, seed):
        kb = generate_kb(GeneratorConfig(seed=seed, **TINY))
        reasoner = Reasoner(kb)
        # ask twice: the second answer comes from the cache
        first = reasoner.is_consistent()
        second = reasoner.is_consistent()
        assert first == second
        enum_sat = classical_satisfiable_by_enumeration(
            kb, max_extra_elements=1
        )
        if enum_sat:
            assert first, f"seed={seed}: enumerator found a model"
        if not first:
            assert not enum_sat, f"seed={seed}: tableau unsat, model exists"

    @pytest.mark.parametrize("seed", range(25))
    def test_four_valued_satisfiability_agrees_with_enumerator(self, seed):
        kb4 = generate_kb4(GeneratorConfig(seed=seed, **TINY))
        four_sat = Reasoner4(kb4).is_satisfiable()
        enum_sat = classical_satisfiable_by_enumeration(
            transform_kb(kb4), max_extra_elements=1
        )
        if enum_sat:
            assert four_sat, f"seed={seed}: enumerator found a 4-model"
        if not four_sat:
            assert not enum_sat, f"seed={seed}: unsat but 4-model exists"


class TestTrailVsCopying:
    """The trail engine vs the copy-per-branch oracle, seed for seed.

    Verdicts must be identical and the backjumping trail must never
    explore *more* branches than chronological backtracking.
    """

    @pytest.mark.parametrize("seed", range(40))
    def test_classical_verdicts_and_branch_bounds_agree(self, seed):
        kb = generate_kb(GeneratorConfig(seed=seed, **SMALL))
        atoms, individuals = _signature(kb)
        trail = Reasoner(kb, use_cache=False, search="trail")
        copying = Reasoner(kb, use_cache=False, search="copying")
        assert _probe_answers(trail, atoms, individuals) == _probe_answers(
            copying, atoms, individuals
        ), f"seed={seed}"
        assert (
            trail.stats.branches_explored <= copying.stats.branches_explored
        ), f"seed={seed}"
        assert copying.stats.trail_length == 0

    @pytest.mark.parametrize("seed", range(20))
    def test_four_valued_verdicts_agree(self, seed):
        kb4 = generate_kb4(GeneratorConfig(seed=seed, **SMALL))
        atoms = sorted(kb4.concepts_in_signature(), key=lambda a: a.name)
        individuals = sorted(
            kb4.individuals_in_signature(), key=lambda i: i.name
        )
        trail = Reasoner4(kb4, use_cache=False, search="trail")
        copying = Reasoner4(kb4, use_cache=False, search="copying")
        for individual in individuals:
            for atom in atoms:
                assert trail.assertion_value(
                    individual, atom
                ) is copying.assertion_value(
                    individual, atom
                ), f"seed={seed} {atom.name}({individual.name})"
        assert (
            trail.stats.branches_explored <= copying.stats.branches_explored
        ), f"seed={seed}"


def tractable_kb(seed):
    """A seeded random KB drawn entirely from the saturation fragment.

    The stock generator has no tractable-only mode (it mixes in ``Or``
    at any depth above zero), so this local generator draws from the
    fragment's own grammar: atomic/conjunctive/existential concepts,
    disjointness via ``Not`` on the right, role hierarchies, global
    ranges, and plain ABox assertions including negated atoms.
    """
    rng = random.Random(seed)
    atoms = [AtomicConcept(f"C{i}") for i in range(4)]
    roles = [AtomicRole(f"r{i}") for i in range(2)]
    individuals = [Individual(f"i{i}") for i in range(3)]
    kb = KnowledgeBase()

    def concept(depth=1):
        draw = rng.random()
        if depth == 0 or draw < 0.5:
            return rng.choice(atoms)
        if draw < 0.75:
            return And.of(rng.choice(atoms), concept(depth - 1))
        return Exists(rng.choice(roles), concept(depth - 1))

    for _ in range(rng.randint(3, 6)):
        rhs = (
            Not(rng.choice(atoms)) if rng.random() < 0.2 else concept()
        )
        kb.add(ConceptInclusion(concept(), rhs))
    if rng.random() < 0.5:
        kb.add(RoleInclusion(roles[0], roles[1]))
    if rng.random() < 0.4:
        kb.add(
            ConceptInclusion(
                TOP, Forall(rng.choice(roles), rng.choice(atoms))
            )
        )
    for _ in range(rng.randint(2, 5)):
        if rng.random() < 0.6:
            kb.add(ConceptAssertion(rng.choice(individuals), concept()))
        else:
            kb.add(
                RoleAssertion(
                    rng.choice(roles),
                    rng.choice(individuals),
                    rng.choice(individuals),
                )
            )
    if rng.random() < 0.3:
        kb.add(
            ConceptAssertion(rng.choice(individuals), Not(rng.choice(atoms)))
        )
    return kb


class TestSaturationVsTableau:
    """The saturation fast path vs a tableau-pinned reasoner, seed for seed.

    Both reasoners share nothing; any disagreement shows up directly in
    the answer comparison (and, wherever a cache is shared elsewhere in
    the suite, as a :class:`~repro.dl.errors.CacheConflictError`).
    """

    @pytest.mark.parametrize("seed", range(40))
    def test_generated_kbs_are_in_fragment(self, seed):
        report = fragment_report(tractable_kb(seed))
        assert report.complete, f"seed={seed}: {report.render()}"

    @pytest.mark.parametrize("seed", range(40))
    def test_sat_verdicts_agree_without_tableau_fallbacks(self, seed):
        kb = tractable_kb(seed)
        atoms, individuals = _signature(kb)
        auto = Reasoner(kb, use_cache=False)
        pinned = Reasoner(kb, use_cache=False, engine="tableau")
        assert _probe_answers(auto, atoms, individuals) == _probe_answers(
            pinned, atoms, individuals
        ), f"seed={seed}"
        # Complete-mode Horn KBs must be answered by saturation alone.
        assert auto.stats.saturation_queries > 0, f"seed={seed}"
        assert auto.stats.tableau_runs == 0, f"seed={seed}"
        assert pinned.stats.saturation_queries == 0

    @pytest.mark.parametrize("seed", range(25))
    def test_classification_taxonomy_agrees(self, seed):
        kb = tractable_kb(seed)
        fast = Reasoner(kb).classify()
        slow = Reasoner(kb, engine="tableau").classify()
        assert fast == slow, f"seed={seed}"

    @pytest.mark.parametrize("seed", range(25))
    def test_four_valued_assertion_values_agree(self, seed):
        # Depth-0 KB4s transform into the fragment via the padded
        # N1/N2 shapes of the doubled-signature reduction.
        kb4 = generate_kb4(
            GeneratorConfig(
                seed=seed,
                n_concepts=3,
                n_roles=1,
                n_individuals=2,
                n_tbox=4,
                n_abox=5,
                max_depth=0,
            )
        )
        atoms = sorted(kb4.concepts_in_signature(), key=lambda a: a.name)
        individuals = sorted(
            kb4.individuals_in_signature(), key=lambda i: i.name
        )
        auto = Reasoner4(kb4)
        pinned = Reasoner4(kb4, use_cache=False, engine="tableau")
        for individual in individuals:
            for atom in atoms:
                assert auto.assertion_value(
                    individual, atom
                ) is pinned.assertion_value(
                    individual, atom
                ), f"seed={seed} {atom.name}({individual.name})"
        assert auto.stats.saturation_queries > 0, f"seed={seed}"


def _four_battery(reasoner, atoms, individuals):
    """A deterministic four-valued probe battery, each question twice.

    The duplicate pass forces the incremental reasoner to serve cache
    hits, so a stale entry that survived an edit it should not have
    survived flips an answer against the cold oracle.
    """
    answers = []
    for _ in range(2):
        answers.append(reasoner.is_satisfiable())
        for individual in individuals:
            for atom in atoms:
                answers.append(reasoner.assertion_value(individual, atom))
    return answers


class TestEditSequenceFuzz:
    """Seeded edit sequences: incremental answers == cold, after every step.

    Each case draws a scaling-corpus KB4, warms an incremental
    :class:`Reasoner4`, then drives a scripted add / add / remove /
    re-add sequence (the removed axiom chosen by the seed).  After every
    single mutation the incremental reasoner's full probe battery must
    be byte-identical to a reasoner built cold over a copy of the edited
    KB.  The pure-addition step also pins the survival counters: UNSAT
    entries stored by the previous step must outlive an addition.

    4 profiles x 26 seeds = 104 distinct edit sequences.
    """

    @pytest.mark.parametrize("profile", list(ScalingProfile))
    @pytest.mark.parametrize("seed", range(26))
    def test_incremental_matches_cold_after_every_edit(self, profile, seed):
        kb4 = generate_scaling_kb4(
            ScalingConfig(n_axioms=10, profile=profile, seed=seed)
        )
        rng = random.Random(f"edit-fuzz:{profile.value}:{seed}")
        atoms = sorted(kb4.concepts_in_signature(), key=lambda a: a.name)[:2]
        # Probe the to-be-added individual too: once step 1 asserts it,
        # its positive entailment holds, banking an UNSAT cache entry
        # whose survival across step 2's addition the test then demands.
        individuals = sorted(
            kb4.individuals_in_signature(), key=lambda i: i.name
        )[:2] + [Individual("fuzz_new")]
        incremental = Reasoner4(kb4)
        _four_battery(incremental, atoms, individuals)  # warm the cache
        assert incremental.stats.cache_hits > 0

        def check_parity(step):
            warm = _four_battery(incremental, atoms, individuals)
            cold = _four_battery(
                Reasoner4(kb4.copy(), use_cache=False), atoms, individuals
            )
            assert warm == cold, f"profile={profile.value} seed={seed} {step}"

        # Step 1: a pure addition entailed outright, so the battery
        # banks UNSAT (entailment) cache entries for the next step.
        anchor = ConceptAssertion(Individual("fuzz_new"), rng.choice(atoms))
        kb4.add_axiom(anchor)
        check_parity("add-anchor")

        # Step 2: another pure addition.  Monotonicity says every UNSAT
        # entry survives it — the counters must show survivors.
        before = incremental.stats.snapshot()
        kb4.add_axiom(
            ConceptAssertion(Individual("fuzz_new2"), rng.choice(atoms))
        )
        check_parity("add-second")
        survived = (incremental.stats - before).cache_entries_survived
        assert survived > 0, f"profile={profile.value} seed={seed}"

        # Step 3: remove a seed-chosen existing axiom.
        victim = rng.choice(sorted(kb4.axioms(), key=repr))
        kb4.remove_axiom(victim)
        check_parity(f"remove {victim!r}")

        # Step 4: re-add it — answers must return to the pre-removal
        # state, again checked against a cold rebuild.
        kb4.add_axiom(victim)
        check_parity(f"re-add {victim!r}")


class TestMutationUnderFuzz:
    """Invalidation fuzz: answers after a mutation match a fresh reasoner."""

    @pytest.mark.parametrize("seed", range(25))
    def test_mutated_kb_never_serves_stale_answers(self, seed):
        kb = generate_kb(GeneratorConfig(seed=seed, **SMALL))
        atoms, individuals = _signature(kb)
        reasoner = Reasoner(kb)
        _probe_answers(reasoner, atoms, individuals)  # warm the cache
        # mutate: a fresh inclusion between existing atoms
        kb.add(ConceptInclusion(atoms[0], atoms[-1]))
        fresh = Reasoner(kb, use_cache=False)
        assert _probe_answers(reasoner, atoms, individuals) == _probe_answers(
            fresh, atoms, individuals
        )


def test_fuzz_coverage_floor():
    """The suite must keep exercising at least 200 distinct seeded KBs."""
    cases = 100 + 40 + 60 + 30 + 30 + 60 + 25 + 25 + 40 + 20
    cases += 40 + 40 + 25 + 25  # saturation-vs-tableau parity classes
    edit_sequences = 4 * 26  # incremental edit-sequence fuzz
    assert edit_sequences >= 100
    cases += edit_sequences
    assert cases >= 200
