"""Unit tests for SHOIN(D)4 syntax containers."""

import pytest

from repro.dl import (
    AtomicConcept,
    AtomicRole,
    ConceptAssertion,
    ConceptInclusion,
    DataAssertion,
    DataValue,
    DatatypeRole,
    DifferentIndividuals,
    Exists,
    Individual,
    KnowledgeBase,
    Not,
    OneOf,
    RoleAssertion,
    RoleInclusion,
    SameIndividual,
    Transitivity,
)
from repro.four_dl import (
    ConceptInclusion4,
    DatatypeRoleInclusion4,
    InclusionKind,
    KnowledgeBase4,
    RoleInclusion4,
    Transitivity4,
    collapse_to_classical,
    from_classical,
    internal,
    material,
    strong,
)

A, B = AtomicConcept("A"), AtomicConcept("B")
r, s = AtomicRole("r"), AtomicRole("s")
u = DatatypeRole("u")
a, b = Individual("a"), Individual("b")


class TestInclusionConstructors:
    def test_kinds(self):
        assert material(A, B).kind is InclusionKind.MATERIAL
        assert internal(A, B).kind is InclusionKind.INTERNAL
        assert strong(A, B).kind is InclusionKind.STRONG

    def test_symbols(self):
        assert repr(material(A, B)) == "A |-> B"
        assert repr(internal(A, B)) == "A < B"
        assert repr(strong(A, B)) == "A -> B"

    def test_value_equality(self):
        assert material(A, B) == material(A, B)
        assert material(A, B) != internal(A, B)


class TestKnowledgeBase4:
    def test_add_routes_axioms(self):
        kb4 = KnowledgeBase4().add(
            internal(A, B),
            RoleInclusion4(r, s, InclusionKind.STRONG),
            DatatypeRoleInclusion4(u, u, InclusionKind.INTERNAL),
            Transitivity4(r),
            ConceptAssertion(a, A),
            RoleAssertion(r, a, b),
            DataAssertion(u, a, DataValue.of(1)),
            SameIndividual(a, a),
            DifferentIndividuals(a, b),
        )
        assert len(kb4) == 9
        assert len(list(kb4.tbox())) == 4
        assert len(list(kb4.abox())) == 5

    def test_rejects_classical_inclusion(self):
        with pytest.raises(TypeError):
            KnowledgeBase4().add(ConceptInclusion(A, B))

    def test_inverse_role_assertion_normalised(self):
        kb4 = KnowledgeBase4().add(RoleAssertion(r.inverse(), a, b))
        assert kb4.role_assertions == [RoleAssertion(r, b, a)]

    def test_signature(self):
        kb4 = KnowledgeBase4().add(
            internal(A, Exists(r, OneOf.of("n"))),
            ConceptAssertion(a, B),
        )
        assert kb4.concepts_in_signature() == frozenset({A, B})
        assert kb4.object_roles_in_signature() == frozenset({r})
        assert {i.name for i in kb4.individuals_in_signature()} == {"a", "n"}

    def test_copy_independent(self):
        kb4 = KnowledgeBase4().add(internal(A, B))
        clone = kb4.copy()
        clone.add(ConceptAssertion(a, A))
        assert len(kb4) == 1 and len(clone) == 2


class TestConversions:
    def test_from_classical_default_internal(self):
        kb = KnowledgeBase().add(
            ConceptInclusion(A, B),
            RoleInclusion(r, s),
            Transitivity(r),
            ConceptAssertion(a, A),
        )
        kb4 = from_classical(kb)
        assert kb4.concept_inclusions == [internal(A, B)]
        assert kb4.role_inclusions == [RoleInclusion4(r, s, InclusionKind.INTERNAL)]
        assert kb4.transitivity_axioms == [Transitivity4(r)]
        assert kb4.concept_assertions == [ConceptAssertion(a, A)]

    def test_from_classical_other_kinds(self):
        kb = KnowledgeBase().add(ConceptInclusion(A, B))
        kb4 = from_classical(kb, InclusionKind.MATERIAL)
        assert kb4.concept_inclusions == [material(A, B)]

    def test_collapse_round_trip(self):
        kb = KnowledgeBase().add(
            ConceptInclusion(A, B),
            RoleInclusion(r, s),
            ConceptAssertion(a, Not(A)),
            RoleAssertion(r, a, b),
        )
        collapsed = collapse_to_classical(from_classical(kb))
        assert list(collapsed.axioms()) == list(kb.axioms())

    def test_collapse_forgets_strength(self):
        kb4 = KnowledgeBase4().add(material(A, B), strong(B, A))
        kb = collapse_to_classical(kb4)
        assert kb.concept_inclusions == [
            ConceptInclusion(A, B),
            ConceptInclusion(B, A),
        ]
