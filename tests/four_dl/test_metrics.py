"""Inconsistency-degree and conflict-profile tests."""

import pytest

from repro.dl import (
    AtomicConcept,
    AtomicRole,
    ConceptAssertion,
    Individual,
    NegativeRoleAssertion,
    Not,
    RoleAssertion,
)
from repro.four_dl import (
    KnowledgeBase4,
    Reasoner4,
    conflict_profile,
    inconsistency_degree,
    information_degree,
    internal,
)
from repro.fourvalued import FourValue

A, B = AtomicConcept("A"), AtomicConcept("B")
r = AtomicRole("r")
a, b = Individual("a"), Individual("b")


class TestDegrees:
    def test_clean_kb_has_zero_degree(self):
        kb4 = KnowledgeBase4().add(ConceptAssertion(a, A))
        reasoner = Reasoner4(kb4)
        assert inconsistency_degree(reasoner) == 0.0

    def test_fully_contradictory_fact(self):
        kb4 = KnowledgeBase4().add(
            ConceptAssertion(a, A), ConceptAssertion(a, Not(A))
        )
        # One individual, one concept: the single fact is BOTH.
        assert inconsistency_degree(Reasoner4(kb4)) == 1.0

    def test_degree_is_a_fraction(self):
        kb4 = KnowledgeBase4().add(
            ConceptAssertion(a, A),
            ConceptAssertion(a, Not(A)),
            ConceptAssertion(b, B),
        )
        # 4 facts (2 individuals x 2 concepts), 1 conflicting.
        assert inconsistency_degree(Reasoner4(kb4)) == pytest.approx(0.25)

    def test_information_degree(self):
        kb4 = KnowledgeBase4().add(
            ConceptAssertion(a, A),
            ConceptAssertion(b, B),
        )
        # Decided: A(a)=t, B(b)=t; undecided: B(a), A(b).
        assert information_degree(Reasoner4(kb4)) == pytest.approx(0.5)

    def test_degree_monotone_in_conflicts(self):
        base = KnowledgeBase4().add(
            ConceptAssertion(a, A), ConceptAssertion(b, B)
        )
        low = inconsistency_degree(Reasoner4(base))
        base.add(ConceptAssertion(a, Not(A)))
        high = inconsistency_degree(Reasoner4(base))
        assert high > low

    def test_empty_kb(self):
        reasoner = Reasoner4(KnowledgeBase4())
        assert inconsistency_degree(reasoner) == 0.0
        assert information_degree(reasoner) == 0.0


class TestProfile:
    def make_profile(self):
        kb4 = KnowledgeBase4().add(
            internal(A, B),
            ConceptAssertion(a, A),
            ConceptAssertion(a, Not(B)),
            ConceptAssertion(b, B),
            RoleAssertion(r, a, b),
            NegativeRoleAssertion(r, a, b),
        )
        return conflict_profile(Reasoner4(kb4))

    def test_counts_add_up(self):
        profile = self.make_profile()
        total = sum(profile.count(v) for v in FourValue)
        assert total == profile.total

    def test_concept_conflict_found(self):
        profile = self.make_profile()
        assert profile.concept_values[(a, B)] is FourValue.BOTH
        assert profile.concept_values[(b, B)] is FourValue.TRUE

    def test_role_conflict_found(self):
        profile = self.make_profile()
        assert profile.role_values[(a, b, r)] is FourValue.BOTH

    def test_breakdowns(self):
        profile = self.make_profile()
        assert profile.conflicts_by_concept().get(B) == 1
        by_individual = profile.conflicts_by_individual()
        assert by_individual.get(a, 0) >= 2  # B(a) and r(a, b)

    def test_rows_put_conflicts_first(self):
        rows = self.make_profile().rows()
        statuses = [status for _fact, status in rows]
        first_non_both = next(
            (i for i, s in enumerate(statuses) if s != "TOP"), len(statuses)
        )
        assert "TOP" not in statuses[first_non_both:]

    def test_without_roles(self):
        kb4 = KnowledgeBase4().add(RoleAssertion(r, a, b))
        profile = conflict_profile(Reasoner4(kb4), include_roles=False)
        assert profile.role_values == {}
