"""Definitions 8-9: the induced-interpretation correspondences."""

import itertools

from repro.dl import (
    AtomicConcept,
    AtomicRole,
    ConceptAssertion,
    Individual,
    RoleAssertion,
)
from repro.four_dl import (
    KnowledgeBase4,
    classical_induced,
    four_induced,
    internal,
)
from repro.fourvalued import BilatticePair
from repro.semantics import FourInterpretation, Interpretation, RolePair

A, B = AtomicConcept("A"), AtomicConcept("B")
r = AtomicRole("r")
a, b = Individual("a"), Individual("b")


def sample_kb4() -> KnowledgeBase4:
    return KnowledgeBase4().add(
        internal(A, B),
        ConceptAssertion(a, A),
        RoleAssertion(r, a, b),
    )


def sample_four_interpretation() -> FourInterpretation:
    return FourInterpretation(
        domain=frozenset({"x", "y"}),
        concept_ext={
            A: BilatticePair(frozenset({"x"}), frozenset({"y"})),
            B: BilatticePair(frozenset({"x", "y"}), frozenset({"x"})),
        },
        role_ext={
            r: RolePair(
                frozenset({("x", "y")}), frozenset({("x", "x"), ("y", "y")})
            )
        },
        individual_map={a: "x", b: "y"},
    )


class TestClassicalInduced:
    def test_concept_halves(self):
        induced = classical_induced(sample_four_interpretation(), sample_kb4())
        assert induced.concept_ext[AtomicConcept("A__pos")] == frozenset({"x"})
        assert induced.concept_ext[AtomicConcept("A__neg")] == frozenset({"y"})
        assert induced.concept_ext[AtomicConcept("B__pos")] == frozenset({"x", "y"})
        assert induced.concept_ext[AtomicConcept("B__neg")] == frozenset({"x"})

    def test_role_halves(self):
        induced = classical_induced(sample_four_interpretation(), sample_kb4())
        assert induced.role_ext[AtomicRole("r__pos")] == frozenset({("x", "y")})
        # r__eq is the complement of the negative part.
        assert induced.role_ext[AtomicRole("r__eq")] == frozenset(
            {("x", "y"), ("y", "x")}
        )

    def test_domain_and_individuals_preserved(self):
        four = sample_four_interpretation()
        induced = classical_induced(four, sample_kb4())
        assert induced.domain == four.domain
        assert induced.individual_map == four.individual_map

    def test_missing_extensions_default_empty(self):
        four = FourInterpretation(
            domain=frozenset({"x"}), individual_map={a: "x"}
        )
        kb4 = KnowledgeBase4().add(ConceptAssertion(a, A))
        induced = classical_induced(four, kb4)
        assert induced.concept_ext[AtomicConcept("A__pos")] == frozenset()


class TestFourInduced:
    def test_round_trip_concepts_and_roles(self):
        four = sample_four_interpretation()
        kb4 = sample_kb4()
        recovered = four_induced(classical_induced(four, kb4), kb4)
        assert recovered.concept_ext == four.concept_ext
        assert recovered.role_ext == four.role_ext
        assert recovered.domain == four.domain
        assert recovered.individual_map == four.individual_map

    def test_reverse_round_trip_on_classical_side(self):
        kb4 = sample_kb4()
        classical = Interpretation(
            domain=frozenset({"x", "y"}),
            concept_ext={
                AtomicConcept("A__pos"): frozenset({"x"}),
                AtomicConcept("A__neg"): frozenset(),
                AtomicConcept("B__pos"): frozenset({"y"}),
                AtomicConcept("B__neg"): frozenset({"x", "y"}),
            },
            role_ext={
                AtomicRole("r__pos"): frozenset({("x", "y")}),
                AtomicRole("r__eq"): frozenset({("y", "x")}),
            },
            individual_map={a: "x", b: "y"},
        )
        recovered = classical_induced(four_induced(classical, kb4), kb4)
        assert recovered.concept_ext == classical.concept_ext
        assert recovered.role_ext == classical.role_ext

    def test_eq_role_complement_semantics(self):
        kb4 = sample_kb4()
        classical = Interpretation(
            domain=frozenset({"x", "y"}),
            concept_ext={},
            role_ext={
                AtomicRole("r__pos"): frozenset(),
                AtomicRole("r__eq"): frozenset(),  # everything negative
            },
            individual_map={a: "x", b: "y"},
        )
        four = four_induced(classical, kb4)
        all_pairs = frozenset(itertools.product({"x", "y"}, repeat=2))
        assert four.role_ext[r].negative == all_pairs
