"""Four-valued model extraction via Definition 9 (Reasoner4.four_model)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dl import (
    AtomicConcept,
    BOTTOM,
    ConceptAssertion,
    Individual,
    Not,
    RoleAssertion,
    AtomicRole,
)
from repro.four_dl import KnowledgeBase4, Reasoner4, internal
from repro.fourvalued import FourValue
from repro.harness import example3_kb4, example4_kb4
from repro.workloads import GeneratorConfig, generate_kb4

A, B = AtomicConcept("A"), AtomicConcept("B")
r = AtomicRole("r")
a, b = Individual("a"), Individual("b")


class TestFourModel:
    def test_unsatisfiable_kb4_has_no_model(self):
        kb4 = KnowledgeBase4().add(ConceptAssertion(a, BOTTOM))
        assert Reasoner4(kb4).four_model() is None

    def test_contradiction_yields_both_in_model(self):
        kb4 = KnowledgeBase4().add(
            ConceptAssertion(a, A), ConceptAssertion(a, Not(A))
        )
        model = Reasoner4(kb4).four_model()
        assert model is not None
        assert model.concept_value(A, a) is FourValue.BOTH

    def test_model_satisfies_inclusions(self):
        kb4 = KnowledgeBase4().add(
            internal(A, B),
            ConceptAssertion(a, A),
            RoleAssertion(r, a, b),
        )
        model = Reasoner4(kb4).four_model()
        assert model is not None
        assert model.is_model(kb4)
        assert model.concept_value(B, a).has_truth

    def test_paper_example3_model_shape(self):
        """The in-text model of Example 3: Bird(tweety) = TOP,
        Fly(tweety) = f, Penguin(tweety) designated."""
        model = Reasoner4(example3_kb4()).four_model()
        assert model is not None
        tweety = Individual("tweety")
        assert model.concept_value(AtomicConcept("Fly"), tweety) is FourValue.FALSE
        assert model.concept_value(AtomicConcept("Bird"), tweety) is FourValue.BOTH
        assert model.concept_value(
            AtomicConcept("Penguin"), tweety
        ).is_designated

    def test_paper_example4_model(self):
        model = Reasoner4(example4_kb4()).four_model()
        assert model is not None
        assert model.is_model(example4_kb4())

    @given(st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_extracted_model_verifies(self, seed):
        config = GeneratorConfig(
            n_concepts=3, n_roles=1, n_individuals=3,
            n_tbox=3, n_abox=5, max_depth=1, seed=seed,
        )
        kb4 = generate_kb4(config)
        reasoner = Reasoner4(kb4)
        if reasoner.is_satisfiable():
            model = reasoner.four_model()
            if model is not None:
                assert model.is_model(kb4)
