"""Four-valued layer over the SHOIQ extensions.

Qualified counting and negative role assertions through the whole
pipeline: Table-2-style evaluator, generalised Definition 5 clauses,
Lemma 5 decomposability, and the reduction reasoner.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dl import (
    AtomicConcept,
    AtomicRole,
    ConceptAssertion,
    DifferentIndividuals,
    Individual,
    NegativeRoleAssertion,
    Not,
    QualifiedAtLeast,
    QualifiedAtMost,
    RoleAssertion,
)
from repro.four_dl import (
    KnowledgeBase4,
    Reasoner4,
    classical_induced,
    internal,
    neg_transform,
    pos_transform,
)
from repro.four_dl.axioms4 import InclusionKind, RoleInclusion4
from repro.fourvalued import BilatticePair, FourValue
from repro.semantics import FourInterpretation, RolePair
from repro.workloads import Signature

A, B = AtomicConcept("A"), AtomicConcept("B")
r = AtomicRole("r")
a, b, c = Individual("a"), Individual("b"), Individual("c")
DOMAIN = ["x", "y", "z"]


def random_four_interpretation(rng: random.Random, signature: Signature):
    return FourInterpretation(
        domain=frozenset(DOMAIN),
        concept_ext={
            concept: BilatticePair(
                frozenset(e for e in DOMAIN if rng.random() < 0.5),
                frozenset(e for e in DOMAIN if rng.random() < 0.5),
            )
            for concept in signature.concepts
        },
        role_ext={
            role: RolePair(
                frozenset((x, y) for x in DOMAIN for y in DOMAIN if rng.random() < 0.4),
                frozenset((x, y) for x in DOMAIN for y in DOMAIN if rng.random() < 0.4),
            )
            for role in signature.roles
        },
    )


def signature_kb4(signature: Signature) -> KnowledgeBase4:
    kb4 = KnowledgeBase4()
    for concept in signature.concepts:
        kb4.add(internal(concept, concept))
    for role in signature.roles:
        kb4.add(RoleInclusion4(role, role, InclusionKind.INTERNAL))
    return kb4


class TestQualifiedLemma5:
    """The generalised Definition 5 clauses stay decomposable."""

    @given(st.integers(0, 10**6), st.integers(0, 3))
    @settings(max_examples=100, deadline=None)
    def test_qualified_atleast_projections(self, seed, n):
        rng = random.Random(seed)
        signature = Signature.of_size(2, 1, 0)
        interp = random_four_interpretation(rng, signature)
        classical = classical_induced(interp, signature_kb4(signature))
        concept = QualifiedAtLeast(
            n, signature.roles[0], rng.choice(signature.concepts)
        )
        evidence = interp.extension(concept)
        assert classical.extension(pos_transform(concept)) == evidence.positive
        assert classical.extension(neg_transform(concept)) == evidence.negative

    @given(st.integers(0, 10**6), st.integers(0, 3))
    @settings(max_examples=100, deadline=None)
    def test_qualified_atmost_projections(self, seed, n):
        rng = random.Random(seed)
        signature = Signature.of_size(2, 1, 0)
        interp = random_four_interpretation(rng, signature)
        classical = classical_induced(interp, signature_kb4(signature))
        filler = rng.choice(signature.concepts)
        if rng.random() < 0.5:
            filler = Not(filler)
        concept = QualifiedAtMost(n, signature.roles[0], filler)
        evidence = interp.extension(concept)
        assert classical.extension(pos_transform(concept)) == evidence.positive
        assert classical.extension(neg_transform(concept)) == evidence.negative

    @given(st.integers(0, 10**6), st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_qualified_duality(self, seed, n):
        """not(>= n R.C) = (<= n-1 R.C) four-valuedly."""
        rng = random.Random(seed)
        signature = Signature.of_size(2, 1, 0)
        interp = random_four_interpretation(rng, signature)
        filler = rng.choice(signature.concepts)
        role = signature.roles[0]
        assert interp.extension(
            Not(QualifiedAtLeast(n, role, filler))
        ) == interp.extension(QualifiedAtMost(n - 1, role, filler))
        assert interp.extension(
            Not(QualifiedAtMost(n, role, filler))
        ) == interp.extension(QualifiedAtLeast(n + 1, role, filler))


class TestQualifiedReasoning4:
    def test_evidence_through_qualified_atleast(self):
        busy = AtomicConcept("Busy")
        kb4 = KnowledgeBase4().add(
            internal(QualifiedAtLeast(2, r, A), busy),
            RoleAssertion(r, a, b),
            RoleAssertion(r, a, c),
            ConceptAssertion(b, A),
            ConceptAssertion(c, A),
            DifferentIndividuals(b, c),
        )
        assert Reasoner4(kb4).assertion_value(a, busy) is FourValue.TRUE

    def test_qualified_survives_contradiction(self):
        busy = AtomicConcept("Busy")
        kb4 = KnowledgeBase4().add(
            internal(QualifiedAtLeast(1, r, A), busy),
            RoleAssertion(r, a, b),
            ConceptAssertion(b, A),
            ConceptAssertion(b, Not(A)),  # contradictory filler evidence
        )
        reasoner = Reasoner4(kb4)
        assert reasoner.is_satisfiable()
        assert reasoner.assertion_value(a, busy) is FourValue.TRUE
        assert reasoner.assertion_value(b, A) is FourValue.BOTH


class TestNegativeRoleEvidence:
    def test_role_value_both(self):
        kb4 = KnowledgeBase4().add(
            RoleAssertion(r, a, b), NegativeRoleAssertion(r, a, b)
        )
        reasoner = Reasoner4(kb4)
        assert reasoner.is_satisfiable()
        assert reasoner.role_value(r, a, b) is FourValue.BOTH

    def test_role_value_classical_cases(self):
        kb4 = KnowledgeBase4().add(
            RoleAssertion(r, a, b), NegativeRoleAssertion(r, a, c)
        )
        reasoner = Reasoner4(kb4)
        assert reasoner.role_value(r, a, b) is FourValue.TRUE
        assert reasoner.role_value(r, a, c) is FourValue.FALSE
        assert reasoner.role_value(r, b, c) is FourValue.NEITHER

    def test_negative_evidence_via_strong_role_inclusion(self):
        s = AtomicRole("s")
        kb4 = KnowledgeBase4().add(
            RoleInclusion4(r, s, InclusionKind.STRONG),
            NegativeRoleAssertion(s, a, b),
        )
        reasoner = Reasoner4(kb4)
        # Strong inclusion propagates negative evidence backward.
        assert reasoner.role_evidence_against(r, a, b)

    def test_internal_role_inclusion_no_negative_backflow(self):
        s = AtomicRole("s")
        kb4 = KnowledgeBase4().add(
            RoleInclusion4(r, s, InclusionKind.INTERNAL),
            NegativeRoleAssertion(s, a, b),
        )
        assert not Reasoner4(kb4).role_evidence_against(r, a, b)

    def test_entails_dispatcher(self):
        kb4 = KnowledgeBase4().add(NegativeRoleAssertion(r, a, b))
        reasoner = Reasoner4(kb4)
        assert reasoner.entails(NegativeRoleAssertion(r, a, b))
        assert not reasoner.entails(RoleAssertion(r, a, b))

    def test_four_model_checker_sees_negative_assertions(self):
        from repro.semantics import enumerate_four_models

        kb4 = KnowledgeBase4().add(
            RoleAssertion(r, a, b), NegativeRoleAssertion(r, a, b)
        )
        models = list(enumerate_four_models(kb4))
        assert models
        assert all(
            (a, b) in m.role_ext[r].positive and (a, b) in m.role_ext[r].negative
            for m in models
        )
