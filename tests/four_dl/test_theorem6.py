"""Theorem 6 and Lemma 5 as executable properties.

Lemma 5 (decomposability): for any concept C and four-valued
interpretation I, ``C^I = <P, N>`` iff the classical induced
interpretation gives ``pos_transform(C) = P`` and ``neg_transform(C) = N``.

Theorem 6 (model correspondence): I is a model of K iff its classical
induced interpretation is a model of the induced KB — and conversely via
the four-valued induced interpretation.

Both are checked over random concepts/KBs and random interpretations.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dl import ConceptAssertion, Individual, RoleAssertion
from repro.four_dl import (
    KnowledgeBase4,
    classical_induced,
    four_induced,
    neg_transform,
    pos_transform,
    transform_kb,
)
from repro.four_dl.axioms4 import ConceptInclusion4, InclusionKind, RoleInclusion4
from repro.fourvalued import BilatticePair
from repro.semantics import FourInterpretation, RolePair
from repro.semantics.enumeration import enumerate_classical_models, enumerate_four_models
from repro.workloads import GeneratorConfig, Signature, generate_kb4, random_concept

DOMAIN = ["d0", "d1"]


def random_four_interpretation(
    rng: random.Random, signature: Signature
) -> FourInterpretation:
    def subset():
        return frozenset(x for x in DOMAIN if rng.random() < 0.5)

    def pair_set():
        return frozenset(
            (x, y) for x in DOMAIN for y in DOMAIN if rng.random() < 0.4
        )

    return FourInterpretation(
        domain=frozenset(DOMAIN),
        concept_ext={
            concept: BilatticePair(subset(), subset())
            for concept in signature.concepts
        },
        role_ext={
            role: RolePair(pair_set(), pair_set()) for role in signature.roles
        },
        individual_map={i: rng.choice(DOMAIN) for i in signature.individuals},
    )


def kb4_over(signature: Signature) -> KnowledgeBase4:
    """A KB4 mentioning the whole signature (so induced maps cover it)."""
    kb4 = KnowledgeBase4()
    for concept in signature.concepts:
        kb4.add(ConceptInclusion4(concept, concept, InclusionKind.INTERNAL))
    for role in signature.roles:
        kb4.add(RoleInclusion4(role, role, InclusionKind.INTERNAL))
    for individual in signature.individuals:
        kb4.add(ConceptAssertion(individual, signature.concepts[0]))
    return kb4


class TestLemma5:
    """Decomposability of concept semantics."""

    @given(st.integers(0, 10**6))
    @settings(max_examples=150, deadline=None)
    def test_positive_and_negative_projections(self, seed):
        rng = random.Random(seed)
        signature = Signature.of_size(3, 2, 2)
        concept = random_concept(
            rng, signature, depth=3, allow_counting=True
        )
        four = random_four_interpretation(rng, signature)
        classical = classical_induced(four, kb4_over(signature))
        evidence = four.extension(concept)
        assert classical.extension(pos_transform(concept)) == evidence.positive
        assert classical.extension(neg_transform(concept)) == evidence.negative

    @given(st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_projection_with_nominals(self, seed):
        rng = random.Random(seed)
        signature = Signature.of_size(2, 1, 2)
        concept = random_concept(
            rng, signature, depth=2, allow_nominals=True
        )
        four = random_four_interpretation(rng, signature)
        classical = classical_induced(four, kb4_over(signature))
        evidence = four.extension(concept)
        assert classical.extension(pos_transform(concept)) == evidence.positive
        assert classical.extension(neg_transform(concept)) == evidence.negative


class TestTheorem6:
    """Model correspondence in both directions."""

    @given(st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_forward_direction(self, seed):
        """Every four-valued model maps to a classical model of the
        induced KB."""
        config = GeneratorConfig(
            n_concepts=2, n_roles=1, n_individuals=2,
            n_tbox=2, n_abox=3, max_depth=1, seed=seed,
        )
        kb4 = generate_kb4(config)
        induced_kb = transform_kb(kb4)
        count = 0
        for model in enumerate_four_models(kb4):
            assert classical_induced(model, kb4).is_model(induced_kb)
            count += 1
            if count >= 8:
                break

    @given(st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_backward_direction(self, seed):
        """Every classical model of the induced KB maps to a four-valued
        model of the original KB4."""
        config = GeneratorConfig(
            n_concepts=2, n_roles=1, n_individuals=2,
            n_tbox=1, n_abox=2, max_depth=1, seed=seed,
        )
        kb4 = generate_kb4(config)
        induced_kb = transform_kb(kb4)
        count = 0
        for classical_model in enumerate_classical_models(induced_kb):
            four_model = four_induced(classical_model, kb4)
            assert four_model.is_model(kb4)
            count += 1
            if count >= 8:
                break

    @given(st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_satisfiability_transfer(self, seed):
        """A four-valued model found by enumeration forces the reduction
        reasoner to answer satisfiable."""
        from repro.four_dl import Reasoner4

        config = GeneratorConfig(
            n_concepts=2, n_roles=1, n_individuals=2,
            n_tbox=2, n_abox=3, max_depth=1, seed=seed,
        )
        kb4 = generate_kb4(config)
        has_enum_model = False
        for _model in enumerate_four_models(kb4):
            has_enum_model = True
            break
        if has_enum_model:
            assert Reasoner4(kb4).is_satisfiable()

    def test_plain_contradictions_always_satisfiable(self):
        """The headline: a KB4 with direct contradictions has models, and
        the reduction sees them."""
        from repro.dl import AtomicConcept, Not
        from repro.four_dl import Reasoner4

        A = AtomicConcept("A")
        a = Individual("a")
        kb4 = KnowledgeBase4().add(
            ConceptAssertion(a, A), ConceptAssertion(a, Not(A))
        )
        assert Reasoner4(kb4).is_satisfiable()
        assert any(True for _ in enumerate_four_models(kb4))
