"""Dedicated reproductions of paper Tables 3 and 4."""

import pytest

from repro.dl import AtLeast, AtomicConcept, AtomicRole, Individual, Not
from repro.four_dl.axioms4 import InclusionKind
from repro.fourvalued import BilatticePair, FourValue
from repro.harness import TABLE4_EXPECTED, example4_kb4
from repro.harness.experiments import (
    experiment_table3,
    experiment_table4,
)
from repro.semantics import (
    FourInterpretation,
    RolePair,
    enumerate_four_models,
    truth_patterns,
)

smith, kate = Individual("smith"), Individual("kate")
has_child = AtomicRole("hasChild")
parent, married = AtomicConcept("Parent"), AtomicConcept("Married")


class TestTable3Experiment:
    def test_all_rows_match(self):
        result = experiment_table3()
        assert result.passed, result.render()


class TestTable4:
    def test_experiment_passes(self):
        result = experiment_table4()
        assert result.passed, result.render()

    def test_exactly_nine_patterns(self):
        kb4 = example4_kb4()
        models = enumerate_four_models(kb4, irreflexive_roles=[has_child])
        queries = [
            ("hasChild(s,k)", (has_child, smith, kate)),
            (">=1.hasChild(s)", (AtLeast(1, has_child), smith)),
            ("Parent(s)", (parent, smith)),
            ("Married(s)", (married, smith)),
        ]
        patterns = truth_patterns(models, queries)
        assert patterns == TABLE4_EXPECTED
        assert len(patterns) == 9

    def test_married_never_true_or_unknown_at_smith(self):
        """The ABox forces negative evidence for Married(smith), so its
        status is f or TOP in every model — exactly as Table 4 shows."""
        kb4 = example4_kb4()
        for model in enumerate_four_models(kb4, irreflexive_roles=[has_child]):
            value = model.concept_value(married, smith)
            assert value in (FourValue.FALSE, FourValue.BOTH)

    def test_parent_always_has_positive_evidence(self):
        """hasChild(smith, kate) plus the internal inclusion force
        Parent(smith) to be t or TOP in every model."""
        kb4 = example4_kb4()
        for model in enumerate_four_models(kb4, irreflexive_roles=[has_child]):
            value = model.concept_value(parent, smith)
            assert value in (FourValue.TRUE, FourValue.BOTH)

    def test_m9_is_a_model(self):
        """The paper's M9, verbatim: all four statements contradictory or
        false."""
        kb4 = example4_kb4()
        m9 = FourInterpretation(
            domain=frozenset({smith, kate}),
            concept_ext={
                parent: BilatticePair(frozenset({smith}), frozenset({smith, kate})),
                married: BilatticePair(frozenset({kate}), frozenset({smith})),
            },
            role_ext={
                has_child: RolePair(
                    frozenset({(smith, kate)}),
                    frozenset({(smith, kate), (smith, smith), (kate, kate), (kate, smith)}),
                )
            },
            individual_map={smith: smith, kate: kate},
        )
        assert m9.is_model(kb4)
        assert m9.concept_value(parent, smith) is FourValue.BOTH
        assert m9.concept_value(married, smith) is FourValue.FALSE
        assert m9.role_value(has_child, smith, kate) is FourValue.BOTH
        assert m9.concept_value(AtLeast(1, has_child), smith) is FourValue.BOTH

    def test_m1_shape_is_a_model(self):
        """An M1-shaped model: everything classical except Married(smith)."""
        kb4 = example4_kb4()
        m1 = FourInterpretation(
            domain=frozenset({smith, kate}),
            concept_ext={
                parent: BilatticePair(frozenset({smith}), frozenset({kate})),
                married: BilatticePair(
                    frozenset({smith, kate}), frozenset({smith})
                ),
            },
            role_ext={
                has_child: RolePair(frozenset({(smith, kate)}), frozenset())
            },
            individual_map={smith: smith, kate: kate},
        )
        assert m1.is_model(kb4)
        assert m1.concept_value(married, smith) is FourValue.BOTH
        assert m1.concept_value(parent, smith) is FourValue.TRUE

    def test_without_irreflexivity_more_models_exist(self):
        kb4 = example4_kb4()
        restricted = sum(
            1 for _ in enumerate_four_models(kb4, irreflexive_roles=[has_child])
        )
        unrestricted = sum(1 for _ in enumerate_four_models(kb4))
        assert unrestricted > restricted
