"""Corollary 7: inclusion entailment via unsatisfiability in the induced KB."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dl import (
    AtomicConcept,
    ConceptAssertion,
    Individual,
    Not,
)
from repro.four_dl import (
    KnowledgeBase4,
    Reasoner4,
    internal,
    material,
    strong,
)
from repro.semantics.enumeration import enumerate_four_models
from repro.workloads import GeneratorConfig, generate_kb4

A, B, C = AtomicConcept("A"), AtomicConcept("B"), AtomicConcept("C")
a = Individual("a")


class TestInternalInclusionEntailment:
    def test_asserted(self):
        kb4 = KnowledgeBase4().add(internal(A, B))
        reasoner = Reasoner4(kb4)
        assert reasoner.entails_inclusion(internal(A, B))
        assert not reasoner.entails_inclusion(internal(B, A))

    def test_chaining(self):
        kb4 = KnowledgeBase4().add(internal(A, B), internal(B, C))
        assert Reasoner4(kb4).entails_inclusion(internal(A, C))

    def test_internal_does_not_contrapose(self):
        kb4 = KnowledgeBase4().add(internal(A, B))
        reasoner = Reasoner4(kb4)
        assert not reasoner.entails_inclusion(internal(Not(B), Not(A)))

    def test_strong_entails_internal(self):
        kb4 = KnowledgeBase4().add(strong(A, B))
        reasoner = Reasoner4(kb4)
        assert reasoner.entails_inclusion(internal(A, B))

    def test_strong_contraposes(self):
        kb4 = KnowledgeBase4().add(strong(A, B))
        reasoner = Reasoner4(kb4)
        assert reasoner.entails_inclusion(strong(Not(B), Not(A)))
        assert reasoner.entails_inclusion(internal(Not(B), Not(A)))

    def test_internal_does_not_entail_strong(self):
        kb4 = KnowledgeBase4().add(internal(A, B))
        assert not Reasoner4(kb4).entails_inclusion(strong(A, B))

    def test_material_chain_does_not_detach(self):
        # Material inclusions tolerate exceptions, so A |-> B plus an
        # exception does not trivialise.
        kb4 = KnowledgeBase4().add(
            material(A, B),
            ConceptAssertion(a, A),
            ConceptAssertion(a, Not(B)),
        )
        reasoner = Reasoner4(kb4)
        assert reasoner.is_satisfiable()
        assert reasoner.entails_inclusion(material(A, B))

    def test_reflexivity(self):
        reasoner = Reasoner4(KnowledgeBase4())
        assert reasoner.entails_inclusion(internal(A, A))
        assert reasoner.entails_inclusion(strong(A, A))


class TestAgainstEnumeration:
    """Corollary 7's reductions agree with direct model checking."""

    @given(st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_internal_inclusion_agreement(self, seed):
        rng = random.Random(seed)
        config = GeneratorConfig(
            n_concepts=2, n_roles=1, n_individuals=1,
            n_tbox=2, n_abox=2, max_depth=1, seed=seed,
        )
        kb4 = generate_kb4(config)
        concepts = sorted(kb4.concepts_in_signature(), key=lambda c: c.name)
        if len(concepts) < 2:
            return
        sub, sup = rng.sample(concepts, 2)
        query = internal(sub, sup)
        models = list(enumerate_four_models(kb4))
        # Entailment over the enumerable fragment: all small models
        # satisfy the inclusion.  The reduction quantifies over all
        # models, so reduction-entailment implies enumeration-validity.
        reduction = Reasoner4(kb4).entails_inclusion(query)
        enumeration = all(m.satisfies(query) for m in models)
        if reduction:
            assert enumeration

    @given(st.integers(0, 10**6))
    @settings(max_examples=12, deadline=None)
    def test_material_inclusion_agreement(self, seed):
        rng = random.Random(seed)
        config = GeneratorConfig(
            n_concepts=2, n_roles=0, n_individuals=1,
            n_tbox=1, n_abox=2, max_depth=1,
            allow_quantifiers=False, seed=seed,
        )
        kb4 = generate_kb4(config)
        concepts = sorted(kb4.concepts_in_signature(), key=lambda c: c.name)
        if len(concepts) < 2:
            return
        sub, sup = rng.sample(concepts, 2)
        query = material(sub, sup)
        reduction = Reasoner4(kb4).entails_inclusion(query)
        models = list(enumerate_four_models(kb4))
        if reduction:
            assert all(m.satisfies(query) for m in models)

    @given(st.integers(0, 10**6))
    @settings(max_examples=12, deadline=None)
    def test_strong_inclusion_agreement(self, seed):
        rng = random.Random(seed)
        config = GeneratorConfig(
            n_concepts=2, n_roles=0, n_individuals=1,
            n_tbox=2, n_abox=1, max_depth=1,
            allow_quantifiers=False, seed=seed,
        )
        kb4 = generate_kb4(config)
        concepts = sorted(kb4.concepts_in_signature(), key=lambda c: c.name)
        if len(concepts) < 2:
            return
        sub, sup = rng.sample(concepts, 2)
        query = strong(sub, sup)
        reduction = Reasoner4(kb4).entails_inclusion(query)
        models = list(enumerate_four_models(kb4))
        if reduction:
            assert all(m.satisfies(query) for m in models)
