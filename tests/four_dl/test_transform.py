"""Definition 5-7 transformation: case-by-case unit tests + size bounds."""

import pytest

from repro.dl import (
    And,
    AtLeast,
    AtMost,
    AtomicConcept,
    AtomicRole,
    BOTTOM,
    ConceptAssertion,
    ConceptInclusion,
    DataAssertion,
    DataAtLeast,
    DataAtMost,
    DataComplement,
    DataExists,
    DataForall,
    DataValue,
    DatatypeRole,
    DatatypeRoleInclusion,
    DifferentIndividuals,
    Exists,
    Forall,
    INTEGER,
    Individual,
    Not,
    OneOf,
    Or,
    RoleAssertion,
    RoleInclusion,
    SameIndividual,
    TOP,
    Transitivity,
)
from repro.four_dl import (
    DatatypeRoleInclusion4,
    InclusionKind,
    KnowledgeBase4,
    RoleInclusion4,
    Transitivity4,
    base_name,
    eq_role,
    internal,
    material,
    neg_transform,
    negative_concept,
    pos_transform,
    positive_concept,
    positive_role,
    strong,
    transform_axiom,
    transform_kb,
)
from repro.workloads import GeneratorConfig, generate_kb4

A, B = AtomicConcept("A"), AtomicConcept("B")
Ap, An = AtomicConcept("A__pos"), AtomicConcept("A__neg")
Bp, Bn = AtomicConcept("B__pos"), AtomicConcept("B__neg")
r = AtomicRole("r")
rp, req = AtomicRole("r__pos"), AtomicRole("r__eq")
u = DatatypeRole("u")
up, ueq = DatatypeRole("u__pos"), DatatypeRole("u__eq")
a, b = Individual("a"), Individual("b")


class TestConceptTransform:
    """Definition 5, clause by clause."""

    def test_clause_1_2_atoms(self):
        assert pos_transform(A) == Ap
        assert pos_transform(Not(A)) == An
        assert neg_transform(A) == An
        assert neg_transform(Not(A)) == Ap

    def test_clause_3_4_top_bottom(self):
        assert pos_transform(TOP) == TOP
        assert pos_transform(BOTTOM) == BOTTOM
        assert neg_transform(TOP) == BOTTOM
        assert neg_transform(BOTTOM) == TOP

    def test_clause_5_6_boolean(self):
        assert pos_transform(A & B) == (Ap & Bp)
        assert pos_transform(A | B) == (Ap | Bp)

    def test_clause_7_8_quantifiers(self):
        assert pos_transform(Exists(r, A)) == Exists(rp, Ap)
        assert pos_transform(Forall(r, A)) == Forall(rp, Ap)

    def test_clause_9_10_counting(self):
        assert pos_transform(AtLeast(2, r)) == AtLeast(2, rp)
        assert pos_transform(AtMost(2, r)) == AtMost(2, req)

    def test_clause_11_double_negation(self):
        assert pos_transform(Not(Not(A))) == Ap
        assert neg_transform(Not(Not(A))) == An

    def test_clause_12_13_de_morgan(self):
        assert neg_transform(A & B) == (An | Bn)
        assert neg_transform(A | B) == (An & Bn)
        assert pos_transform(Not(A & B)) == (An | Bn)

    def test_clause_14_15_negated_quantifiers(self):
        assert neg_transform(Exists(r, A)) == Forall(rp, An)
        assert neg_transform(Forall(r, A)) == Exists(rp, An)

    def test_clause_16_17_negated_counting(self):
        assert neg_transform(AtLeast(2, r)) == AtMost(1, req)
        assert neg_transform(AtMost(2, r)) == AtLeast(3, rp)
        assert neg_transform(AtLeast(0, r)) == BOTTOM

    def test_clause_18_nominals(self):
        nominal = OneOf.of("o1", "o2")
        assert pos_transform(nominal) == nominal
        assert neg_transform(nominal) == BOTTOM

    def test_clause_19_inverse_roles(self):
        assert positive_role(r.inverse()) == rp.inverse()
        assert eq_role(r.inverse()) == req.inverse()
        assert pos_transform(Exists(r.inverse(), A)) == Exists(rp.inverse(), Ap)

    def test_datatype_transforms(self):
        assert pos_transform(DataExists(u, INTEGER)) == DataExists(up, INTEGER)
        assert pos_transform(DataForall(u, INTEGER)) == DataForall(up, INTEGER)
        assert pos_transform(DataAtLeast(2, u)) == DataAtLeast(2, up)
        assert pos_transform(DataAtMost(2, u)) == DataAtMost(2, ueq)
        assert neg_transform(DataExists(u, INTEGER)) == DataForall(
            up, DataComplement(INTEGER)
        )
        assert neg_transform(DataAtLeast(2, u)) == DataAtMost(1, ueq)

    def test_nesting(self):
        concept = Not(And.of(A, Exists(r, Not(B))))
        assert pos_transform(concept) == Or.of(An, Forall(rp, Bp))


class TestAxiomTransform:
    """Definition 6."""

    def test_material_concept(self):
        axioms = list(transform_axiom(material(A, B)))
        assert axioms == [ConceptInclusion(Not(An), Bp)]

    def test_internal_concept(self):
        axioms = list(transform_axiom(internal(A, B)))
        assert axioms == [ConceptInclusion(Ap, Bp)]

    def test_strong_concept(self):
        axioms = list(transform_axiom(strong(A, B)))
        assert axioms == [
            ConceptInclusion(Ap, Bp),
            ConceptInclusion(Bn, An),
        ]

    def test_complex_material(self):
        axioms = list(transform_axiom(material(And.of(A, B), Not(A))))
        assert axioms == [ConceptInclusion(Not(Or.of(An, Bn)), An)]

    def test_role_inclusions(self):
        s = AtomicRole("s")
        sp, seq = AtomicRole("s__pos"), AtomicRole("s__eq")
        assert list(
            transform_axiom(RoleInclusion4(r, s, InclusionKind.MATERIAL))
        ) == [RoleInclusion(req, sp)]
        assert list(
            transform_axiom(RoleInclusion4(r, s, InclusionKind.INTERNAL))
        ) == [RoleInclusion(rp, sp)]
        assert list(
            transform_axiom(RoleInclusion4(r, s, InclusionKind.STRONG))
        ) == [RoleInclusion(rp, sp), RoleInclusion(req, seq)]

    def test_datatype_role_inclusions(self):
        v = DatatypeRole("v")
        vp = DatatypeRole("v__pos")
        assert list(
            transform_axiom(DatatypeRoleInclusion4(u, v, InclusionKind.INTERNAL))
        ) == [DatatypeRoleInclusion(up, vp)]

    def test_transitivity(self):
        assert list(transform_axiom(Transitivity4(r))) == [Transitivity(rp)]

    def test_assertions(self):
        assert list(transform_axiom(ConceptAssertion(a, Not(A)))) == [
            ConceptAssertion(a, An)
        ]
        assert list(transform_axiom(RoleAssertion(r, a, b))) == [
            RoleAssertion(rp, a, b)
        ]
        assert list(
            transform_axiom(DataAssertion(u, a, DataValue.of(1)))
        ) == [DataAssertion(up, a, DataValue.of(1))]
        assert list(transform_axiom(SameIndividual(a, b))) == [SameIndividual(a, b)]
        assert list(transform_axiom(DifferentIndividuals(a, b))) == [
            DifferentIndividuals(a, b)
        ]


class TestTransformKB:
    def test_paper_example5_transformation(self):
        """Example 5: the induced KB of the penguin ontology."""
        from repro.harness import example3_kb4

        induced = transform_kb(example3_kb4())
        bird_n = AtomicConcept("Bird__neg")
        fly_p, fly_n = AtomicConcept("Fly__pos"), AtomicConcept("Fly__neg")
        penguin_p = AtomicConcept("Penguin__pos")
        wing_p, wing_n = AtomicConcept("Wing__pos"), AtomicConcept("Wing__neg")
        has_wing_p = AtomicRole("hasWing__pos")
        # The material bird axiom: not(Bird- or all hasWing+.Wing-) [= Fly+.
        assert (
            ConceptInclusion(
                Not(Or.of(bird_n, Forall(has_wing_p, wing_n))), fly_p
            )
            in induced.concept_inclusions
        )
        assert ConceptInclusion(penguin_p, AtomicConcept("Bird__pos")) in (
            induced.concept_inclusions
        )
        assert ConceptInclusion(penguin_p, fly_n) in induced.concept_inclusions
        assert (
            ConceptAssertion(Individual("tweety"), penguin_p)
            in induced.concept_assertions
        )
        assert (
            RoleAssertion(has_wing_p, Individual("tweety"), Individual("w"))
            in induced.role_assertions
        )

    def test_axiom_count_linear(self):
        # Strong inclusions double; everything else maps one-to-one.
        kb4 = KnowledgeBase4().add(
            material(A, B), internal(A, B), strong(A, B), ConceptAssertion(a, A)
        )
        induced = transform_kb(kb4)
        assert len(induced) == 5

    def test_size_ratio_bounded_on_random_kbs(self):
        for seed in range(5):
            config = GeneratorConfig(
                n_tbox=10, n_abox=10, max_depth=3, seed=seed,
                allow_counting=True,
            )
            kb4 = generate_kb4(config)
            induced = transform_kb(kb4)
            # Worst case 2x axioms (strong) and constant per-node growth.
            assert len(induced) <= 2 * len(kb4)


class TestNames:
    def test_base_name_strips_suffixes(self):
        assert base_name("A__pos") == "A"
        assert base_name("A__neg") == "A"
        assert base_name("r__eq") == "r"
        assert base_name("plain") == "plain"

    def test_signature_doubling_names(self):
        assert positive_concept(A).name == "A__pos"
        assert negative_concept(A).name == "A__neg"
        assert positive_role(r) == rp
        assert eq_role(r) == req
