"""Prioritised paraconsistent adjudication (the future-work combination)."""

import pytest

from repro.dl import AtomicConcept, ConceptAssertion, Individual, Not
from repro.four_dl import (
    AdjudicatedFact,
    DefeasibleReasoner4,
    KnowledgeBase4,
    default_stratification4,
    internal,
)
from repro.fourvalued import FourValue

A, B = AtomicConcept("A"), AtomicConcept("B")
a, b = Individual("a"), Individual("b")


class TestAdjudication:
    def test_unconflicted_fact_passes_through(self):
        strata = [(ConceptAssertion(a, A), 0)]
        reasoner = DefeasibleReasoner4(strata)
        verdict = reasoner.adjudicate(a, A)
        assert verdict.value is FourValue.TRUE
        assert verdict.preferred is FourValue.TRUE
        assert verdict.conflict_stratum is None
        assert not verdict.is_conflicted

    def test_conflict_prefers_higher_priority(self):
        strata = [
            (ConceptAssertion(a, A), 0),
            (ConceptAssertion(a, Not(A)), 1),
        ]
        verdict = DefeasibleReasoner4(strata).adjudicate(a, A)
        assert verdict.value is FourValue.BOTH
        assert verdict.preferred is FourValue.TRUE
        assert verdict.conflict_stratum == 1

    def test_conflict_prefers_negative_when_it_is_certain(self):
        strata = [
            (ConceptAssertion(a, Not(A)), 0),
            (ConceptAssertion(a, A), 1),
        ]
        verdict = DefeasibleReasoner4(strata).adjudicate(a, A)
        assert verdict.preferred is FourValue.FALSE

    def test_conflict_within_top_stratum_has_no_preference(self):
        strata = [
            (ConceptAssertion(a, A), 0),
            (ConceptAssertion(a, Not(A)), 0),
        ]
        verdict = DefeasibleReasoner4(strata).adjudicate(a, A)
        assert verdict.value is FourValue.BOTH
        assert verdict.preferred is FourValue.NEITHER
        assert verdict.conflict_stratum == 0

    def test_conflict_through_tbox(self):
        strata = [
            (internal(A, B), 0),
            (ConceptAssertion(a, A), 1),
            (ConceptAssertion(a, Not(B)), 2),
        ]
        reasoner = DefeasibleReasoner4(strata)
        verdict = reasoner.adjudicate(a, B)
        assert verdict.value is FourValue.BOTH
        assert verdict.preferred is FourValue.TRUE  # entailed at stratum 1
        assert verdict.conflict_stratum == 2

    def test_describe(self):
        strata = [
            (ConceptAssertion(a, A), 0),
            (ConceptAssertion(a, Not(A)), 1),
        ]
        verdict = DefeasibleReasoner4(strata).adjudicate(a, A)
        assert "preferred reading t" in verdict.describe()
        clean = AdjudicatedFact(FourValue.TRUE, FourValue.TRUE, None)
        assert "no conflict" in clean.describe()


class TestReport:
    def test_conflict_report_lists_both_facts_only(self):
        strata = [
            (ConceptAssertion(a, A), 0),
            (ConceptAssertion(a, Not(A)), 1),
            (ConceptAssertion(b, B), 1),
        ]
        report = DefeasibleReasoner4(strata).conflict_report()
        assert (a, A) in report
        assert (b, B) not in report

    def test_empty_report_on_clean_kb(self):
        strata = [(ConceptAssertion(a, A), 0)]
        assert DefeasibleReasoner4(strata).conflict_report() == {}


class TestDefaultStratification:
    def test_tbox_before_abox(self):
        kb4 = KnowledgeBase4().add(
            internal(A, B), ConceptAssertion(a, A)
        )
        ranked = default_stratification4(kb4)
        priorities = {repr(axiom): priority for axiom, priority in ranked}
        assert priorities["A < B"] == 0
        assert priorities["a : A"] == 1

    def test_default_keeps_everything(self):
        kb4 = KnowledgeBase4().add(
            internal(A, B),
            ConceptAssertion(a, A),
            ConceptAssertion(a, Not(B)),
        )
        reasoner = DefeasibleReasoner4(default_stratification4(kb4))
        # Nothing deleted: the full-KB status is BOTH...
        assert reasoner.assertion_value(a, B) is FourValue.BOTH
        # ...while the TBox-only prefix had no opinion, so no preference.
        verdict = reasoner.adjudicate(a, B)
        assert verdict.conflict_stratum == 1

    def test_empty_stratification(self):
        reasoner = DefeasibleReasoner4([])
        assert reasoner.assertion_value(a, A) is FourValue.NEITHER
