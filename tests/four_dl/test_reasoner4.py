"""Behavioural tests for the reduction-based four-valued reasoner."""

from repro.dl import (
    And,
    AtomicConcept,
    AtomicRole,
    BOTTOM,
    ConceptAssertion,
    Exists,
    Individual,
    Not,
    OneOf,
    Or,
    RoleAssertion,
)
from repro.four_dl import (
    KnowledgeBase4,
    Reasoner4,
    internal,
    material,
    strong,
)
from repro.four_dl.axioms4 import RoleInclusion4, InclusionKind
from repro.fourvalued import FourValue

A, B, C = AtomicConcept("A"), AtomicConcept("B"), AtomicConcept("C")
r, s = AtomicRole("r"), AtomicRole("s")
a, b = Individual("a"), Individual("b")


class TestSatisfiability:
    def test_contradiction_is_satisfiable(self):
        kb4 = KnowledgeBase4().add(
            ConceptAssertion(a, A), ConceptAssertion(a, Not(A))
        )
        assert Reasoner4(kb4).is_satisfiable()

    def test_bottom_is_unsatisfiable(self):
        kb4 = KnowledgeBase4().add(ConceptAssertion(a, BOTTOM))
        assert not Reasoner4(kb4).is_satisfiable()

    def test_internal_chain_to_bottom_unsatisfiable(self):
        kb4 = KnowledgeBase4().add(
            internal(A, BOTTOM), ConceptAssertion(a, A)
        )
        assert not Reasoner4(kb4).is_satisfiable()

    def test_concept_coherence(self):
        kb4 = KnowledgeBase4().add(internal(A, BOTTOM))
        reasoner = Reasoner4(kb4)
        assert not reasoner.concept_coherent(A)
        assert reasoner.concept_coherent(B)


class TestEvidenceQueries:
    def test_positive_evidence_propagates_internally(self):
        kb4 = KnowledgeBase4().add(internal(A, B), ConceptAssertion(a, A))
        reasoner = Reasoner4(kb4)
        assert reasoner.evidence_for(a, B)
        assert not reasoner.evidence_against(a, B)

    def test_negative_evidence_needs_strength(self):
        kb4 = KnowledgeBase4().add(
            internal(A, B), ConceptAssertion(a, Not(B))
        )
        # Internal inclusion does not contrapose.
        assert not Reasoner4(kb4).evidence_against(a, A)
        kb4_strong = KnowledgeBase4().add(
            strong(A, B), ConceptAssertion(a, Not(B))
        )
        assert Reasoner4(kb4_strong).evidence_against(a, A)

    def test_evidence_on_complex_concepts(self):
        kb4 = KnowledgeBase4().add(
            ConceptAssertion(a, A), ConceptAssertion(a, B)
        )
        reasoner = Reasoner4(kb4)
        assert reasoner.evidence_for(a, And.of(A, B))
        assert reasoner.evidence_for(a, Or.of(A, C))
        assert not reasoner.evidence_for(a, C)

    def test_evidence_through_roles(self):
        kb4 = KnowledgeBase4().add(
            internal(Exists(r, B), A),
            RoleAssertion(r, a, b),
            ConceptAssertion(b, B),
        )
        assert Reasoner4(kb4).evidence_for(a, A)

    def test_assertion_values(self):
        kb4 = KnowledgeBase4().add(
            ConceptAssertion(a, A),
            ConceptAssertion(a, Not(A)),
            ConceptAssertion(a, B),
            ConceptAssertion(b, Not(C)),
        )
        reasoner = Reasoner4(kb4)
        assert reasoner.assertion_value(a, A) is FourValue.BOTH
        assert reasoner.assertion_value(a, B) is FourValue.TRUE
        assert reasoner.assertion_value(b, C) is FourValue.FALSE
        assert reasoner.assertion_value(b, B) is FourValue.NEITHER

    def test_role_evidence(self):
        kb4 = KnowledgeBase4().add(
            RoleInclusion4(r, s, InclusionKind.INTERNAL),
            RoleAssertion(r, a, b),
        )
        reasoner = Reasoner4(kb4)
        assert reasoner.role_evidence_for(r, a, b)
        assert reasoner.role_evidence_for(s, a, b)
        assert not reasoner.role_evidence_for(s, b, a)

    def test_nominal_evidence(self):
        kb4 = KnowledgeBase4().add(
            ConceptAssertion(a, OneOf.of("b")), ConceptAssertion(b, A)
        )
        assert Reasoner4(kb4).evidence_for(a, A)


class TestEntailsDispatcher:
    def test_assertion_entailment(self):
        kb4 = KnowledgeBase4().add(ConceptAssertion(a, A))
        reasoner = Reasoner4(kb4)
        assert reasoner.entails(ConceptAssertion(a, A))
        assert not reasoner.entails(ConceptAssertion(a, B))

    def test_role_assertion_entailment(self):
        kb4 = KnowledgeBase4().add(RoleAssertion(r, a, b))
        assert Reasoner4(kb4).entails(RoleAssertion(r, a, b))

    def test_inclusion_entailment(self):
        kb4 = KnowledgeBase4().add(internal(A, B))
        assert Reasoner4(kb4).entails(internal(A, B))

    def test_role_inclusion_entailment(self):
        kb4 = KnowledgeBase4().add(RoleInclusion4(r, s, InclusionKind.INTERNAL))
        reasoner = Reasoner4(kb4)
        assert reasoner.entails(RoleInclusion4(r, s, InclusionKind.INTERNAL))
        assert not reasoner.entails(RoleInclusion4(s, r, InclusionKind.INTERNAL))

    def test_same_individual_entailment(self):
        # a = b follows from a nominal pin; Definition 6 leaves
        # individuals untouched, so the verdict passes through classically.
        from repro.dl import SameIndividual

        kb4 = KnowledgeBase4().add(ConceptAssertion(a, OneOf.of("b")))
        reasoner = Reasoner4(kb4)
        assert reasoner.entails(SameIndividual(a, b))
        assert not Reasoner4(KnowledgeBase4()).entails(SameIndividual(a, b))

    def test_different_individuals_entailment(self):
        from repro.dl import DifferentIndividuals

        kb4 = KnowledgeBase4().add(DifferentIndividuals(a, b))
        assert Reasoner4(kb4).entails(DifferentIndividuals(a, b))
        empty = Reasoner4(KnowledgeBase4())
        assert not empty.entails(DifferentIndividuals(a, b))

    def test_data_assertion_entailment(self):
        from repro.dl import DataAssertion, DataValue
        from repro.dl.roles import DatatypeRole

        u = DatatypeRole("u")
        kb4 = KnowledgeBase4().add(DataAssertion(u, a, DataValue.of(10)))
        reasoner = Reasoner4(kb4)
        assert reasoner.entails(DataAssertion(u, a, DataValue.of(10)))
        assert not reasoner.entails(DataAssertion(u, a, DataValue.of(11)))

    def test_unsupported_axiom_raises_typed_error(self):
        # Regression: this used to surface as a bare NotImplementedError.
        import pytest

        from repro.dl import Transitivity, UnsupportedAxiomError, UnsupportedFeature

        reasoner = Reasoner4(KnowledgeBase4().add(ConceptAssertion(a, A)))
        with pytest.raises(UnsupportedAxiomError) as excinfo:
            reasoner.entails(Transitivity(r))
        assert excinfo.value.axiom == Transitivity(r)
        assert isinstance(excinfo.value, UnsupportedFeature)

    def test_classical_reasoner_unsupported_axiom_is_typed(self):
        import pytest

        from repro.dl import (
            KnowledgeBase,
            Reasoner,
            Transitivity,
            UnsupportedAxiomError,
        )

        with pytest.raises(UnsupportedAxiomError):
            Reasoner(KnowledgeBase()).entails(Transitivity(r))


class TestClassification4:
    def test_internal_hierarchy(self):
        kb4 = KnowledgeBase4().add(internal(A, B), internal(B, C))
        hierarchy = Reasoner4(kb4).classify()
        assert hierarchy[A] == frozenset({A, B, C})
        assert hierarchy[B] == frozenset({B, C})
        assert hierarchy[C] == frozenset({C})

    def test_classification_survives_contradiction(self):
        kb4 = KnowledgeBase4().add(
            internal(A, B),
            ConceptAssertion(a, A),
            ConceptAssertion(a, Not(A)),
        )
        hierarchy = Reasoner4(kb4).classify()
        # Unlike classical classification (everything subsumes everything
        # in an inconsistent KB), the taxonomy stays meaningful.
        assert B in hierarchy[A]
        assert A not in hierarchy[B]

    def test_strong_kind_classification(self):
        from repro.four_dl import InclusionKind, strong

        kb4 = KnowledgeBase4().add(strong(A, B))
        strong_hierarchy = Reasoner4(kb4).classify(InclusionKind.STRONG)
        assert B in strong_hierarchy[A]
        kb4_weak = KnowledgeBase4().add(internal(A, B))
        weak = Reasoner4(kb4_weak).classify(InclusionKind.STRONG)
        assert B not in weak[A]


class TestDiagnostics:
    def test_individual_report(self):
        kb4 = KnowledgeBase4().add(
            ConceptAssertion(a, A),
            ConceptAssertion(a, Not(A)),
            ConceptAssertion(a, B),
        )
        report = Reasoner4(kb4).individual_report(a)
        assert report[A] is FourValue.BOTH
        assert report[B] is FourValue.TRUE

    def test_contradictory_facts_localised(self):
        kb4 = KnowledgeBase4().add(
            ConceptAssertion(a, A),
            ConceptAssertion(a, Not(A)),
            ConceptAssertion(b, B),
        )
        conflicts = Reasoner4(kb4).contradictory_facts()
        assert conflicts == {a: frozenset({A})}

    def test_no_conflicts_on_clean_kb(self):
        kb4 = KnowledgeBase4().add(ConceptAssertion(a, A))
        assert Reasoner4(kb4).contradictory_facts() == {}

    def test_derived_contradiction_found(self):
        # The contradiction arises through the TBox, not a direct pair.
        kb4 = KnowledgeBase4().add(
            internal(A, B),
            internal(C, Not(B)),
            ConceptAssertion(a, A),
            ConceptAssertion(a, C),
        )
        conflicts = Reasoner4(kb4).contradictory_facts()
        assert B in conflicts[a]

    def test_classical_kb_exposed(self):
        kb4 = KnowledgeBase4().add(internal(A, B))
        reasoner = Reasoner4(kb4)
        assert len(reasoner.classical_kb) == 1
        assert reasoner.classical_reasoner.is_consistent()
