"""Absorption (lazy unfolding of atomic-LHS inclusions): correctness.

Absorption must never change answers — only speed.  These tests compare
the absorbed and internalised configurations on directed cases and on
random KBs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dl import (
    AtomicConcept,
    AtomicRole,
    ConceptAssertion,
    ConceptInclusion,
    Exists,
    Forall,
    Individual,
    KnowledgeBase,
    Not,
    OneOf,
    Or,
    Tableau,
    TOP,
)
from repro.workloads import GeneratorConfig, generate_kb

A, B = AtomicConcept("A"), AtomicConcept("B")
r = AtomicRole("r")
a, b = Individual("a"), Individual("b")


def both_ways(kb: KnowledgeBase) -> tuple:
    with_absorption = Tableau(kb, use_absorption=True).is_satisfiable()
    without = Tableau(kb, use_absorption=False).is_satisfiable()
    return with_absorption, without


class TestAbsorptionSplitting:
    def test_atomic_lhs_absorbed(self):
        kb = KnowledgeBase.of([ConceptInclusion(A, B)])
        tableau = Tableau(kb)
        assert A in tableau.absorbed
        assert tableau.universal == []

    def test_complex_lhs_internalised(self):
        kb = KnowledgeBase.of([ConceptInclusion(Exists(r, A), B)])
        tableau = Tableau(kb)
        assert tableau.absorbed == {}
        assert len(tableau.universal) == 1

    def test_top_lhs_internalised(self):
        kb = KnowledgeBase.of([ConceptInclusion(TOP, A)])
        tableau = Tableau(kb)
        assert len(tableau.universal) == 1

    def test_flag_disables(self):
        kb = KnowledgeBase.of([ConceptInclusion(A, B)])
        tableau = Tableau(kb, use_absorption=False)
        assert tableau.absorbed == {}
        assert len(tableau.universal) == 1


class TestAnswersUnchanged:
    @pytest.mark.parametrize(
        "axioms",
        [
            # subsumption chain with a clash
            [
                ConceptInclusion(A, B),
                ConceptAssertion(a, A),
                ConceptAssertion(a, Not(B)),
            ],
            # satisfiable chain
            [ConceptInclusion(A, B), ConceptAssertion(a, A)],
            # absorbed nominal head
            [
                ConceptInclusion(A, OneOf.of("b")),
                ConceptAssertion(a, A),
                ConceptAssertion(b, B),
            ],
            # absorbed quantified head over a cycle (exercises blocking)
            [ConceptInclusion(A, Exists(r, A)), ConceptAssertion(a, A)],
            # mixed absorbed + internalised
            [
                ConceptInclusion(A, B),
                ConceptInclusion(Exists(r, B), Not(A)),
                ConceptAssertion(a, A),
                ConceptAssertion(a, Exists(r, A)),
            ],
        ],
    )
    def test_directed_cases(self, axioms):
        with_absorption, without = both_ways(KnowledgeBase.of(axioms))
        assert with_absorption == without

    @given(st.integers(0, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_random_kbs_agree(self, seed):
        config = GeneratorConfig(
            n_concepts=3,
            n_roles=1,
            n_individuals=2,
            n_tbox=3,
            n_abox=4,
            max_depth=1,
            seed=seed,
        )
        kb = generate_kb(config)
        with_absorption = Tableau(
            kb, use_absorption=True, max_branches=40_000
        ).is_satisfiable()
        without = Tableau(
            kb, use_absorption=False, max_branches=40_000
        ).is_satisfiable()
        assert with_absorption == without

    def test_absorbed_negative_information_still_propagates(self):
        # A [= B absorbed: an explicit not-B instance of A must clash even
        # though no universal disjunction carries the contrapositive.
        kb = KnowledgeBase.of(
            [
                ConceptInclusion(A, B),
                ConceptAssertion(a, Not(B)),
                ConceptAssertion(a, A),
            ]
        )
        assert not Tableau(kb).is_satisfiable()

    def test_subsumption_probe_still_works(self):
        from repro.dl import Reasoner

        kb = KnowledgeBase.of([ConceptInclusion(A, B)])
        reasoner = Reasoner(kb)
        assert reasoner.subsumes(B, A)
        assert not reasoner.subsumes(A, B)
