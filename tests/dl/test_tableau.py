"""Behavioural tests for the SHOIN(D) tableau, feature by feature."""

import pytest

from repro.dl import (
    BOTTOM,
    TOP,
    And,
    AtLeast,
    AtMost,
    AtomicConcept,
    AtomicRole,
    ConceptAssertion,
    ConceptInclusion,
    DataAssertion,
    DataAtLeast,
    DataAtMost,
    DataExists,
    DataForall,
    DataOneOf,
    DataValue,
    DatatypeRole,
    DatatypeRoleInclusion,
    DifferentIndividuals,
    Exists,
    Forall,
    INTEGER,
    Individual,
    IntRange,
    KnowledgeBase,
    Not,
    OneOf,
    Or,
    ReasonerLimitExceeded,
    RoleAssertion,
    RoleInclusion,
    SameIndividual,
    Tableau,
    Transitivity,
)

A, B, C = AtomicConcept("A"), AtomicConcept("B"), AtomicConcept("C")
r, s = AtomicRole("r"), AtomicRole("s")
u = DatatypeRole("u")
a, b, c = Individual("a"), Individual("b"), Individual("c")


def satisfiable(*axioms) -> bool:
    return Tableau(KnowledgeBase.of(axioms)).is_satisfiable()


class TestBooleanReasoning:
    def test_empty_kb_satisfiable(self):
        assert Tableau(KnowledgeBase()).is_satisfiable()

    def test_atomic_assertion(self):
        assert satisfiable(ConceptAssertion(a, A))

    def test_direct_contradiction(self):
        assert not satisfiable(
            ConceptAssertion(a, A), ConceptAssertion(a, Not(A))
        )

    def test_bottom_unsatisfiable(self):
        assert not satisfiable(ConceptAssertion(a, BOTTOM))

    def test_top_satisfiable(self):
        assert satisfiable(ConceptAssertion(a, TOP))

    def test_conjunction_decomposed(self):
        assert not satisfiable(ConceptAssertion(a, And.of(A, Not(A))))

    def test_disjunction_branches(self):
        assert satisfiable(
            ConceptAssertion(a, Or.of(A, B)), ConceptAssertion(a, Not(A))
        )

    def test_disjunction_both_closed(self):
        assert not satisfiable(
            ConceptAssertion(a, Or.of(A, B)),
            ConceptAssertion(a, Not(A)),
            ConceptAssertion(a, Not(B)),
        )

    def test_nested_disjunction(self):
        concept = And.of(Or.of(A, B), Or.of(Not(A), C), Or.of(Not(B), C))
        assert satisfiable(ConceptAssertion(a, And.of(concept, Not(C)))) is False


class TestTBox:
    def test_inclusion_propagates(self):
        assert not satisfiable(
            ConceptInclusion(A, B),
            ConceptAssertion(a, And.of(A, Not(B))),
        )

    def test_chained_inclusions(self):
        assert not satisfiable(
            ConceptInclusion(A, B),
            ConceptInclusion(B, C),
            ConceptAssertion(a, And.of(A, Not(C))),
        )

    def test_disjointness(self):
        assert not satisfiable(
            ConceptInclusion(A, Not(B)),
            ConceptAssertion(a, And.of(A, B)),
        )

    def test_global_unsatisfiability(self):
        assert not satisfiable(
            ConceptInclusion(TOP, A),
            ConceptAssertion(a, Not(A)),
        )

    def test_cyclic_tbox_with_blocking(self):
        # A [= some r.A would need an infinite chain; blocking finds the
        # finite witness loop.
        assert satisfiable(
            ConceptInclusion(A, Exists(r, A)), ConceptAssertion(a, A)
        )

    def test_cyclic_tbox_with_forall_contradiction(self):
        assert not satisfiable(
            ConceptInclusion(A, Exists(r, A)),
            ConceptInclusion(A, Forall(r, Not(A))),
            ConceptAssertion(a, A),
        )


class TestQuantifiers:
    def test_exists_creates_witness(self):
        assert satisfiable(ConceptAssertion(a, Exists(r, A)))

    def test_exists_forall_interaction(self):
        assert not satisfiable(
            ConceptAssertion(a, Exists(r, A)),
            ConceptAssertion(a, Forall(r, Not(A))),
        )

    def test_forall_on_abox_edge(self):
        assert not satisfiable(
            RoleAssertion(r, a, b),
            ConceptAssertion(a, Forall(r, A)),
            ConceptAssertion(b, Not(A)),
        )

    def test_forall_vacuous(self):
        assert satisfiable(ConceptAssertion(a, Forall(r, BOTTOM)))

    def test_exists_bottom_unsatisfiable(self):
        assert not satisfiable(ConceptAssertion(a, Exists(r, BOTTOM)))

    def test_nested_quantifiers(self):
        assert not satisfiable(
            ConceptAssertion(a, Exists(r, Exists(r, A))),
            ConceptAssertion(a, Forall(r, Forall(r, Not(A)))),
        )


class TestNumberRestrictions:
    def test_atleast_satisfiable(self):
        assert satisfiable(ConceptAssertion(a, AtLeast(3, r)))

    def test_atleast_atmost_conflict(self):
        assert not satisfiable(
            ConceptAssertion(a, And.of(AtLeast(3, r), AtMost(2, r)))
        )

    def test_atleast_atmost_equal_ok(self):
        assert satisfiable(
            ConceptAssertion(a, And.of(AtLeast(2, r), AtMost(2, r)))
        )

    def test_atmost_merges_abox_neighbours(self):
        # Two named successors under atmost 1 merge — consistent unless
        # they are declared different.
        assert satisfiable(
            RoleAssertion(r, a, b),
            RoleAssertion(r, a, c),
            ConceptAssertion(a, AtMost(1, r)),
        )

    def test_atmost_with_different_individuals(self):
        assert not satisfiable(
            RoleAssertion(r, a, b),
            RoleAssertion(r, a, c),
            DifferentIndividuals(b, c),
            ConceptAssertion(a, AtMost(1, r)),
        )

    def test_atmost_zero(self):
        assert not satisfiable(
            RoleAssertion(r, a, b), ConceptAssertion(a, AtMost(0, r))
        )
        assert satisfiable(ConceptAssertion(a, AtMost(0, r)))

    def test_merge_propagates_labels(self):
        # b and c merge under atmost 1; their labels combine and clash.
        assert not satisfiable(
            RoleAssertion(r, a, b),
            RoleAssertion(r, a, c),
            ConceptAssertion(a, AtMost(1, r)),
            ConceptAssertion(b, A),
            ConceptAssertion(c, Not(A)),
        )

    def test_atleast_zero_trivial(self):
        assert satisfiable(ConceptAssertion(a, AtLeast(0, r)))

    def test_counting_with_hierarchy(self):
        # r [= s, two r-successors; atmost 1 on s forces merging.
        assert not satisfiable(
            RoleInclusion(r, s),
            RoleAssertion(r, a, b),
            RoleAssertion(r, a, c),
            DifferentIndividuals(b, c),
            ConceptAssertion(a, AtMost(1, s)),
        )


class TestRoleHierarchyAndTransitivity:
    def test_subrole_propagates_forall(self):
        assert not satisfiable(
            RoleInclusion(r, s),
            RoleAssertion(r, a, b),
            ConceptAssertion(a, Forall(s, A)),
            ConceptAssertion(b, Not(A)),
        )

    def test_transitivity_via_forall_plus(self):
        assert not satisfiable(
            Transitivity(r),
            RoleAssertion(r, a, b),
            RoleAssertion(r, b, c),
            ConceptAssertion(a, Forall(r, A)),
            ConceptAssertion(c, Not(A)),
        )

    def test_transitive_subrole_of_plain_role(self):
        # Trans(r), r [= s: forall s.C must reach through r-chains.
        assert not satisfiable(
            Transitivity(r),
            RoleInclusion(r, s),
            RoleAssertion(r, a, b),
            RoleAssertion(r, b, c),
            ConceptAssertion(a, Forall(s, A)),
            ConceptAssertion(c, Not(A)),
        )

    def test_without_transitivity_chain_is_fine(self):
        assert satisfiable(
            RoleAssertion(r, a, b),
            RoleAssertion(r, b, c),
            ConceptAssertion(a, Forall(r, A)),
            ConceptAssertion(c, Not(A)),
        )


class TestInverseRoles:
    def test_inverse_edge_seen_by_forall(self):
        assert not satisfiable(
            RoleAssertion(r, a, b),
            ConceptAssertion(b, Forall(r.inverse(), A)),
            ConceptAssertion(a, Not(A)),
        )

    def test_exists_inverse_creates_predecessor(self):
        assert satisfiable(ConceptAssertion(a, Exists(r.inverse(), A)))

    def test_inverse_interaction_with_fresh_nodes(self):
        # a has an r-successor which must see a back through r-.
        assert not satisfiable(
            ConceptAssertion(a, Exists(r, Forall(r.inverse(), A))),
            ConceptAssertion(a, Not(A)),
        )

    def test_inverse_role_assertion(self):
        assert not satisfiable(
            RoleAssertion(r.inverse(), a, b),  # = r(b, a)
            ConceptAssertion(b, Forall(r, A)),
            ConceptAssertion(a, Not(A)),
        )


class TestNominalsAndEquality:
    def test_nominal_identifies_individuals(self):
        assert not satisfiable(
            ConceptAssertion(a, OneOf.of("b")),
            ConceptAssertion(b, A),
            ConceptAssertion(a, Not(A)),
        )

    def test_disjunctive_nominal(self):
        assert satisfiable(
            ConceptAssertion(a, OneOf.of("b", "c")),
            ConceptAssertion(b, A),
            ConceptAssertion(c, Not(A)),
        )

    def test_disjunctive_nominal_both_branches_closed(self):
        assert not satisfiable(
            ConceptAssertion(a, OneOf.of("b", "c")),
            ConceptAssertion(a, A),
            ConceptAssertion(b, Not(A)),
            ConceptAssertion(c, Not(A)),
        )

    def test_negated_nominal(self):
        assert not satisfiable(
            ConceptAssertion(a, Not(OneOf.of("a")))
        )
        assert satisfiable(ConceptAssertion(a, Not(OneOf.of("b"))))

    def test_same_individual_merges(self):
        assert not satisfiable(
            SameIndividual(a, b),
            ConceptAssertion(a, A),
            ConceptAssertion(b, Not(A)),
        )

    def test_different_individuals_blocks_nominal(self):
        assert not satisfiable(
            DifferentIndividuals(a, b),
            ConceptAssertion(a, OneOf.of("b")),
        )

    def test_same_then_different_contradiction(self):
        assert not satisfiable(SameIndividual(a, b), DifferentIndividuals(a, b))

    def test_nominal_in_tbox(self):
        # Everything is b: any two individuals must merge.
        assert not satisfiable(
            ConceptInclusion(TOP, OneOf.of("b")),
            DifferentIndividuals(a, b),
        )


class TestDatatypes:
    def test_data_exists(self):
        assert satisfiable(ConceptAssertion(a, DataExists(u, INTEGER)))

    def test_data_exists_forall_conflict(self):
        assert not satisfiable(
            ConceptAssertion(a, DataExists(u, IntRange(0, 3))),
            ConceptAssertion(a, DataForall(u, IntRange(5, 9))),
        )

    def test_data_assertion_checked_against_forall(self):
        assert not satisfiable(
            DataAssertion(u, a, DataValue.of(7)),
            ConceptAssertion(a, DataForall(u, IntRange(0, 3))),
        )

    def test_data_assertion_consistent(self):
        assert satisfiable(
            DataAssertion(u, a, DataValue.of(2)),
            ConceptAssertion(a, DataForall(u, IntRange(0, 3))),
        )

    def test_data_atleast_within_range(self):
        assert satisfiable(
            ConceptAssertion(a, DataAtLeast(3, u)),
            ConceptAssertion(a, DataForall(u, IntRange(0, 5))),
        )

    def test_data_atleast_exceeds_enumeration(self):
        assert not satisfiable(
            ConceptAssertion(a, DataAtLeast(3, u)),
            ConceptAssertion(a, DataForall(u, DataOneOf.of(1, 2))),
        )

    def test_data_atmost(self):
        assert not satisfiable(
            ConceptAssertion(a, And.of(DataAtLeast(3, u), DataAtMost(1, u)))
        )
        assert satisfiable(
            ConceptAssertion(a, And.of(DataAtLeast(2, u), DataAtMost(2, u)))
        )

    def test_data_assertion_with_distant_value(self):
        # Regression: asserted literals far from the candidate spiral's
        # anchors must still be found as their own witnesses.
        assert satisfiable(DataAssertion(u, a, DataValue.of(10)))
        assert satisfiable(DataAssertion(u, a, DataValue.of(123456)))
        assert satisfiable(
            DataAssertion(u, a, DataValue.of(987654)),
            ConceptAssertion(a, DataExists(u, IntRange(1, 30))),
        )

    def test_data_assertion_plus_absorbed_range(self):
        # Regression for the exact shape that thrashed: an asserted value
        # and an existential range on the same individual.
        assert satisfiable(
            DataAssertion(u, a, DataValue.of(10)),
            ConceptAssertion(a, DataExists(u, IntRange(1, 30))),
        )

    def test_datatype_role_hierarchy(self):
        v = DatatypeRole("v")
        assert not satisfiable(
            DatatypeRoleInclusion(u, v),
            DataAssertion(u, a, DataValue.of(7)),
            ConceptAssertion(a, DataForall(v, IntRange(0, 3))),
        )


class TestLimitsAndProbes:
    def test_node_limit_raises(self):
        kb = KnowledgeBase.of(
            [
                ConceptInclusion(TOP, Exists(r, A)),
                ConceptInclusion(TOP, Exists(s, A)),
                ConceptAssertion(a, A),
            ]
        )
        # An extremely small node budget trips before blocking kicks in.
        with pytest.raises(ReasonerLimitExceeded):
            Tableau(kb, max_nodes=2).is_satisfiable()

    def test_concept_satisfiable_probe(self):
        tableau = Tableau(KnowledgeBase.of([ConceptInclusion(A, B)]))
        assert tableau.concept_satisfiable(A)
        assert not tableau.concept_satisfiable(And.of(A, Not(B)))

    def test_extra_assertions_do_not_mutate_kb(self):
        kb = KnowledgeBase.of([ConceptAssertion(a, A)])
        tableau = Tableau(kb)
        assert not tableau.is_satisfiable([ConceptAssertion(a, Not(A))])
        # The same tableau still answers the unmodified question.
        assert tableau.is_satisfiable()
