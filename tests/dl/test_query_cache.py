"""Unit tests for the query cache: canonical keys, storage, reasoner wiring."""

import pytest

from repro.dl import (
    And,
    AtomicConcept,
    AtomicRole,
    ConceptAssertion,
    ConceptInclusion,
    DifferentIndividuals,
    Individual,
    InverseRole,
    KnowledgeBase,
    Not,
    Or,
    QueryCache,
    Reasoner,
    RoleAssertion,
    SameIndividual,
    probe_key,
    probe_set_key,
)

A = AtomicConcept("A")
B = AtomicConcept("B")
R = AtomicRole("R")
x = Individual("x")
y = Individual("y")


class TestProbeKeys:
    def test_concept_probes_key_by_nnf(self):
        double_negated = ConceptAssertion(x, Not(Not(A)))
        plain = ConceptAssertion(x, A)
        assert probe_key(double_negated) == probe_key(plain)

    def test_de_morgan_variants_share_a_key(self):
        negated_or = ConceptAssertion(x, Not(Or.of(A, B)))
        conjunction = ConceptAssertion(x, And.of(Not(A), Not(B)))
        assert probe_key(negated_or) == probe_key(conjunction)

    def test_distinct_concepts_get_distinct_keys(self):
        assert probe_key(ConceptAssertion(x, A)) != probe_key(
            ConceptAssertion(x, B)
        )
        assert probe_key(ConceptAssertion(x, A)) != probe_key(
            ConceptAssertion(y, A)
        )

    def test_inverse_role_assertions_normalise(self):
        direct = RoleAssertion(R, x, y)
        inverted = RoleAssertion(InverseRole(R), y, x)
        assert probe_key(direct) == probe_key(inverted)

    def test_equality_probes_are_order_insensitive(self):
        assert probe_key(SameIndividual(x, y)) == probe_key(
            SameIndividual(y, x)
        )
        assert probe_key(DifferentIndividuals(x, y)) == probe_key(
            DifferentIndividuals(y, x)
        )

    def test_probe_set_key_is_order_free(self):
        probes = [ConceptAssertion(x, A), RoleAssertion(R, x, y)]
        assert probe_set_key(probes) == probe_set_key(reversed(probes))

    def test_tbox_axioms_are_not_probes(self):
        with pytest.raises(TypeError):
            probe_key(ConceptInclusion(A, B))


class TestQueryCache:
    def test_store_and_lookup(self):
        cache = QueryCache()
        key = probe_set_key([ConceptAssertion(x, A)])
        assert cache.lookup(key) is None
        cache.store(key, False)
        assert cache.lookup(key) is False
        assert len(cache) == 1

    def test_disabled_cache_is_transparent(self):
        cache = QueryCache(enabled=False)
        key = probe_set_key([ConceptAssertion(x, A)])
        cache.store(key, True)
        assert cache.lookup(key) is None
        assert len(cache) == 0

    def test_clear_drops_entries(self):
        cache = QueryCache()
        cache.store(frozenset(), True)
        cache.clear()
        assert cache.lookup(frozenset()) is None


class TestReasonerCacheWiring:
    def test_repeated_identical_probe_runs_the_tableau_once(self):
        kb = KnowledgeBase()
        kb.add(ConceptAssertion(x, A), ConceptInclusion(A, B))
        reasoner = Reasoner(kb)
        baseline = reasoner.stats.snapshot()
        assert reasoner.is_instance(x, B)
        assert reasoner.is_instance(x, B)
        assert reasoner.is_instance(x, B)
        delta = reasoner.stats - baseline
        assert delta.tableau_runs == 1
        assert delta.cache_hits == 2

    def test_entails_shares_cache_with_is_instance(self):
        kb = KnowledgeBase()
        kb.add(ConceptAssertion(x, A), ConceptInclusion(A, B))
        reasoner = Reasoner(kb)
        reasoner.is_instance(x, B)
        baseline = reasoner.stats.snapshot()
        assert reasoner.entails(ConceptAssertion(x, B))
        delta = reasoner.stats - baseline
        assert delta.tableau_runs == 0
        assert delta.cache_hits == 1

    def test_nnf_variants_share_a_cache_entry(self):
        kb = KnowledgeBase()
        kb.add(ConceptAssertion(x, A))
        reasoner = Reasoner(kb)
        reasoner.is_satisfiable(Not(Or.of(A, B)))
        baseline = reasoner.stats.snapshot()
        reasoner.is_satisfiable(And.of(Not(A), Not(B)))
        delta = reasoner.stats - baseline
        assert delta.cache_hits == 1
        assert delta.tableau_runs == 0

    def test_entails_all_deduplicates_probes(self):
        kb = KnowledgeBase()
        kb.add(ConceptAssertion(x, A), ConceptInclusion(A, B))
        reasoner = Reasoner(kb)
        baseline = reasoner.stats.snapshot()
        axiom = ConceptAssertion(x, B)
        assert reasoner.entails_all([axiom, axiom, axiom])
        delta = reasoner.stats - baseline
        assert delta.tableau_runs == 1

    def test_disabled_cache_reruns_the_tableau(self):
        kb = KnowledgeBase()
        kb.add(ConceptAssertion(x, A), ConceptInclusion(A, B))
        reasoner = Reasoner(kb, use_cache=False)
        baseline = reasoner.stats.snapshot()
        reasoner.is_instance(x, B)
        reasoner.is_instance(x, B)
        delta = reasoner.stats - baseline
        assert delta.tableau_runs == 2
        assert delta.cache_hits == 0

    def test_kb_version_counts_added_axioms(self):
        kb = KnowledgeBase()
        assert kb.version == 0
        kb.add(ConceptAssertion(x, A))
        assert kb.version == 1
        kb.add(ConceptInclusion(A, B), ConceptAssertion(y, B))
        assert kb.version == 3
