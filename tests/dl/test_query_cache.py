"""Unit tests for the query cache: canonical keys, storage, reasoner wiring."""

import pytest

from repro.dl import (
    And,
    AtomicConcept,
    AtomicRole,
    ConceptAssertion,
    ConceptInclusion,
    DifferentIndividuals,
    Individual,
    InverseRole,
    KnowledgeBase,
    Not,
    Or,
    QueryCache,
    Reasoner,
    RoleAssertion,
    SameIndividual,
    probe_key,
    probe_set_key,
)

A = AtomicConcept("A")
B = AtomicConcept("B")
R = AtomicRole("R")
x = Individual("x")
y = Individual("y")


class TestProbeKeys:
    def test_concept_probes_key_by_nnf(self):
        double_negated = ConceptAssertion(x, Not(Not(A)))
        plain = ConceptAssertion(x, A)
        assert probe_key(double_negated) == probe_key(plain)

    def test_de_morgan_variants_share_a_key(self):
        negated_or = ConceptAssertion(x, Not(Or.of(A, B)))
        conjunction = ConceptAssertion(x, And.of(Not(A), Not(B)))
        assert probe_key(negated_or) == probe_key(conjunction)

    def test_distinct_concepts_get_distinct_keys(self):
        assert probe_key(ConceptAssertion(x, A)) != probe_key(
            ConceptAssertion(x, B)
        )
        assert probe_key(ConceptAssertion(x, A)) != probe_key(
            ConceptAssertion(y, A)
        )

    def test_inverse_role_assertions_normalise(self):
        direct = RoleAssertion(R, x, y)
        inverted = RoleAssertion(InverseRole(R), y, x)
        assert probe_key(direct) == probe_key(inverted)

    def test_equality_probes_are_order_insensitive(self):
        assert probe_key(SameIndividual(x, y)) == probe_key(
            SameIndividual(y, x)
        )
        assert probe_key(DifferentIndividuals(x, y)) == probe_key(
            DifferentIndividuals(y, x)
        )

    def test_probe_set_key_is_order_free(self):
        probes = [ConceptAssertion(x, A), RoleAssertion(R, x, y)]
        assert probe_set_key(probes) == probe_set_key(reversed(probes))

    def test_tbox_axioms_are_not_probes(self):
        with pytest.raises(TypeError):
            probe_key(ConceptInclusion(A, B))


class TestQueryCache:
    def test_store_and_lookup(self):
        cache = QueryCache()
        key = probe_set_key([ConceptAssertion(x, A)])
        assert cache.lookup(key) is None
        cache.store(key, False)
        assert cache.lookup(key) is False
        assert len(cache) == 1

    def test_disabled_cache_is_transparent(self):
        cache = QueryCache(enabled=False)
        key = probe_set_key([ConceptAssertion(x, A)])
        cache.store(key, True)
        assert cache.lookup(key) is None
        assert len(cache) == 0

    def test_clear_drops_entries(self):
        cache = QueryCache()
        cache.store(frozenset(), True)
        cache.clear()
        assert cache.lookup(frozenset()) is None


def _keys(n):
    return [
        probe_set_key([ConceptAssertion(x, AtomicConcept(f"K{i}"))])
        for i in range(n)
    ]


class TestLruCapacity:
    def test_overflow_evicts_least_recently_used(self):
        cache = QueryCache(maxsize=2)
        k0, k1, k2 = _keys(3)
        cache.store(k0, True)
        cache.store(k1, False)
        cache.store(k2, True)
        assert cache.lookup(k0) is None
        assert cache.lookup(k1) is False
        assert cache.lookup(k2) is True
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_lookup_refreshes_recency(self):
        cache = QueryCache(maxsize=2)
        k0, k1, k2 = _keys(3)
        cache.store(k0, True)
        cache.store(k1, True)
        assert cache.lookup(k0) is True  # k1 is now the oldest
        cache.store(k2, True)
        assert cache.lookup(k1) is None
        assert cache.lookup(k0) is True

    def test_agreeing_restore_refreshes_recency_without_eviction(self):
        cache = QueryCache(maxsize=2)
        k0, k1, k2 = _keys(3)
        cache.store(k0, True)
        cache.store(k1, True)
        cache.store(k0, True)  # agreeing re-store: refresh, no eviction
        assert cache.evictions == 0
        cache.store(k2, True)  # evicts k1, the least recently stored
        assert cache.lookup(k1) is None
        assert cache.lookup(k0) is True

    def test_conflicting_store_raises_and_keeps_the_cached_verdict(self):
        from repro.dl import CacheConflictError, ReasonerStats

        stats = ReasonerStats()
        cache = QueryCache(maxsize=2, stats=stats)
        (k0,) = _keys(1)
        cache.store(k0, True)
        with pytest.raises(CacheConflictError) as excinfo:
            cache.store(k0, False)
        assert excinfo.value.cached is True
        assert excinfo.value.attempted is False
        assert excinfo.value.key == k0
        assert stats.cache_conflicts == 1
        # The original (first-decided) verdict survives untouched.
        assert cache.lookup(k0) is True

    def test_conflicting_store_counts_without_attached_stats(self):
        from repro.dl import CacheConflictError

        cache = QueryCache(maxsize=2)
        (k0,) = _keys(1)
        cache.store(k0, False)
        with pytest.raises(CacheConflictError):
            cache.store(k0, True)
        assert cache.lookup(k0) is False

    def test_disabled_cache_never_conflicts(self):
        cache = QueryCache(enabled=False)
        (k0,) = _keys(1)
        cache.store(k0, True)
        cache.store(k0, False)  # no entries retained, nothing to disagree
        assert cache.lookup(k0) is None

    def test_unbounded_when_maxsize_is_none(self):
        cache = QueryCache(maxsize=None)
        for key in _keys(5000):
            cache.store(key, True)
        assert len(cache) == 5000
        assert cache.evictions == 0

    def test_rejects_non_positive_maxsize(self):
        with pytest.raises(ValueError):
            QueryCache(maxsize=0)
        with pytest.raises(ValueError):
            QueryCache(maxsize=-3)

    def test_evictions_reported_on_attached_stats(self):
        from repro.dl import ReasonerStats

        stats = ReasonerStats()
        cache = QueryCache(maxsize=1, stats=stats)
        k0, k1 = _keys(2)
        cache.store(k0, True)
        cache.store(k1, True)
        assert stats.cache_evictions == 1
        assert cache.evictions == 1

    def test_reasoner_plumbs_maxsize_and_counts_evictions(self):
        kb = KnowledgeBase()
        kb.add(ConceptAssertion(x, A), ConceptInclusion(A, B))
        reasoner = Reasoner(kb, cache_maxsize=1)
        reasoner.is_instance(x, A)
        reasoner.is_instance(x, B)
        assert reasoner.stats.cache_evictions >= 1
        # the surviving entry still serves hits
        baseline = reasoner.stats.snapshot()
        reasoner.is_instance(x, B)
        assert (reasoner.stats - baseline).cache_hits == 1


class TestReasonerCacheWiring:
    def test_repeated_identical_probe_decides_once(self):
        kb = KnowledgeBase()
        kb.add(ConceptAssertion(x, A), ConceptInclusion(A, B))
        reasoner = Reasoner(kb)
        baseline = reasoner.stats.snapshot()
        assert reasoner.is_instance(x, B)
        assert reasoner.is_instance(x, B)
        assert reasoner.is_instance(x, B)
        delta = reasoner.stats - baseline
        # Exactly one engine decision (saturation or tableau), then hits.
        assert delta.tableau_runs + delta.saturation_queries == 1
        assert delta.cache_hits == 2

    def test_entails_shares_cache_with_is_instance(self):
        kb = KnowledgeBase()
        kb.add(ConceptAssertion(x, A), ConceptInclusion(A, B))
        reasoner = Reasoner(kb)
        reasoner.is_instance(x, B)
        baseline = reasoner.stats.snapshot()
        assert reasoner.entails(ConceptAssertion(x, B))
        delta = reasoner.stats - baseline
        assert delta.tableau_runs == 0
        assert delta.saturation_queries == 0
        assert delta.cache_hits == 1

    def test_nnf_variants_share_a_cache_entry(self):
        kb = KnowledgeBase()
        kb.add(ConceptAssertion(x, A))
        reasoner = Reasoner(kb)
        reasoner.is_satisfiable(Not(Or.of(A, B)))
        baseline = reasoner.stats.snapshot()
        reasoner.is_satisfiable(And.of(Not(A), Not(B)))
        delta = reasoner.stats - baseline
        assert delta.cache_hits == 1
        assert delta.tableau_runs == 0
        assert delta.saturation_queries == 0

    def test_entails_all_deduplicates_probes(self):
        kb = KnowledgeBase()
        kb.add(ConceptAssertion(x, A), ConceptInclusion(A, B))
        reasoner = Reasoner(kb)
        baseline = reasoner.stats.snapshot()
        axiom = ConceptAssertion(x, B)
        assert reasoner.entails_all([axiom, axiom, axiom])
        delta = reasoner.stats - baseline
        assert delta.tableau_runs + delta.saturation_queries == 1

    def test_disabled_cache_reruns_the_tableau(self):
        kb = KnowledgeBase()
        kb.add(ConceptAssertion(x, A), ConceptInclusion(A, B))
        reasoner = Reasoner(kb, use_cache=False)
        baseline = reasoner.stats.snapshot()
        reasoner.is_instance(x, B)
        reasoner.is_instance(x, B)
        delta = reasoner.stats - baseline
        assert delta.tableau_runs + delta.saturation_queries == 2
        assert delta.cache_hits == 0

    def test_kb_version_counts_added_axioms(self):
        kb = KnowledgeBase()
        assert kb.version == 0
        kb.add(ConceptAssertion(x, A))
        assert kb.version == 1
        kb.add(ConceptInclusion(A, B), ConceptAssertion(y, B))
        assert kb.version == 3
