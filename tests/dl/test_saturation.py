"""Unit tests for the consequence-driven saturation engine.

Covers the fragment checker on every axiom constructor, the engine's
probe language and verdicts in complete and core modes, the padding
treatment of the awkward ``N1``/``N2`` shapes, budget integration, and
the dispatch wiring through :class:`~repro.dl.reasoner.Reasoner`.
"""

import pytest

from repro.dl import (
    BOTTOM,
    TOP,
    And,
    AtLeast,
    AtMost,
    AtomicConcept,
    AtomicRole,
    Budget,
    BudgetExceeded,
    ConceptAssertion,
    ConceptEquivalence,
    ConceptInclusion,
    DataAssertion,
    DataValue,
    DatatypeRole,
    DatatypeRoleInclusion,
    DifferentIndividuals,
    Exists,
    Forall,
    FragmentReport,
    Individual,
    InverseRole,
    KnowledgeBase,
    NegativeRoleAssertion,
    Not,
    OneOf,
    Or,
    Reasoner,
    RoleAssertion,
    RoleInclusion,
    SameIndividual,
    SaturationEngine,
    Transitivity,
    axiom_residue_reason,
    fragment_report,
)
from repro.dl.datatypes import INTEGER

A = AtomicConcept("A")
B = AtomicConcept("B")
C = AtomicConcept("C")
D = AtomicConcept("D")
R = AtomicRole("R")
S = AtomicRole("S")
T = DatatypeRole("T")
x = Individual("x")
y = Individual("y")


def probe(individual, concept):
    return ConceptAssertion(individual, concept)


class TestFragmentChecker:
    """``axiom_residue_reason`` on every axiom constructor."""

    @pytest.mark.parametrize(
        "axiom",
        [
            ConceptInclusion(A, B),
            ConceptInclusion(And.of(A, B), C),
            ConceptInclusion(A, And.of(B, C)),
            ConceptInclusion(A, Exists(R, B)),
            ConceptInclusion(Exists(R, B), C),
            ConceptInclusion(Exists(R, TOP), C),
            ConceptInclusion(TOP, Forall(R, B)),  # global range
            ConceptInclusion(A, Not(B)),  # disjointness
            ConceptInclusion(A, BOTTOM),
            ConceptInclusion(BOTTOM, Or.of(A, B)),  # vacuous: ⊥ on the left
            ConceptInclusion(Not(A), B),  # N1 via padding
            ConceptInclusion(Forall(R, Or.of(A, B)), C),  # N2 via padding
            ConceptInclusion(A, Exists(R, And.of(B, Exists(S, C)))),
            RoleInclusion(R, S),
            DatatypeRoleInclusion(T, DatatypeRole("U")),
            ConceptAssertion(x, A),
            ConceptAssertion(x, And.of(A, Not(B))),
            ConceptAssertion(x, Exists(R, B)),
            ConceptAssertion(x, TOP),
            ConceptAssertion(x, BOTTOM),
            RoleAssertion(R, x, y),
            RoleAssertion(InverseRole(R), x, y),  # normalises to R(y, x)
            DifferentIndividuals(x, y),
        ],
    )
    def test_in_fragment(self, axiom):
        assert axiom_residue_reason(axiom) is None

    @pytest.mark.parametrize(
        "axiom, reason_fragment",
        [
            (Transitivity(R), "transitive"),
            (NegativeRoleAssertion(R, x, y), "negated role"),
            (SameIndividual(x, y), "equality"),
            (DataAssertion(T, x, DataValue(INTEGER, 3)), "datatype"),
            (DifferentIndividuals(x, x), "distinct from itself"),
            (ConceptInclusion(A, Or.of(B, C)), "Or"),
            (ConceptInclusion(Or.of(A, B), C), "Or"),
            (ConceptInclusion(A, AtLeast(2, R)), "AtLeast"),
            (ConceptInclusion(A, AtMost(1, R)), "AtMost"),
            (ConceptInclusion(A, OneOf.of("x", "y")), "OneOf"),
            (ConceptInclusion(A, Not(Or.of(B, C))), "complement"),
            (ConceptInclusion(A, Forall(R, B)), "non-Top left-hand side"),
            (ConceptInclusion(A, Exists(InverseRole(R), B)), "inverse"),
            (ConceptInclusion(Exists(InverseRole(R), B), A), "inverse"),
            (RoleInclusion(InverseRole(R), S), "inverse"),
            (ConceptInclusion(Not(Or.of(A, B)), C), "left-hand side"),
            (ConceptAssertion(x, Or.of(A, B)), "Or"),
            (ConceptAssertion(x, Not(Exists(R, B))), "complement"),
            (ConceptAssertion(x, Forall(R, B)), "Forall"),
            (ConceptEquivalence(A, B), "ConceptEquivalence"),
        ],
    )
    def test_residue_with_reason(self, axiom, reason_fragment):
        reason = axiom_residue_reason(axiom)
        assert reason is not None
        assert reason_fragment in reason

    def test_n1_right_hand_side_is_still_validated(self):
        # ¬A ⊑ X pads A, but X must itself be expressible.
        assert axiom_residue_reason(ConceptInclusion(Not(A), B)) is None
        assert (
            axiom_residue_reason(ConceptInclusion(Not(A), Or.of(B, C)))
            is not None
        )

    def test_equivalences_enter_kbs_as_inclusions(self):
        # KnowledgeBase.add splits equivalences, so the engine sees two
        # plain inclusions and the KB stays complete.
        kb = KnowledgeBase()
        kb.add(ConceptEquivalence(A, B))
        assert fragment_report(kb).complete


class TestFragmentReport:
    def test_complete_report(self):
        kb = KnowledgeBase()
        kb.add(ConceptInclusion(A, B), ConceptAssertion(x, A))
        report = fragment_report(kb)
        assert isinstance(report, FragmentReport)
        assert report.total == 2
        assert report.tractable == 2
        assert report.complete
        assert report.render() == "saturation fragment: 2/2 axioms (complete)"

    def test_core_report_names_the_residue(self):
        kb = KnowledgeBase()
        kb.add(ConceptInclusion(A, B), Transitivity(R))
        report = fragment_report(kb)
        assert report.total == 2
        assert report.tractable == 1
        assert not report.complete
        ((axiom, reason),) = report.residue
        assert isinstance(axiom, Transitivity)
        assert "transitive" in reason
        assert report.render() == "saturation fragment: 1/2 axioms (core)"


def engine(*axioms):
    kb = KnowledgeBase()
    kb.add(*axioms)
    return SaturationEngine(kb)


class TestCompleteModeVerdicts:
    def test_empty_probe_on_consistent_kb_is_sat(self):
        assert engine(ConceptInclusion(A, B)).satisfiable_with() is True

    def test_inconsistent_kb_is_unsat(self):
        eng = engine(
            ConceptAssertion(x, A),
            ConceptInclusion(A, B),
            ConceptInclusion(A, Not(B)),
        )
        assert eng.satisfiable_with() is False

    def test_subsumption_chain_probe(self):
        eng = engine(ConceptInclusion(A, B), ConceptInclusion(B, C))
        fresh = Individual("__q__")
        assert eng.satisfiable_with([probe(fresh, And.of(A, Not(C)))]) is False
        assert eng.satisfiable_with([probe(fresh, And.of(A, Not(D)))]) is True

    def test_existential_domain_chain(self):
        # A ⊑ ∃R.B and ∃R.B ⊑ C entail A ⊑ C.
        eng = engine(
            ConceptInclusion(A, Exists(R, B)),
            ConceptInclusion(Exists(R, B), C),
        )
        fresh = Individual("__q__")
        assert eng.satisfiable_with([probe(fresh, And.of(A, Not(C)))]) is False

    def test_global_range_applies_to_successors(self):
        # range(R) = C and ∃R.C ⊓ nothing else: A ⊑ ∃R.B, ∃R.C ⊑ D ⇒ A ⊑ D.
        eng = engine(
            ConceptInclusion(A, Exists(R, B)),
            ConceptInclusion(TOP, Forall(R, C)),
            ConceptInclusion(Exists(R, C), D),
        )
        fresh = Individual("__q__")
        assert eng.satisfiable_with([probe(fresh, And.of(A, Not(D)))]) is False

    def test_role_hierarchy_lifts_domain_rules(self):
        # R ⊑ S and ∃S.B ⊑ C: an R-edge to a B counts as an S-edge.
        eng = engine(
            RoleInclusion(R, S),
            ConceptInclusion(A, Exists(R, B)),
            ConceptInclusion(Exists(S, B), C),
        )
        fresh = Individual("__q__")
        assert eng.satisfiable_with([probe(fresh, And.of(A, Not(C)))]) is False

    def test_instance_check_via_negated_probe(self):
        eng = engine(
            ConceptAssertion(x, A),
            ConceptInclusion(A, B),
            RoleAssertion(R, x, y),
            ConceptInclusion(Exists(R, TOP), C),
        )
        assert eng.satisfiable_with([probe(x, Not(B))]) is False
        assert eng.satisfiable_with([probe(x, Not(C))]) is False
        assert eng.satisfiable_with([probe(y, Not(B))]) is True

    def test_negative_assertion_forbids_derivation(self):
        eng = engine(
            ConceptAssertion(x, A),
            ConceptAssertion(x, Not(B)),
            ConceptInclusion(A, B),
        )
        assert eng.satisfiable_with() is False

    def test_bottom_probe_is_unsat_regardless_of_kb(self):
        eng = engine(ConceptInclusion(A, B))
        assert eng.satisfiable_with([probe(x, BOTTOM)]) is False
        assert eng.satisfiable_with([probe(x, Not(TOP))]) is False

    def test_n1_padding_keeps_complete_mode_sound(self):
        # ¬A ⊑ B alone is satisfiable (pad A); but A ⊓ ¬A is still unsat.
        eng = engine(ConceptInclusion(Not(A), B))
        assert eng.complete
        assert eng.satisfiable_with() is True
        fresh = Individual("__q__")
        assert eng.satisfiable_with([probe(fresh, And.of(A, Not(A)))]) is False

    def test_n2_padding_keeps_complete_mode_sound(self):
        # ∀R.(B ⊔ C) ⊑ D compiles via a padded marker implying D.
        eng = engine(ConceptInclusion(Forall(R, Or.of(B, C)), D))
        assert eng.complete
        assert eng.satisfiable_with() is True

    def test_padded_clash_declines_instead_of_answering_sat(self):
        # Padding A universal makes the model clash with x : ¬A, but the
        # pad-free entailment closure cannot prove inconsistency — the
        # engine must return None, never a bogus verdict.
        eng = engine(
            ConceptInclusion(Not(A), B),
            ConceptAssertion(x, Not(A)),
            ConceptInclusion(B, Not(C)),  # keep a rule mentioning B live
        )
        assert eng.complete
        assert eng.satisfiable_with() is None


class TestCoreModeVerdicts:
    def test_unsat_is_still_answered_with_residue(self):
        # The clash is derivable from the compiled subset, so UNSAT is
        # sound by monotonicity even though Transitivity was dropped.
        eng = engine(
            ConceptAssertion(x, A),
            ConceptInclusion(A, Not(A)),
            Transitivity(R),
        )
        assert not eng.complete
        assert eng.useful
        assert eng.satisfiable_with() is False

    def test_sat_is_never_answered_with_residue(self):
        eng = engine(ConceptInclusion(A, B), Transitivity(R))
        assert eng.satisfiable_with() is None

    def test_useless_engine_has_no_tractable_core(self):
        eng = engine(SameIndividual(x, y))
        assert not eng.useful


class TestProbeLanguage:
    def test_disjunctive_probe_falls_back(self):
        eng = engine(ConceptInclusion(A, B))
        assert eng.satisfiable_with([probe(x, Or.of(A, B))]) is None

    def test_positive_probe_on_kb_individual_falls_back(self):
        eng = engine(ConceptAssertion(x, A))
        assert eng.satisfiable_with([probe(x, B)]) is None

    def test_negated_probe_on_kb_individual_is_fine(self):
        eng = engine(ConceptAssertion(x, A), ConceptInclusion(A, B))
        assert eng.satisfiable_with([probe(x, Not(B))]) is False

    def test_non_concept_probe_falls_back(self):
        eng = engine(ConceptAssertion(x, A))
        assert eng.satisfiable_with([RoleAssertion(R, x, y)]) is None

    def test_unparseable_conjunct_falls_back(self):
        eng = engine(ConceptInclusion(A, B))
        fresh = Individual("__q__")
        assert (
            eng.satisfiable_with([probe(fresh, And.of(A, AtLeast(2, R)))])
            is None
        )

    def test_repeated_queries_reuse_the_closure(self):
        eng = engine(ConceptInclusion(A, B), ConceptInclusion(B, C))
        fresh = Individual("__q__")
        first = eng.satisfiable_with([probe(fresh, And.of(A, Not(C)))])
        settled = eng.inferences
        second = eng.satisfiable_with([probe(fresh, And.of(A, Not(C)))])
        assert first is second is False
        assert eng.inferences == settled  # memoised probe atom, no rework


class TestBudgets:
    def _cancelled_meter(self):
        from repro.dl import CancelToken

        token = CancelToken()
        token.cancel()
        return Budget(cancel=token).start()

    def test_cancellation_aborts_saturation(self):
        eng = engine(
            ConceptAssertion(x, A),
            ConceptInclusion(A, B),
            ConceptInclusion(B, C),
        )
        with pytest.raises(BudgetExceeded):
            eng.satisfiable_with(meter=self._cancelled_meter())

    def test_aborted_closure_resumes_monotonically(self):
        eng = engine(
            ConceptAssertion(x, A),
            ConceptInclusion(A, B),
            ConceptInclusion(A, Not(B)),
        )
        with pytest.raises(BudgetExceeded):
            eng.satisfiable_with(meter=self._cancelled_meter())
        assert eng.satisfiable_with() is False  # unbudgeted retry decides

    def test_work_caps_do_not_bind_saturation(self):
        # Node/branch/trail caps are tableau-specific by design.
        eng = engine(ConceptAssertion(x, A), ConceptInclusion(A, B))
        meter = Budget(max_nodes=1, max_branches=1, max_trail=1).start()
        assert eng.satisfiable_with(meter=meter) is True


class TestReasonerDispatch:
    def _kb(self):
        kb = KnowledgeBase()
        kb.add(ConceptAssertion(x, A), ConceptInclusion(A, B))
        return kb

    def test_auto_engine_answers_tractable_kbs_without_tableau(self):
        reasoner = Reasoner(self._kb())
        assert reasoner.is_instance(x, B)
        assert reasoner.stats.saturation_queries >= 1
        assert reasoner.stats.tableau_runs == 0

    def test_tableau_engine_opts_out(self):
        reasoner = Reasoner(self._kb(), engine="tableau")
        assert reasoner.is_instance(x, B)
        assert reasoner.stats.saturation_queries == 0
        assert reasoner.stats.tableau_runs >= 1

    def test_unknown_engine_name_is_rejected(self):
        with pytest.raises(ValueError):
            Reasoner(self._kb(), engine="oracle")

    def test_fallback_counter_ticks_on_decline(self):
        kb = self._kb()
        kb.add(ConceptInclusion(C, Or.of(A, B)))  # residue: core mode
        reasoner = Reasoner(kb)
        assert reasoner.is_satisfiable(Or.of(A, B))  # out of probe language
        assert reasoner.stats.saturation_fallbacks >= 1
        assert reasoner.stats.tableau_runs >= 1

    def test_mutation_rebuilds_the_engine(self):
        kb = self._kb()
        reasoner = Reasoner(kb)
        assert reasoner.is_instance(x, B)
        kb.add(ConceptInclusion(B, C))
        assert reasoner.is_instance(x, C)
        assert reasoner.stats.tableau_runs == 0

    def test_both_engines_agree_through_the_shared_cache(self):
        # The same probes through both engines must agree — a mismatch
        # would raise CacheConflictError out of the shared QueryCache.
        kb = self._kb()
        auto = Reasoner(kb)
        pinned = Reasoner(kb, engine="tableau", cache=auto.cache)
        for concept in (A, B, Not(A), Not(B), And.of(A, Not(B))):
            assert auto.is_instance(x, concept) == pinned.is_instance(
                x, concept
            )
