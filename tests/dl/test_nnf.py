"""NNF correctness: unit cases plus semantic preservation properties."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dl import (
    BOTTOM,
    TOP,
    And,
    AtLeast,
    AtMost,
    AtomicConcept,
    AtomicRole,
    Exists,
    Forall,
    Individual,
    Not,
    OneOf,
    Or,
    is_nnf,
    negation_nnf,
    nnf,
)
from repro.semantics import Interpretation
from repro.workloads import Signature, random_concept

A, B = AtomicConcept("A"), AtomicConcept("B")
r = AtomicRole("r")


class TestUnitCases:
    def test_literals_unchanged(self):
        assert nnf(A) == A
        assert nnf(Not(A)) == Not(A)
        assert nnf(TOP) == TOP

    def test_double_negation(self):
        assert nnf(Not(Not(A))) == A
        assert nnf(Not(Not(Not(A)))) == Not(A)

    def test_de_morgan(self):
        assert nnf(Not(A & B)) == (Not(A) | Not(B))
        assert nnf(Not(A | B)) == (Not(A) & Not(B))

    def test_quantifier_duals(self):
        assert nnf(Not(Exists(r, A))) == Forall(r, Not(A))
        assert nnf(Not(Forall(r, A))) == Exists(r, Not(A))

    def test_counting_duals(self):
        assert nnf(Not(AtLeast(2, r))) == AtMost(1, r)
        assert nnf(Not(AtMost(2, r))) == AtLeast(3, r)
        assert nnf(Not(AtLeast(0, r))) == BOTTOM

    def test_top_bottom_duals(self):
        assert nnf(Not(TOP)) == BOTTOM
        assert nnf(Not(BOTTOM)) == TOP

    def test_negated_nominal_stays_literal(self):
        nominal = OneOf.of("a")
        assert nnf(Not(nominal)) == Not(nominal)

    def test_nested(self):
        concept = Not(And.of(A, Exists(r, Not(Or.of(A, B)))))
        result = nnf(concept)
        assert is_nnf(result)
        assert result == Or.of(Not(A), Forall(r, Or.of(A, B)))

    def test_negation_nnf_is_nnf_of_not(self):
        concept = And.of(A, Exists(r, B))
        assert negation_nnf(concept) == nnf(Not(concept))


class TestIsNnf:
    def test_positive_cases(self):
        assert is_nnf(A)
        assert is_nnf(Not(A))
        assert is_nnf(Forall(r, Not(A) | B))

    def test_negative_cases(self):
        assert not is_nnf(Not(A & B))
        assert not is_nnf(Exists(r, Not(Exists(r, A))))


def random_interpretation(rng: random.Random, signature: Signature) -> Interpretation:
    domain = ["d0", "d1", "d2"]
    return Interpretation(
        domain=frozenset(domain),
        concept_ext={
            concept: frozenset(x for x in domain if rng.random() < 0.5)
            for concept in signature.concepts
        },
        role_ext={
            role: frozenset(
                (x, y)
                for x in domain
                for y in domain
                if rng.random() < 0.4
            )
            for role in signature.roles
        },
        individual_map={i: rng.choice(domain) for i in signature.individuals},
    )


class TestSemanticPreservation:
    """NNF must not change the classical extension (checked on models)."""

    @given(st.integers(0, 10**6))
    @settings(max_examples=120, deadline=None)
    def test_nnf_preserves_extension(self, seed):
        rng = random.Random(seed)
        signature = Signature.of_size(3, 2, 2)
        concept = random_concept(
            rng, signature, depth=3, allow_counting=True, allow_nominals=True
        )
        interpretation = random_interpretation(rng, signature)
        assert interpretation.extension(concept) == interpretation.extension(
            nnf(concept)
        )

    @given(st.integers(0, 10**6))
    @settings(max_examples=120, deadline=None)
    def test_negation_nnf_is_complement(self, seed):
        rng = random.Random(seed)
        signature = Signature.of_size(3, 2, 2)
        concept = random_concept(
            rng, signature, depth=3, allow_counting=True, allow_nominals=True
        )
        interpretation = random_interpretation(rng, signature)
        complement = interpretation.domain - interpretation.extension(concept)
        assert interpretation.extension(negation_nnf(concept)) == complement

    @given(st.integers(0, 10**6))
    @settings(max_examples=120, deadline=None)
    def test_nnf_result_is_nnf(self, seed):
        rng = random.Random(seed)
        signature = Signature.of_size(3, 2, 2)
        concept = random_concept(
            rng, signature, depth=4, allow_counting=True, allow_nominals=True
        )
        assert is_nnf(nnf(concept))

    @given(st.integers(0, 10**6))
    @settings(max_examples=80, deadline=None)
    def test_nnf_idempotent(self, seed):
        rng = random.Random(seed)
        signature = Signature.of_size(3, 2, 2)
        concept = random_concept(rng, signature, depth=3, allow_counting=True)
        once = nnf(concept)
        assert nnf(once) == once
