"""Unit tests for the ReasonerStats counters and harness measure helper."""

from repro.dl import ReasonerStats
from repro.harness import Measurement, measure


class TestReasonerStats:
    def test_snapshot_is_independent(self):
        stats = ReasonerStats(tableau_runs=3, cache_hits=1)
        frozen = stats.snapshot()
        stats.tableau_runs += 2
        assert frozen.tableau_runs == 3
        assert stats.tableau_runs == 5

    def test_subtraction_gives_the_delta(self):
        stats = ReasonerStats(tableau_runs=5, cache_hits=2, cache_misses=5)
        earlier = ReasonerStats(tableau_runs=2, cache_hits=1, cache_misses=3)
        delta = stats - earlier
        assert delta.tableau_runs == 3
        assert delta.cache_hits == 1
        assert delta.cache_misses == 2

    def test_reset_zeroes_everything(self):
        stats = ReasonerStats(tableau_runs=7, branches_explored=9)
        stats.reset()
        assert stats == ReasonerStats()

    def test_hit_rate_handles_zero_lookups(self):
        assert ReasonerStats().cache_hit_rate == 0.0
        assert ReasonerStats(cache_hits=3, cache_misses=1).cache_hit_rate == 0.75

    def test_render_mentions_every_counter_family(self):
        line = ReasonerStats(tableau_runs=4, cache_hits=2).render()
        assert "tableau runs: 4" in line
        assert "2 hits" in line
        assert "subsumption tests" in line

    def test_as_dict_round_trips(self):
        stats = ReasonerStats(tableau_runs=1, told_subsumptions=6)
        assert ReasonerStats(**stats.as_dict()) == stats


class TestMeasure:
    def test_measure_captures_result_and_delta(self):
        stats = ReasonerStats(tableau_runs=10)

        def work():
            stats.tableau_runs += 4
            return "answer"

        outcome = measure(work, stats=stats)
        assert isinstance(outcome, Measurement)
        assert outcome.result == "answer"
        assert outcome.seconds >= 0
        assert outcome.stats.tableau_runs == 4

    def test_measure_without_stats(self):
        outcome = measure(lambda: 42)
        assert outcome.result == 42
        assert outcome.stats is None
        assert outcome.render().endswith("s")

    def test_render_includes_stats_when_present(self):
        outcome = measure(lambda: None, stats=ReasonerStats())
        assert "tableau runs" in outcome.render()
