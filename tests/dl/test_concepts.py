"""Unit tests for the concept AST."""

import pytest

from repro.dl import (
    BOTTOM,
    TOP,
    And,
    AtLeast,
    AtMost,
    AtomicConcept,
    AtomicRole,
    DataAtLeast,
    DataExists,
    DatatypeRole,
    Exists,
    Forall,
    INTEGER,
    Individual,
    Not,
    OneOf,
    Or,
)
from repro.dl.concepts import (
    atomic_concepts,
    datatype_roles,
    nominals,
    object_roles,
)

A, B, C = AtomicConcept("A"), AtomicConcept("B"), AtomicConcept("C")
r = AtomicRole("r")
u = DatatypeRole("u")


class TestConstruction:
    def test_operators_build_nodes(self):
        assert (A & B) == And.of(A, B)
        assert (A | B) == Or.of(A, B)
        assert ~A == Not(A)

    def test_and_flattens(self):
        assert And.of(And.of(A, B), C) == And((A, B, C))
        assert (A & B & C) == And((A, B, C))

    def test_or_flattens(self):
        assert Or.of(A, Or.of(B, C)) == Or((A, B, C))

    def test_single_operand_collapses(self):
        assert And.of(A) == A
        assert Or.of(A) == A

    def test_nodes_are_hashable_and_equal_by_value(self):
        assert hash(Exists(r, A)) == hash(Exists(r, A))
        assert Exists(r, A) == Exists(r, A)
        assert Exists(r, A) != Exists(r, B)
        assert len({A & B, A & B, A | B}) == 2

    def test_oneof_of_names(self):
        assert OneOf.of("a", "b").individuals == frozenset(
            {Individual("a"), Individual("b")}
        )

    def test_oneof_order_irrelevant(self):
        assert OneOf.of("a", "b") == OneOf.of("b", "a")


class TestTraversal:
    def test_subconcepts_counts_nested(self):
        concept = And.of(A, Exists(r, Or.of(B, Not(C))))
        names = [type(c).__name__ for c in concept.subconcepts()]
        assert names.count("AtomicConcept") == 3
        assert "Exists" in names and "Or" in names and "Not" in names

    def test_size(self):
        assert A.size() == 1
        assert (A & B).size() == 3
        assert Exists(r, A).size() == 2
        assert Not(Exists(r, A & B)).size() == 5

    def test_counting_constructors_are_leaves(self):
        assert AtLeast(2, r).size() == 1
        assert DataAtLeast(2, u).size() == 1


class TestSignatureExtraction:
    def test_atomic_concepts(self):
        concept = And.of(A, Exists(r, B), Forall(r.inverse(), Not(C)))
        assert atomic_concepts(concept) == frozenset({A, B, C})

    def test_object_roles_include_inverse_expressions(self):
        concept = And.of(Exists(r, A), AtMost(2, r.inverse()))
        roles = object_roles(concept)
        assert r in roles and r.inverse() in roles

    def test_datatype_roles(self):
        concept = And.of(DataExists(u, INTEGER), A)
        assert datatype_roles(concept) == frozenset({u})

    def test_nominals(self):
        concept = Or.of(OneOf.of("a"), Exists(r, OneOf.of("b", "c")))
        assert nominals(concept) == frozenset(
            {Individual("a"), Individual("b"), Individual("c")}
        )

    def test_top_bottom_have_empty_signature(self):
        assert atomic_concepts(TOP) == frozenset()
        assert atomic_concepts(BOTTOM) == frozenset()


class TestRepr:
    @pytest.mark.parametrize(
        "concept, expected",
        [
            (A, "A"),
            (TOP, "Thing"),
            (BOTTOM, "Nothing"),
            (Not(A), "(not A)"),
            (A & B, "(A and B)"),
            (A | B, "(A or B)"),
            (Exists(r, A), "(some r A)"),
            (Forall(r, A), "(all r A)"),
            (AtLeast(2, r), "(atleast 2 r)"),
            (AtMost(3, r.inverse()), "(atmost 3 r-)"),
        ],
    )
    def test_repr(self, concept, expected):
        assert repr(concept) == expected
