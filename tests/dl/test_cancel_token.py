"""CancelToken across threads and processes (ISSUE 9 satellite).

The token is the service's cross-boundary cancellation pathway: a pool
supervisor cancels a probe running in a worker process, an HTTP handler
thread cancels a search running under its own budget.  These tests pin
the three contracts: cancel-before-start aborts immediately, a
mid-search cancel from another thread is observed, and
``retry_with_escalation`` never escalates a cancellation.
"""

import multiprocessing
import threading

from repro.dl import (
    AtomicConcept,
    Budget,
    CancelToken,
    ConceptAssertion,
    ConceptInclusion,
    DegradationReason,
    Individual,
    KnowledgeBase,
    Not,
    Or,
    Reasoner,
    retry_with_escalation,
)


def branchy_kb(width=6):
    """A KB whose consistency check explores many branches."""
    kb = KnowledgeBase()
    a = Individual("a")
    for index in range(width):
        kb.add(
            ConceptAssertion(
                a,
                Or.of(
                    AtomicConcept(f"L{index}"), AtomicConcept(f"R{index}")
                ),
            )
        )
    return kb


def _wait_and_report(token, started, cancelled, queue):
    """Child-process body: report the flag before and after the cancel."""
    started.set()
    cancelled.wait(timeout=30.0)
    queue.put(token.is_set())


class TestCrossThread:
    def test_cancel_before_start_aborts_first_tick(self):
        token = CancelToken()
        token.cancel()
        reasoner = Reasoner(branchy_kb())
        verdict = reasoner.consistency_verdict(
            budget=Budget(cancel=token, check_interval=1)
        )
        assert verdict.is_unknown()
        assert verdict.reason is DegradationReason.CANCELLED

    def test_cancel_from_another_thread_mid_search(self):
        class CancelFromThreadAt(CancelToken):
            """Fires a real cross-thread cancel at the N-th poll."""

            def __init__(self, fire_at):
                super().__init__()
                self.fire_at = fire_at
                self.polls = 0

            def is_set(self):
                self.polls += 1
                if self.polls == self.fire_at:
                    canceller = threading.Thread(target=self.cancel)
                    canceller.start()
                    canceller.join()
                return super().is_set()

        token = CancelFromThreadAt(fire_at=5)
        reasoner = Reasoner(branchy_kb())
        verdict = reasoner.consistency_verdict(
            budget=Budget(cancel=token, check_interval=1)
        )
        assert verdict.is_unknown()
        assert verdict.reason is DegradationReason.CANCELLED
        assert token.polls >= 5

    def test_cancel_is_idempotent_and_sticky(self):
        token = CancelToken()
        assert not token.is_set()
        token.cancel()
        token.cancel()
        assert token.is_set()


class TestCrossProcess:
    def test_multiprocessing_event_is_shared_across_fork(self):
        context = multiprocessing.get_context("fork")
        event = context.Event()
        token = CancelToken(event=event)
        started = context.Event()
        cancelled = context.Event()
        queue = context.Queue()
        child = context.Process(
            target=_wait_and_report,
            args=(token, started, cancelled, queue),
        )
        child.start()
        try:
            assert started.wait(timeout=10.0)
            # Cancel on the parent side; the child observes the same flag.
            token.cancel()
            cancelled.set()
            assert queue.get(timeout=10.0) is True
        finally:
            child.join(timeout=10.0)
            if child.is_alive():  # pragma: no cover - cleanup only
                child.kill()

    def test_shared_event_cancels_a_parent_side_search(self):
        # The supervisor-side pathway: a worker's budget polls a token
        # backed by an mp.Event that the supervisor sets.
        event = multiprocessing.get_context("fork").Event()
        token = CancelToken(event=event)
        event.set()
        reasoner = Reasoner(branchy_kb())
        verdict = reasoner.consistency_verdict(
            budget=Budget(cancel=token, check_interval=1)
        )
        assert verdict.is_unknown()
        assert verdict.reason is DegradationReason.CANCELLED


class TestEscalationNeverOverridesCancel:
    def test_cancel_before_start_is_not_escalated(self):
        token = CancelToken()
        token.cancel()
        reasoner = Reasoner(branchy_kb())
        calls = []

        def probe(budget):
            calls.append(budget)
            return reasoner.consistency_verdict(budget=budget)

        verdict = retry_with_escalation(
            probe,
            Budget(cancel=token, check_interval=1, max_nodes=2),
            attempts=5,
        )
        assert verdict.is_unknown()
        assert verdict.reason is DegradationReason.CANCELLED
        # One attempt only: a larger budget cannot override a cancel.
        assert len(calls) == 1

    def test_cancel_mid_search_is_not_escalated(self):
        cancel_after = 3
        state = {"polls": 0}

        class MidSearchCancel(CancelToken):
            def is_set(self):
                state["polls"] += 1
                if state["polls"] == cancel_after:
                    threading.Thread(target=self.cancel).start()
                return super().is_set()

        token = MidSearchCancel()
        reasoner = Reasoner(branchy_kb())
        calls = []

        def probe(budget):
            calls.append(budget)
            return reasoner.consistency_verdict(budget=budget)

        verdict = retry_with_escalation(
            probe, Budget(cancel=token, check_interval=1), attempts=4
        )
        assert verdict.is_unknown()
        assert verdict.reason is DegradationReason.CANCELLED
        assert len(calls) == 1

    def test_non_cancel_unknowns_still_escalate(self):
        # Contrast case: resource exhaustion does escalate.
        A, B = AtomicConcept("A"), AtomicConcept("B")
        x, y = Individual("x"), Individual("y")
        kb = KnowledgeBase()
        kb.add(
            ConceptAssertion(x, A),
            ConceptInclusion(A, Or.of(B, Not(A))),
            ConceptAssertion(y, Not(B)),
        )
        calls = []

        def probe(budget):
            calls.append(budget)
            return Reasoner(kb).instance_verdict(x, B, budget=budget)

        verdict = retry_with_escalation(
            probe, Budget(max_nodes=1), factor=16.0, attempts=4
        )
        assert not verdict.is_unknown()
        assert len(calls) > 1
