"""Printer round-trip tests: parse(render(x)) == x."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dl import (
    And,
    AtomicConcept,
    AtomicRole,
    ConceptAssertion,
    ConceptInclusion,
    Exists,
    Forall,
    Individual,
    KnowledgeBase,
    Not,
    OneOf,
    Or,
)
from repro.dl.parser import parse_concept, parse_kb, parse_kb4
from repro.dl.printer import render_axiom, render_concept, render_kb, render_kb4
from repro.four_dl import internal, material, strong, KnowledgeBase4
from repro.workloads import (
    GeneratorConfig,
    Signature,
    generate_kb,
    generate_kb4,
    random_concept,
)

A, B = AtomicConcept("A"), AtomicConcept("B")
r = AtomicRole("r")


class TestConceptRendering:
    def test_literals(self):
        assert render_concept(A) == "A"
        assert render_concept(Not(A)) == "not A"

    def test_connectives_parenthesised(self):
        assert render_concept(And.of(A, Or.of(A, B))) == "A and (A or B)"
        assert render_concept(Not(And.of(A, B))) == "not (A and B)"

    def test_quantifiers(self):
        assert render_concept(Exists(r, A)) == "r some A"
        assert (
            render_concept(Forall(r.inverse(), Not(A)))
            == "inverse(r) only not A"
        )

    def test_nominal_sorted(self):
        assert render_concept(OneOf.of("b", "a")) == "{a, b}"


class TestAxiomRendering:
    def test_classical_inclusion(self):
        assert render_axiom(ConceptInclusion(A, B)) == "A subclassof B"

    def test_four_valued_kinds(self):
        assert render_axiom(material(A, B)) == "A |-> B"
        assert render_axiom(internal(A, B)) == "A < B"
        assert render_axiom(strong(A, B)) == "A -> B"

    def test_assertion(self):
        axiom = ConceptAssertion(Individual("x"), And.of(A, B))
        assert render_axiom(axiom) == "x : A and B"


class TestRoundTrips:
    @given(st.integers(0, 10**6))
    @settings(max_examples=150, deadline=None)
    def test_concept_round_trip(self, seed):
        rng = random.Random(seed)
        signature = Signature.of_size(3, 2, 2)
        concept = random_concept(
            rng,
            signature,
            depth=3,
            allow_counting=True,
            allow_nominals=True,
        )
        rendered = render_concept(concept)
        assert parse_concept(rendered) == concept

    @given(st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_kb_round_trip(self, seed):
        config = GeneratorConfig(
            n_concepts=4,
            n_roles=2,
            n_individuals=3,
            n_tbox=4,
            n_abox=6,
            max_depth=2,
            allow_counting=True,
            seed=seed,
        )
        kb = generate_kb(config)
        assert list(parse_kb(render_kb(kb)).axioms()) == list(kb.axioms())

    @given(st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_kb4_round_trip(self, seed):
        config = GeneratorConfig(
            n_concepts=4,
            n_roles=2,
            n_individuals=3,
            n_tbox=4,
            n_abox=6,
            max_depth=2,
            seed=seed,
        )
        kb4 = generate_kb4(config)
        assert list(parse_kb4(render_kb4(kb4)).axioms()) == list(kb4.axioms())

    def test_paper_kb4_round_trip(self):
        kb4 = KnowledgeBase4().add(
            material(And.of(A, Exists(r, B)), AtomicConcept("Fly")),
            internal(A, Not(B)),
            strong(B, A),
        )
        assert list(parse_kb4(render_kb4(kb4)).axioms()) == list(kb4.axioms())


class TestDataRangeRoundTrips:
    """Boolean data ranges render as parenthesised ladders and re-parse.

    Regression: ``render_range`` used to raise ``NotImplementedError`` on
    ``DataAnd``/``DataOr``, crashing any KB dump containing a combined
    range.
    """

    def _round_trip(self, range_):
        from repro.dl.concepts import DataExists
        from repro.dl.roles import DatatypeRole

        concept = DataExists(DatatypeRole("u"), range_)
        rendered = render_concept(concept)
        assert parse_concept(rendered, datatype_roles=["u"]) == concept
        return rendered

    def test_data_and_renders_and_reparses(self):
        from repro.dl.datatypes import INTEGER, DataAnd, IntRange

        rendered = self._round_trip(DataAnd((INTEGER, IntRange(0, 5))))
        assert rendered == "u some (integer and integer[0..5])"

    def test_data_or_renders_and_reparses(self):
        from repro.dl.datatypes import DataOr, IntRange

        rendered = self._round_trip(DataOr((IntRange(0, 1), IntRange(9, 10))))
        assert rendered == "u some (integer[0..1] or integer[9..10])"

    def test_nested_ladders_keep_structure(self):
        from repro.dl.datatypes import (
            STRING,
            INTEGER,
            DataAnd,
            DataComplement,
            DataOneOf,
            DataOr,
            IntRange,
        )

        self._round_trip(
            DataOr((DataAnd((INTEGER, IntRange(None, 3))), STRING))
        )
        self._round_trip(
            DataComplement(DataAnd((INTEGER, DataOneOf.of(1, 2))))
        )
        self._round_trip(
            DataAnd((DataAnd((INTEGER, STRING)), IntRange(1, 2)))
        )

    def test_concept_level_and_still_binds_outside_the_range(self):
        from repro.dl.concepts import And as ConceptAnd

        parsed = parse_concept(
            "u some (integer and integer[1..30]) and A", datatype_roles=["u"]
        )
        assert isinstance(parsed, ConceptAnd)
