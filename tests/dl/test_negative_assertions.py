"""Negative role assertions (OWL 2 extension): classical stack tests."""

from repro.dl import (
    AtomicConcept,
    AtomicRole,
    ConceptAssertion,
    Exists,
    Forall,
    BOTTOM,
    Individual,
    KnowledgeBase,
    NegativeRoleAssertion,
    Reasoner,
    RoleAssertion,
    RoleInclusion,
    SameIndividual,
    Tableau,
    TOP,
    Transitivity,
)
from repro.dl.owl import from_functional, to_functional
from repro.dl.parser import parse_kb
from repro.dl.printer import render_kb

A = AtomicConcept("A")
r, s = AtomicRole("r"), AtomicRole("s")
a, b, c = Individual("a"), Individual("b"), Individual("c")


class TestSyntax:
    def test_inverse_normalisation(self):
        assertion = NegativeRoleAssertion(r.inverse(), a, b)
        assert assertion.normalised() == NegativeRoleAssertion(r, b, a)

    def test_kb_routing(self):
        kb = KnowledgeBase().add(NegativeRoleAssertion(r, a, b))
        assert kb.negative_role_assertions == [NegativeRoleAssertion(r, a, b)]
        assert r in kb.object_roles_in_signature()
        assert {a, b} <= kb.individuals_in_signature()

    def test_text_round_trip(self):
        kb = parse_kb("not r(a, b)")
        assert kb.negative_role_assertions == [NegativeRoleAssertion(r, a, b)]
        assert list(parse_kb(render_kb(kb)).axioms()) == list(kb.axioms())

    def test_owl_round_trip(self):
        kb = KnowledgeBase().add(NegativeRoleAssertion(r, a, b))
        assert list(from_functional(to_functional(kb)).axioms()) == list(kb.axioms())


class TestTableau:
    def test_direct_conflict(self):
        kb = KnowledgeBase().add(
            NegativeRoleAssertion(r, a, b), RoleAssertion(r, a, b)
        )
        assert not Tableau(kb).is_satisfiable()

    def test_no_conflict_without_edge(self):
        kb = KnowledgeBase().add(
            NegativeRoleAssertion(r, a, b), RoleAssertion(r, a, c)
        )
        assert Tableau(kb).is_satisfiable()

    def test_conflict_via_subrole(self):
        kb = KnowledgeBase().add(
            RoleInclusion(s, r),
            NegativeRoleAssertion(r, a, b),
            RoleAssertion(s, a, b),
        )
        assert not Tableau(kb).is_satisfiable()

    def test_conflict_via_inverse(self):
        kb = KnowledgeBase().add(
            NegativeRoleAssertion(r.inverse(), a, b),  # = not r(b, a)
            RoleAssertion(r, b, a),
        )
        assert not Tableau(kb).is_satisfiable()

    def test_conflict_after_merge(self):
        # b = c turns the forbidden (a, b) into the asserted (a, c).
        kb = KnowledgeBase().add(
            NegativeRoleAssertion(r, a, b),
            RoleAssertion(r, a, c),
            SameIndividual(b, c),
        )
        assert not Tableau(kb).is_satisfiable()

    def test_conflict_via_transitivity(self):
        # Trans(r) forces (a, c) into r's extension; the forbidden-pair
        # check follows r-chains for transitive roles.
        kb = KnowledgeBase().add(
            Transitivity(r),
            RoleAssertion(r, a, b),
            RoleAssertion(r, b, c),
            NegativeRoleAssertion(r, a, c),
        )
        assert not Tableau(kb).is_satisfiable()

    def test_transitive_chain_to_other_target_fine(self):
        kb = KnowledgeBase().add(
            Transitivity(r),
            RoleAssertion(r, a, b),
            RoleAssertion(r, b, c),
            NegativeRoleAssertion(r, c, a),
        )
        assert Tableau(kb).is_satisfiable()

    def test_exists_still_satisfiable(self):
        kb = KnowledgeBase().add(
            NegativeRoleAssertion(r, a, b),
            ConceptAssertion(a, Exists(r, TOP)),
        )
        assert Tableau(kb).is_satisfiable()


class TestEntailment:
    def test_entailed_by_forall_bottom(self):
        kb = KnowledgeBase().add(ConceptAssertion(a, Forall(r, BOTTOM)))
        reasoner = Reasoner(kb)
        assert reasoner.entails(NegativeRoleAssertion(r, a, b))

    def test_entailed_by_assertion(self):
        kb = KnowledgeBase().add(NegativeRoleAssertion(r, a, b))
        reasoner = Reasoner(kb)
        assert reasoner.entails(NegativeRoleAssertion(r, a, b))
        assert not reasoner.entails(NegativeRoleAssertion(r, a, c))

    def test_not_entailed_by_default(self):
        reasoner = Reasoner(KnowledgeBase().add(ConceptAssertion(a, A)))
        assert not reasoner.entails(NegativeRoleAssertion(r, a, b))
