"""Trail-based search vs the copy-per-branch oracle.

The trail engine must agree with the copying search on every verdict
while never exploring more branches; on clashes independent of recent
choices it must *backjump*, skipping choice points chronological
backtracking would re-explore.  The crafted KB below is built so that
BCP cannot screen the padding disjuncts (they are conjunctions, not
literals), forcing genuine choice points in both modes.
"""

import pytest

from repro.dl import (
    And,
    AtomicConcept,
    AtomicRole,
    ConceptAssertion,
    ConceptInclusion,
    Exists,
    Individual,
    KnowledgeBase,
    Not,
    Or,
    Reasoner,
    RoleAssertion,
    Tableau,
)
from repro.dl.errors import ReasonerLimitExceeded

A, B, C = AtomicConcept("A"), AtomicConcept("B"), AtomicConcept("C")
r = AtomicRole("r")
a, b = Individual("a"), Individual("b")


def atom(name):
    return AtomicConcept(name)


def deep_disjunction_kb(padding):
    """A KB whose inconsistency is independent of ``padding`` open choices.

    Individuals ``a1..aN`` each carry a satisfiable disjunction of
    conjunctions (opaque to BCP), and ``z`` carries a disjunction both of
    whose disjuncts clash only after absorption expands the TBox — so the
    refutation of ``z`` happens *below* the padding choice points on the
    search stack, and its clash depends on none of them.
    """
    kb = KnowledgeBase()
    kb.add(ConceptInclusion(atom("P1"), Not(atom("P2"))))
    kb.add(ConceptInclusion(atom("Q1"), Not(atom("Q2"))))
    for i in range(1, padding + 1):
        kb.add(
            ConceptAssertion(
                Individual(f"a{i}"),
                Or.of(
                    And.of(atom(f"A{i}x"), atom(f"A{i}y")),
                    And.of(atom(f"B{i}x"), atom(f"B{i}y")),
                ),
            )
        )
    kb.add(
        ConceptAssertion(
            Individual("z"),
            Or.of(
                And.of(atom("P1"), atom("P2")),
                And.of(atom("Q1"), atom("Q2")),
            ),
        )
    )
    return kb


class TestSearchModeFlag:
    def test_invalid_mode_is_rejected(self):
        with pytest.raises(ValueError):
            Tableau(KnowledgeBase(), search="chronological")

    def test_reasoner_forwards_the_mode(self):
        kb = KnowledgeBase()
        kb.add(ConceptAssertion(a, A))
        assert Reasoner(kb, search="copying")._tableau.search == "copying"
        assert Reasoner(kb)._tableau.search == "trail"


class TestVerdictParity:
    def test_crafted_kb_verdicts_agree(self):
        for padding in (0, 2, 4):
            kb = deep_disjunction_kb(padding)
            assert not Reasoner(kb, search="trail", use_cache=False).is_consistent()
            assert not Reasoner(kb, search="copying", use_cache=False).is_consistent()

    def test_satisfiable_kb_verdicts_agree(self):
        kb = KnowledgeBase()
        kb.add(
            ConceptAssertion(a, Or.of(And.of(A, B), And.of(B, C))),
            ConceptAssertion(b, Exists(r, Or.of(A, C))),
            RoleAssertion(r, a, b),
            ConceptInclusion(A, Not(C)),
        )
        assert Reasoner(kb, search="trail", use_cache=False).is_consistent()
        assert Reasoner(kb, search="copying", use_cache=False).is_consistent()

    def test_repeated_queries_on_one_tableau_are_stable(self):
        # the trail must fully restore the shared graph between queries
        kb = KnowledgeBase()
        kb.add(
            ConceptAssertion(a, Or.of(A, B)),
            ConceptInclusion(A, Not(B)),
        )
        reasoner = Reasoner(kb, use_cache=False)
        answers = [
            reasoner.is_consistent(),
            reasoner.is_instance(a, Or.of(A, B)),
            reasoner.is_instance(a, A),
            reasoner.is_consistent(),
            reasoner.is_instance(a, Or.of(A, B)),
        ]
        assert answers == [True, True, False, True, True]


class TestBackjumping:
    def test_trail_backjumps_and_explores_strictly_fewer_branches(self):
        kb = deep_disjunction_kb(4)
        trail = Reasoner(kb, search="trail", use_cache=False)
        copying = Reasoner(kb, search="copying", use_cache=False)
        assert not trail.is_consistent()
        assert not copying.is_consistent()
        assert trail.stats.backjumps > 0
        assert trail.stats.branch_points_skipped >= 4
        assert (
            trail.stats.branches_explored < copying.stats.branches_explored
        )

    def test_savings_grow_with_padding_depth(self):
        # chronological search pays 2^N; the backjumping trail pays N
        trail_counts, copying_counts = [], []
        for padding in (2, 4, 6):
            trail = Reasoner(
                deep_disjunction_kb(padding), search="trail", use_cache=False
            )
            copying = Reasoner(
                deep_disjunction_kb(padding), search="copying", use_cache=False
            )
            assert not trail.is_consistent()
            assert not copying.is_consistent()
            trail_counts.append(trail.stats.branches_explored)
            copying_counts.append(copying.stats.branches_explored)
        assert trail_counts == [padding + 3 for padding in (2, 4, 6)]
        assert copying_counts == [2 ** (padding + 2) - 1 for padding in (2, 4, 6)]

    def test_trail_counters_stay_zero_in_copying_mode(self):
        kb = deep_disjunction_kb(3)
        copying = Reasoner(kb, search="copying", use_cache=False)
        assert not copying.is_consistent()
        assert copying.stats.backjumps == 0
        assert copying.stats.branch_points_skipped == 0
        assert copying.stats.trail_length == 0

    def test_trail_records_its_length(self):
        kb = deep_disjunction_kb(3)
        trail = Reasoner(kb, search="trail", use_cache=False)
        assert not trail.is_consistent()
        assert trail.stats.trail_length > 0


class TestBranchBudget:
    def test_both_modes_respect_max_branches(self):
        kb = deep_disjunction_kb(8)
        with pytest.raises(ReasonerLimitExceeded):
            Reasoner(kb, search="copying", use_cache=False, max_branches=64).is_consistent()
        # the trail needs only padding + 3 branches
        trail = Reasoner(kb, search="trail", use_cache=False, max_branches=64)
        assert not trail.is_consistent()
        assert trail.stats.branches_explored <= 11
