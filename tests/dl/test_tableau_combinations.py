"""Tableau stress tests: interactions between features.

Each test combines at least two of {inverses, transitivity, hierarchy,
counting, nominals, TBox cycles, datatypes} — the corners where tableau
implementations typically break.
"""

import pytest

from repro.dl import (
    And,
    AtLeast,
    AtMost,
    AtomicConcept,
    AtomicRole,
    BOTTOM,
    ConceptAssertion,
    ConceptInclusion,
    DataExists,
    DataForall,
    DatatypeRole,
    DifferentIndividuals,
    Exists,
    Forall,
    Individual,
    IntRange,
    KnowledgeBase,
    Not,
    OneOf,
    Or,
    QualifiedAtLeast,
    QualifiedAtMost,
    Reasoner,
    RoleAssertion,
    RoleInclusion,
    SameIndividual,
    TOP,
    Tableau,
    Transitivity,
)

A, B, C = AtomicConcept("A"), AtomicConcept("B"), AtomicConcept("C")
r, s, t = AtomicRole("r"), AtomicRole("s"), AtomicRole("t")
a, b, c, d = (Individual(n) for n in "abcd")


def satisfiable(*axioms) -> bool:
    return Tableau(KnowledgeBase.of(axioms)).is_satisfiable()


class TestInverseTransitivityInteraction:
    def test_inverse_of_transitive_chain(self):
        # r(a,b), r(b,c), Trans(r): c sees a through inverse(r).
        assert not satisfiable(
            Transitivity(r),
            RoleAssertion(r, a, b),
            RoleAssertion(r, b, c),
            ConceptAssertion(c, Forall(r.inverse(), A)),
            ConceptAssertion(a, Not(A)),
        )

    def test_transitive_role_under_hierarchy_and_inverse(self):
        # Trans(r), r [= s: forall inverse(s) must reach back along
        # r-chains seen through s.
        assert not satisfiable(
            Transitivity(r),
            RoleInclusion(r, s),
            RoleAssertion(r, a, b),
            ConceptAssertion(b, Forall(s.inverse(), A)),
            ConceptAssertion(a, Not(A)),
        )


class TestCountingWithHierarchy:
    def test_subrole_successors_counted_in_super(self):
        assert not satisfiable(
            RoleInclusion(r, s),
            RoleInclusion(t, s),
            RoleAssertion(r, a, b),
            RoleAssertion(t, a, c),
            DifferentIndividuals(b, c),
            ConceptAssertion(a, AtMost(1, s)),
        )

    def test_counting_inverse_neighbours(self):
        # a has two distinct r-predecessors; atmost 1 inverse(r) clashes.
        assert not satisfiable(
            RoleAssertion(r, b, a),
            RoleAssertion(r, c, a),
            DifferentIndividuals(b, c),
            ConceptAssertion(a, AtMost(1, r.inverse())),
        )

    def test_atleast_on_inverse(self):
        assert satisfiable(ConceptAssertion(a, AtLeast(2, r.inverse())))

    def test_qualified_counting_on_inverse(self):
        assert not satisfiable(
            ConceptAssertion(
                a,
                And.of(
                    QualifiedAtLeast(1, r.inverse(), A),
                    QualifiedAtMost(0, r.inverse(), TOP),
                ),
            )
        )


class TestNominalInteractions:
    def test_nominal_forces_merge_through_forall(self):
        # everything r-reachable from a is {b}; so the r-successor IS b.
        assert not satisfiable(
            ConceptAssertion(a, Exists(r, TOP)),
            ConceptAssertion(a, Forall(r, OneOf.of("b"))),
            ConceptAssertion(b, A),
            ConceptAssertion(a, Forall(r, Not(A))),
        )

    def test_nominal_with_counting(self):
        # a r-relates to b and c; all successors in {d}: b = c = d.
        kb = KnowledgeBase.of(
            [
                RoleAssertion(r, a, b),
                RoleAssertion(r, a, c),
                ConceptAssertion(a, Forall(r, OneOf.of("d"))),
                DifferentIndividuals(b, c),
            ]
        )
        assert not Tableau(kb).is_satisfiable()

    def test_nominal_cardinality_upper_bound(self):
        # All of A collapses onto {a}: two distinct A's impossible.
        assert not satisfiable(
            ConceptInclusion(A, OneOf.of("a")),
            ConceptAssertion(b, A),
            ConceptAssertion(c, A),
            DifferentIndividuals(b, c),
        )

    def test_nominal_disjunction_with_tbox(self):
        assert satisfiable(
            ConceptInclusion(A, OneOf.of("a", "b")),
            ConceptAssertion(c, A),
            DifferentIndividuals(c, a),
        )


class TestCyclesWithBlocking:
    def test_mutual_recursion(self):
        assert satisfiable(
            ConceptInclusion(A, Exists(r, B)),
            ConceptInclusion(B, Exists(r, A)),
            ConceptAssertion(a, A),
        )

    def test_recursion_with_global_constraint(self):
        assert satisfiable(
            ConceptInclusion(TOP, Exists(r, TOP)),
            ConceptAssertion(a, A),
        )

    def test_recursion_forced_unsat(self):
        assert not satisfiable(
            ConceptInclusion(A, Exists(r, A)),
            ConceptInclusion(TOP, Forall(r, Not(A))),
            ConceptAssertion(a, A),
        )

    def test_cycle_with_inverse_back_propagation(self):
        assert not satisfiable(
            ConceptInclusion(A, Exists(r, And.of(B, Forall(r.inverse(), Not(A))))),
            ConceptAssertion(a, A),
        )


class TestDatatypeInteractions:
    def test_datatype_with_tbox(self):
        age = DatatypeRole("age")
        minor = AtomicConcept("Minor")
        assert not satisfiable(
            ConceptInclusion(minor, DataForall(age, IntRange(0, 17))),
            ConceptAssertion(a, And.of(minor, DataExists(age, IntRange(18, 99)))),
        )

    def test_datatype_disjunction(self):
        age = DatatypeRole("age")
        assert satisfiable(
            ConceptAssertion(
                a,
                Or.of(
                    DataExists(age, IntRange(0, 10)),
                    DataExists(age, IntRange(90, 99)),
                ),
            ),
            ConceptAssertion(a, DataForall(age, IntRange(50, 100))),
        )

    def test_object_and_data_constraints_together(self):
        age = DatatypeRole("age")
        assert satisfiable(
            ConceptAssertion(
                a,
                And.of(
                    Exists(r, A),
                    DataExists(age, IntRange(5, 5)),
                    AtMost(1, r),
                ),
            )
        )


class TestEqualityCascades:
    def test_chain_of_merges(self):
        assert not satisfiable(
            SameIndividual(a, b),
            SameIndividual(b, c),
            ConceptAssertion(a, A),
            ConceptAssertion(c, Not(A)),
        )

    def test_merge_rewires_edges(self):
        assert not satisfiable(
            SameIndividual(b, c),
            RoleAssertion(r, a, b),
            ConceptAssertion(a, Forall(r, A)),
            ConceptAssertion(c, Not(A)),
        )

    def test_merge_conflicts_with_distinctness_via_counting(self):
        # atmost 1 forces the merge of b and c, but they are distinct.
        assert not satisfiable(
            RoleAssertion(r, a, b),
            RoleAssertion(r, a, c),
            RoleAssertion(r, a, d),
            DifferentIndividuals(b, c),
            DifferentIndividuals(b, d),
            DifferentIndividuals(c, d),
            ConceptAssertion(a, AtMost(2, r)),
        )


class TestLargerConsistentOntology:
    def test_family_ontology(self):
        """A small but multi-feature consistent ontology."""
        person = AtomicConcept("Person")
        parent = AtomicConcept("Parent")
        grandparent = AtomicConcept("Grandparent")
        has_child = AtomicRole("hasChild")
        descendant = AtomicRole("hasDescendant")
        kb = KnowledgeBase.of(
            [
                ConceptInclusion(parent, person),
                ConceptInclusion(parent, Exists(has_child, person)),
                ConceptInclusion(
                    grandparent, Exists(has_child, parent)
                ),
                RoleInclusion(has_child, descendant),
                Transitivity(descendant),
                ConceptAssertion(a, grandparent),
                ConceptAssertion(a, person),
            ]
        )
        reasoner = Reasoner(kb)
        assert reasoner.is_consistent()
        # A grandparent has a descendant who is a person two levels down.
        assert reasoner.is_instance(a, Exists(descendant, Exists(descendant, person)))
        assert reasoner.subsumes(person, parent)
        assert not reasoner.subsumes(parent, person)
