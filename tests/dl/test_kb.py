"""Unit tests for KnowledgeBase containers and role hierarchy closure."""

import pytest

from repro.dl import (
    And,
    AtomicConcept,
    AtomicRole,
    ConceptAssertion,
    ConceptEquivalence,
    ConceptInclusion,
    DataAssertion,
    DataValue,
    DatatypeRole,
    DatatypeRoleInclusion,
    DifferentIndividuals,
    Exists,
    Individual,
    KnowledgeBase,
    OneOf,
    RoleAssertion,
    RoleInclusion,
    SameIndividual,
    Transitivity,
    simple_roles,
)

A, B = AtomicConcept("A"), AtomicConcept("B")
r, s, t = AtomicRole("r"), AtomicRole("s"), AtomicRole("t")
u = DatatypeRole("u")
a, b = Individual("a"), Individual("b")


class TestConstruction:
    def test_add_routes_by_type(self):
        kb = KnowledgeBase()
        kb.add(
            ConceptInclusion(A, B),
            RoleInclusion(r, s),
            DatatypeRoleInclusion(u, u),
            Transitivity(r),
            ConceptAssertion(a, A),
            RoleAssertion(r, a, b),
            DataAssertion(u, a, DataValue.of(1)),
            SameIndividual(a, a),
            DifferentIndividuals(a, b),
        )
        assert len(kb.concept_inclusions) == 1
        assert len(kb.role_inclusions) == 1
        assert len(kb.datatype_role_inclusions) == 1
        assert len(kb.transitivity_axioms) == 1
        assert len(kb.concept_assertions) == 1
        assert len(kb.role_assertions) == 1
        assert len(kb.data_assertions) == 1
        assert len(kb) == 9

    def test_equivalence_expands_to_two_inclusions(self):
        kb = KnowledgeBase().add(ConceptEquivalence(A, B))
        assert kb.concept_inclusions == [
            ConceptInclusion(A, B),
            ConceptInclusion(B, A),
        ]

    def test_inverse_role_assertion_normalised(self):
        kb = KnowledgeBase().add(RoleAssertion(r.inverse(), a, b))
        assert kb.role_assertions == [RoleAssertion(r, b, a)]

    def test_unknown_axiom_rejected(self):
        with pytest.raises(TypeError):
            KnowledgeBase().add("not an axiom")

    def test_copy_is_independent(self):
        kb = KnowledgeBase().add(ConceptInclusion(A, B))
        clone = kb.copy()
        clone.add(ConceptAssertion(a, A))
        assert len(kb) == 1 and len(clone) == 2

    def test_merged(self):
        left = KnowledgeBase().add(ConceptInclusion(A, B))
        right = KnowledgeBase().add(ConceptAssertion(a, A))
        merged = left.merged(right)
        assert len(merged) == 2
        assert len(left) == 1 and len(right) == 1

    def test_of_builds_from_iterable(self):
        kb = KnowledgeBase.of([ConceptInclusion(A, B), ConceptAssertion(a, A)])
        assert len(kb) == 2


class TestSignature:
    def test_concepts_from_all_positions(self):
        kb = KnowledgeBase().add(
            ConceptInclusion(A, Exists(r, B)),
            ConceptAssertion(a, And.of(A, AtomicConcept("C"))),
        )
        names = {c.name for c in kb.concepts_in_signature()}
        assert names == {"A", "B", "C"}

    def test_roles_from_all_positions(self):
        kb = KnowledgeBase().add(
            ConceptInclusion(A, Exists(r.inverse(), B)),
            RoleInclusion(s, t),
            Transitivity(AtomicRole("w")),
            RoleAssertion(AtomicRole("v"), a, b),
        )
        names = {x.name for x in kb.object_roles_in_signature()}
        assert names == {"r", "s", "t", "w", "v"}

    def test_individuals_include_nominals(self):
        kb = KnowledgeBase().add(
            ConceptInclusion(A, OneOf.of("n")),
            RoleAssertion(r, a, b),
            DifferentIndividuals(Individual("x"), Individual("y")),
        )
        names = {i.name for i in kb.individuals_in_signature()}
        assert names == {"n", "a", "b", "x", "y"}

    def test_datatype_roles(self):
        kb = KnowledgeBase().add(DataAssertion(u, a, DataValue.of(1)))
        assert kb.datatype_roles_in_signature() == frozenset({u})

    def test_size_counts_ast_nodes(self):
        kb = KnowledgeBase().add(ConceptInclusion(A, And.of(A, B)))
        assert kb.size() == 1 + 3


class TestRoleHierarchy:
    def test_reflexive_transitive_closure(self):
        kb = KnowledgeBase().add(RoleInclusion(r, s), RoleInclusion(s, t))
        closure = kb.role_superroles()
        assert closure[r] >= {r, s, t}
        assert closure[s] >= {s, t}
        assert t in closure[t]

    def test_inverse_mirroring(self):
        kb = KnowledgeBase().add(RoleInclusion(r, s))
        closure = kb.role_superroles()
        assert s.inverse() in closure[r.inverse()]

    def test_inclusion_of_inverse_expressions(self):
        kb = KnowledgeBase().add(RoleInclusion(r.inverse(), s))
        closure = kb.role_superroles()
        assert s in closure[r.inverse()]
        assert s.inverse() in closure[r]

    def test_cycle_handled(self):
        kb = KnowledgeBase().add(RoleInclusion(r, s), RoleInclusion(s, r))
        closure = kb.role_superroles()
        assert closure[r] >= {r, s}
        assert closure[s] >= {r, s}

    def test_transitive_roles(self):
        kb = KnowledgeBase().add(Transitivity(r))
        assert kb.transitive_roles() == frozenset({r})
        assert kb.is_transitive(r)
        assert kb.is_transitive(r.inverse())
        assert not kb.is_transitive(s)


class TestSimpleRoles:
    def test_transitive_role_not_simple(self):
        kb = KnowledgeBase().add(Transitivity(r), RoleAssertion(r, a, b))
        assert r not in simple_roles(kb)

    def test_superrole_of_transitive_not_simple(self):
        kb = KnowledgeBase().add(
            Transitivity(r), RoleInclusion(r, s), RoleAssertion(s, a, b)
        )
        simple = simple_roles(kb)
        assert s not in simple and r not in simple

    def test_unrelated_role_simple(self):
        kb = KnowledgeBase().add(
            Transitivity(r), RoleAssertion(t, a, b)
        )
        assert t in simple_roles(kb)
