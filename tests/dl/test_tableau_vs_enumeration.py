"""Cross-validation: the tableau against exhaustive model enumeration.

The enumerator is an independent, brute-force implementation of the
Table 1 semantics.  On random small KBs the two engines must agree in the
directions where the enumerator is conclusive:

* enumerator finds a finite model  =>  tableau must answer satisfiable;
* tableau answers unsatisfiable    =>  enumerator must find no model.

This is the repository's substitute for comparing against an external
OWL reasoner (DESIGN.md section 5).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dl import ConceptAssertion, KnowledgeBase, Tableau
from repro.semantics import classical_satisfiable_by_enumeration
from repro.workloads import GeneratorConfig, Signature, generate_kb, random_concept


def check_agreement(kb: KnowledgeBase, extra_elements: int = 1) -> None:
    tableau_sat = Tableau(kb, max_nodes=400, max_branches=40_000).is_satisfiable()
    enum_sat = classical_satisfiable_by_enumeration(
        kb, max_extra_elements=extra_elements
    )
    if enum_sat:
        assert tableau_sat, f"enumerator found a model, tableau said unsat: {list(kb.axioms())}"
    if not tableau_sat:
        assert not enum_sat, f"tableau unsat but model exists: {list(kb.axioms())}"


class TestRandomKBs:
    @given(st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_boolean_kbs(self, seed):
        config = GeneratorConfig(
            n_concepts=2,
            n_roles=1,
            n_individuals=2,
            n_tbox=2,
            n_abox=3,
            max_depth=1,
            allow_quantifiers=False,
            seed=seed,
        )
        check_agreement(generate_kb(config))

    @given(st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_quantified_kbs(self, seed):
        config = GeneratorConfig(
            n_concepts=2,
            n_roles=1,
            n_individuals=2,
            n_tbox=2,
            n_abox=2,
            max_depth=1,
            seed=seed,
        )
        check_agreement(generate_kb(config))

    @given(st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_counting_kbs(self, seed):
        config = GeneratorConfig(
            n_concepts=1,
            n_roles=1,
            n_individuals=2,
            n_tbox=1,
            n_abox=2,
            max_depth=1,
            allow_counting=True,
            max_cardinality=2,
            seed=seed,
        )
        check_agreement(generate_kb(config))

    @given(st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_nominal_kbs(self, seed):
        config = GeneratorConfig(
            n_concepts=2,
            n_roles=1,
            n_individuals=2,
            n_tbox=1,
            n_abox=2,
            max_depth=1,
            allow_nominals=True,
            seed=seed,
        )
        check_agreement(generate_kb(config))


class TestRandomConceptSatisfiability:
    @given(st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_single_concept_assertions(self, seed):
        rng = random.Random(seed)
        signature = Signature.of_size(2, 1, 1)
        concept = random_concept(
            rng, signature, depth=2, allow_counting=True, allow_nominals=True,
            max_cardinality=2,
        )
        kb = KnowledgeBase.of([ConceptAssertion(signature.individuals[0], concept)])
        check_agreement(kb, extra_elements=2)
