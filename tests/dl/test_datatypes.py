"""Unit and property tests for the concrete domain."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dl import (
    BOOLEAN,
    DataAnd,
    DataBottom,
    DataComplement,
    DataOneOf,
    DataOr,
    DataTop,
    DataValue,
    Datatype,
    FLOAT,
    INTEGER,
    IntRange,
    STRING,
)
from repro.dl.datatypes import conjunction_satisfiable, find_witnesses


class TestMembership:
    def test_primitive_datatypes(self):
        assert INTEGER.contains(DataValue.of(3))
        assert not INTEGER.contains(DataValue.of("3"))
        assert STRING.contains(DataValue.of("x"))
        assert FLOAT.contains(DataValue.of(1.5))
        assert BOOLEAN.contains(DataValue.of(True))

    def test_one_of(self):
        enum = DataOneOf.of(1, 2, "three")
        assert enum.contains(DataValue.of(1))
        assert enum.contains(DataValue.of("three"))
        assert not enum.contains(DataValue.of(3))

    def test_int_range(self):
        window = IntRange(0, 10)
        assert window.contains(DataValue.of(0))
        assert window.contains(DataValue.of(10))
        assert not window.contains(DataValue.of(-1))
        assert not window.contains(DataValue.of(11))
        assert not window.contains(DataValue.of("5"))

    def test_open_ended_ranges(self):
        assert IntRange(5, None).contains(DataValue.of(10**9))
        assert IntRange(None, 5).contains(DataValue.of(-(10**9)))

    def test_complement(self):
        assert DataComplement(INTEGER).contains(DataValue.of("x"))
        assert not DataComplement(INTEGER).contains(DataValue.of(3))

    def test_double_negation_collapses(self):
        assert INTEGER.negate().negate() is INTEGER

    def test_boolean_combinations(self):
        both = DataAnd((INTEGER, IntRange(0, 5)))
        assert both.contains(DataValue.of(3))
        assert not both.contains(DataValue.of(9))
        either = DataOr((IntRange(0, 1), IntRange(9, 10)))
        assert either.contains(DataValue.of(9))
        assert not either.contains(DataValue.of(5))

    def test_top_bottom(self):
        assert DataTop().contains(DataValue.of("anything"))
        assert not DataBottom().contains(DataValue.of("anything"))


class TestWitnessSearch:
    def test_simple_satisfiable(self):
        assert conjunction_satisfiable([INTEGER])
        assert conjunction_satisfiable([IntRange(3, 3)])

    def test_empty_conjunction(self):
        assert conjunction_satisfiable([])

    def test_contradictory_ranges(self):
        assert not conjunction_satisfiable([IntRange(0, 3), IntRange(5, 9)])
        assert not conjunction_satisfiable([INTEGER, DataComplement(INTEGER)])

    def test_enumeration_intersection(self):
        witnesses = find_witnesses([DataOneOf.of(1, 2, 3), IntRange(2, 9)], 2)
        assert witnesses is not None
        assert {w.to_python() for w in witnesses} == {2, 3}

    def test_count_limited_by_range(self):
        assert find_witnesses([IntRange(0, 2)], 3) is not None
        assert find_witnesses([IntRange(0, 2)], 4) is None

    def test_count_limited_by_enumeration(self):
        assert find_witnesses([DataOneOf.of(1, 2)], 3) is None

    def test_distinct_witnesses(self):
        witnesses = find_witnesses([INTEGER], 10)
        assert witnesses is not None
        assert len(set(witnesses)) == 10

    def test_string_witness_found(self):
        witnesses = find_witnesses([STRING], 1)
        assert witnesses is not None
        assert witnesses[0].datatype == "string"

    def test_complement_of_enumeration(self):
        witnesses = find_witnesses(
            [INTEGER, DataComplement(DataOneOf.of(0, 1))], 1
        )
        assert witnesses is not None
        assert witnesses[0].to_python() not in (0, 1)


class TestWitnessProperties:
    @given(
        st.integers(-50, 50),
        st.integers(0, 20),
        st.integers(1, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_range_witnesses_are_correct_and_distinct(self, low, width, count):
        window = IntRange(low, low + width)
        witnesses = find_witnesses([window], count)
        if count <= width + 1:
            assert witnesses is not None
            assert len(set(witnesses)) == count
            assert all(window.contains(w) for w in witnesses)
        else:
            assert witnesses is None

    @given(st.lists(st.integers(-20, 20), min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_enumeration_witness_count_is_exact(self, values):
        enum = DataOneOf.of(*values)
        distinct = len(set(values))
        assert find_witnesses([enum], distinct) is not None
        assert find_witnesses([enum], distinct + 1) is None
