"""Tests for the high-level classical reasoning services."""

from repro.dl import (
    And,
    AtomicConcept,
    AtomicRole,
    ConceptAssertion,
    ConceptInclusion,
    Exists,
    Individual,
    KnowledgeBase,
    Not,
    OneOf,
    Or,
    Reasoner,
    RoleAssertion,
    RoleInclusion,
    SameIndividual,
    TOP,
    Transitivity,
)

A, B, C = AtomicConcept("A"), AtomicConcept("B"), AtomicConcept("C")
r, s = AtomicRole("r"), AtomicRole("s")
a, b, c = Individual("a"), Individual("b"), Individual("c")


def make_reasoner(*axioms) -> Reasoner:
    return Reasoner(KnowledgeBase.of(axioms))


class TestConsistency:
    def test_consistent(self):
        assert make_reasoner(ConceptAssertion(a, A)).is_consistent()

    def test_inconsistent(self):
        reasoner = make_reasoner(
            ConceptAssertion(a, A), ConceptAssertion(a, Not(A))
        )
        assert not reasoner.is_consistent()

    def test_consistency_memoised(self):
        reasoner = make_reasoner(ConceptAssertion(a, A))
        assert reasoner.is_consistent()
        assert reasoner.is_consistent()


class TestSubsumption:
    def test_asserted_subsumption(self):
        reasoner = make_reasoner(ConceptInclusion(A, B))
        assert reasoner.subsumes(B, A)
        assert not reasoner.subsumes(A, B)

    def test_transitive_subsumption(self):
        reasoner = make_reasoner(ConceptInclusion(A, B), ConceptInclusion(B, C))
        assert reasoner.subsumes(C, A)

    def test_structural_subsumption(self):
        reasoner = make_reasoner()
        assert reasoner.subsumes(A, And.of(A, B))
        assert reasoner.subsumes(Or.of(A, B), A)
        assert reasoner.subsumes(TOP, A)

    def test_quantifier_subsumption(self):
        reasoner = make_reasoner(ConceptInclusion(A, B))
        assert reasoner.subsumes(Exists(r, B), Exists(r, A))

    def test_equivalence(self):
        reasoner = make_reasoner(
            ConceptInclusion(A, B), ConceptInclusion(B, A)
        )
        assert reasoner.equivalent(A, B)
        assert not reasoner.equivalent(A, C)


class TestInstanceChecking:
    def test_direct_assertion(self):
        reasoner = make_reasoner(ConceptAssertion(a, A))
        assert reasoner.is_instance(a, A)
        assert not reasoner.is_instance(a, B)

    def test_inferred_through_tbox(self):
        reasoner = make_reasoner(
            ConceptInclusion(A, B), ConceptAssertion(a, A)
        )
        assert reasoner.is_instance(a, B)

    def test_inferred_through_role(self):
        reasoner = make_reasoner(
            RoleAssertion(r, a, b),
            ConceptAssertion(b, A),
        )
        assert reasoner.is_instance(a, Exists(r, A))

    def test_instances_of(self):
        reasoner = make_reasoner(
            ConceptAssertion(a, A),
            ConceptAssertion(b, A),
            ConceptAssertion(c, B),
        )
        assert reasoner.instances_of(A) == frozenset({a, b})

    def test_types_of(self):
        reasoner = make_reasoner(
            ConceptInclusion(A, B), ConceptAssertion(a, A)
        )
        assert reasoner.types_of(a) == frozenset({A, B})


class TestEntailment:
    def test_concept_inclusion(self):
        reasoner = make_reasoner(ConceptInclusion(A, B))
        assert reasoner.entails(ConceptInclusion(A, B))
        assert not reasoner.entails(ConceptInclusion(B, A))

    def test_role_assertion_entailment(self):
        reasoner = make_reasoner(RoleAssertion(r, a, b))
        assert reasoner.entails(RoleAssertion(r, a, b))
        assert not reasoner.entails(RoleAssertion(r, b, a))
        assert not reasoner.entails(RoleAssertion(s, a, b))

    def test_role_assertion_via_hierarchy(self):
        reasoner = make_reasoner(RoleInclusion(r, s), RoleAssertion(r, a, b))
        assert reasoner.entails(RoleAssertion(s, a, b))

    def test_same_individual_entailment(self):
        reasoner = make_reasoner(SameIndividual(a, b))
        assert reasoner.entails(SameIndividual(a, b))
        reasoner2 = make_reasoner(ConceptAssertion(a, A))
        assert not reasoner2.entails(SameIndividual(a, b))

    def test_same_individual_via_nominal(self):
        reasoner = make_reasoner(ConceptAssertion(a, OneOf.of("b")))
        assert reasoner.entails(SameIndividual(a, b))

    def test_role_inclusion_entailment(self):
        reasoner = make_reasoner(RoleInclusion(r, s))
        assert reasoner.entails(RoleInclusion(r, s))
        assert not reasoner.entails(RoleInclusion(s, r))

    def test_entails_all(self):
        reasoner = make_reasoner(
            ConceptInclusion(A, B), ConceptAssertion(a, A)
        )
        assert reasoner.entails_all(
            [ConceptAssertion(a, A), ConceptAssertion(a, B)]
        )
        assert not reasoner.entails_all(
            [ConceptAssertion(a, A), ConceptAssertion(a, C)]
        )

    def test_inconsistent_kb_entails_everything(self):
        reasoner = make_reasoner(
            ConceptAssertion(a, A), ConceptAssertion(a, Not(A))
        )
        assert reasoner.entails(ConceptAssertion(b, C))
        assert reasoner.entails(ConceptInclusion(TOP, C))


class TestClassification:
    def test_hierarchy(self):
        reasoner = make_reasoner(
            ConceptInclusion(A, B), ConceptInclusion(B, C)
        )
        hierarchy = reasoner.classify()
        assert hierarchy[A] == frozenset({A, B, C})
        assert hierarchy[B] == frozenset({B, C})
        assert hierarchy[C] == frozenset({C})

    def test_unsatisfiable_concepts(self):
        reasoner = make_reasoner(
            ConceptInclusion(A, B),
            ConceptInclusion(A, Not(B)),
            ConceptAssertion(a, C),
        )
        assert reasoner.unsatisfiable_concepts() == frozenset({A})

    def test_transitive_role_classification_setting(self):
        # Classification still works with transitivity present.
        reasoner = make_reasoner(
            Transitivity(r),
            ConceptInclusion(A, Exists(r, B)),
        )
        hierarchy = reasoner.classify()
        assert B in hierarchy


class TestExtendedEntailment:
    def test_concept_equivalence(self):
        reasoner = make_reasoner(
            ConceptInclusion(A, B), ConceptInclusion(B, A)
        )
        from repro.dl import ConceptEquivalence

        assert reasoner.entails(ConceptEquivalence(A, B))
        assert not reasoner.entails(ConceptEquivalence(A, C))

    def test_different_individuals(self):
        from repro.dl import DifferentIndividuals

        reasoner = make_reasoner(
            ConceptAssertion(a, A), ConceptAssertion(b, Not(A))
        )
        # a and b cannot be identified (A vs not A).
        assert reasoner.entails(DifferentIndividuals(a, b))
        neutral = make_reasoner(ConceptAssertion(a, A))
        assert not neutral.entails(DifferentIndividuals(a, b))

    def test_data_assertion_entailment(self):
        from repro.dl import DataAssertion, DataValue, DatatypeRole

        u = DatatypeRole("u")
        reasoner = make_reasoner(DataAssertion(u, a, DataValue.of(7)))
        assert reasoner.entails(DataAssertion(u, a, DataValue.of(7)))
        assert not reasoner.entails(DataAssertion(u, a, DataValue.of(8)))
        assert not reasoner.entails(DataAssertion(u, b, DataValue.of(7)))
