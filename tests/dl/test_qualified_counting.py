"""Qualified number restrictions (SHOIQ extension): full stack tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dl import (
    And,
    AtomicConcept,
    AtomicRole,
    BOTTOM,
    ConceptAssertion,
    ConceptInclusion,
    DifferentIndividuals,
    Exists,
    Individual,
    KnowledgeBase,
    Not,
    QualifiedAtLeast,
    QualifiedAtMost,
    Reasoner,
    RoleAssertion,
    Tableau,
    is_nnf,
    nnf,
)
from repro.semantics import Interpretation, classical_satisfiable_by_enumeration
from repro.workloads import GeneratorConfig, Signature, generate_kb, random_concept

A, B = AtomicConcept("A"), AtomicConcept("B")
r = AtomicRole("r")
a, b, c = Individual("a"), Individual("b"), Individual("c")


class TestNnf:
    def test_negation_duals(self):
        assert nnf(Not(QualifiedAtLeast(2, r, A))) == QualifiedAtMost(1, r, A)
        assert nnf(Not(QualifiedAtMost(2, r, A))) == QualifiedAtLeast(3, r, A)
        assert nnf(Not(QualifiedAtLeast(0, r, A))) == BOTTOM

    def test_filler_normalised(self):
        concept = QualifiedAtLeast(1, r, Not(Not(A)))
        assert nnf(concept) == QualifiedAtLeast(1, r, A)
        assert is_nnf(nnf(Not(QualifiedAtMost(1, r, Not(A & B)))))


class TestEvaluator:
    def test_qualified_counting_extension(self):
        interp = Interpretation(
            domain=frozenset({"x", "y", "z"}),
            concept_ext={A: frozenset({"y"})},
            role_ext={r: frozenset({("x", "y"), ("x", "z")})},
            individual_map={},
        )
        assert interp.extension(QualifiedAtLeast(1, r, A)) == frozenset({"x"})
        assert interp.extension(QualifiedAtLeast(2, r, A)) == frozenset()
        assert interp.extension(QualifiedAtMost(0, r, A)) == frozenset({"y", "z"})
        assert interp.extension(QualifiedAtMost(1, r, Not(A))) == frozenset(
            {"x", "y", "z"}
        )


class TestTableau:
    def test_qualified_atleast_creates_typed_witnesses(self):
        kb = KnowledgeBase.of(
            [
                ConceptAssertion(a, QualifiedAtLeast(2, r, A)),
                ConceptInclusion(A, B),
            ]
        )
        reasoner = Reasoner(kb)
        assert reasoner.is_consistent()
        assert reasoner.is_instance(a, QualifiedAtLeast(2, r, B))

    def test_conflicting_qualified_bounds(self):
        assert not Tableau(
            KnowledgeBase.of(
                [ConceptAssertion(a, And.of(QualifiedAtLeast(2, r, A), QualifiedAtMost(1, r, A)))]
            )
        ).is_satisfiable()

    def test_disjoint_fillers_coexist(self):
        assert Tableau(
            KnowledgeBase.of(
                [
                    ConceptAssertion(
                        a,
                        And.of(
                            QualifiedAtLeast(2, r, A),
                            QualifiedAtMost(1, r, Not(A)),
                        ),
                    )
                ]
            )
        ).is_satisfiable()

    def test_choose_rule_decides_neighbours(self):
        # Every r-successor must be A or not A; bounding both sides to
        # zero with two provably distinct successors clashes.
        kb = KnowledgeBase.of(
            [
                RoleAssertion(r, a, b),
                RoleAssertion(r, a, c),
                DifferentIndividuals(b, c),
                ConceptAssertion(
                    a, And.of(QualifiedAtMost(0, r, A), QualifiedAtMost(0, r, Not(A)))
                ),
            ]
        )
        assert not Tableau(kb).is_satisfiable()

    def test_qualified_merging(self):
        # Two successors both A under atmost-1-A merge; their labels join.
        kb = KnowledgeBase.of(
            [
                RoleAssertion(r, a, b),
                RoleAssertion(r, a, c),
                ConceptAssertion(b, A),
                ConceptAssertion(c, A),
                ConceptAssertion(b, B),
                ConceptAssertion(c, Not(B)),
                ConceptAssertion(a, QualifiedAtMost(1, r, A)),
            ]
        )
        assert not Tableau(kb).is_satisfiable()

    def test_unqualified_equivalence(self):
        # >= n r  ==  >= n r.Thing: decide both ways via subsumption.
        from repro.dl import AtLeast, TOP

        reasoner = Reasoner(KnowledgeBase())
        assert reasoner.equivalent(AtLeast(2, r), QualifiedAtLeast(2, r, TOP))

    def test_qualified_with_tbox_interaction(self):
        kb = KnowledgeBase.of(
            [
                ConceptInclusion(A, Exists(r, B)),
                ConceptAssertion(a, And.of(A, QualifiedAtMost(0, r, B))),
            ]
        )
        assert not Tableau(kb).is_satisfiable()


class TestCrossValidation:
    @given(st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_tableau_vs_enumeration(self, seed):
        config = GeneratorConfig(
            n_concepts=2,
            n_roles=1,
            n_individuals=2,
            n_tbox=1,
            n_abox=2,
            max_depth=1,
            allow_qualified=True,
            max_cardinality=2,
            seed=seed,
        )
        kb = generate_kb(config)
        tableau_sat = Tableau(kb, max_nodes=400, max_branches=40_000).is_satisfiable()
        enum_sat = classical_satisfiable_by_enumeration(kb, max_extra_elements=1)
        if enum_sat:
            assert tableau_sat
        if not tableau_sat:
            assert not enum_sat

    @given(st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_nnf_preserves_qualified_extensions(self, seed):
        rng = random.Random(seed)
        signature = Signature.of_size(2, 2, 1)
        concept = random_concept(
            rng, signature, depth=3, allow_qualified=True
        )
        domain = ["d0", "d1", "d2"]
        interp = Interpretation(
            domain=frozenset(domain),
            concept_ext={
                atom: frozenset(x for x in domain if rng.random() < 0.5)
                for atom in signature.concepts
            },
            role_ext={
                role: frozenset(
                    (x, y) for x in domain for y in domain if rng.random() < 0.4
                )
                for role in signature.roles
            },
            individual_map={},
        )
        assert interp.extension(concept) == interp.extension(nnf(concept))
