"""Unit tests for roles, individuals, and data values."""

import pytest

from repro.dl import AtomicRole, DataValue, DatatypeRole, Individual, InverseRole
from repro.dl.roles import is_object_role


class TestObjectRoles:
    def test_inverse_normalises(self):
        r = AtomicRole("r")
        assert r.inverse() == InverseRole(r)
        assert r.inverse().inverse() is r

    def test_named_of_inverse(self):
        r = AtomicRole("r")
        assert r.inverse().named is r
        assert r.named is r

    def test_is_inverse_flag(self):
        r = AtomicRole("r")
        assert not r.is_inverse
        assert r.inverse().is_inverse

    def test_ordering_and_equality(self):
        assert AtomicRole("a") < AtomicRole("b")
        assert AtomicRole("a") == AtomicRole("a")
        assert AtomicRole("a") != DatatypeRole("a")

    def test_repr(self):
        assert repr(AtomicRole("r")) == "r"
        assert repr(AtomicRole("r").inverse()) == "r-"

    def test_is_object_role(self):
        assert is_object_role(AtomicRole("r"))
        assert is_object_role(AtomicRole("r").inverse())
        assert not is_object_role(DatatypeRole("u"))


class TestIndividuals:
    def test_equality_by_name(self):
        assert Individual("a") == Individual("a")
        assert Individual("a") != Individual("b")

    def test_renamed(self):
        assert Individual("a").renamed() == Individual("a_c")
        assert Individual("a").renamed("_bar") == Individual("a_bar")

    def test_sortable(self):
        assert sorted([Individual("b"), Individual("a")]) == [
            Individual("a"),
            Individual("b"),
        ]


class TestDataValues:
    @pytest.mark.parametrize(
        "python_value, datatype",
        [(3, "integer"), (2.5, "float"), ("hi", "string"), (True, "boolean")],
    )
    def test_of_infers_datatype(self, python_value, datatype):
        assert DataValue.of(python_value).datatype == datatype

    def test_bool_before_int(self):
        # bool is a subclass of int; make sure it maps to boolean.
        assert DataValue.of(False) == DataValue("boolean", "false")

    def test_roundtrip_to_python(self):
        for value in (3, -7, 2.5, "hi", True, False):
            assert DataValue.of(value).to_python() == value

    def test_equality_is_typed(self):
        assert DataValue.of(1) != DataValue("string", "1")
        assert DataValue.of(1) == DataValue("integer", "1")

    def test_repr(self):
        assert repr(DataValue.of(3)) == "3"
        assert repr(DataValue.of("x")) == '"x"'
