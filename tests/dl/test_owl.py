"""OWL functional-syntax round-trip and error tests."""

import pytest

from repro.dl import (
    AtomicConcept,
    AtomicRole,
    ConceptAssertion,
    ConceptInclusion,
    Exists,
    Individual,
    KnowledgeBase,
    Not,
    ParseError,
    RoleAssertion,
    UnsupportedFeature,
)
from repro.dl.owl import from_functional, to_functional
from repro.dl.parser import parse_kb
from repro.workloads import GeneratorConfig, generate_kb

from hypothesis import given, settings
from hypothesis import strategies as st

A, B = AtomicConcept("A"), AtomicConcept("B")
r = AtomicRole("r")
a, b = Individual("a"), Individual("b")


class TestEmission:
    def test_document_structure(self):
        kb = KnowledgeBase().add(ConceptInclusion(A, B))
        doc = to_functional(kb, iri="http://example.org/x")
        assert doc.startswith("Prefix(:=<http://example.org/x#>)")
        assert "Ontology(<http://example.org/x>" in doc
        assert "SubClassOf(:A :B)" in doc
        assert doc.rstrip().endswith(")")

    def test_declarations_present(self):
        kb = KnowledgeBase().add(
            ConceptAssertion(a, A), RoleAssertion(r, a, b)
        )
        doc = to_functional(kb)
        assert "Declaration(Class(:A))" in doc
        assert "Declaration(ObjectProperty(:r))" in doc
        assert "Declaration(NamedIndividual(:a))" in doc

    def test_complex_class_expression(self):
        kb = KnowledgeBase().add(ConceptInclusion(A, Exists(r, Not(B))))
        doc = to_functional(kb)
        assert (
            "SubClassOf(:A ObjectSomeValuesFrom(:r ObjectComplementOf(:B)))"
            in doc
        )


class TestParsing:
    def test_minimal_document(self):
        kb = from_functional(
            "Ontology(<http://x>\n  SubClassOf(:A :B)\n)"
        )
        assert kb.concept_inclusions == [ConceptInclusion(A, B)]

    def test_missing_ontology_block(self):
        with pytest.raises(ParseError):
            from_functional("SubClassOf(:A :B)")

    def test_unbalanced_parens(self):
        with pytest.raises(ParseError):
            from_functional("Ontology(<http://x>\n  SubClassOf(:A :B)\n")

    def test_unsupported_axiom(self):
        with pytest.raises(UnsupportedFeature):
            from_functional(
                "Ontology(<http://x>\n  DisjointUnion(:A :B :C)\n)"
            )

    def test_declarations_skipped(self):
        kb = from_functional(
            "Ontology(<http://x>\n  Declaration(Class(:A))\n)"
        )
        assert len(kb) == 0

    def test_inverse_role(self):
        kb = from_functional(
            "Ontology(<http://x>\n"
            "  SubClassOf(:A ObjectSomeValuesFrom(ObjectInverseOf(:r) :B))\n)"
        )
        inclusion = kb.concept_inclusions[0]
        assert inclusion.sup == Exists(r.inverse(), B)


class TestRoundTrips:
    def test_rich_kb_round_trip(self):
        kb = parse_kb(
            """
            dataproperty age
            transitive partOf
            A subclassof r some B
            A and not B subclassof r min 2
            r subpropertyof s
            a : A and (r only {b})
            x : age some integer[0..10]
            x : age only {1, 2, "three", true}
            r(a, b)
            age(a, 42)
            a = aa
            a != b
            """
        )
        assert list(from_functional(to_functional(kb)).axioms()) == list(kb.axioms())

    @given(st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_random_kb_round_trip(self, seed):
        config = GeneratorConfig(
            n_concepts=4,
            n_roles=2,
            n_individuals=3,
            n_tbox=4,
            n_abox=5,
            max_depth=2,
            allow_counting=True,
            allow_nominals=True,
            seed=seed,
        )
        kb = generate_kb(config)
        assert list(from_functional(to_functional(kb)).axioms()) == list(kb.axioms())


class TestDisjointClasses:
    def test_pairwise_expansion(self):
        from repro.dl import And, BOTTOM, ConceptInclusion

        kb = from_functional(
            "Ontology(<http://x>\n  DisjointClasses(:A :B :C)\n)"
        )
        assert len(kb.concept_inclusions) == 3
        assert ConceptInclusion(And.of(A, B), BOTTOM) in kb.concept_inclusions

    def test_disjointness_reasons(self):
        from repro.dl import ConceptAssertion, Individual, Reasoner

        kb = from_functional(
            "Ontology(<http://x>\n"
            "  DisjointClasses(:A :B)\n"
            "  ClassAssertion(:A :x)\n"
            "  ClassAssertion(:B :x)\n)"
        )
        assert not Reasoner(kb).is_consistent()
