"""Finite-model extraction from the completion graph."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dl import (
    And,
    AtLeast,
    AtMost,
    AtomicConcept,
    AtomicRole,
    ConceptAssertion,
    ConceptInclusion,
    DataExists,
    DatatypeRole,
    Exists,
    Individual,
    IntRange,
    KnowledgeBase,
    Not,
    RoleAssertion,
    RoleInclusion,
    SameIndividual,
    Tableau,
    Transitivity,
)
from repro.workloads import GeneratorConfig, generate_kb

A, B = AtomicConcept("A"), AtomicConcept("B")
r, s = AtomicRole("r"), AtomicRole("s")
a, b, c = Individual("a"), Individual("b"), Individual("c")


def extract(kb: KnowledgeBase):
    tableau = Tableau(kb)
    satisfiable = tableau.is_satisfiable()
    return satisfiable, tableau.extract_model()


class TestBasicExtraction:
    def test_no_run_no_model(self):
        assert Tableau(KnowledgeBase()).extract_model() is None

    def test_unsat_no_model(self):
        satisfiable, model = extract(
            KnowledgeBase.of(
                [ConceptAssertion(a, A), ConceptAssertion(a, Not(A))]
            )
        )
        assert not satisfiable and model is None

    def test_abox_model(self):
        kb = KnowledgeBase.of(
            [
                ConceptInclusion(A, B),
                ConceptAssertion(a, A),
                RoleAssertion(r, a, b),
            ]
        )
        satisfiable, model = extract(kb)
        assert satisfiable and model is not None
        assert model.is_model(kb)
        assert model.satisfies(ConceptAssertion(a, B))

    def test_existential_witnesses_in_domain(self):
        kb = KnowledgeBase.of([ConceptAssertion(a, Exists(r, B))])
        _satisfiable, model = extract(kb)
        assert model is not None
        assert len(model.domain) == 2
        assert model.satisfies(ConceptAssertion(a, Exists(r, B)))

    def test_blocking_returns_none(self):
        kb = KnowledgeBase.of(
            [ConceptInclusion(A, Exists(r, A)), ConceptAssertion(a, A)]
        )
        satisfiable, model = extract(kb)
        assert satisfiable and model is None

    def test_merged_individuals_share_element(self):
        kb = KnowledgeBase.of(
            [SameIndividual(a, b), ConceptAssertion(a, A)]
        )
        _satisfiable, model = extract(kb)
        assert model is not None
        assert model.individual_map[a] == model.individual_map[b]

    def test_transitive_closure_in_model(self):
        kb = KnowledgeBase.of(
            [
                Transitivity(r),
                RoleAssertion(r, a, b),
                RoleAssertion(r, b, c),
            ]
        )
        _satisfiable, model = extract(kb)
        assert model is not None
        assert model.satisfies(RoleAssertion(r, a, c))

    def test_role_hierarchy_in_model(self):
        kb = KnowledgeBase.of(
            [RoleInclusion(r, s), RoleAssertion(r, a, b)]
        )
        _satisfiable, model = extract(kb)
        assert model is not None
        assert model.satisfies(RoleAssertion(s, a, b))

    def test_counting_model(self):
        kb = KnowledgeBase.of(
            [ConceptAssertion(a, And.of(AtLeast(2, r), AtMost(2, r)))]
        )
        _satisfiable, model = extract(kb)
        assert model is not None
        assert model.is_model(kb)

    def test_datatype_model(self):
        u = DatatypeRole("u")
        kb = KnowledgeBase.of(
            [ConceptAssertion(a, DataExists(u, IntRange(5, 5)))]
        )
        _satisfiable, model = extract(kb)
        assert model is not None
        pairs = model.data_role_extension(u)
        assert any(value.to_python() == 5 for (_x, value) in pairs)


class TestExtractionProperty:
    @given(st.integers(0, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_extracted_model_always_verifies(self, seed):
        """Extraction is checked: whenever it returns, the result models
        the KB per the independent Table 1 evaluator."""
        config = GeneratorConfig(
            n_concepts=3,
            n_roles=2,
            n_individuals=3,
            n_tbox=3,
            n_abox=5,
            max_depth=1,
            seed=seed,
        )
        kb = generate_kb(config)
        tableau = Tableau(kb, max_nodes=400, max_branches=40_000)
        if tableau.is_satisfiable():
            model = tableau.extract_model()
            if model is not None:
                assert model.is_model(kb)
