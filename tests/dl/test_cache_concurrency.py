"""Concurrency hammer for the shared QueryCache and the transform memo.

The long-lived service shares one QueryCache (and, on the four-valued
side, one ``cached_transform_kb`` memo) across concurrent requests.
These tests hammer both from many threads and assert the structures
stay consistent: bounded size, parity-correct survivors, conflict
tripwire intact, memoised identity stable per KB version.
"""

import random
import threading

from repro.dl import (
    AtomicConcept,
    CacheConflictError,
    ConceptAssertion,
    Individual,
    QueryCache,
)
from repro.dl.cache import probe_set_key
from repro.four_dl import KnowledgeBase4, cached_transform_kb


def run_in_threads(worker, count):
    """Start ``count`` threads on ``worker(index)``; re-raise any failure."""
    barrier = threading.Barrier(count)
    failures = []

    def body(index):
        barrier.wait()
        try:
            worker(index)
        except BaseException as error:  # noqa: BLE001 - surfaced below
            failures.append(error)

    threads = [
        threading.Thread(target=body, args=(index,)) for index in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert not any(thread.is_alive() for thread in threads), "worker hung"
    if failures:
        raise failures[0]


def key_of(index):
    """A realistic canonical key: one concept-assertion probe."""
    return probe_set_key(
        [ConceptAssertion(Individual(f"i{index}"), AtomicConcept(f"C{index}"))]
    )


def value_of(index):
    """The deterministic verdict stored under ``key_of(index)``."""
    return index % 2 == 0


class TestQueryCacheHammer:
    THREADS = 8
    OPS = 400
    KEYS = 96
    MAXSIZE = 64

    def test_mixed_operations_stay_consistent(self):
        cache = QueryCache(maxsize=self.MAXSIZE)
        keys = [key_of(index) for index in range(self.KEYS)]

        def worker(thread_index):
            rng = random.Random(thread_index)
            for _ in range(self.OPS):
                index = rng.randrange(self.KEYS)
                op = rng.random()
                if op < 0.45:
                    cache.store(keys[index], value_of(index))
                elif op < 0.85:
                    found = cache.lookup(keys[index])
                    assert found in (None, value_of(index))
                elif op < 0.93:
                    # A pure removal: True entries survive, False entries
                    # without dependency sets die — either way, no tears.
                    cache.invalidate_delta(
                        frozenset(), frozenset({("fake-removed",)})
                    )
                elif op < 0.97:
                    assert 0 <= len(cache) <= self.MAXSIZE
                else:
                    cache.clear()

        run_in_threads(worker, self.THREADS)
        assert 0 <= len(cache) <= self.MAXSIZE
        # Every survivor still answers with its parity-correct verdict.
        for index in range(self.KEYS):
            found = cache.lookup(keys[index])
            assert found in (None, value_of(index))

    def test_store_lookup_race_never_drops_the_bound(self):
        cache = QueryCache(maxsize=8)
        keys = [key_of(index) for index in range(64)]

        def worker(thread_index):
            for round_index in range(200):
                index = (thread_index * 200 + round_index) % len(keys)
                cache.store(keys[index], value_of(index))
                assert len(cache) <= 8

        run_in_threads(worker, 6)
        assert len(cache) <= 8
        assert cache.evictions > 0

    def test_conflict_tripwire_fires_under_threads(self):
        cache = QueryCache(maxsize=None)
        key = key_of(0)
        conflicts = []
        lock = threading.Lock()

        def worker(thread_index):
            mine = thread_index % 2 == 0
            for _ in range(50):
                try:
                    cache.store(key, mine)
                except CacheConflictError as error:
                    with lock:
                        conflicts.append(error)

        run_in_threads(worker, 4)
        # Whichever value won the first store, every opposite store
        # tripped the wire: 2 threads x 50 stores of the losing value.
        assert len(conflicts) == 100
        assert cache.lookup(key) in (True, False)

    def test_disabled_cache_is_safe_and_inert_under_threads(self):
        cache = QueryCache(enabled=False)

        def worker(thread_index):
            for index in range(100):
                cache.store(key_of(index), value_of(index))
                assert cache.lookup(key_of(index)) is None

        run_in_threads(worker, 4)
        assert len(cache) == 0


class TestTransformMemoConcurrency:
    def small_kb4(self):
        kb4 = KnowledgeBase4()
        person, robot = AtomicConcept("Person"), AtomicConcept("Robot")
        kb4.add(
            ConceptAssertion(Individual("ada"), person),
            ConceptAssertion(Individual("hal"), robot),
        )
        return kb4

    def test_concurrent_calls_share_one_induced_kb(self):
        kb4 = self.small_kb4()
        results = [None] * 8

        def worker(index):
            results[index] = cached_transform_kb(kb4)

        run_in_threads(worker, len(results))
        first = results[0]
        assert first is not None
        assert all(result is first for result in results)

    def test_version_bump_refreshes_but_keeps_identity_per_version(self):
        kb4 = self.small_kb4()
        before = cached_transform_kb(kb4)
        induced_version = before.version
        kb4_version = kb4.version
        kb4.add(
            ConceptAssertion(Individual("grace"), AtomicConcept("Person"))
        )
        assert kb4.version > kb4_version
        results = [None] * 6

        def worker(index):
            results[index] = cached_transform_kb(kb4)

        run_in_threads(worker, len(results))
        after = results[0]
        # Incremental refresh mutates the memoised KB in place (same
        # object) — the important part is agreement across threads and
        # that the edit is now reflected in the induced KB.
        assert all(result is after for result in results)
        assert cached_transform_kb(kb4) is after
        assert after.version > induced_version or after is not before

    def test_mutation_interleaved_with_readers(self):
        kb4 = self.small_kb4()
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                induced = cached_transform_kb(kb4)
                if induced is None:
                    errors.append("transform returned None")
                    return

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        try:
            for index in range(20):
                kb4.add(
                    ConceptAssertion(
                        Individual(f"x{index}"), AtomicConcept("Person")
                    )
                )
        finally:
            stop.set()
            for thread in readers:
                thread.join(timeout=30.0)
        assert not errors
        assert not any(thread.is_alive() for thread in readers)
        # The memo settled on the final version.
        final = cached_transform_kb(kb4)
        assert cached_transform_kb(kb4) is final
