"""Unit tests for fine-grained invalidation: change logs, mutation API,
dependency-indexed cache survival, locality analysis, incremental
saturation, and incremental classification."""

import pytest

from repro.dl import (
    AtomicConcept,
    AtomicRole,
    ConceptAssertion,
    ConceptEquivalence,
    ConceptInclusion,
    Exists,
    Individual,
    InverseRole,
    KnowledgeBase,
    Not,
    OneOf,
    QueryCache,
    Reasoner,
    RoleAssertion,
    Top,
)
from repro.dl.concepts import TOP
from repro.dl.incremental import (
    ChangeLog,
    LOG_LIMIT,
    affected_atoms,
    axiom_signature,
    is_component_safe,
    net_delta,
)
from repro.dl.saturation import SaturationEngine

A, B, C, D = (AtomicConcept(n) for n in "ABCD")
R = AtomicRole("R")
x, y = Individual("x"), Individual("y")


# ---------------------------------------------------------------------------
# Change log
# ---------------------------------------------------------------------------
class TestChangeLog:
    def test_since_returns_records_after_version(self):
        log = ChangeLog()
        log.record(1, "add", ConceptInclusion(A, B))
        log.record(2, "add", ConceptAssertion(x, A))
        log.record(3, "remove", ConceptInclusion(A, B))
        assert log.since(3) == []
        assert log.since(2) == [("remove", ConceptInclusion(A, B))]
        assert len(log.since(0)) == 3

    def test_window_exceeded_answers_none(self):
        log = ChangeLog()
        for version in range(1, 2 * LOG_LIMIT + 2):
            log.record(version, "add", ConceptAssertion(x, A))
        assert log.since(0) is None
        # Recent versions still answer.
        assert log.since(2 * LOG_LIMIT + 1) == []

    def test_kb_mutation_journal(self):
        kb = KnowledgeBase()
        v0 = kb.version
        kb.add_axiom(ConceptInclusion(A, B))
        kb.add_axiom(ConceptAssertion(x, A))
        kb.remove_axiom(ConceptInclusion(A, B))
        changes = kb.changes_since(v0)
        assert changes == [
            ("add", ConceptInclusion(A, B)),
            ("add", ConceptAssertion(x, A)),
            ("remove", ConceptInclusion(A, B)),
        ]
        added, removed = kb.delta_since(v0)
        assert added == frozenset({ConceptAssertion(x, A)})
        assert removed == frozenset()


# ---------------------------------------------------------------------------
# Mutation API
# ---------------------------------------------------------------------------
class TestMutationAPI:
    def test_remove_axiom_strict(self):
        kb = KnowledgeBase.of([ConceptInclusion(A, B)])
        with pytest.raises(ValueError):
            kb.remove_axiom(ConceptInclusion(B, A))
        kb.remove_axiom(ConceptInclusion(A, B))
        assert len(kb) == 0

    def test_retract_absent_is_noop(self):
        kb = KnowledgeBase.of([ConceptInclusion(A, B)])
        version = kb.version
        assert kb.retract(ConceptInclusion(B, A)) is False
        assert kb.version == version
        assert kb.retract(ConceptInclusion(A, B)) is True
        assert len(kb) == 0

    def test_equivalence_expands_and_removes_atomically(self):
        kb = KnowledgeBase()
        kb.add_axiom(ConceptEquivalence(A, B))
        assert sorted(map(repr, kb.concept_inclusions)) == sorted(
            map(repr, [ConceptInclusion(A, B), ConceptInclusion(B, A)])
        )
        kb.remove_axiom(ConceptEquivalence(A, B))
        assert len(kb) == 0

    def test_role_assertion_removal_matches_normalised_form(self):
        kb = KnowledgeBase()
        kb.add_axiom(RoleAssertion(InverseRole(R), x, y))
        # Stored normalised as R(y, x); removal through either spelling.
        kb.remove_axiom(RoleAssertion(R, y, x))
        assert len(kb) == 0

    def test_duplicate_copies_removed_one_at_a_time(self):
        kb = KnowledgeBase()
        kb.add_axiom(ConceptAssertion(x, A))
        kb.add_axiom(ConceptAssertion(x, A))
        kb.remove_axiom(ConceptAssertion(x, A))
        assert list(kb.concept_assertions) == [ConceptAssertion(x, A)]

    def test_transaction_applies_atomically_on_exit(self):
        kb = KnowledgeBase.of([ConceptInclusion(A, B)])
        with kb.edit() as tx:
            tx.add(ConceptAssertion(x, A))
            tx.remove(ConceptInclusion(A, B))
            assert len(kb) == 1  # nothing applied yet
        assert list(kb.axioms()) == [ConceptAssertion(x, A)]

    def test_transaction_strict_remove_validates_before_applying(self):
        kb = KnowledgeBase.of([ConceptInclusion(A, B)])
        with pytest.raises(ValueError):
            with kb.edit() as tx:
                tx.add(ConceptAssertion(x, A))
                tx.remove(ConceptInclusion(C, D))  # absent: batch fails
        assert list(kb.axioms()) == [ConceptInclusion(A, B)]

    def test_transaction_abandoned_on_exception(self):
        kb = KnowledgeBase()
        with pytest.raises(RuntimeError):
            with kb.edit() as tx:
                tx.add(ConceptAssertion(x, A))
                raise RuntimeError("abort")
        assert len(kb) == 0

    def test_net_delta_cancels_remove_then_re_add(self):
        records = [
            ("remove", ConceptInclusion(A, B)),
            ("add", ConceptAssertion(x, A)),
            ("add", ConceptInclusion(A, B)),
        ]
        added, removed = net_delta(records)
        assert added == frozenset({ConceptAssertion(x, A)})
        assert removed == frozenset()


# ---------------------------------------------------------------------------
# Dependency-indexed cache survival
# ---------------------------------------------------------------------------
class TestInvalidateDelta:
    KEY_SAT = frozenset({("c", x, A)})
    KEY_UNSAT = frozenset({("c", x, B)})

    def test_sat_entries_die_on_addition_survive_removal(self):
        cache = QueryCache()
        cache.store(self.KEY_SAT, True)
        assert cache.invalidate_delta(
            frozenset(), frozenset({ConceptInclusion(A, B)})
        ) == (0, 1)
        assert cache.lookup(self.KEY_SAT) is True
        assert cache.invalidate_delta(
            frozenset({ConceptInclusion(A, B)}), frozenset()
        ) == (1, 0)
        assert cache.lookup(self.KEY_SAT) is None

    def test_unsat_entries_survive_additions(self):
        cache = QueryCache()
        cache.store(self.KEY_UNSAT, False)
        assert cache.invalidate_delta(
            frozenset({ConceptAssertion(y, C)}), frozenset()
        ) == (0, 1)
        assert cache.lookup(self.KEY_UNSAT) is False

    def test_unsat_entries_survive_dep_disjoint_removal(self):
        cache = QueryCache()
        support = frozenset({ConceptInclusion(A, B)})
        cache.store(self.KEY_UNSAT, False, deps=support)
        unrelated = frozenset({ConceptAssertion(y, C)})
        assert cache.invalidate_delta(frozenset(), unrelated) == (0, 1)
        # Removing a supporting axiom kills the entry.
        assert cache.invalidate_delta(frozenset(), support) == (1, 0)

    def test_unsat_without_deps_dies_on_any_removal(self):
        cache = QueryCache()
        cache.store(self.KEY_UNSAT, False)  # deps=None: depends on all
        assert cache.invalidate_delta(
            frozenset(), frozenset({ConceptAssertion(y, C)})
        ) == (1, 0)

    def test_empty_delta_keeps_everything(self):
        cache = QueryCache()
        cache.store(self.KEY_SAT, True)
        cache.store(self.KEY_UNSAT, False)
        assert cache.invalidate_delta(frozenset(), frozenset()) == (0, 2)

    def test_store_upgrades_none_deps(self):
        cache = QueryCache()
        cache.store(self.KEY_UNSAT, False)
        support = frozenset({ConceptInclusion(A, B)})
        cache.store(self.KEY_UNSAT, False, deps=support)
        assert cache.invalidate_delta(
            frozenset(), frozenset({ConceptAssertion(y, C)})
        ) == (0, 1)


# ---------------------------------------------------------------------------
# Locality analysis
# ---------------------------------------------------------------------------
class TestComponentSafety:
    def test_plain_inclusions_and_assertions_are_safe(self):
        assert is_component_safe(ConceptInclusion(A, B))
        assert is_component_safe(ConceptAssertion(x, Not(A)))
        assert is_component_safe(RoleAssertion(R, x, y))
        assert is_component_safe(ConceptInclusion(Exists(R, A), B))
        assert is_component_safe(
            ConceptInclusion(OneOf(frozenset({x})), C)
        )

    def test_global_constraints_are_unsafe(self):
        assert not is_component_safe(ConceptInclusion(TOP, A))
        assert not is_component_safe(
            ConceptInclusion(TOP, OneOf(frozenset({x})))
        )
        # The induced form of a material inclusion is unsafe too.
        assert not is_component_safe(ConceptInclusion(Not(A), B))

    def test_signature_collapses_inverse_roles(self):
        signature = axiom_signature(RoleAssertion(InverseRole(R), x, y))
        assert ("r", "R") in signature

    def test_affected_atoms_follows_components(self):
        axioms = [
            ConceptInclusion(A, B),
            ConceptInclusion(B, C),
            ConceptInclusion(D, D),
        ]
        dirty = axiom_signature(ConceptInclusion(A, B))
        affected = affected_atoms(axioms, dirty)
        assert affected == frozenset({A, B, C})

    def test_affected_atoms_declines_on_unsafe_axiom(self):
        axioms = [ConceptInclusion(TOP, A), ConceptInclusion(B, C)]
        assert affected_atoms(axioms, axiom_signature(axioms[1])) is None


# ---------------------------------------------------------------------------
# Incremental saturation
# ---------------------------------------------------------------------------
class TestSaturationUpdate:
    def _engine(self):
        kb = KnowledgeBase.of(
            [ConceptInclusion(A, B), ConceptAssertion(x, A)]
        )
        engine = SaturationEngine(kb)
        assert engine.satisfiable_with(
            (ConceptAssertion(x, Not(B)),)
        ) is False
        return engine

    def test_abox_addition_absorbed_in_place(self):
        engine = self._engine()
        cone = engine.update(
            frozenset({ConceptAssertion(y, A)}), frozenset()
        )
        assert cone is not None and cone > 0
        assert engine.satisfiable_with(
            (ConceptAssertion(y, Not(B)),)
        ) is False

    def test_removal_declines(self):
        engine = self._engine()
        assert engine.update(
            frozenset(), frozenset({ConceptAssertion(x, A)})
        ) is None

    def test_tbox_addition_declines(self):
        engine = self._engine()
        assert engine.update(
            frozenset({ConceptInclusion(B, C)}), frozenset()
        ) is None

    def test_residue_addition_disables_sat_answers(self):
        engine = self._engine()
        assert engine.complete
        from repro.dl import SameIndividual

        cone = engine.update(
            frozenset({SameIndividual(x, y)}), frozenset()
        )
        assert cone == 0
        assert not engine.complete
        # UNSAT answers still come from the entailment closure.
        assert engine.satisfiable_with(
            (ConceptAssertion(x, Not(B)),)
        ) is False


# ---------------------------------------------------------------------------
# Reasoner fine-grained sync
# ---------------------------------------------------------------------------
class TestReasonerIncremental:
    def _setup(self):
        kb = KnowledgeBase.of(
            [
                ConceptInclusion(A, B),
                ConceptInclusion(C, D),
                ConceptAssertion(x, A),
            ]
        )
        reasoner = Reasoner(kb)
        assert reasoner.entails(ConceptAssertion(x, B))
        assert reasoner.subsumes(B, A)
        assert not reasoner.subsumes(D, A)
        return kb, reasoner

    def test_unrelated_addition_preserves_entailed_entries(self):
        kb, reasoner = self._setup()
        kb.add_axiom(ConceptAssertion(y, C))
        assert reasoner.entails(ConceptAssertion(x, B))
        assert reasoner.stats.cache_entries_survived > 0
        assert reasoner.stats.fine_invalidations > 0

    def test_netted_out_edit_keeps_every_entry(self):
        kb, reasoner = self._setup()
        entries = len(reasoner.cache)
        kb.remove_axiom(ConceptAssertion(x, A))
        kb.add_axiom(ConceptAssertion(x, A))
        assert reasoner.entails(ConceptAssertion(x, B))
        assert len(reasoner.cache) >= entries
        assert reasoner.stats.fine_invalidations == 0

    def test_incremental_false_clears_wholesale(self):
        kb = KnowledgeBase.of([ConceptInclusion(A, B)])
        reasoner = Reasoner(kb, incremental=False)
        assert reasoner.subsumes(B, A)
        kb.add_axiom(ConceptAssertion(y, C))
        assert reasoner.subsumes(B, A)
        assert reasoner.stats.cache_entries_survived == 0
        assert reasoner.stats.fine_invalidations == 0

    def test_parity_with_cold_reasoner_across_edits(self):
        kb, reasoner = self._setup()
        edits = [
            ("add", ConceptAssertion(y, C)),
            ("add", ConceptInclusion(B, C)),
            ("remove", ConceptInclusion(C, D)),
            ("add", ConceptInclusion(D, A)),
            ("remove", ConceptAssertion(y, C)),
        ]
        for op, axiom in edits:
            if op == "add":
                kb.add_axiom(axiom)
            else:
                kb.remove_axiom(axiom)
            cold = Reasoner(
                KnowledgeBase.of(list(kb.axioms())), use_cache=False
            )
            for sup in (A, B, C, D):
                for sub in (A, B, C, D):
                    assert reasoner.subsumes(sup, sub) == cold.subsumes(
                        sup, sub
                    ), (op, axiom, sup, sub)

    def test_classification_memo_hit_and_incremental_merge(self):
        kb, reasoner = self._setup()
        first = reasoner.classify()
        runs = reasoner.stats.tableau_runs
        sat_queries = reasoner.stats.saturation_queries
        # Verbatim memo hit: no new reasoning work at all.
        assert reasoner.classify() == first
        assert reasoner.stats.tableau_runs == runs
        assert reasoner.stats.saturation_queries == sat_queries
        # A component-local TBox edit only re-probes affected atoms.
        kb.add_axiom(ConceptInclusion(D, C))
        merged = reasoner.classify()
        fresh = Reasoner(KnowledgeBase.of(list(kb.axioms()))).classify()
        assert merged == fresh

    def test_pure_abox_edit_reuses_taxonomy(self):
        kb, reasoner = self._setup()
        first = reasoner.classify()
        kb.add_axiom(ConceptAssertion(y, D))
        pre = reasoner.stats.snapshot()
        assert reasoner.classify() == first
        delta = reasoner.stats - pre
        # Consistency is re-checked; no subsumption probes re-run.
        assert delta.subsumption_tests == 0

    def test_classification_parity_after_unsafe_edit(self):
        kb, reasoner = self._setup()
        reasoner.classify()
        # Top [= A is component-unsafe: merge must fall back to a full
        # reclassification, still byte-identical to a cold run.
        kb.add_axiom(ConceptInclusion(Top(), A))
        fresh = Reasoner(KnowledgeBase.of(list(kb.axioms()))).classify()
        assert reasoner.classify() == fresh
