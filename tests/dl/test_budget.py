"""Unit tests for the resource-governance layer (budget.py).

Budget validation and scaling, meter semantics (latching, amortised
clock reads, cumulative caps), the three-way Verdict type, degrading
reasoner services, and retry_with_escalation.
"""

import pytest

from repro.dl import (
    AtomicConcept,
    Budget,
    BudgetExceeded,
    CancelToken,
    ConceptAssertion,
    ConceptInclusion,
    DegradationReason,
    DegradationRecord,
    Individual,
    KnowledgeBase,
    Not,
    Or,
    Reasoner,
    Verdict,
    retry_with_escalation,
)
from repro.dl.budget import DEFAULT_CHECK_INTERVAL


class FakeClock:
    """A clock advanced manually by the test."""

    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def small_kb():
    A, B = AtomicConcept("A"), AtomicConcept("B")
    x, y = Individual("x"), Individual("y")
    kb = KnowledgeBase()
    kb.add(
        ConceptAssertion(x, A),
        ConceptInclusion(A, Or.of(B, Not(A))),
        ConceptAssertion(y, Not(B)),
    )
    return kb, A, B, x


class TestBudgetValidation:
    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(ValueError):
            Budget(deadline=0)
        with pytest.raises(ValueError):
            Budget(deadline=-1.0)

    @pytest.mark.parametrize("axis", ["max_nodes", "max_branches", "max_trail"])
    def test_rejects_caps_below_one(self, axis):
        with pytest.raises(ValueError):
            Budget(**{axis: 0})

    def test_rejects_bad_check_interval(self):
        with pytest.raises(ValueError):
            Budget(check_interval=0)

    def test_unlimited_budget_is_fine(self):
        meter = Budget().start()
        for _ in range(1000):
            meter.tick()
            meter.note_branch()

    def test_scaled_multiplies_finite_axes_only(self):
        budget = Budget(deadline=2.0, max_nodes=10, max_branches=None)
        bigger = budget.scaled(4.0)
        assert bigger.deadline == 8.0
        assert bigger.max_nodes == 40
        assert bigger.max_branches is None

    def test_scaled_keeps_token_and_clock(self):
        token = CancelToken()
        clock = FakeClock()
        budget = Budget(deadline=1.0, cancel=token, clock=clock)
        bigger = budget.scaled(2.0)
        assert bigger.cancel is token
        assert bigger.clock is clock

    def test_scaled_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            Budget(max_nodes=5).scaled(0)


class TestBudgetMeter:
    def test_deadline_expiry_raises_with_reason(self):
        clock = FakeClock()
        meter = Budget(deadline=1.0, clock=clock, check_interval=1).start()
        meter.tick()  # within deadline
        clock.advance(2.0)
        with pytest.raises(BudgetExceeded) as excinfo:
            meter.tick()
        assert excinfo.value.reason is DegradationReason.DEADLINE

    def test_expired_meter_latches(self):
        clock = FakeClock()
        meter = Budget(deadline=1.0, clock=clock, check_interval=1).start()
        clock.advance(5.0)
        with pytest.raises(BudgetExceeded):
            meter.tick()
        # keeps raising even if the clock were rolled back
        clock.now = 0.0
        with pytest.raises(BudgetExceeded):
            meter.tick()

    def test_clock_reads_are_amortised(self):
        reads = []
        clock = FakeClock()

        def counting_clock():
            reads.append(1)
            return clock()

        meter = Budget(deadline=100.0, clock=counting_clock).start()
        for _ in range(DEFAULT_CHECK_INTERVAL * 3):
            meter.tick()
        # one read at start() plus one per interval, not one per tick
        assert len(reads) == 1 + 3

    def test_each_scope_gets_a_fresh_deadline_window(self):
        clock = FakeClock()
        budget = Budget(deadline=1.0, clock=clock, check_interval=1)
        first = budget.start()
        clock.advance(10.0)
        with pytest.raises(BudgetExceeded):
            first.tick()
        # a new metered scope measures its deadline from its own start
        budget.start().tick()

    def test_cancel_polled_every_tick(self):
        token = CancelToken()
        meter = Budget(cancel=token).start()
        meter.tick()
        token.cancel()
        with pytest.raises(BudgetExceeded) as excinfo:
            meter.tick()
        assert excinfo.value.reason is DegradationReason.CANCELLED

    def test_branch_cap_is_cumulative(self):
        meter = Budget(max_branches=3).start()
        meter.note_branch()
        meter.note_branch()
        meter.note_branch()
        with pytest.raises(BudgetExceeded) as excinfo:
            meter.note_branch()
        assert excinfo.value.reason is DegradationReason.BRANCHES

    def test_trail_cap_is_cumulative(self):
        meter = Budget(max_trail=10).start()
        meter.note_trail(6)
        with pytest.raises(BudgetExceeded) as excinfo:
            meter.note_trail(6)
        assert excinfo.value.reason is DegradationReason.TRAIL


class TestVerdict:
    def test_singletons_and_of(self):
        assert Verdict.of(True) is Verdict.TRUE
        assert Verdict.of(False) is Verdict.FALSE

    def test_three_way_predicates(self):
        unknown = Verdict.unknown(DegradationReason.DEADLINE)
        assert Verdict.TRUE.is_true() and not Verdict.TRUE.is_unknown()
        assert Verdict.FALSE.is_false()
        assert unknown.is_unknown()
        assert not unknown.is_true() and not unknown.is_false()

    def test_bool_raises_on_unknown(self):
        unknown = Verdict.unknown(DegradationReason.NODES, "cap hit")
        with pytest.raises(TypeError):
            bool(unknown)
        assert bool(Verdict.TRUE) is True
        assert bool(Verdict.FALSE) is False

    def test_negate_keeps_unknown(self):
        unknown = Verdict.unknown(DegradationReason.BRANCHES)
        assert Verdict.TRUE.negate() is Verdict.FALSE
        assert Verdict.FALSE.negate() is Verdict.TRUE
        assert unknown.negate() is unknown

    def test_str_forms(self):
        assert str(Verdict.TRUE) == "TRUE"
        assert str(Verdict.FALSE) == "FALSE"
        assert (
            str(Verdict.unknown(DegradationReason.DEADLINE))
            == "UNKNOWN(deadline)"
        )

    def test_invalid_combinations_rejected(self):
        with pytest.raises(ValueError):
            Verdict(value=None)  # unknown without a reason
        with pytest.raises(ValueError):
            Verdict(value=True, reason=DegradationReason.NODES)

    def test_degradation_record_renders(self):
        record = DegradationRecord("stratum 2", DegradationReason.DEADLINE)
        assert str(record) == "stratum 2: deadline"


class TestDegradingReasonerServices:
    def test_node_budget_degrades_to_unknown(self):
        kb, A, B, x = small_kb()
        reasoner = Reasoner(kb)
        verdict = reasoner.instance_verdict(x, B, budget=Budget(max_nodes=1))
        assert verdict.is_unknown()
        assert verdict.reason is DegradationReason.NODES
        assert reasoner.stats.unknown_verdicts >= 1
        assert reasoner.stats.budget_aborts >= 1

    def test_unbudgeted_verdicts_are_decided(self):
        kb, A, B, x = small_kb()
        reasoner = Reasoner(kb)
        assert reasoner.consistency_verdict().is_true()
        assert not reasoner.instance_verdict(x, B).is_unknown()
        assert not reasoner.subsumption_verdict(B, A).is_unknown()
        assert not reasoner.satisfiable_verdict(A).is_unknown()

    def test_cancelled_budget_degrades(self):
        kb, A, B, x = small_kb()
        token = CancelToken()
        token.cancel()
        verdict = Reasoner(kb).consistency_verdict(
            budget=Budget(cancel=token)
        )
        assert verdict.is_unknown()
        assert verdict.reason is DegradationReason.CANCELLED

    def test_constructor_budget_applies_to_boolean_api(self):
        kb, A, B, x = small_kb()
        bounded = Reasoner(kb, budget=Budget(max_nodes=1))
        with pytest.raises(BudgetExceeded):
            bounded.is_consistent()

    def test_entails_verdict_matches_entails(self):
        kb, A, B, x = small_kb()
        reasoner = Reasoner(kb)
        axiom = ConceptAssertion(x, A)
        assert bool(reasoner.entails_verdict(axiom)) == reasoner.entails(axiom)

    @pytest.mark.parametrize("search", ["trail", "copying"])
    def test_both_search_modes_degrade(self, search):
        kb, A, B, x = small_kb()
        reasoner = Reasoner(kb, search=search)
        verdict = reasoner.instance_verdict(x, B, budget=Budget(max_nodes=1))
        assert verdict.is_unknown()
        # and stay reusable afterwards
        assert reasoner.is_consistent() is True

    def test_verdict_never_flips_the_unbudgeted_answer(self):
        kb, A, B, x = small_kb()
        reference = Reasoner(kb, use_cache=False)
        for cap in (1, 2, 3, 4, 50):
            probe = Reasoner(kb, use_cache=False)
            verdict = probe.instance_verdict(
                x, B, budget=Budget(max_nodes=cap)
            )
            if not verdict.is_unknown():
                assert bool(verdict) == reference.is_instance(x, B)


class TestClassifyBounded:
    def test_unbudgeted_matches_classify(self):
        kb, A, B, x = small_kb()
        reasoner = Reasoner(kb)
        partial = reasoner.classify_bounded()
        assert partial.complete
        assert partial.reason is None
        assert dict(partial.hierarchy) == dict(reasoner.classify())

    def test_tight_budget_yields_undecided_pairs(self):
        kb, A, B, x = small_kb()
        reasoner = Reasoner(kb)
        partial = reasoner.classify_bounded(budget=Budget(max_nodes=1))
        assert not partial.complete
        assert partial.reason is not None
        atoms = sorted(kb.concepts_in_signature(), key=lambda a: a.name)
        total_pairs = len(atoms) * len(atoms)
        decided_rows = sum(len(atoms) for _ in partial.hierarchy)
        assert decided_rows + len(partial.undecided) == total_pairs

    def test_partial_rows_agree_with_full_classification(self):
        kb, A, B, x = small_kb()
        full = Reasoner(kb).classify()
        partial = Reasoner(kb).classify_bounded(budget=Budget(max_branches=6))
        for atom, supers in partial.hierarchy.items():
            assert supers == full[atom]


class TestRetryWithEscalation:
    def test_decided_probe_returns_immediately(self):
        calls = []

        def probe(budget):
            calls.append(budget)
            return Verdict.TRUE

        verdict = retry_with_escalation(probe, Budget(max_nodes=2))
        assert verdict is Verdict.TRUE
        assert len(calls) == 1

    def test_escalates_until_decidable(self):
        kb, A, B, x = small_kb()
        reasoner = Reasoner(kb)

        def probe(budget):
            return reasoner.instance_verdict(x, B, budget=budget)

        verdict = retry_with_escalation(
            probe, Budget(max_nodes=1), factor=4.0, attempts=3,
            stats=reasoner.stats,
        )
        assert not verdict.is_unknown()
        assert reasoner.stats.escalations >= 1

    def test_gives_up_after_attempts(self):
        calls = []

        def probe(budget):
            calls.append(budget.max_nodes)
            return Verdict.unknown(DegradationReason.NODES)

        verdict = retry_with_escalation(
            probe, Budget(max_nodes=1), factor=2.0, attempts=3
        )
        assert verdict.is_unknown()
        assert calls == [1, 2, 4]

    def test_cancellation_is_not_escalated(self):
        calls = []

        def probe(budget):
            calls.append(budget)
            return Verdict.unknown(DegradationReason.CANCELLED)

        verdict = retry_with_escalation(probe, Budget(max_nodes=1), attempts=5)
        assert verdict.reason is DegradationReason.CANCELLED
        assert len(calls) == 1

    def test_ceiling_stops_escalation_early(self):
        calls = []

        def probe(budget):
            calls.append(budget.max_nodes)
            return Verdict.unknown(DegradationReason.NODES)

        verdict = retry_with_escalation(
            probe,
            Budget(max_nodes=4),
            factor=10.0,
            attempts=10,
            ceiling=Budget(max_nodes=40),
        )
        assert verdict.is_unknown()
        # 4 -> 40 (clamped) -> clamp again equals current -> stop
        assert calls == [4, 40]

    def test_reasoner_entails_with_escalation(self):
        kb, A, B, x = small_kb()
        reasoner = Reasoner(kb)
        verdict = reasoner.entails_with_escalation(
            ConceptAssertion(x, A), Budget(max_nodes=1), attempts=4
        )
        assert verdict.is_true()

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            retry_with_escalation(lambda b: Verdict.TRUE, Budget(), attempts=0)
        with pytest.raises(ValueError):
            retry_with_escalation(lambda b: Verdict.TRUE, Budget(), factor=1.0)


class TestStatsCounters:
    def test_deadline_checks_counted(self):
        kb, A, B, x = small_kb()
        clock = FakeClock()
        reasoner = Reasoner(kb)
        reasoner.consistency_verdict(
            budget=Budget(deadline=100.0, clock=clock, check_interval=1)
        )
        assert reasoner.stats.deadline_checks >= 1

    def test_render_mentions_budget_after_abort(self):
        kb, A, B, x = small_kb()
        reasoner = Reasoner(kb)
        reasoner.instance_verdict(x, B, budget=Budget(max_nodes=1))
        assert "budget:" in reasoner.stats.render()

    def test_render_quiet_without_budget_activity(self):
        kb, A, B, x = small_kb()
        reasoner = Reasoner(kb)
        reasoner.is_consistent()
        # No budget group is rendered; it is listed in the elision trailer.
        rendered = reasoner.stats.render()
        assert "budget:" not in rendered
        assert "zero:" in rendered and "budget" in rendered.split("zero:")[1]
