"""Unit tests for the concept and KB parsers."""

import pytest

from repro.dl import (
    And,
    AtLeast,
    AtMost,
    AtomicConcept,
    AtomicRole,
    BOTTOM,
    ConceptAssertion,
    ConceptInclusion,
    DataAssertion,
    DataAtMost,
    DataExists,
    DataForall,
    DataOneOf,
    DataValue,
    DatatypeRole,
    DifferentIndividuals,
    Exists,
    Forall,
    INTEGER,
    Individual,
    IntRange,
    Not,
    OneOf,
    Or,
    ParseError,
    RoleAssertion,
    RoleInclusion,
    SameIndividual,
    TOP,
    Transitivity,
)
from repro.dl.parser import parse_concept, parse_kb, parse_kb4
from repro.four_dl import ConceptInclusion4, InclusionKind

A, B, C = AtomicConcept("A"), AtomicConcept("B"), AtomicConcept("C")
r = AtomicRole("r")


class TestConceptParsing:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("A", A),
            ("Thing", TOP),
            ("Nothing", BOTTOM),
            ("not A", Not(A)),
            ("A and B", A & B),
            ("A or B", A | B),
            ("not not A", Not(Not(A))),
            ("(A)", A),
            ("{a}", OneOf.of("a")),
            ("{a, b}", OneOf.of("a", "b")),
            ("r some A", Exists(r, A)),
            ("r only A", Forall(r, A)),
            ("r min 2", AtLeast(2, r)),
            ("r max 0", AtMost(0, r)),
            ("inverse(r) some A", Exists(r.inverse(), A)),
        ],
    )
    def test_basic_forms(self, text, expected):
        assert parse_concept(text) == expected

    def test_precedence_not_binds_tightest(self):
        assert parse_concept("not A and B") == And.of(Not(A), B)

    def test_precedence_and_over_or(self):
        assert parse_concept("A and B or C") == Or.of(And.of(A, B), C)
        assert parse_concept("A or B and C") == Or.of(A, And.of(B, C))

    def test_parentheses_override(self):
        assert parse_concept("A and (B or C)") == And.of(A, Or.of(B, C))

    def test_nary_flattening(self):
        assert parse_concept("A and B and C") == And((A, B, C))

    def test_quantifier_filler_is_unary(self):
        # "r some A and B" parses as (r some A) and B.
        assert parse_concept("r some A and B") == And.of(Exists(r, A), B)
        assert parse_concept("r some (A and B)") == Exists(r, And.of(A, B))

    def test_nested_quantifiers(self):
        assert parse_concept("r some (r only A)") == Exists(r, Forall(r, A))

    def test_datatype_restrictions(self):
        u = DatatypeRole("age")
        assert parse_concept("age some integer", ["age"]) == DataExists(u, INTEGER)
        assert parse_concept("age some integer[1..5]", ["age"]) == DataExists(
            u, IntRange(1, 5)
        )
        assert parse_concept("age some integer[..5]", ["age"]) == DataExists(
            u, IntRange(None, 5)
        )
        assert parse_concept("age only {1, 2}", ["age"]) == DataForall(
            u, DataOneOf.of(1, 2)
        )
        assert parse_concept("age max 1", ["age"]) == DataAtMost(1, u)

    def test_string_and_boolean_literals(self):
        u = DatatypeRole("tag")
        parsed = parse_concept('tag some {"x", true}', ["tag"])
        assert parsed == DataExists(
            u, DataOneOf(frozenset({DataValue("string", "x"), DataValue("boolean", "true")}))
        )

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "and A",
            "A and",
            "(A",
            "r some",
            "r min x",
            "{",
            "not",
            "A B",
            "inverse(r)",
            "inverse(r) and A",
        ],
    )
    def test_errors(self, bad):
        with pytest.raises(ParseError):
            parse_concept(bad)


class TestKBParsing:
    def test_full_kb(self):
        kb = parse_kb(
            """
            # comment
            dataproperty age
            transitive partOf
            A subclassof B
            r subpropertyof s
            a : A and not B
            r(a, b)
            age(a, 3)
            a = aa
            a != b
            """
        )
        assert ConceptInclusion(A, B) in kb.concept_inclusions
        assert RoleInclusion(r, AtomicRole("s")) in kb.role_inclusions
        assert Transitivity(AtomicRole("partOf")) in kb.transitivity_axioms
        assert ConceptAssertion(Individual("a"), And.of(A, Not(B))) in kb.concept_assertions
        assert RoleAssertion(r, Individual("a"), Individual("b")) in kb.role_assertions
        assert DataAssertion(
            DatatypeRole("age"), Individual("a"), DataValue.of(3)
        ) in kb.data_assertions
        assert SameIndividual(Individual("a"), Individual("aa")) in kb.same_individuals
        assert DifferentIndividuals(Individual("a"), Individual("b")) in kb.different_individuals

    def test_comments_and_blank_lines_ignored(self):
        kb = parse_kb("\n# only a comment\n\nA subclassof B\n")
        assert len(kb) == 1

    def test_complex_inclusion(self):
        kb = parse_kb("A and (r some B) subclassof C or Nothing")
        inclusion = kb.concept_inclusions[0]
        assert inclusion.sub == And.of(A, Exists(r, B))
        assert inclusion.sup == Or.of(C, BOTTOM)

    def test_parse_error_reports_line(self):
        with pytest.raises(ParseError) as excinfo:
            parse_kb("A subclassof B\nthis is nonsense line\n")
        assert "line 2" in str(excinfo.value)

    def test_string_data_assertion(self):
        kb = parse_kb('dataproperty name\nname(a, "Smith")\n')
        assert kb.data_assertions[0].value == DataValue("string", "Smith")


class TestKB4Parsing:
    def test_three_inclusion_kinds(self):
        kb4 = parse_kb4(
            """
            A < B
            A |-> B
            A -> B
            """
        )
        kinds = [inc.kind for inc in kb4.concept_inclusions]
        assert kinds == [
            InclusionKind.INTERNAL,
            InclusionKind.MATERIAL,
            InclusionKind.STRONG,
        ]

    def test_complex_sides(self):
        kb4 = parse_kb4("A and (r some B) |-> not C\n")
        inclusion = kb4.concept_inclusions[0]
        assert inclusion.sub == And.of(A, Exists(r, B))
        assert inclusion.sup == Not(C)
        assert inclusion.kind == InclusionKind.MATERIAL

    def test_subclassof_maps_to_internal(self):
        kb4 = parse_kb4("A subclassof B\n")
        assert kb4.concept_inclusions[0].kind == InclusionKind.INTERNAL

    def test_abox_shared_with_classical_syntax(self):
        kb4 = parse_kb4("a : A\nr(a, b)\n")
        assert len(kb4.concept_assertions) == 1
        assert len(kb4.role_assertions) == 1

    def test_paper_example3(self):
        kb4 = parse_kb4(
            """
            Bird and (hasWing some Wing) |-> Fly
            Penguin < Bird
            Penguin < hasWing some Wing
            Penguin < not Fly
            tweety : Bird
            tweety : Penguin
            w : Wing
            hasWing(tweety, w)
            """
        )
        assert len(kb4.concept_inclusions) == 4
        assert len(list(kb4.abox())) == 4

    def test_datatype_role_inclusion4(self):
        kb4 = parse_kb4("dataproperty age\ndataproperty years\nage < years\n")
        assert len(kb4.datatype_role_inclusions) == 1


class TestEquivalenceSyntax:
    def test_classical_equivalence(self):
        from repro.dl import ConceptEquivalence

        kb = parse_kb("A equivalentto B and C\n")
        assert kb.concept_inclusions == [
            ConceptInclusion(A, And.of(B, C)),
            ConceptInclusion(And.of(B, C), A),
        ]

    def test_four_valued_equivalence_becomes_two_internals(self):
        kb4 = parse_kb4("A equivalentto B\n")
        kinds = [(inc.sub, inc.sup, inc.kind) for inc in kb4.concept_inclusions]
        assert kinds == [
            (A, B, InclusionKind.INTERNAL),
            (B, A, InclusionKind.INTERNAL),
        ]
