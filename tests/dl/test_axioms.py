"""Unit tests for the classical axiom classes."""

import pytest

from repro.dl import (
    AtomicConcept,
    AtomicRole,
    ConceptAssertion,
    ConceptEquivalence,
    ConceptInclusion,
    DataAssertion,
    DataValue,
    DatatypeRole,
    DifferentIndividuals,
    Individual,
    NegativeRoleAssertion,
    Not,
    RoleAssertion,
    SameIndividual,
    Transitivity,
)
from repro.dl.axioms import expand_equivalences

A, B = AtomicConcept("A"), AtomicConcept("B")
r = AtomicRole("r")
a, b = Individual("a"), Individual("b")


class TestEquality:
    def test_axioms_equal_by_value(self):
        assert ConceptInclusion(A, B) == ConceptInclusion(A, B)
        assert ConceptInclusion(A, B) != ConceptInclusion(B, A)
        assert RoleAssertion(r, a, b) == RoleAssertion(r, a, b)

    def test_axioms_hashable(self):
        axioms = {ConceptInclusion(A, B), ConceptInclusion(A, B)}
        assert len(axioms) == 1

    def test_assertion_kinds_distinct(self):
        assert RoleAssertion(r, a, b) != NegativeRoleAssertion(r, a, b)


class TestEquivalence:
    def test_expands_to_both_inclusions(self):
        equivalence = ConceptEquivalence(A, B)
        assert equivalence.inclusions() == (
            ConceptInclusion(A, B),
            ConceptInclusion(B, A),
        )

    def test_expand_equivalences_helper(self):
        axioms = list(
            expand_equivalences(
                iter([ConceptEquivalence(A, B), ConceptAssertion(a, A)])
            )
        )
        assert axioms == [
            ConceptInclusion(A, B),
            ConceptInclusion(B, A),
            ConceptAssertion(a, A),
        ]


class TestNormalisation:
    def test_role_assertion_inverse(self):
        assert RoleAssertion(r.inverse(), a, b).normalised() == RoleAssertion(
            r, b, a
        )
        assert RoleAssertion(r, a, b).normalised() == RoleAssertion(r, a, b)

    def test_negative_role_assertion_inverse(self):
        assert NegativeRoleAssertion(
            r.inverse(), a, b
        ).normalised() == NegativeRoleAssertion(r, b, a)


class TestReprs:
    @pytest.mark.parametrize(
        "axiom, expected",
        [
            (ConceptInclusion(A, B), "A [= B"),
            (ConceptEquivalence(A, B), "A == B"),
            (Transitivity(r), "Trans(r)"),
            (ConceptAssertion(a, Not(A)), "a : (not A)"),
            (RoleAssertion(r, a, b), "r(a, b)"),
            (NegativeRoleAssertion(r, a, b), "not r(a, b)"),
            (SameIndividual(a, b), "a = b"),
            (DifferentIndividuals(a, b), "a != b"),
        ],
    )
    def test_repr(self, axiom, expected):
        assert repr(axiom) == expected

    def test_data_assertion_repr(self):
        axiom = DataAssertion(DatatypeRole("u"), a, DataValue.of(3))
        assert repr(axiom) == "u(a, 3)"
