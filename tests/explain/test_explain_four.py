"""Reasoner4.explain: original-KB4 citations with Table 3 strengths."""

import pytest

from repro.dl import (
    And,
    AtomicConcept,
    AtomicRole,
    BOTTOM,
    ConceptAssertion,
    Exists,
    Individual,
    Not,
    RoleAssertion,
    TOP,
)
from repro.four_dl import (
    InclusionKind,
    KnowledgeBase4,
    Reasoner4,
    internal,
    material,
    strong,
)
from repro.explain import is_minimal, render_explanation
from repro.fourvalued.truth import FourValue
from repro.harness.experiments import example3_kb4

bird = AtomicConcept("Bird")
penguin = AtomicConcept("Penguin")
fly = AtomicConcept("Fly")
tweety = Individual("tweety")


def entails4_via_fresh_reasoner(axiom):
    """Independent minimality check rebuilding a Reasoner4 from scratch."""

    def check(axioms4):
        return Reasoner4(KnowledgeBase4.of(axioms4), use_cache=False).entails(
            axiom
        )

    return check


def test_citations_are_original_kb4_axioms():
    kb4 = example3_kb4()
    query = ConceptAssertion(tweety, Not(fly))
    explanation = Reasoner4(kb4).explain(query)
    assert explanation.entailed
    kb4_axioms = set(kb4.axioms())
    for axiom in explanation.justification:
        assert axiom in kb4_axioms
    # Never the reduced A__pos/A__neg artifacts.
    assert "__pos" not in render_explanation(explanation)
    assert "__neg" not in render_explanation(explanation)


def test_inclusion_strength_annotated_in_rendering():
    kb4 = example3_kb4()
    text = render_explanation(
        Reasoner4(kb4).explain(ConceptAssertion(tweety, Not(fly)))
    )
    assert "internal inclusion (<)" in text
    assert "Penguin < not Fly" in text
    assert "tweety : Penguin" in text


def test_justification_is_minimal_four_valuedly():
    kb4 = example3_kb4()
    query = ConceptAssertion(tweety, Not(fly))
    justification = Reasoner4(kb4).explain(query).justification
    assert is_minimal(justification, entails4_via_fresh_reasoner(query))


def test_material_inclusions_do_not_chain():
    """|-> does not compose (Table 4): explain agrees with entails."""
    kb4 = KnowledgeBase4().add(material(bird, fly), internal(penguin, bird))
    explanation = Reasoner4(kb4).explain(material(penguin, fly))
    assert not explanation.entailed


def test_material_inclusion_entailment_and_citation():
    kb4 = KnowledgeBase4().add(internal(TOP, fly), internal(penguin, bird))
    query = material(bird, fly)
    explanation = Reasoner4(kb4).explain(query)
    assert explanation.entailed
    assert list(explanation.justification) == [internal(TOP, fly)]
    assert is_minimal(
        explanation.justification, entails4_via_fresh_reasoner(query)
    )


def test_strong_inclusion_merges_both_directions():
    A, B, C = (AtomicConcept(n) for n in "ABC")
    kb4 = KnowledgeBase4().add(strong(A, B), strong(B, C))
    query = strong(A, C)
    explanation = Reasoner4(kb4).explain(query)
    assert explanation.entailed
    # Both probe directions must hold, so both axioms survive shrinking.
    assert set(explanation.justification) == {strong(A, B), strong(B, C)}
    assert is_minimal(
        explanation.justification, entails4_via_fresh_reasoner(query)
    )


def test_not_entailed_four_valued_query():
    kb4 = example3_kb4()
    fish = AtomicConcept("Fish")
    explanation = Reasoner4(kb4).explain(ConceptAssertion(tweety, fish))
    assert not explanation.entailed
    assert explanation.justification is None


def test_role_assertion_evidence_explained():
    has_wing = AtomicRole("hasWing")
    kb4 = example3_kb4()
    query = RoleAssertion(has_wing, tweety, Individual("w"))
    explanation = Reasoner4(kb4).explain(query)
    assert explanation.entailed
    assert list(explanation.justification) == [query]


def test_deterministic_across_cache_states():
    query = ConceptAssertion(tweety, Not(fly))
    reasoner = Reasoner4(example3_kb4())
    first = reasoner.explain(query).justification.axioms
    reasoner.assertion_value(tweety, fly)  # warm the cache both directions
    second = reasoner.explain(query).justification.axioms
    third = (
        Reasoner4(example3_kb4(), use_cache=False)
        .explain(query)
        .justification.axioms
    )
    assert first == second == third


def test_defeated_default_is_not_entailed():
    """tweety flies is NOT evidenced: the material default is defeated."""
    reasoner = Reasoner4(example3_kb4())
    assert reasoner.assertion_value(tweety, fly) is FourValue.FALSE
    assert not reasoner.explain(ConceptAssertion(tweety, fly)).entailed


def test_conflicting_evidence_explained_per_direction():
    """A BOTH fact has two separate justifications, one per direction."""
    doctor = AtomicConcept("Doctor")
    john = Individual("john")
    kb4 = KnowledgeBase4().add(
        ConceptAssertion(john, doctor),
        ConceptAssertion(john, Not(doctor)),
        internal(penguin, bird),
    )
    reasoner = Reasoner4(kb4)
    assert reasoner.assertion_value(john, doctor) is FourValue.BOTH
    pro = reasoner.explain(ConceptAssertion(john, doctor))
    con = reasoner.explain(ConceptAssertion(john, Not(doctor)))
    assert pro.entailed and con.entailed
    assert list(pro.justification) == [ConceptAssertion(john, doctor)]
    assert list(con.justification) == [ConceptAssertion(john, Not(doctor))]


def test_explain_unsatisfiability():
    kb4 = KnowledgeBase4().add(
        internal(bird, BOTTOM),
        ConceptAssertion(tweety, bird),
        ConceptAssertion(Individual("other"), penguin),
    )
    reasoner = Reasoner4(kb4)
    assert not reasoner.is_satisfiable()
    result = reasoner.explain_unsatisfiability()
    assert not result.consistent
    assert set(result.justification) == {
        internal(bird, BOTTOM),
        ConceptAssertion(tweety, bird),
    }

    def still_unsat(axioms4):
        return not Reasoner4(
            KnowledgeBase4.of(axioms4), use_cache=False
        ).is_satisfiable()

    assert is_minimal(result.justification, still_unsat)


def test_explain_unsatisfiability_on_satisfiable_kb4():
    result = Reasoner4(example3_kb4()).explain_unsatisfiability()
    assert result.consistent
    assert result.justification is None


def test_four_valued_explanation_stats():
    reasoner = Reasoner4(example3_kb4())
    reasoner.explain(ConceptAssertion(tweety, Not(fly)), trace=True)
    assert reasoner.stats.explanations_computed == 1
    assert reasoner.stats.shrink_probes > 0
    assert reasoner.stats.trace_events > 0
