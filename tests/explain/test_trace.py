"""Trace recording: structure, determinism, truncation, and rendering."""

from repro.dl import (
    AtomicConcept,
    ConceptAssertion,
    ConceptInclusion,
    Individual,
    KnowledgeBase,
    Not,
    Or,
)
from repro.dl.tableau import Tableau
from repro.explain import Trace, render_trace, render_trace_summary

A, B, C = (AtomicConcept(n) for n in "ABC")
a = Individual("a")


def contradictory_kb():
    return KnowledgeBase.of(
        [
            ConceptInclusion(A, B),
            ConceptAssertion(a, A),
            ConceptAssertion(a, Not(B)),
        ]
    )


def test_trace_records_init_derive_clash_verdict():
    trace = Trace()
    tableau = Tableau(contradictory_kb(), search="trail", track_provenance=True)
    assert not tableau.is_satisfiable(trace=trace)
    counts = trace.counts()
    assert counts["init"] == 1
    assert counts["verdict"] == 1
    assert counts["clash"] >= 1
    assert trace.verdict is False
    assert trace.clashes


def test_clash_events_carry_source_axioms():
    trace = Trace()
    tableau = Tableau(contradictory_kb(), search="trail", track_provenance=True)
    tableau.is_satisfiable(trace=trace)
    reason, axioms = trace.clashes[-1].payload
    assert isinstance(reason, str)
    assert set(axioms) <= set(contradictory_kb().axioms())
    assert ConceptAssertion(a, A) in axioms


def test_branch_points_recorded_on_disjunctions():
    kb = KnowledgeBase.of(
        [
            ConceptAssertion(a, Or.of(A, B)),
            ConceptAssertion(a, Not(A)),
            ConceptAssertion(a, Not(B)),
        ]
    )
    trace = Trace()
    tableau = Tableau(kb, search="trail", track_provenance=True)
    assert not tableau.is_satisfiable(trace=trace)
    assert trace.branch_points
    assert trace.verdict is False


def test_trace_is_deterministic_across_runs():
    def run():
        trace = Trace()
        Tableau(
            contradictory_kb(), search="trail", track_provenance=True
        ).is_satisfiable(trace=trace)
        return [(e.kind, e.depth) for e in trace.events]

    assert run() == run()


def test_truncation_caps_event_count():
    trace = Trace(max_events=2)
    Tableau(
        contradictory_kb(), search="trail", track_provenance=True
    ).is_satisfiable(trace=trace)
    assert len(trace) == 2
    assert trace.truncated


def test_satisfiable_run_records_verdict_true():
    kb = KnowledgeBase.of([ConceptAssertion(a, A)])
    trace = Trace()
    tableau = Tableau(kb, search="trail", track_provenance=True)
    assert tableau.is_satisfiable(trace=trace)
    assert trace.verdict is True


def test_render_trace_and_summary_are_strings():
    trace = Trace()
    Tableau(
        contradictory_kb(), search="trail", track_provenance=True
    ).is_satisfiable(trace=trace)
    full = render_trace(trace)
    assert "verdict: unsatisfiable" in full
    capped = render_trace(trace, max_lines=1)
    assert "more events" in capped
    summary = render_trace_summary(trace)
    assert summary.startswith("trace:")
    assert summary.endswith("unsatisfiable")


def test_untraced_runs_unaffected():
    tableau = Tableau(contradictory_kb(), search="trail", track_provenance=True)
    assert not tableau.is_satisfiable()
    plain = Tableau(contradictory_kb(), search="trail")
    assert not plain.is_satisfiable()
