"""Reasoner.explain: minimality, determinism, and inconsistency cores."""

import pytest

from repro.dl import (
    And,
    AtomicConcept,
    AtomicRole,
    ConceptAssertion,
    ConceptInclusion,
    Exists,
    Individual,
    KnowledgeBase,
    Not,
    RoleAssertion,
)
from repro.dl.reasoner import Reasoner
from repro.explain import is_minimal

A, B, C, D = (AtomicConcept(n) for n in "ABCD")
r = AtomicRole("r")
a, b = Individual("a"), Individual("b")


def chain_kb():
    """A [= B [= C plus a : A, with an irrelevant axiom about b."""
    return KnowledgeBase.of(
        [
            ConceptInclusion(A, B),
            ConceptInclusion(B, C),
            ConceptAssertion(a, A),
            ConceptAssertion(b, D),
        ]
    )


def entails_via_fresh_reasoner(axiom):
    """An independent minimality check: rebuild from scratch every time."""

    def check(axioms):
        return Reasoner(KnowledgeBase.of(axioms), use_cache=False).entails(
            axiom
        )

    return check


def test_explained_justification_is_minimal():
    kb = chain_kb()
    query = ConceptAssertion(a, C)
    explanation = Reasoner(kb).explain(query)
    assert explanation.entailed
    justification = explanation.justification
    assert set(justification) == {
        ConceptInclusion(A, B),
        ConceptInclusion(B, C),
        ConceptAssertion(a, A),
    }
    assert is_minimal(justification, entails_via_fresh_reasoner(query))


def test_removing_any_single_axiom_defeats_the_entailment():
    kb = chain_kb()
    query = ConceptAssertion(a, C)
    justification = Reasoner(kb).explain(query).justification
    for dropped in justification:
        remainder = [ax for ax in justification if ax != dropped]
        sub = Reasoner(KnowledgeBase.of(remainder), use_cache=False)
        assert not sub.entails(query)


def test_subsumption_explanation():
    kb = chain_kb()
    query = ConceptInclusion(A, C)
    explanation = Reasoner(kb).explain(query)
    assert explanation.entailed
    assert set(explanation.justification) == {
        ConceptInclusion(A, B),
        ConceptInclusion(B, C),
    }


def test_not_entailed_yields_no_justification():
    explanation = Reasoner(chain_kb()).explain(ConceptAssertion(a, D))
    assert not explanation.entailed
    assert explanation.justifications == ()
    assert explanation.justification is None


def test_deterministic_across_repeated_runs_and_cache_states():
    query = ConceptAssertion(a, C)
    reasoner = Reasoner(chain_kb())
    first = reasoner.explain(query).justification.axioms
    # Warm the cache with unrelated queries, then explain again.
    reasoner.entails(query)
    reasoner.is_instance(b, D)
    second = reasoner.explain(query).justification.axioms
    # And once more on a completely fresh reasoner with caching off.
    third = (
        Reasoner(chain_kb(), use_cache=False).explain(query).justification.axioms
    )
    assert first == second == third


def test_explain_does_not_poison_the_query_cache():
    reasoner = Reasoner(chain_kb())
    reasoner.explain(ConceptAssertion(a, C))
    # Post-explanation answers still describe the full KB.
    assert reasoner.entails(ConceptAssertion(a, C))
    assert reasoner.entails(ConceptAssertion(b, D))
    assert not reasoner.entails(ConceptAssertion(a, D))


def test_role_chain_explanation_is_minimal():
    kb = KnowledgeBase.of(
        [
            ConceptInclusion(Exists(r, B), C),
            ConceptAssertion(b, B),
            RoleAssertion(r, a, b),
            ConceptAssertion(a, D),
        ]
    )
    query = ConceptAssertion(a, C)
    explanation = Reasoner(kb).explain(query)
    assert explanation.entailed
    assert set(explanation.justification) == {
        ConceptInclusion(Exists(r, B), C),
        ConceptAssertion(b, B),
        RoleAssertion(r, a, b),
    }
    assert is_minimal(explanation.justification, entails_via_fresh_reasoner(query))


def test_explain_inconsistency_finds_minimal_core():
    kb = KnowledgeBase.of(
        [
            ConceptInclusion(A, B),
            ConceptAssertion(a, A),
            ConceptAssertion(a, Not(B)),
            ConceptAssertion(b, D),
        ]
    )
    reasoner = Reasoner(kb)
    result = reasoner.explain_inconsistency()
    assert not result.consistent
    assert set(result.justification) == {
        ConceptInclusion(A, B),
        ConceptAssertion(a, A),
        ConceptAssertion(a, Not(B)),
    }

    def still_inconsistent(axioms):
        return not Reasoner(
            KnowledgeBase.of(axioms), use_cache=False
        ).is_consistent()

    assert is_minimal(result.justification, still_inconsistent)


def test_explain_inconsistency_on_consistent_kb():
    result = Reasoner(chain_kb()).explain_inconsistency()
    assert result.consistent
    assert result.justification is None


def test_explanation_stats_counters():
    reasoner = Reasoner(chain_kb())
    assert reasoner.stats.explanations_computed == 0
    reasoner.explain(ConceptAssertion(a, C))
    assert reasoner.stats.explanations_computed == 1
    assert reasoner.stats.shrink_probes > 0


def test_trace_records_probe_refutation():
    reasoner = Reasoner(chain_kb())
    explanation = reasoner.explain(ConceptAssertion(a, C), trace=True)
    assert len(explanation.traces) == 1
    trace = explanation.traces[0]
    assert trace.verdict is False
    assert trace.clashes
    assert reasoner.stats.trace_events == len(trace)


def test_explain_after_kb_mutation_sees_new_axioms():
    kb = KnowledgeBase.of([ConceptInclusion(A, B), ConceptAssertion(a, A)])
    reasoner = Reasoner(kb)
    assert not reasoner.explain(ConceptAssertion(a, C)).entailed
    kb.add(ConceptInclusion(B, C))
    explanation = reasoner.explain(ConceptAssertion(a, C))
    assert explanation.entailed
    assert ConceptInclusion(B, C) in explanation.justification
