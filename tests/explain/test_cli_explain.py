"""CLI --explain / --trace integration, including the university ontology."""

from pathlib import Path

import pytest

from repro.cli import main
from repro.dl import ConceptAssertion, Individual
from repro.dl.parser import ConceptParser, parse_kb4
from repro.explain import is_minimal, Justification
from repro.four_dl import KnowledgeBase4, Reasoner4

ONTOLOGIES = Path(__file__).resolve().parents[2] / "ontologies"
UNIVERSITY = ONTOLOGIES / "university.kb4"
PENGUIN = ONTOLOGIES / "penguin.kb4"


def test_university_explain_prints_minimal_justification(capsys):
    exit_code = main(
        ["query", str(UNIVERSITY), "ada", "ProjectLead", "--explain"]
    )
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "evidence for" in out
    assert "justification" in out and "minimal" in out
    assert "supervises min 2 FundedStudent < ProjectLead" in out
    assert "internal inclusion (<)" in out
    # The printed justification really is minimal: recompute it from the
    # same KB and verify with an independent fresh-reasoner check.
    kb4 = parse_kb4(UNIVERSITY.read_text())
    query = ConceptAssertion(
        Individual("ada"), ConceptParser().parse("ProjectLead")
    )
    justification = Reasoner4(kb4).explain(query).justification
    for axiom in justification:
        assert f"{axiom}"  # rendered members appear in the CLI output
    assert is_minimal(
        justification,
        lambda axioms: Reasoner4(
            KnowledgeBase4.of(axioms), use_cache=False
        ).entails(query),
    )
    # Every cited axiom is printed; none of them is an induced artifact.
    assert "__pos" not in out
    assert "__neg" not in out


def test_university_explain_cites_table3_strengths(capsys):
    main(["query", str(UNIVERSITY), "grace", "Staff", "--explain"])
    out = capsys.readouterr().out
    assert "Lecturer < Faculty" in out
    assert "Faculty < Staff" in out
    assert "grace : Lecturer" in out
    assert "[assertion]" in out
    assert out.count("internal inclusion (<)") == 2


def test_explain_on_neither_verdict(capsys):
    exit_code = main(
        ["query", str(UNIVERSITY), "alan", "Doctorate", "--explain"]
    )
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "nothing to explain" in out


def test_trace_flag_dumps_search_events(capsys):
    main(["query", str(PENGUIN), "tweety", "not Fly", "--trace"])
    out = capsys.readouterr().out
    assert "trace:" in out
    assert "unsatisfiable" in out
    assert "derive" in out or "init" in out


def test_check_explain_on_classically_inconsistent_file(capsys):
    exit_code = main(["check", str(PENGUIN), "--explain"])
    out = capsys.readouterr().out
    assert exit_code == 0  # four-valued satisfiable
    assert "why classically inconsistent" in out
    assert "minimal inconsistent core" in out


def test_check_explain_on_unsatisfiable_kb4(tmp_path, capsys):
    bad = tmp_path / "bad.kb4"
    bad.write_text(
        "Bird < Nothing\ntweety : Bird\nother : Penguin\n"
    )
    exit_code = main(["check", str(bad), "--explain"])
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "why four-valued unsatisfiable" in out
    assert "Bird" in out
    assert "other : Penguin" not in out.split("unsatisfiable ---")[1]


def test_check_explain_nothing_to_do(tmp_path, capsys):
    ok = tmp_path / "ok.kb4"
    ok.write_text("Bird < Animal\ntweety : Bird\n")
    exit_code = main(["check", str(ok), "--explain"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "nothing to explain" in out


def test_explain_stats_line_reports_counters(capsys):
    main(
        ["query", str(UNIVERSITY), "grace", "Staff", "--explain", "--stats"]
    )
    out = capsys.readouterr().out
    assert "explanations: 1" in out
    assert "shrink probes" in out
