"""Unit tests for deletion-based justification shrinking."""

from repro.explain import Justification, is_minimal, minimal_justification


def entails_bd(kept):
    return "b" in kept and "d" in kept


def test_minimal_justification_basic():
    result = minimal_justification(["a", "b", "c", "d"], entails_bd)
    assert result.axioms == ("b", "d")
    assert is_minimal(result, entails_bd)


def test_minimal_justification_preserves_input_order():
    result = minimal_justification(["d", "c", "b", "a"], entails_bd)
    assert result.axioms == ("d", "b")


def test_seed_is_used_when_it_checks_out():
    probes = []

    def check(kept):
        probes.append(tuple(kept))
        return entails_bd(kept)

    result = minimal_justification(
        ["a", "b", "c", "d"], check, seed=frozenset({"b", "d"})
    )
    assert result.axioms == ("b", "d")
    # The seed verification probe plus one deletion probe per seed member.
    assert len(probes) == 3


def test_bad_seed_is_rejected_not_trusted():
    # A seed missing a needed axiom must not corrupt the result.
    result = minimal_justification(
        ["a", "b", "c", "d"], entails_bd, seed=frozenset({"b"})
    )
    assert result.axioms == ("b", "d")
    assert is_minimal(result, entails_bd)


def test_oversized_seed_still_shrinks_to_minimal():
    result = minimal_justification(
        ["a", "b", "c", "d"], entails_bd, seed=frozenset({"a", "b", "d"})
    )
    assert result.axioms == ("b", "d")


def test_everything_needed():
    def check(kept):
        return set(kept) == {"x", "y"}

    result = minimal_justification(["x", "y"], check)
    assert result.axioms == ("x", "y")


def test_nothing_needed():
    result = minimal_justification(["a", "b"], lambda kept: True)
    assert result.axioms == ()


def test_is_minimal_detects_redundancy():
    fat = Justification(("a", "b", "d"))
    assert not is_minimal(fat, entails_bd)
    assert is_minimal(Justification(("b", "d")), entails_bd)


def test_deterministic_across_runs():
    first = minimal_justification(["a", "b", "c", "d"], entails_bd)
    second = minimal_justification(["a", "b", "c", "d"], entails_bd)
    assert first.axioms == second.axioms
