"""Fault-injection suite: the chaos harness and its two invariants.

The heavyweight guarantee lives in the suite classes: across 60+ seeded
(KB, fault, search-mode) cases — every fault kind, both the trail and
the copying engine — an aborted search never poisons the cache and the
reasoner stays reusable, answering exactly like a cold one.
"""

import random

import pytest

from repro.dl import Budget, BudgetExceeded, DegradationReason, Reasoner
from repro.harness.chaos import (
    CHAOS_KB,
    FAULT_KINDS,
    ChaosError,
    ScriptedCancelToken,
    SteppedClock,
    fault_budget,
    probe_plan,
    run_chaos_case,
    run_chaos_suite,
)
from repro.workloads import GeneratorConfig, generate_kb


class TestFaultPrimitives:
    def test_scripted_token_fires_at_the_nth_poll(self):
        token = ScriptedCancelToken(fire_at=3)
        assert not token.is_set()
        assert not token.is_set()
        assert token.is_set()
        assert token.is_set()  # stays fired

    def test_scripted_token_can_raise_instead(self):
        token = ScriptedCancelToken(fire_at=2, raise_error=True)
        assert not token.is_set()
        with pytest.raises(ChaosError):
            token.is_set()

    def test_scripted_token_rejects_bad_step(self):
        with pytest.raises(ValueError):
            ScriptedCancelToken(fire_at=0)

    def test_stepped_clock_is_deterministic(self):
        clock = SteppedClock(start=5.0, step=2.0)
        assert [clock(), clock(), clock()] == [5.0, 7.0, 9.0]
        assert clock.readings == 3

    @pytest.mark.parametrize("fault", FAULT_KINDS)
    def test_fault_budget_builds_every_kind(self, fault):
        budget = fault_budget(fault, random.Random(0))
        assert isinstance(budget, Budget)

    def test_fault_budget_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            fault_budget("gamma-rays", random.Random(0))


class TestInjectedFaultsActuallyFire:
    """Each pathway must produce a real abort on a branching KB."""

    def _kb(self, seed=3):
        return generate_kb(GeneratorConfig(seed=seed, **CHAOS_KB))

    def test_cancellation_mid_search(self):
        reasoner = Reasoner(self._kb())
        budget = Budget(cancel=ScriptedCancelToken(fire_at=2))
        verdict = reasoner.consistency_verdict(budget=budget)
        assert verdict.is_unknown()
        assert verdict.reason is DegradationReason.CANCELLED

    def test_injected_exception_contained_as_error(self):
        reasoner = Reasoner(self._kb())
        budget = Budget(
            cancel=ScriptedCancelToken(fire_at=2, raise_error=True)
        )
        verdict = reasoner.consistency_verdict(budget=budget)
        assert verdict.is_unknown()
        assert verdict.reason is DegradationReason.ERROR
        assert "ChaosError" in verdict.message

    def test_deadline_via_fake_clock(self):
        reasoner = Reasoner(self._kb())
        # deadline_at = 0 + 0.5; the first tick reads 1.0 and expires
        budget = Budget(
            deadline=0.5, clock=SteppedClock(step=1.0), check_interval=1
        )
        verdict = reasoner.consistency_verdict(budget=budget)
        assert verdict.is_unknown()
        assert verdict.reason is DegradationReason.DEADLINE

    def test_injected_exception_propagates_on_boolean_api(self):
        """Boolean APIs don't swallow arbitrary faults — only verdict
        APIs contain them."""
        reasoner = Reasoner(
            self._kb(),
            budget=Budget(
                cancel=ScriptedCancelToken(fire_at=2, raise_error=True)
            ),
        )
        with pytest.raises(ChaosError):
            reasoner.is_consistent()


class TestSingleCase:
    def test_case_reports_its_parameters(self):
        result = run_chaos_case(0, search="trail", fault="nodes")
        assert (result.seed, result.search, result.fault) == (0, "trail", "nodes")
        assert result.ok, result.mismatches
        assert result.decided + result.unknowns == len(
            probe_plan(generate_kb(GeneratorConfig(seed=0, **CHAOS_KB)))
        )

    def test_same_seed_same_outcome(self):
        first = run_chaos_case(7, search="trail", fault="branches")
        second = run_chaos_case(7, search="trail", fault="branches")
        assert (first.decided, first.unknowns) == (
            second.decided,
            second.unknowns,
        )


class TestChaosSuiteInvariants:
    """The tentpole guarantee: 60+ seeded cases, both engines, all faults.

    30 seeds x 2 search modes = 60 cases; the suite rotates through all
    six fault kinds, so every degradation pathway is hit in both
    engines.  A failure prints the exact (seed, search, fault) triple.
    """

    @pytest.fixture(scope="class")
    def report(self):
        return run_chaos_suite(range(30), searches=("trail", "copying"))

    def test_no_invariant_violations(self, report):
        assert report.ok, report.render()

    def test_matrix_size_floor(self, report):
        assert len(report.cases) >= 60

    def test_faults_actually_degraded_probes(self, report):
        # the suite is vacuous if no injected fault ever fired
        assert report.unknowns > 0

    def test_most_probes_still_decide(self, report):
        # and useless if faults killed everything
        assert report.decided > report.unknowns

    def test_every_fault_kind_ran(self, report):
        assert {case.fault for case in report.cases} == set(FAULT_KINDS)

    def test_render_summarises(self, report):
        text = report.render()
        assert "cases" in text and "UNKNOWN" in text


class TestReasonerReusabilityAfterHardAborts:
    """Raw BudgetExceeded (boolean API) must also leave a clean state."""

    @pytest.mark.parametrize("search", ["trail", "copying"])
    @pytest.mark.parametrize("seed", range(8))
    def test_abort_then_reuse(self, search, seed):
        kb = generate_kb(GeneratorConfig(seed=seed, **CHAOS_KB))
        cold = Reasoner(kb, search=search, use_cache=False)
        victim = Reasoner(kb, search=search)
        atoms = sorted(kb.concepts_in_signature(), key=lambda a: a.name)[:2]
        individuals = sorted(
            kb.individuals_in_signature(), key=lambda i: i.name
        )[:2]
        victim.budget = Budget(max_nodes=1)
        try:
            victim.is_consistent()
        except BudgetExceeded:
            pass
        victim.budget = None
        assert victim.is_consistent() == cold.is_consistent()
        for individual in individuals:
            for atom in atoms:
                assert victim.is_instance(individual, atom) == cold.is_instance(
                    individual, atom
                ), f"seed={seed} search={search}"
