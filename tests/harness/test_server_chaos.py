"""Service-level fault injection: the server chaos harness.

The heavyweight guarantee: for every server fault (worker killed
mid-request, wedged worker, malformed payloads, client disconnects,
queue saturation) the service recovers, the shared cache is never
poisoned, and post-recovery verdicts are byte-identical to a server
that never saw the fault.

The full five-scenario suite costs several seconds of wall clock (each
scenario boots its own server, and worker_kill/stall fork real worker
processes), so the cheap scenarios run individually and the process
faults share one suite invocation.
"""

import os

import pytest

from repro.harness.server_chaos import (
    MALFORMED_BODIES,
    SERVER_FAULT_KINDS,
    ServerChaosCaseResult,
    ServerChaosReport,
    battery_for,
    run_server_chaos_case,
    run_server_chaos_suite,
)
from repro.serve.protocol import ProbeRequest

ONTOLOGY_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "ontologies"
)
UNIVERSITY = os.path.join(ONTOLOGY_DIR, "university.kb4")


class TestBattery:
    def test_battery_is_deterministic_and_non_trivial(self):
        first = battery_for("university", UNIVERSITY)
        second = battery_for("university", UNIVERSITY)
        assert first == second
        assert len(first) >= 4
        kinds = {request.kind for request in first}
        assert "satisfiable" in kinds
        assert kinds <= {
            "satisfiable", "instance", "subsumption", "assertion_value"
        }
        assert all(isinstance(request, ProbeRequest) for request in first)

    def test_battery_probes_are_idempotent(self):
        # The recovery replay leans on retry-safety: every battery
        # probe must be an idempotent read.
        assert all(
            request.idempotent
            for request in battery_for("university", UNIVERSITY)
        )


class TestHarnessShape:
    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError, match="gamma-rays"):
            run_server_chaos_case("gamma-rays", UNIVERSITY)

    def test_fault_kinds_cover_the_issue_scenarios(self):
        assert set(SERVER_FAULT_KINDS) == {
            "worker_kill",
            "stall",
            "malformed",
            "disconnect",
            "queue_saturation",
        }

    def test_malformed_corpus_is_actually_malformed(self):
        # Each payload must be rejectable: not a valid ProbeRequest.
        for body in MALFORMED_BODIES:
            with pytest.raises(Exception):
                ProbeRequest.from_json(body)

    def test_report_renders_failures(self):
        case = ServerChaosCaseResult(fault="stall")
        case.mismatches.append("verdict diverged")
        report = ServerChaosReport(cases=[case])
        assert not report.ok
        assert report.failures() == [case]
        rendered = report.render()
        assert "1 failing" in rendered
        assert "verdict diverged" in rendered


class TestCheapScenarios:
    """Scenarios that misbehave at the HTTP layer (no worker forks)."""

    @pytest.mark.parametrize(
        "fault", ["malformed", "disconnect", "queue_saturation"]
    )
    def test_http_level_faults_never_poison_the_cache(self, fault):
        result = run_server_chaos_case(fault, UNIVERSITY)
        assert result.ok, "\n".join(result.mismatches)
        assert result.notes, "scenario should report observations"


class TestProcessScenarios:
    """Scenarios that kill or wedge real worker processes."""

    def test_worker_kill_and_stall_recover_byte_identical(self):
        report = run_server_chaos_suite(
            kb_path=UNIVERSITY, faults=["worker_kill", "stall"]
        )
        assert report.ok, report.render()
        by_fault = {case.fault: case for case in report.cases}
        # The kill scenario proves a restart actually happened.
        assert any(
            "restart" in note for note in by_fault["worker_kill"].notes
        ), by_fault["worker_kill"].notes
