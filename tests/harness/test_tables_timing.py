"""Unit tests for the harness utilities (tables, timing, result type)."""

import time

from repro.harness import ExperimentResult, Timer, format_table, time_call


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "n"], [("a", 1), ("longer", 22)])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # box is rectangular
        assert "| name   | n  |" in text
        assert "| longer | 22 |" in text

    def test_title(self):
        text = format_table(["x"], [(1,)], title="My Table")
        assert text.startswith("My Table\n")

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "| a | b |" in text

    def test_wide_headers(self):
        text = format_table(["extremely wide header"], [("x",)])
        assert "extremely wide header" in text

    def test_cell_stringification(self):
        text = format_table(["v"], [(None,), (1.5,), (frozenset(),)])
        assert "None" in text and "1.5" in text


class TestTimer:
    def test_accumulates_samples(self):
        timer = Timer()
        for _ in range(3):
            with timer:
                pass
        assert len(timer.samples) == 3
        assert timer.total >= 0
        assert timer.mean >= 0
        assert timer.median >= 0

    def test_empty_timer_statistics(self):
        timer = Timer()
        assert timer.mean == 0.0
        assert timer.median == 0.0
        assert timer.total == 0.0

    def test_measures_sleep(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        assert timer.total >= 0.009

    def test_time_call(self):
        assert time_call(lambda: sum(range(100)), repeats=3) >= 0


class TestExperimentResult:
    def test_render_pass(self):
        result = ExperimentResult(
            "demo", ["a"], [("x",)], passed=True, note="a note"
        )
        rendered = result.render()
        assert "[PASS]" in rendered
        assert "a note" in rendered

    def test_render_fail(self):
        result = ExperimentResult("demo", ["a"], [("x",)], passed=False)
        assert "[FAIL]" in result.render()
