"""End-to-end distributed tracing and request-journal tests.

The acceptance path of the tracing subsystem: a probe through fork
workers yields, via ``GET /trace/<id>``, a single reassembled span tree
containing both the server-side admission spans and the worker-side
reasoner spans, every span stamped with the request's trace id — while
response *bodies* stay byte-identical with tracing on, off, or absent.
"""

import json
import os
import random
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.obs.export import read_spans_jsonl
from repro.obs.spans import Span, Tracer
from repro.serve.client import ReproClient
from repro.serve.journal import (
    JOURNAL_SCHEMA_VERSION,
    JournalEntry,
    RequestJournal,
    TraceStore,
    derive_execution,
)
from repro.serve.protocol import ProbeRequest, ProbeResponse
from repro.serve.server import ReproServer

ONTOLOGY_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "ontologies"
)
UNIVERSITY = os.path.join(ONTOLOGY_DIR, "university.kb4")

#: Supervision timings tuned for tests: fast polls, fast restarts.
FAST = dict(
    restart_backoff=0.05,
    backoff_cap=0.2,
    poll_interval=0.01,
    stall_grace=0.15,
)

SATISFIABLE = json.dumps(
    ProbeRequest(kind="satisfiable", kb="university").to_wire()
)


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def post(server, body, headers=None):
    host, port = server.address
    request = urllib.request.Request(
        f"http://{host}:{port}/probe",
        data=body.encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30.0) as raw:
            return raw.status, raw.read().decode("utf-8"), dict(raw.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8"), dict(error.headers)


def get(server, path):
    host, port = server.address
    try:
        with urllib.request.urlopen(
            f"http://{host}:{port}{path}", timeout=10.0
        ) as raw:
            return raw.status, raw.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


def fetch_trace(server, trace_id):
    status, body = get(server, f"/trace/{trace_id}")
    assert status == 200, body
    return read_spans_jsonl(body)


def span_names(roots):
    return [s.name for root in roots for s in root.walk()]


@pytest.fixture(scope="module")
def inline_server():
    server = ReproServer(
        {"university": UNIVERSITY}, port=0, workers=0, max_queue=8
    )
    server.start()
    yield server
    server.close()


@pytest.fixture(scope="module")
def fork_server():
    server = ReproServer(
        {"university": UNIVERSITY},
        port=0,
        workers=1,
        max_queue=8,
        chaos=True,
        **FAST,
    )
    server.start()
    assert wait_until(server.ready)
    yield server
    server.close()


class TestInlineTracing:
    def test_trace_endpoint_returns_single_reassembled_tree(
        self, inline_server
    ):
        status, _, headers = post(inline_server, SATISFIABLE)
        assert status == 200
        trace_id = headers.get("X-Trace-Id")
        assert trace_id
        roots = fetch_trace(inline_server, trace_id)
        assert [root.name for root in roots] == ["serve_request"]
        names = span_names(roots)
        assert names.count("serve_request") == 1
        assert "admission" in names and "dispatch" in names
        assert "probe_execute" in names
        for root in roots:
            for span in root.walk():
                assert span.trace_id == trace_id

    def test_client_supplied_trace_id_is_honoured(self, inline_server):
        status, _, headers = post(
            inline_server, SATISFIABLE, headers={"X-Trace-Id": "my-trace-1"}
        )
        assert status == 200
        assert headers.get("X-Trace-Id") == "my-trace-1"
        roots = fetch_trace(inline_server, "my-trace-1")
        assert roots[0].trace_id == "my-trace-1"

    def test_hostile_trace_id_is_replaced_not_used(self, inline_server):
        hostile = "../../etc/passwd"
        status, _, headers = post(
            inline_server, SATISFIABLE, headers={"X-Trace-Id": hostile}
        )
        assert status == 200
        minted = headers.get("X-Trace-Id")
        assert minted and minted != hostile
        status, _ = get(inline_server, "/trace/" + hostile)
        assert status == 404

    def test_unknown_trace_is_404_with_protocol_body(self, inline_server):
        status, body = get(inline_server, "/trace/never-recorded")
        assert status == 404
        assert ProbeResponse.from_json(body).status == "error"

    def test_rejected_request_is_still_journalled(self, inline_server):
        status, _, headers = post(inline_server, "{not json")
        assert status == 400
        trace_id = headers.get("X-Trace-Id")
        entries = {
            entry.trace_id: entry for entry in inline_server.journal.recent()
        }
        assert entries[trace_id].status == "error"
        assert entries[trace_id].worker is None

    def test_journal_records_execution_detail(self, inline_server):
        status, _, headers = post(inline_server, SATISFIABLE)
        assert status == 200
        entry = {
            e.trace_id: e for e in inline_server.journal.recent()
        }[headers["X-Trace-Id"]]
        assert entry.status == "ok"
        assert entry.kind == "satisfiable"
        assert entry.kb == "university"
        assert entry.worker == "inline"
        assert entry.incarnation == 0
        assert entry.duration_ms >= 0.0
        assert entry.cache_hit in (True, False)
        assert entry.engine in ("cache", "saturation", "tableau")

    def test_journal_endpoint_serves_schema_records(self, inline_server):
        post(inline_server, SATISFIABLE)
        status, body = get(inline_server, "/journal")
        assert status == 200
        records = [json.loads(line) for line in body.splitlines() if line]
        assert records
        for record in records:
            assert record["schema"] == JOURNAL_SCHEMA_VERSION
            assert set(record) == {
                "schema",
                "trace_id",
                "request_id",
                "kind",
                "kb",
                "status",
                "reason",
                "duration_ms",
                "cache_hit",
                "engine",
                "worker",
                "incarnation",
                "captured",
            }

    def test_metrics_expose_trace_and_journal_series(self, inline_server):
        post(inline_server, SATISFIABLE)
        post(inline_server, SATISFIABLE)  # second probe is a cache hit
        status, body = get(inline_server, "/metrics")
        assert status == 200
        for series in (
            "repro_serve_trace_store_traces",
            "repro_serve_journal_entries",
            "repro_serve_journal_lines_total",
            "repro_serve_journal_captured_total",
            'repro_serve_cache_hits_total{kb="university"}',
        ):
            assert series in body, f"missing {series}"

    def test_traces_index_lists_newest_first(self, inline_server):
        _, _, first = post(inline_server, SATISFIABLE)
        _, _, second = post(inline_server, SATISFIABLE)
        status, body = get(inline_server, "/traces")
        assert status == 200
        ids = json.loads(body)["traces"]
        assert ids.index(second["X-Trace-Id"]) < ids.index(
            first["X-Trace-Id"]
        )


class TestForkTracing:
    def test_worker_spans_graft_into_one_tree(self, fork_server):
        status, _, headers = post(fork_server, SATISFIABLE)
        assert status == 200
        trace_id = headers["X-Trace-Id"]
        roots = fetch_trace(fork_server, trace_id)
        assert [root.name for root in roots] == ["serve_request"]
        names = span_names(roots)
        assert names.count("serve_request") == 1
        assert "admission" in names and "dispatch" in names
        assert "probe_execute" in names, (
            "worker-side reasoner spans missing from the reassembled tree"
        )
        (root,) = roots
        assert root.process == "server"
        dispatch = next(s for s in root.walk() if s.name == "dispatch")
        worker_spans = [
            s
            for s in root.walk()
            if s.process is not None and s.process.startswith("worker-")
        ]
        assert worker_spans, "no spans attributed to the worker process"
        # Every span — both processes — carries the request's trace id
        # and lies inside its parent's window.
        for span in root.walk():
            assert span.trace_id == trace_id

        def check_nesting(span):
            lo, hi = span.start, span.start + span.duration
            for child in span.children:
                assert child.start >= lo - 1e-9
                assert child.start + child.duration <= hi + 1e-9
                check_nesting(child)

        check_nesting(root)
        probe_span = next(
            s for s in dispatch.walk() if s.name == "probe_execute"
        )
        assert {"cache_probe"} <= {s.name for s in probe_span.walk()}

    def test_repeat_probe_journals_a_cache_hit(self, fork_server):
        post(fork_server, SATISFIABLE)
        _, _, headers = post(fork_server, SATISFIABLE)
        entry = {
            e.trace_id: e for e in fork_server.journal.recent()
        }[headers["X-Trace-Id"]]
        assert entry.cache_hit is True
        assert entry.engine == "cache"
        assert entry.worker == "worker-0"

    def test_worker_crash_still_writes_journal_line(self, fork_server):
        body = json.dumps(
            ProbeRequest(kind="debug_crash", kb="university").to_wire()
        )
        status, text, headers = post(fork_server, body)
        assert status == 503
        response = ProbeResponse.from_json(text)
        assert response.status == "unknown"
        assert response.reason == "worker_crash"
        entry = {
            e.trace_id: e for e in fork_server.journal.recent()
        }[headers["X-Trace-Id"]]
        assert entry.status == "unknown"
        assert entry.reason == "worker_crash"
        assert entry.worker == "worker-0"
        # The truncated trace is still served: the server-side spans
        # exist even though the worker died before shipping its forest.
        roots = fetch_trace(fork_server, headers["X-Trace-Id"])
        names = span_names(roots)
        assert "serve_request" in names and "dispatch" in names
        assert "probe_execute" not in names
        assert wait_until(fork_server.ready)

    def test_bodies_stay_byte_identical_with_tracing_on(self, fork_server):
        first = post(fork_server, SATISFIABLE)
        second = post(fork_server, SATISFIABLE)
        assert first[0] == second[0] == 200
        assert first[1] == second[1]
        assert first[2]["X-Trace-Id"] != second[2]["X-Trace-Id"]


class TestTracingDisabled:
    def test_no_trace_mode_answers_identically_but_stores_nothing(self):
        server = ReproServer(
            {"university": UNIVERSITY},
            port=0,
            workers=0,
            tracing_enabled=False,
        )
        server.start()
        try:
            status, body, headers = post(server, SATISFIABLE)
            assert status == 200
            trace_id = headers["X-Trace-Id"]
            assert len(server.traces) == 0
            status, _ = get(server, f"/trace/{trace_id}")
            assert status == 404
            # The journal still records every request (without the
            # trace-derived execution fields).
            entry = {
                e.trace_id: e for e in server.journal.recent()
            }[trace_id]
            assert entry.status == "ok"
            assert entry.cache_hit is None and entry.engine is None
        finally:
            server.close()
        traced = ReproServer(
            {"university": UNIVERSITY}, port=0, workers=0
        )
        traced.start()
        try:
            assert post(traced, SATISFIABLE)[1] == body
        finally:
            traced.close()


class TestCapturePolicy:
    def test_slow_or_unknown_requests_capture_their_trace(self, tmp_path):
        capture_dir = tmp_path / "captures"
        capture_dir.mkdir()
        journal_file = tmp_path / "journal.jsonl"
        server = ReproServer(
            {"university": UNIVERSITY},
            port=0,
            workers=0,
            journal_path=str(journal_file),
            capture_dir=str(capture_dir),
            slow_trace_ms=0.0,  # every request counts as slow
        )
        server.start()
        try:
            status, _, headers = post(server, SATISFIABLE)
            assert status == 200
            trace_id = headers["X-Trace-Id"]
        finally:
            server.close()
        capture_file = capture_dir / f"{trace_id}.jsonl"
        assert capture_file.exists()
        roots = read_spans_jsonl(capture_file.read_text())
        assert [root.name for root in roots] == ["serve_request"]
        lines = [
            json.loads(line)
            for line in journal_file.read_text().splitlines()
            if line
        ]
        record = {r["trace_id"]: r for r in lines}[trace_id]
        assert record["captured"] == str(capture_file)

    def test_cli_trace_renders_a_capture_file(self, tmp_path, capsys):
        tracer = Tracer(trace_id="t-cli", process="server")
        root = Span(tracer, "serve_request")
        root.start, root.duration = 0.0, 0.02
        child = Span(tracer, "dispatch")
        child.start, child.duration = 0.005, 0.01
        child.process = "worker-0"
        root.children.append(child)
        dump = tmp_path / "t-cli.jsonl"
        from repro.obs.export import write_spans_jsonl

        write_spans_jsonl([root], str(dump))
        folded = tmp_path / "out.folded"
        assert cli_main(["trace", str(dump), "--folded", str(folded)]) == 0
        out = capsys.readouterr().out
        assert "trace: t-cli" in out
        assert "serve_request" in out
        assert "<worker-0>" in out
        assert "serve_request;dispatch" in folded.read_text()

    def test_cli_trace_rejects_malformed_input(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert cli_main(["trace", str(bad)]) == 2


class TestClientTraceContext:
    def test_probe_exposes_server_ids_and_trace_fetches(self, inline_server):
        host, port = inline_server.address
        client = ReproClient(f"http://{host}:{port}")
        response = client.probe(
            ProbeRequest(kind="satisfiable", kb="university")
        )
        assert response.value is True
        assert response.trace_id
        assert response.request_id
        roots = client.trace(response.trace_id)
        assert "serve_request" in span_names(roots)
        # The minted request id reached the server journal too.
        journal = client.journal()
        record = {r["trace_id"]: r for r in journal}[response.trace_id]
        assert record["request_id"] == response.request_id

    def test_ids_never_appear_in_the_body(self, inline_server):
        _, body, headers = post(inline_server, SATISFIABLE)
        assert headers["X-Trace-Id"] not in body
        record = json.loads(body)
        assert "trace_id" not in record and "request_id" not in record

    def test_retries_reuse_the_same_ids(self):
        client = ReproClient(
            "http://test.invalid",
            retries=2,
            backoff=0.0,
            rng=random.Random(0),
            sleep=lambda _s: None,
        )
        calls = []
        from repro.dl.budget import Verdict

        ok = ProbeResponse.from_verdict(
            ProbeRequest(kind="satisfiable", kb="university"), Verdict.TRUE
        )

        def fake_attempt(request, trace_id=None):
            calls.append((request.request_id, trace_id))
            if len(calls) < 3:
                raise urllib.error.URLError("refused")
            return ok

        client._attempt = fake_attempt
        response = client.probe(
            ProbeRequest(kind="satisfiable", kb="university")
        )
        assert response.status == "ok"
        assert len(calls) == 3
        request_ids = {request_id for request_id, _ in calls}
        trace_ids = {trace_id for _, trace_id in calls}
        assert len(request_ids) == 1 and None not in request_ids
        assert len(trace_ids) == 1 and None not in trace_ids

    def test_caller_supplied_request_id_is_kept(self):
        client = ReproClient("http://test.invalid", retries=0)
        seen = []

        def fake_attempt(request, trace_id=None):
            seen.append(request.request_id)
            return ProbeResponse.error("nope")

        client._attempt = fake_attempt
        client.probe(
            ProbeRequest(
                kind="satisfiable", kb="university", request_id="mine-1"
            )
        )
        assert seen == ["mine-1"]


class TestJournalUnit:
    def entry(self, **overrides):
        fields = dict(trace_id="t", status="ok", duration_ms=1.0)
        fields.update(overrides)
        return JournalEntry(**fields)

    def test_ring_is_bounded(self):
        journal = RequestJournal(capacity=3)
        for index in range(5):
            journal.record(self.entry(trace_id=f"t{index}"))
        assert len(journal) == 3
        assert [e.trace_id for e in journal.recent()] == ["t2", "t3", "t4"]
        assert journal.lines_total == 5

    def test_capture_policy_gating(self, tmp_path):
        no_dir = RequestJournal()
        assert not no_dir.should_capture("unknown", 10_000.0)
        journal = RequestJournal(
            capture_dir=str(tmp_path), slow_ms=100.0
        )
        assert journal.should_capture("unknown", 0.0)
        assert journal.should_capture("ok", 150.0)
        assert not journal.should_capture("ok", 50.0)
        silent = RequestJournal(
            capture_dir=str(tmp_path), slow_ms=100.0, capture_unknown=False
        )
        assert not silent.should_capture("unknown", 0.0)

    def test_capture_failure_never_fails_the_request(self):
        journal = RequestJournal(capture_dir="/nonexistent/nowhere")
        tracer = Tracer()
        root = Span(tracer, "serve_request")
        recorded = journal.record(
            self.entry(status="unknown"), roots=[root]
        )
        assert recorded.captured is None
        assert len(journal) == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            RequestJournal(capacity=0)
        with pytest.raises(ValueError):
            TraceStore(capacity=0)

    def test_trace_store_evicts_oldest(self):
        store = TraceStore(capacity=2)
        tracer = Tracer()
        for index in range(3):
            store.put(f"t{index}", [Span(tracer, "serve_request")])
        assert len(store) == 2
        assert store.get("t0") is None
        assert store.get("t2") is not None
        assert store.ids() == ["t2", "t1"]

    def test_derive_execution(self):
        tracer = Tracer()

        def named(name, **attrs):
            built = Span(tracer, name)
            built.attributes.update(attrs)
            return built

        assert derive_execution([]) == (None, None)
        hit = named("cache_probe", hit=True)
        root = named("serve_request")
        root.children.append(hit)
        assert derive_execution([root]) == (True, "cache")
        miss_sat = named("serve_request")
        miss_sat.children.extend(
            [named("cache_probe", hit=False), named("saturation_run")]
        )
        assert derive_execution([miss_sat]) == (False, "saturation")
        tableau = named("serve_request")
        tableau.children.extend(
            [named("saturation_run"), named("tableau_run")]
        )
        assert derive_execution([tableau]) == (None, "tableau")
