"""Budget edge cases at the service boundary (ISSUE 9 satellite).

Zero/negative remaining deadline at admission, Budget reuse across
pooled requests (each metered scope gets its own deadline window), and
exact JSON round-tripping of UNKNOWN payloads.
"""

import json

import pytest

from repro.dl.budget import Budget, Verdict
from repro.dl.errors import DegradationReason
from repro.serve.protocol import (
    ProbeRequest,
    ProbeResponse,
    verdict_from_wire,
    verdict_to_wire,
)


class SteppedClock:
    """Monotone fake clock: each reading advances by ``step``."""

    def __init__(self, start=0.0, step=0.0):
        self.now = start
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value

    def advance(self, seconds):
        self.now += seconds


class TestAdmissionDeadlineEdges:
    def test_budget_refuses_non_positive_deadlines(self):
        # The reason admission must short-circuit: these are invalid.
        for bad in (0.0, -1.0, -0.001):
            with pytest.raises(ValueError, match="deadline"):
                Budget(deadline=bad)

    def test_smallest_positive_deadline_is_accepted_and_expires(self):
        clock = SteppedClock(start=100.0)
        budget = Budget(deadline=1e-9, clock=clock, check_interval=1)
        meter = budget.start()
        clock.advance(1.0)
        with pytest.raises(Exception) as excinfo:
            meter.tick()
        assert excinfo.value.reason is DegradationReason.DEADLINE


class TestDeadlineWindowReuseAcrossPooledRequests:
    """One Budget template, many requests: windows must not be shared.

    A pooled server keeps a Budget around and calls ``start()`` per
    request; the absolute ``deadline_at`` must be fixed per meter, so a
    later request gets a *fresh* window rather than inheriting the
    (possibly exhausted) window of an earlier one.
    """

    def test_each_meter_gets_its_own_window(self):
        clock = SteppedClock(start=1000.0)
        budget = Budget(deadline=10.0, clock=clock, check_interval=1)
        first = budget.start()
        clock.advance(50.0)  # first request's window is long gone
        second = budget.start()
        assert first.deadline_at == 1010.0
        assert second.deadline_at == pytest.approx(1060.0)
        # The second request has its full deadline available...
        second.tick()
        # ...while the first, if somehow still live, aborts immediately.
        with pytest.raises(Exception) as excinfo:
            first.tick()
        assert excinfo.value.reason is DegradationReason.DEADLINE

    def test_expired_meter_does_not_poison_the_budget(self):
        clock = SteppedClock(start=0.0)
        budget = Budget(deadline=5.0, clock=clock, check_interval=1)
        dead = budget.start()
        clock.advance(60.0)
        with pytest.raises(Exception):
            dead.tick()
        # The same frozen Budget still mints healthy meters.
        fresh = budget.start()
        fresh.tick()
        assert fresh.deadline_at == pytest.approx(clock.now + 5.0, abs=1.0)


class TestUnknownPayloadRoundTrip:
    @pytest.mark.parametrize("reason", list(DegradationReason))
    def test_verdict_wire_round_trip_is_exact(self, reason):
        verdict = Verdict.unknown(reason, f"degraded by {reason.value}")
        text = json.dumps(verdict_to_wire(verdict), sort_keys=True)
        again = verdict_from_wire(json.loads(text))
        assert again == verdict

    @pytest.mark.parametrize("reason", list(DegradationReason))
    def test_response_round_trip_preserves_reason_and_message(self, reason):
        request = ProbeRequest(kind="satisfiable", kb="uni")
        response = ProbeResponse.unknown(reason, "why it stopped", request)
        again = ProbeResponse.from_json(response.to_json())
        assert again == response
        verdict = again.verdict
        assert verdict.is_unknown()
        assert verdict.reason is reason
        assert verdict.message == "why it stopped"

    def test_unknown_bodies_are_byte_stable(self):
        request = ProbeRequest(kind="satisfiable", kb="uni")
        bodies = {
            ProbeResponse.unknown(
                DegradationReason.DEADLINE, "late", request
            ).to_json()
            for _ in range(3)
        }
        assert len(bodies) == 1

    def test_unknown_verdict_still_refuses_truth_testing(self):
        # The wire trip must not launder UNKNOWN into a usable boolean.
        response = ProbeResponse.unknown(DegradationReason.DEADLINE, "late")
        with pytest.raises(TypeError, match="UNKNOWN"):
            bool(response.verdict)
