"""KB registry, probe execution, and worker-pool supervision tests."""

import os
import time

import pytest

from repro.dl.budget import Budget, CancelToken
from repro.serve.pool import (
    InlineExecutor,
    KBRegistry,
    WorkerPool,
    execute_probe,
    request_budget,
    shard_of,
)
from repro.serve.protocol import ProbeRequest

ONTOLOGY_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "ontologies"
)
UNIVERSITY = os.path.join(ONTOLOGY_DIR, "university.kb4")

#: Supervision timings tuned for tests: fast polls, fast restarts.
FAST = dict(
    restart_backoff=0.05,
    backoff_cap=0.2,
    poll_interval=0.01,
    stall_grace=0.15,
)


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture(scope="module")
def registry():
    return KBRegistry({"university": UNIVERSITY})


class TestKBRegistry:
    def test_names_and_membership(self, registry):
        assert registry.names == ("university",)
        assert "university" in registry
        assert "missing" not in registry

    def test_reasoner_loaded_once(self, registry):
        first, lock_one = registry.reasoner("university")
        second, lock_two = registry.reasoner("university")
        assert first is second
        assert lock_one is lock_two

    def test_unknown_name_raises(self, registry):
        with pytest.raises(KeyError):
            registry.reasoner("missing")


class TestRequestBudget:
    REQUEST = ProbeRequest(kind="satisfiable", kb="uni", max_nodes=50)

    def test_no_deadline_carries_caps(self):
        budget = request_budget(self.REQUEST, None)
        assert budget.deadline is None
        assert budget.max_nodes == 50

    def test_future_deadline_becomes_remaining_seconds(self):
        budget = request_budget(self.REQUEST, time.monotonic() + 5.0)
        assert 0.0 < budget.deadline <= 5.0

    def test_expired_deadline_yields_none_not_valueerror(self):
        # Budget itself refuses deadline <= 0; the conversion must
        # short-circuit instead of constructing one.
        assert request_budget(self.REQUEST, time.monotonic() - 1.0) is None
        assert request_budget(self.REQUEST, time.monotonic()) is None
        with pytest.raises(ValueError):
            Budget(deadline=0.0)

    def test_cancel_token_rides_along(self):
        token = CancelToken()
        budget = request_budget(self.REQUEST, None, cancel=token)
        assert budget.cancel is token


class TestExecuteProbe:
    def test_satisfiable(self, registry):
        response = execute_probe(
            registry, ProbeRequest(kind="satisfiable", kb="university")
        )
        assert response.status == "ok"
        assert response.value is True

    def test_instance_and_assertion_value(self, registry):
        instance = execute_probe(
            registry,
            ProbeRequest(kind="instance", kb="university",
                         individual="ada", concept="Person"),
        )
        assert instance.status == "ok" and instance.value is True
        belnap = execute_probe(
            registry,
            ProbeRequest(kind="assertion_value", kb="university",
                         individual="grace", concept="Doctorate"),
        )
        assert belnap.status == "ok"
        assert belnap.value in {"TRUE", "FALSE", "BOTH", "NEITHER"}

    def test_subsumption_with_complex_concepts(self, registry):
        response = execute_probe(
            registry,
            ProbeRequest(kind="subsumption", kb="university",
                         sub="Professor and Person", sup="Person"),
        )
        assert response.status == "ok" and response.value is True

    def test_unknown_kb_is_a_usage_error(self, registry):
        response = execute_probe(
            registry, ProbeRequest(kind="satisfiable", kb="nope")
        )
        assert response.status == "error"
        assert "nope" in response.message

    def test_unparsable_concept_is_a_usage_error(self, registry):
        response = execute_probe(
            registry,
            ProbeRequest(kind="instance", kb="university",
                         individual="ada", concept="and and ("),
        )
        assert response.status == "error"

    def test_chaos_probe_refused_without_opt_in(self, registry):
        response = execute_probe(
            registry, ProbeRequest(kind="debug_stall", kb="university")
        )
        assert response.status == "error"
        assert "chaos" in response.message

    def test_exhausted_budget_degrades(self):
        # Fresh registry: the shared one has already decided this probe
        # and the cross-request cache would serve it budget-free.
        response = execute_probe(
            KBRegistry({"university": UNIVERSITY}),
            ProbeRequest(kind="satisfiable", kb="university"),
            budget=Budget(max_nodes=1),
        )
        assert response.status == "unknown"
        assert response.reason == "nodes"


class TestShardOf:
    def test_stable_and_in_range(self):
        for workers in (1, 2, 5):
            for kb in ("university", "medical", "penguin"):
                index = shard_of(kb, workers)
                assert 0 <= index < workers
                assert shard_of(kb, workers) == index


class TestInlineExecutor:
    def test_submit_resolves_synchronously(self):
        executor = InlineExecutor({"university": UNIVERSITY})
        pending = executor.submit(
            ProbeRequest(kind="satisfiable", kb="university")
        )
        assert pending.resolved
        assert pending.wait(0).value is True

    def test_chaos_refused_inline(self):
        executor = InlineExecutor({"university": UNIVERSITY})
        response = executor.submit(
            ProbeRequest(kind="debug_crash", kb="university")
        ).wait(0)
        assert response.status == "error"

    def test_expired_deadline_degrades(self):
        executor = InlineExecutor({"university": UNIVERSITY})
        response = executor.submit(
            ProbeRequest(kind="satisfiable", kb="university"),
            deadline_at=time.monotonic() - 0.5,
        ).wait(0)
        assert response.status == "unknown"
        assert response.reason == "deadline"

    def test_stopped_executor_drains(self):
        executor = InlineExecutor({"university": UNIVERSITY})
        assert executor.stop() is True
        response = executor.submit(
            ProbeRequest(kind="satisfiable", kb="university")
        ).wait(0)
        assert response.status == "unknown"
        assert response.reason == "cancelled"
        assert not executor.ready()


class TestWorkerPool:
    def test_answers_and_drains(self):
        pool = WorkerPool({"university": UNIVERSITY}, workers=1, **FAST)
        pool.start()
        try:
            assert wait_until(pool.ready)
            response = pool.submit(
                ProbeRequest(kind="satisfiable", kb="university"),
                deadline_at=time.monotonic() + 30.0,
            ).wait(30.0)
            assert response is not None and response.value is True
            assert pool.restarts_total() == 0
            assert len(pool.worker_pids()) == 1
        finally:
            assert pool.stop(drain_timeout=5.0) is True
        assert not pool.ready()

    def test_crash_degrades_inflight_and_restarts(self):
        pool = WorkerPool(
            {"university": UNIVERSITY}, workers=1, allow_chaos=True, **FAST
        )
        pool.start()
        try:
            assert wait_until(pool.ready)
            crashed = pool.submit(
                ProbeRequest(kind="debug_crash", kb="university"),
                deadline_at=time.monotonic() + 30.0,
            ).wait(30.0)
            assert crashed is not None
            assert crashed.status == "unknown"
            assert crashed.reason == "worker_crash"
            # The supervisor restarts the shard and service resumes.
            assert wait_until(pool.ready)
            assert pool.restarts_total() >= 1
            again = pool.submit(
                ProbeRequest(kind="satisfiable", kb="university"),
                deadline_at=time.monotonic() + 30.0,
            ).wait(30.0)
            assert again is not None and again.value is True
        finally:
            pool.stop(drain_timeout=5.0)

    def test_circuit_breaker_fails_fast_after_repeated_crashes(self):
        pool = WorkerPool(
            {"university": UNIVERSITY},
            workers=1,
            allow_chaos=True,
            circuit_threshold=2,
            circuit_cooldown=60.0,
            **FAST,
        )
        pool.start()
        try:
            assert wait_until(pool.ready)
            for _ in range(2):
                response = pool.submit(
                    ProbeRequest(kind="debug_crash", kb="university"),
                    deadline_at=time.monotonic() + 30.0,
                ).wait(30.0)
                assert response is not None
                assert response.reason == "worker_crash"
                wait_until(lambda: pool.workers_alive() in (0, 1))
            # Wait for the supervisor to register the second corpse.
            assert wait_until(lambda: not pool.ready(), timeout=5.0)
            fast_fail = pool.submit(
                ProbeRequest(kind="satisfiable", kb="university")
            ).wait(5.0)
            assert fast_fail is not None
            assert fast_fail.status == "unknown"
            assert fast_fail.reason == "worker_crash"
            assert "circuit" in fast_fail.message
        finally:
            pool.stop(drain_timeout=1.0)

    def test_stalled_worker_is_escalated(self):
        pool = WorkerPool(
            {"university": UNIVERSITY}, workers=1, allow_chaos=True, **FAST
        )
        pool.start()
        try:
            assert wait_until(pool.ready)
            started = time.monotonic()
            response = pool.submit(
                ProbeRequest(
                    kind="debug_stall", kb="university", stall_s=30.0
                ),
                deadline_at=time.monotonic() + 0.2,
            ).wait(15.0)
            elapsed = time.monotonic() - started
            assert response is not None, "stalled request hung"
            assert response.status == "unknown"
            assert elapsed < 10.0
        finally:
            pool.stop(drain_timeout=1.0)

    def test_stop_degrades_unsubmitted_requests(self):
        pool = WorkerPool({"university": UNIVERSITY}, workers=1, **FAST)
        pool.start()
        pool.stop(drain_timeout=1.0)
        response = pool.submit(
            ProbeRequest(kind="satisfiable", kb="university")
        ).wait(1.0)
        assert response is not None
        assert response.status == "unknown"
        assert response.reason == "cancelled"

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="workers"):
            WorkerPool({"university": UNIVERSITY}, workers=0)
