"""Client retry-policy tests: idempotence gating, backoff with jitter."""

import os
import random
import urllib.error

import pytest

from repro.dl.budget import Verdict
from repro.dl.errors import DegradationReason
from repro.fourvalued.truth import FourValue
from repro.serve.client import ReproClient, ServiceUnavailable
from repro.serve.protocol import ProbeRequest, ProbeResponse
from repro.serve.server import ReproServer

ONTOLOGY_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "ontologies"
)
UNIVERSITY = os.path.join(ONTOLOGY_DIR, "university.kb4")

SATISFIABLE = ProbeRequest(kind="satisfiable", kb="university")
OK = ProbeResponse.from_verdict(SATISFIABLE, Verdict.TRUE)


def scripted_client(outcomes, retries=3, backoff=0.1):
    """A client whose transport is a script; sleeps are recorded."""
    sleeps = []
    client = ReproClient(
        "http://test.invalid",
        retries=retries,
        backoff=backoff,
        rng=random.Random(0),
        sleep=sleeps.append,
    )
    script = iter(outcomes)

    def fake_attempt(request, trace_id=None):
        outcome = next(script)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    client._attempt = fake_attempt
    return client, sleeps


class TestRetryPolicy:
    def test_transport_errors_retried_then_success(self):
        client, sleeps = scripted_client(
            [urllib.error.URLError("refused"),
             urllib.error.URLError("refused"),
             OK]
        )
        assert client.probe(SATISFIABLE) == OK
        assert len(sleeps) == 2

    def test_backoff_grows_exponentially_with_jitter(self):
        client, sleeps = scripted_client(
            [urllib.error.URLError("x")] * 3 + [OK],
            retries=3,
            backoff=0.1,
        )
        client.probe(SATISFIABLE)
        assert len(sleeps) == 3
        for attempt, slept in enumerate(sleeps):
            base = 0.1 * (2.0 ** attempt)
            assert base * 0.5 <= slept < base * 1.5, (attempt, slept)
        # And the jitter is genuinely random, not a constant factor.
        assert len({slept / (0.1 * 2.0 ** i)
                    for i, slept in enumerate(sleeps)}) > 1

    def test_gives_up_after_retry_budget(self):
        client, sleeps = scripted_client(
            [urllib.error.URLError("down")] * 4, retries=3
        )
        with pytest.raises(ServiceUnavailable, match="4 attempt"):
            client.probe(SATISFIABLE)
        assert len(sleeps) == 3

    def test_non_idempotent_probes_never_retried(self):
        crash = ProbeRequest(kind="debug_crash", kb="university")
        client, sleeps = scripted_client(
            [urllib.error.URLError("mid-flight"), OK]
        )
        with pytest.raises(ServiceUnavailable, match="1 attempt"):
            client.probe(crash)
        assert sleeps == []

    def test_backpressure_retried(self):
        rejected = ProbeResponse.rejected(0.5, "queue full")
        client, sleeps = scripted_client([rejected, rejected, OK])
        assert client.probe(SATISFIABLE) == OK
        assert len(sleeps) == 2

    def test_worker_crash_retried(self):
        crashed = ProbeResponse.unknown(
            DegradationReason.WORKER_CRASH, "worker died", SATISFIABLE
        )
        client, sleeps = scripted_client([crashed, OK])
        assert client.probe(SATISFIABLE) == OK
        assert len(sleeps) == 1

    def test_deadline_unknown_is_an_answer_not_retried(self):
        late = ProbeResponse.unknown(
            DegradationReason.DEADLINE, "too slow", SATISFIABLE
        )
        client, sleeps = scripted_client([late, OK])
        assert client.probe(SATISFIABLE) == late
        assert sleeps == []

    def test_final_attempt_returns_the_rejection(self):
        # When the retry budget ends on a rejection, the caller gets the
        # structured rejection rather than an exception mid-protocol.
        rejected = ProbeResponse.rejected(0.5, "queue full")
        client, _ = scripted_client([rejected, rejected], retries=1)
        assert client.probe(SATISFIABLE) == rejected

    def test_retries_zero_means_one_attempt(self):
        client, sleeps = scripted_client(
            [urllib.error.URLError("down")], retries=0
        )
        with pytest.raises(ServiceUnavailable):
            client.probe(SATISFIABLE)
        assert sleeps == []


class TestAgainstRealServer:
    @pytest.fixture(scope="class")
    def server(self):
        instance = ReproServer(
            {"university": UNIVERSITY}, port=0, workers=0
        )
        instance.start()
        yield instance
        instance.close()

    @pytest.fixture()
    def client(self, server):
        host, port = server.address
        return ReproClient(f"http://{host}:{port}", retries=1, backoff=0.01)

    def test_convenience_probes(self, client):
        assert client.satisfiable("university").is_true()
        assert client.instance("university", "ada", "Person").is_true()
        assert client.subsumption("university", "Professor", "Person").is_true()
        assert client.assertion_value(
            "university", "grace", "Doctorate"
        ) is FourValue.FALSE
        assert client.assertion_value(
            "university", "ada", "Doctorate"
        ) is FourValue.TRUE

    def test_degraded_probe_surfaces_unknown_verdict(self):
        # A dedicated cold server: the shared fixture has already
        # answered this probe, and the cross-request cache would (by
        # design) serve the decided answer regardless of the budget.
        cold = ReproServer({"university": UNIVERSITY}, port=0, workers=0)
        cold.start()
        try:
            host, port = cold.address
            client = ReproClient(f"http://{host}:{port}", retries=0)
            verdict = client.satisfiable("university", max_nodes=1)
            assert verdict.is_unknown()
            assert verdict.reason is DegradationReason.NODES
        finally:
            cold.close()

    def test_operational_endpoints(self, client):
        assert client.healthy()
        assert client.ready()
        assert "repro_serve_queue_depth" in client.metrics()

    def test_unreachable_endpoint_is_unhealthy(self):
        dead = ReproClient("http://127.0.0.1:1", retries=0)
        assert not dead.healthy()
        assert not dead.ready()
        with pytest.raises(ServiceUnavailable):
            dead.probe(SATISFIABLE)
