"""Wire-protocol unit tests: round-trips, validation, determinism."""

import json

import pytest

from repro.dl.budget import Verdict
from repro.dl.errors import DegradationReason
from repro.four_dl.reasoner4 import BoundedFourValue
from repro.fourvalued.truth import FourValue
from repro.serve.protocol import (
    CHAOS_KINDS,
    IDEMPOTENT_KINDS,
    PROBE_KINDS,
    PROTOCOL_VERSION,
    ProbeRequest,
    ProbeResponse,
    ProtocolError,
    verdict_from_wire,
    verdict_to_wire,
)


class TestProbeRequest:
    def test_round_trips_every_kind(self):
        requests = [
            ProbeRequest(kind="satisfiable", kb="uni"),
            ProbeRequest(kind="instance", kb="uni", individual="ada",
                         concept="Professor"),
            ProbeRequest(kind="subsumption", kb="uni", sub="Professor",
                         sup="Person", inclusion="strong"),
            ProbeRequest(kind="assertion_value", kb="uni", individual="ada",
                         concept="Doctorate", deadline_ms=250.0,
                         max_nodes=100, max_branches=7, request_id="r-1"),
        ]
        for request in requests:
            again = ProbeRequest.from_wire(request.to_wire())
            assert again == request
            via_json = ProbeRequest.from_json(
                json.dumps(request.to_wire())
            )
            assert via_json == request

    def test_wire_record_carries_schema(self):
        assert ProbeRequest(kind="satisfiable", kb="uni").to_wire()[
            "schema"
        ] == PROTOCOL_VERSION

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError, match="unknown probe kind"):
            ProbeRequest(kind="prove_everything", kb="uni")
        with pytest.raises(ProtocolError, match="unknown probe kind"):
            ProbeRequest.from_wire({"kind": "nope", "kb": "uni"})

    def test_missing_required_args_rejected(self):
        with pytest.raises(ProtocolError, match="requires field"):
            ProbeRequest(kind="instance", kb="uni", individual="ada")
        with pytest.raises(ProtocolError, match="requires field"):
            ProbeRequest(kind="subsumption", kb="uni", sub="A")

    def test_bad_inclusion_rejected(self):
        with pytest.raises(ProtocolError, match="inclusion"):
            ProbeRequest(kind="subsumption", kb="uni", sub="A", sup="B",
                         inclusion="sideways")

    def test_empty_kb_rejected(self):
        with pytest.raises(ProtocolError, match="kb"):
            ProbeRequest(kind="satisfiable", kb="")

    def test_newer_schema_rejected(self):
        with pytest.raises(ProtocolError, match="schema"):
            ProbeRequest.from_wire(
                {"kind": "satisfiable", "kb": "uni",
                 "schema": PROTOCOL_VERSION + 1}
            )

    def test_non_numeric_deadline_rejected(self):
        with pytest.raises(ProtocolError, match="deadline_ms"):
            ProbeRequest.from_wire(
                {"kind": "satisfiable", "kb": "uni", "deadline_ms": "soon"}
            )

    def test_malformed_json_rejected(self):
        with pytest.raises(ProtocolError, match="not JSON"):
            ProbeRequest.from_json("{nope")
        with pytest.raises(ProtocolError, match="JSON object"):
            ProbeRequest.from_json("[1, 2]")

    def test_reasoning_probes_are_idempotent_chaos_is_not(self):
        assert IDEMPOTENT_KINDS == frozenset(PROBE_KINDS)
        for kind in PROBE_KINDS:
            assert ProbeRequest(
                kind=kind, kb="uni", individual="a", concept="C",
                sub="A", sup="B",
            ).idempotent
        for kind in CHAOS_KINDS:
            assert not ProbeRequest(kind=kind, kb="uni").idempotent


class TestVerdictWire:
    def test_decided_round_trip(self):
        for verdict in (Verdict.TRUE, Verdict.FALSE):
            assert verdict_from_wire(verdict_to_wire(verdict)) == verdict

    @pytest.mark.parametrize("reason", list(DegradationReason))
    def test_unknown_round_trip_preserves_every_reason(self, reason):
        verdict = Verdict.unknown(reason, "ran out")
        wire = verdict_to_wire(verdict)
        again = verdict_from_wire(json.loads(json.dumps(wire)))
        assert again.is_unknown()
        assert again.reason is reason
        assert again.message == "ran out"

    def test_bad_reason_rejected(self):
        with pytest.raises(ProtocolError, match="degradation reason"):
            verdict_from_wire({"value": None, "reason": "sunspots"})

    def test_non_boolean_value_rejected(self):
        with pytest.raises(ProtocolError, match="boolean"):
            verdict_from_wire({"value": 1})


class TestProbeResponse:
    REQUEST = ProbeRequest(kind="satisfiable", kb="uni")

    def test_from_verdict_ok(self):
        response = ProbeResponse.from_verdict(self.REQUEST, Verdict.TRUE)
        assert response.status == "ok"
        assert response.value is True
        assert response.verdict is Verdict.TRUE

    def test_from_verdict_unknown(self):
        verdict = Verdict.unknown(DegradationReason.DEADLINE, "too slow")
        response = ProbeResponse.from_verdict(self.REQUEST, verdict)
        assert response.status == "unknown"
        assert response.reason == "deadline"
        again = response.verdict
        assert again.is_unknown() and again.reason is DegradationReason.DEADLINE

    @pytest.mark.parametrize("value", list(FourValue))
    def test_from_four_value_decided(self, value):
        request = ProbeRequest(kind="assertion_value", kb="uni",
                               individual="a", concept="C")
        response = ProbeResponse.from_four_value(
            request, BoundedFourValue(value=value)
        )
        assert response.status == "ok"
        assert response.four_value is value
        assert ProbeResponse.from_json(response.to_json()).four_value is value

    def test_from_four_value_unknown(self):
        request = ProbeRequest(kind="assertion_value", kb="uni",
                               individual="a", concept="C")
        bounded = BoundedFourValue(
            value=None, reason=DegradationReason.NODES, message="cap"
        )
        response = ProbeResponse.from_four_value(request, bounded)
        assert response.status == "unknown"
        assert response.four_value is None
        assert response.reason == "nodes"

    def test_rejected_and_error_shapes(self):
        rejected = ProbeResponse.rejected(2.5, "queue full")
        assert rejected.status == "rejected"
        assert rejected.retry_after == 2.5
        error = ProbeResponse.error("unknown kb")
        assert error.status == "error"
        with pytest.raises(ProtocolError, match="no verdict"):
            _ = rejected.verdict

    def test_unknown_constructor_echoes_request_context(self):
        response = ProbeResponse.unknown(
            DegradationReason.WORKER_CRASH, "boom", self.REQUEST
        )
        assert (response.kind, response.kb) == ("satisfiable", "uni")
        assert response.reason == "worker_crash"

    def test_bad_status_rejected(self):
        with pytest.raises(ProtocolError, match="status"):
            ProbeResponse(status="maybe")
        with pytest.raises(ProtocolError, match="status"):
            ProbeResponse.from_wire({"status": "maybe"})

    def test_body_is_deterministic(self):
        response = ProbeResponse.from_verdict(self.REQUEST, Verdict.FALSE)
        bodies = {response.to_json() for _ in range(5)}
        assert len(bodies) == 1
        body = bodies.pop()
        # Canonical: sorted keys, schema present, no volatile fields.
        record = json.loads(body)
        assert list(record) == sorted(record)
        assert record["schema"] == PROTOCOL_VERSION
        assert ProbeResponse.from_json(body).to_json() == body

    def test_response_round_trips_through_json(self):
        samples = [
            ProbeResponse.from_verdict(self.REQUEST, Verdict.TRUE),
            ProbeResponse.unknown(
                DegradationReason.DEADLINE, "late", self.REQUEST
            ),
            ProbeResponse.rejected(1.0, "busy"),
            ProbeResponse.error("bad concept"),
        ]
        for response in samples:
            assert ProbeResponse.from_json(response.to_json()) == response
