"""HTTP service tests: admission control, degradation mapping, drain."""

import json
import os
import threading
import urllib.error
import urllib.request

import pytest

from repro.dl.budget import Verdict
from repro.dl.errors import DegradationReason
from repro.serve.protocol import ProbeRequest, ProbeResponse
from repro.serve.server import ReproServer, ServeMetrics

ONTOLOGY_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "ontologies"
)
UNIVERSITY = os.path.join(ONTOLOGY_DIR, "university.kb4")


@pytest.fixture(scope="module")
def server():
    """One inline-mode server shared by the read-only tests."""
    instance = ReproServer(
        {"university": UNIVERSITY}, port=0, workers=0, max_queue=4
    )
    instance.start()
    yield instance
    instance.close()


def post(server, body, headers=None):
    host, port = server.address
    request = urllib.request.Request(
        f"http://{host}:{port}/probe",
        data=body.encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30.0) as raw:
            return raw.status, raw.read().decode("utf-8"), dict(raw.headers)
    except urllib.error.HTTPError as error:
        return (
            error.code,
            error.read().decode("utf-8"),
            dict(error.headers),
        )


def get(server, path):
    host, port = server.address
    try:
        with urllib.request.urlopen(
            f"http://{host}:{port}{path}", timeout=10.0
        ) as raw:
            return raw.status, raw.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


class TestEndpoints:
    def test_healthz(self, server):
        status, body = get(server, "/healthz")
        assert status == 200
        assert json.loads(body) == {"status": "alive"}

    def test_readyz(self, server):
        status, body = get(server, "/readyz")
        assert status == 200
        assert json.loads(body) == {"status": "ready"}

    def test_kbs(self, server):
        status, body = get(server, "/kbs")
        assert status == 200
        assert json.loads(body) == {"kbs": ["university"]}

    def test_unknown_endpoint_is_404(self, server):
        status, body = get(server, "/made-up")
        assert status == 404
        assert ProbeResponse.from_json(body).status == "error"

    def test_metrics_exposes_the_serve_series(self, server):
        # Answer one probe first so counters have something to count.
        post(server, json.dumps(
            ProbeRequest(kind="satisfiable", kb="university").to_wire()
        ))
        status, body = get(server, "/metrics")
        assert status == 200
        for series in (
            "repro_serve_queue_depth",
            "repro_serve_inflight",
            "repro_serve_workers_alive",
            "repro_serve_worker_restarts_total",
            'repro_serve_requests_total{status="ok"}',
            "repro_serve_request_seconds_bucket",
            "repro_serve_request_seconds_count",
        ):
            assert series in body, f"missing {series}"


class TestProbeEndpoint:
    def test_decided_probe_is_200_with_deterministic_body(self, server):
        body = json.dumps(
            ProbeRequest(kind="satisfiable", kb="university").to_wire()
        )
        first = post(server, body)
        second = post(server, body)
        assert first[0] == second[0] == 200
        assert first[1] == second[1]  # byte-identical
        assert ProbeResponse.from_json(first[1]).value is True

    def test_request_id_echoed_in_header_not_body(self, server):
        body = json.dumps(
            ProbeRequest(
                kind="satisfiable", kb="university", request_id="corr-7"
            ).to_wire()
        )
        status, text, headers = post(server, body)
        assert status == 200
        assert headers.get("X-Request-Id") == "corr-7"
        assert "corr-7" not in text

    def test_unknown_kb_is_404(self, server):
        status, body, _ = post(server, json.dumps(
            ProbeRequest(kind="satisfiable", kb="ghosts").to_wire()
        ))
        assert status == 404
        response = ProbeResponse.from_json(body)
        assert response.status == "error"
        assert "ghosts" in response.message

    def test_malformed_body_is_400(self, server):
        status, body, _ = post(server, "{not json")
        assert status == 400
        assert ProbeResponse.from_json(body).status == "error"

    @pytest.mark.parametrize("deadline_ms", [0.0, -150.0])
    def test_dead_on_arrival_deadline_degrades_to_504(
        self, server, deadline_ms
    ):
        # The admission edge case: a non-positive remaining deadline
        # must short-circuit to structured UNKNOWN (Budget would raise).
        status, body, _ = post(server, json.dumps(
            ProbeRequest(
                kind="satisfiable", kb="university", deadline_ms=deadline_ms
            ).to_wire()
        ))
        assert status == 504
        response = ProbeResponse.from_json(body)
        assert response.status == "unknown"
        assert response.reason == "deadline"
        verdict = response.verdict
        assert verdict.is_unknown()
        assert verdict.reason is DegradationReason.DEADLINE


class TestAdmissionControl:
    def test_queue_full_is_429_with_retry_after(self):
        server = ReproServer(
            {"university": UNIVERSITY}, port=0, workers=0, max_queue=2,
            retry_after=2.0,
        )
        server.start()
        try:
            # Drain the admission slots directly: deterministic, no
            # timing games with concurrent slow probes.
            assert server._try_admit() and server._try_admit()
            status, body, headers = post(server, json.dumps(
                ProbeRequest(kind="satisfiable", kb="university").to_wire()
            ))
            assert status == 429
            assert headers.get("Retry-After") == "2.0"
            response = ProbeResponse.from_json(body)
            assert response.status == "rejected"
            assert response.retry_after == 2.0
            server._release()
            server._release()
            status, _, _ = post(server, json.dumps(
                ProbeRequest(kind="satisfiable", kb="university").to_wire()
            ))
            assert status == 200
        finally:
            server.close()

    def test_rejections_are_counted(self):
        server = ReproServer(
            {"university": UNIVERSITY}, port=0, workers=0, max_queue=1
        )
        server.start()
        try:
            assert server._try_admit()
            post(server, json.dumps(
                ProbeRequest(kind="satisfiable", kb="university").to_wire()
            ))
            server._release()
            _, metrics = get(server, "/metrics")
            assert (
                'repro_serve_admission_rejections_total{why="queue_full"} 1'
                in metrics
            )
        finally:
            server.close()


class TestStatusMapping:
    def test_mapping_table(self):
        request = ProbeRequest(kind="satisfiable", kb="uni")
        cases = [
            (ProbeResponse.from_verdict(request, Verdict.TRUE), 200),
            (ProbeResponse.unknown(DegradationReason.DEADLINE, "", request), 504),
            (ProbeResponse.unknown(DegradationReason.NODES, "", request), 504),
            (ProbeResponse.unknown(
                DegradationReason.WORKER_CRASH, "", request), 503),
            (ProbeResponse.unknown(
                DegradationReason.CANCELLED, "", request), 503),
            (ProbeResponse.rejected(1.0, "busy"), 429),
            (ProbeResponse.error("nope"), 400),
        ]
        for response, expected in cases:
            assert ReproServer._http_status(response) == expected, response


class TestGracefulShutdown:
    def test_draining_rejects_then_stops(self):
        server = ReproServer(
            {"university": UNIVERSITY}, port=0, workers=0, drain_timeout=2.0
        )
        server.start()
        address = server.address
        # Warm check: serving normally first.
        status, _, _ = post(server, json.dumps(
            ProbeRequest(kind="satisfiable", kb="university").to_wire()
        ))
        assert status == 200
        drained = server.shutdown_gracefully()
        assert drained is True
        assert server.draining
        # The listener is gone: connections are refused.
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(
                f"http://{address[0]}:{address[1]}/healthz", timeout=2.0
            )

    def test_shutdown_is_idempotent_and_serve_forever_returns(self):
        server = ReproServer({"university": UNIVERSITY}, port=0, workers=0)
        server.start()
        waiter = threading.Thread(target=server.serve_forever, daemon=True)
        waiter.start()
        assert server.shutdown_gracefully() is True
        assert server.shutdown_gracefully() is True
        waiter.join(timeout=5.0)
        assert not waiter.is_alive(), "serve_forever did not return"

    def test_readyz_is_503_while_draining(self):
        server = ReproServer({"university": UNIVERSITY}, port=0, workers=0)
        server.start()
        try:
            server._draining.set()
            status, body = get(server, "/readyz")
            assert status == 503
            assert json.loads(body)["draining"] is True
            code, response, _ = server.handle_probe(json.dumps(
                ProbeRequest(kind="satisfiable", kb="university").to_wire()
            ))
            assert code == 503
            assert response.status == "rejected"
        finally:
            server._draining.clear()
            server.close()


class TestServeMetricsUnit:
    def test_lifecycle_accounting(self):
        metrics = ServeMetrics()
        metrics.admitted()
        assert metrics.inflight == 1
        metrics.finished(ProbeResponse.error("x"), 0.01)
        assert metrics.inflight == 0
        metrics.rejected("queue_full")
        metrics.admitted()
        metrics.finished(
            ProbeResponse.unknown(DegradationReason.DEADLINE, "late"), 0.2
        )
        text = metrics.render(
            queue_capacity=4, queue_free=4, worker_restarts=3, workers_alive=2
        )
        assert 'repro_serve_requests_total{status="error"} 1' in text
        assert 'repro_serve_requests_total{status="unknown"} 1' in text
        assert 'repro_serve_unknown_total{reason="deadline"} 1' in text
        assert 'repro_serve_admission_rejections_total{why="queue_full"} 1' in text
        assert "repro_serve_worker_restarts_total 3" in text
        assert "repro_serve_request_seconds_count 2" in text

    def test_invalid_queue_bound_rejected(self):
        with pytest.raises(ValueError, match="max_queue"):
            ReproServer({"university": UNIVERSITY}, max_queue=0, workers=0)
