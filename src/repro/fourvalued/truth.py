"""Belnap's four-valued logic FOUR (paper Section 2.2).

The truth-value set is ``FOUR = {t, f, TOP, BOTTOM}`` where ``TOP`` (also
written ``{t, f}``) denotes *contradictory* information and ``BOTTOM``
(``{}``) denotes *absence* of information.  Values form the smallest
non-trivial bilattice, ordered two ways:

* the *truth order* ``<=_t`` with ``f <= BOTTOM/TOP <= t``;
* the *knowledge order* ``<=_k`` with ``BOTTOM <= t/f <= TOP``.

This module provides the value type, both partial orders with their meets
and joins, negation, and the three implications the paper builds its three
inclusion axioms on: material (``|->``), internal (``>``), and strong
(``->``), following Arieli & Avron.
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Iterable


class FourValue(enum.Enum):
    """One of Belnap's four truth values.

    The enum value is the classical-truth content as a frozenset: ``t`` is
    ``{True}``, ``f`` is ``{False}``, ``TOP`` (contradiction) is
    ``{True, False}`` and ``BOTTOM`` (no information) is ``frozenset()``.
    """

    TRUE = frozenset({True})
    FALSE = frozenset({False})
    BOTH = frozenset({True, False})
    NEITHER = frozenset()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def has_truth(self) -> bool:
        """Whether the value carries information of *being true*."""
        return True in self.value

    @property
    def has_falsity(self) -> bool:
        """Whether the value carries information of *being false*."""
        return False in self.value

    @property
    def is_designated(self) -> bool:
        """Membership of the designated set ``{t, TOP}`` of FOUR."""
        return self.has_truth

    @property
    def is_classical(self) -> bool:
        """Whether the value is one of the two classical values."""
        return self in (FourValue.TRUE, FourValue.FALSE)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return _SYMBOLS[self]

    def __str__(self) -> str:
        return _SYMBOLS[self]

    # ------------------------------------------------------------------
    # Connectives (truth order)
    # ------------------------------------------------------------------
    def negate(self) -> "FourValue":
        """Belnap negation: swaps truth and falsity evidence."""
        return from_evidence(self.has_falsity, self.has_truth)

    def __invert__(self) -> "FourValue":
        return self.negate()

    def conj(self, other: "FourValue") -> "FourValue":
        """Meet in the truth order (four-valued conjunction)."""
        return from_evidence(
            self.has_truth and other.has_truth,
            self.has_falsity or other.has_falsity,
        )

    def __and__(self, other: "FourValue") -> "FourValue":
        return self.conj(other)

    def disj(self, other: "FourValue") -> "FourValue":
        """Join in the truth order (four-valued disjunction)."""
        return from_evidence(
            self.has_truth or other.has_truth,
            self.has_falsity and other.has_falsity,
        )

    def __or__(self, other: "FourValue") -> "FourValue":
        return self.disj(other)

    # ------------------------------------------------------------------
    # Implications (paper Section 2.2)
    # ------------------------------------------------------------------
    def material_implies(self, other: "FourValue") -> "FourValue":
        """Material implication ``phi |-> psi  :=  ~phi v psi``."""
        return self.negate().disj(other)

    def internal_implies(self, other: "FourValue") -> "FourValue":
        """Internal implication: ``psi`` if ``phi`` is designated, else ``t``."""
        return other if self.is_designated else FourValue.TRUE

    def strong_implies(self, other: "FourValue") -> "FourValue":
        """Strong implication ``(phi > psi) ^ (~psi > ~phi)``."""
        forward = self.internal_implies(other)
        backward = other.negate().internal_implies(self.negate())
        return forward.conj(backward)

    def equivalent(self, other: "FourValue") -> "FourValue":
        """Strong equivalence ``(phi -> psi) ^ (psi -> phi)``."""
        return self.strong_implies(other).conj(other.strong_implies(self))

    # ------------------------------------------------------------------
    # Knowledge order
    # ------------------------------------------------------------------
    def knowledge_leq(self, other: "FourValue") -> bool:
        """The information order ``<=_k``: BOTTOM below t/f below TOP."""
        return self.value <= other.value

    def truth_leq(self, other: "FourValue") -> bool:
        """The truth order ``<=_t``: f below BOTTOM/TOP below t."""
        self_rank = (self.has_truth, not self.has_falsity)
        other_rank = (other.has_truth, not other.has_falsity)
        return self_rank[0] <= other_rank[0] and self_rank[1] <= other_rank[1]

    def consensus(self, other: "FourValue") -> "FourValue":
        """Meet in the knowledge order (``gullibility``'s dual)."""
        common = self.value & other.value
        return FourValue(frozenset(common))

    def gullibility(self, other: "FourValue") -> "FourValue":
        """Join in the knowledge order: accept all evidence from both."""
        return FourValue(frozenset(self.value | other.value))


_SYMBOLS = {
    FourValue.TRUE: "t",
    FourValue.FALSE: "f",
    FourValue.BOTH: "TOP",
    FourValue.NEITHER: "BOT",
}

#: All four truth values, in a stable order (useful for enumeration).
ALL_VALUES = (FourValue.TRUE, FourValue.FALSE, FourValue.BOTH, FourValue.NEITHER)

#: The designated value set of FOUR (paper Section 2.2).
DESIGNATED: FrozenSet[FourValue] = frozenset({FourValue.TRUE, FourValue.BOTH})


def from_evidence(positive: bool, negative: bool) -> FourValue:
    """Build a :class:`FourValue` from evidence-for / evidence-against bits."""
    if positive and negative:
        return FourValue.BOTH
    if positive:
        return FourValue.TRUE
    if negative:
        return FourValue.FALSE
    return FourValue.NEITHER


def from_classical(value: bool) -> FourValue:
    """Embed a classical Boolean into FOUR."""
    return FourValue.TRUE if value else FourValue.FALSE


def big_conj(values: Iterable[FourValue]) -> FourValue:
    """Four-valued conjunction of an iterable (empty conj is ``t``)."""
    result = FourValue.TRUE
    for value in values:
        result = result.conj(value)
    return result


def big_disj(values: Iterable[FourValue]) -> FourValue:
    """Four-valued disjunction of an iterable (empty disj is ``f``)."""
    result = FourValue.FALSE
    for value in values:
        result = result.disj(value)
    return result
