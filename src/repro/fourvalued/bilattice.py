"""Bilattice of evidence pairs ``<P, N>`` over a domain (paper Section 2.2).

For a fixed domain, the pairs ``<P, N>`` of subsets of the domain form a
bilattice: ``P`` collects the elements with evidence *for* a property and
``N`` the elements with evidence *against* it.  The paper's Definition 1
introduces the positive/negative projection operators; the truth-order
meet/join and negation are exactly the operations the four-valued concept
semantics of Table 2 is built from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, FrozenSet, Hashable, Iterable, Tuple

from .truth import FourValue, from_evidence

Element = Hashable


@dataclass(frozen=True)
class BilatticePair:
    """An evidence pair ``<P, N>`` of frozensets over some domain.

    No relationship between ``P`` and ``N`` is required: overlap encodes
    contradictory evidence, gaps encode missing information.
    """

    positive: FrozenSet[Element]
    negative: FrozenSet[Element]

    @staticmethod
    def of(positive: Iterable[Element], negative: Iterable[Element]) -> "BilatticePair":
        """Build a pair from arbitrary iterables."""
        return BilatticePair(frozenset(positive), frozenset(negative))

    @staticmethod
    def classical(positive: Iterable[Element], domain: Iterable[Element]) -> "BilatticePair":
        """Embed a classical extension: ``N`` is the domain complement of ``P``."""
        pos = frozenset(positive)
        return BilatticePair(pos, frozenset(domain) - pos)

    # ------------------------------------------------------------------
    # Definition 1: projections
    # ------------------------------------------------------------------
    def proj_positive(self) -> FrozenSet[Element]:
        """``proj+(<P, N>) = P``."""
        return self.positive

    def proj_negative(self) -> FrozenSet[Element]:
        """``proj-(<P, N>) = N``."""
        return self.negative

    # ------------------------------------------------------------------
    # Truth-order operations
    # ------------------------------------------------------------------
    def negate(self) -> "BilatticePair":
        """``~<P, N> = <N, P>``."""
        return BilatticePair(self.negative, self.positive)

    def __invert__(self) -> "BilatticePair":
        return self.negate()

    def meet_t(self, other: "BilatticePair") -> "BilatticePair":
        """Truth-order lower bound: ``<P1 & P2, N1 | N2>``."""
        return BilatticePair(
            self.positive & other.positive, self.negative | other.negative
        )

    def __and__(self, other: "BilatticePair") -> "BilatticePair":
        return self.meet_t(other)

    def join_t(self, other: "BilatticePair") -> "BilatticePair":
        """Truth-order upper bound: ``<P1 | P2, N1 & N2>``."""
        return BilatticePair(
            self.positive | other.positive, self.negative & other.negative
        )

    def __or__(self, other: "BilatticePair") -> "BilatticePair":
        return self.join_t(other)

    # ------------------------------------------------------------------
    # Knowledge-order operations
    # ------------------------------------------------------------------
    def meet_k(self, other: "BilatticePair") -> "BilatticePair":
        """Knowledge-order lower bound (consensus)."""
        return BilatticePair(
            self.positive & other.positive, self.negative & other.negative
        )

    def join_k(self, other: "BilatticePair") -> "BilatticePair":
        """Knowledge-order upper bound (accept all evidence)."""
        return BilatticePair(
            self.positive | other.positive, self.negative | other.negative
        )

    def truth_leq(self, other: "BilatticePair") -> bool:
        """``<=_t``: more truth evidence and less falsity evidence."""
        return self.positive <= other.positive and other.negative <= self.negative

    def knowledge_leq(self, other: "BilatticePair") -> bool:
        """``<=_k``: less total evidence."""
        return self.positive <= other.positive and self.negative <= other.negative

    # ------------------------------------------------------------------
    # Pointwise truth value (paper Definition 3)
    # ------------------------------------------------------------------
    def value_of(self, element: Element) -> FourValue:
        """The four-valued membership status of one domain element."""
        return from_evidence(element in self.positive, element in self.negative)

    def is_classical_over(self, domain: AbstractSet[Element]) -> bool:
        """Whether the pair satisfies the classical constraints over ``domain``.

        Classical means ``P`` and ``N`` partition the domain: no overlap
        (no contradictions) and no gap (no missing information).
        """
        return not (self.positive & self.negative) and (
            self.positive | self.negative
        ) >= frozenset(domain)

    def as_tuple(self) -> Tuple[FrozenSet[Element], FrozenSet[Element]]:
        """The underlying ``(P, N)`` pair."""
        return (self.positive, self.negative)


def top(domain: Iterable[Element]) -> BilatticePair:
    """The interpretation of the top concept: ``<Domain, {}>``."""
    return BilatticePair(frozenset(domain), frozenset())


def bottom(domain: Iterable[Element]) -> BilatticePair:
    """The interpretation of the bottom concept: ``<{}, Domain>``."""
    return BilatticePair(frozenset(), frozenset(domain))
