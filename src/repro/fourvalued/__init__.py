"""Belnap's four-valued logic FOUR and bilattices of evidence pairs.

This package is the multi-valued substrate of the reproduction (paper
Section 2.2): the four truth values with both bilattice orders, the three
implications that the SHOIN(D)4 inclusion axioms mirror, evidence pairs
``<P, N>`` with the Definition 1 projections, and a propositional
four-valued logic with an exact consequence checker.
"""

from .truth import (
    ALL_VALUES,
    DESIGNATED,
    FourValue,
    big_conj,
    big_disj,
    from_classical,
    from_evidence,
)
from .bilattice import BilatticePair, bottom, top
from .reduction import (
    dpll,
    entails_by_reduction,
    neg_encode,
    pos_encode,
    satisfiable_by_reduction,
    tautology_by_reduction,
    to_cnf,
)
from .propositional import (
    And,
    Atom,
    Formula,
    InternalImplies,
    MaterialImplies,
    Not,
    Or,
    StrongImplies,
    entails,
    equivalent,
    multi_entails,
    tautology,
    valuations,
)

__all__ = [
    "ALL_VALUES",
    "DESIGNATED",
    "FourValue",
    "big_conj",
    "big_disj",
    "from_classical",
    "from_evidence",
    "BilatticePair",
    "bottom",
    "top",
    "And",
    "Atom",
    "Formula",
    "InternalImplies",
    "MaterialImplies",
    "Not",
    "Or",
    "StrongImplies",
    "entails",
    "equivalent",
    "multi_entails",
    "tautology",
    "valuations",
    "dpll",
    "entails_by_reduction",
    "neg_encode",
    "pos_encode",
    "satisfiable_by_reduction",
    "tautology_by_reduction",
    "to_cnf",
]
