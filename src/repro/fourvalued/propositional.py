"""Propositional four-valued logic over FOUR (paper Section 2.2).

Provides a formula AST with Belnap negation/conjunction/disjunction and the
three implications (material, internal, strong), valuations mapping atoms to
:class:`~repro.fourvalued.truth.FourValue`, and the four-valued consequence
relation ``|=4``: every valuation that designates all premises designates the
conclusion.  Consequence is decided by exhaustive valuation enumeration,
which is exact (the logic has no quantifiers).

This module backs the paper's Propositions 1 and 2 and the counterexamples
distinguishing the three implications.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Tuple

from .truth import ALL_VALUES, FourValue

Valuation = Mapping[str, FourValue]


class Formula:
    """Base class for propositional four-valued formulas."""

    def atoms(self) -> FrozenSet[str]:
        """The set of atom names occurring in the formula."""
        raise NotImplementedError

    def evaluate(self, valuation: Valuation) -> FourValue:
        """The truth value of the formula under ``valuation``."""
        raise NotImplementedError

    # Convenient constructors -------------------------------------------------
    def __invert__(self) -> "Formula":
        return Not(self)

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def material(self, other: "Formula") -> "Formula":
        """``self |-> other``."""
        return MaterialImplies(self, other)

    def internal(self, other: "Formula") -> "Formula":
        """``self > other``."""
        return InternalImplies(self, other)

    def strong(self, other: "Formula") -> "Formula":
        """``self -> other``."""
        return StrongImplies(self, other)

    def iff(self, other: "Formula") -> "Formula":
        """Strong equivalence ``self <-> other``."""
        return And(StrongImplies(self, other), StrongImplies(other, self))


@dataclass(frozen=True)
class Atom(Formula):
    """A propositional atom."""

    name: str

    def atoms(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def evaluate(self, valuation: Valuation) -> FourValue:
        return valuation[self.name]

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Not(Formula):
    """Belnap negation."""

    operand: Formula

    def atoms(self) -> FrozenSet[str]:
        return self.operand.atoms()

    def evaluate(self, valuation: Valuation) -> FourValue:
        return self.operand.evaluate(valuation).negate()

    def __repr__(self) -> str:
        return f"~{self.operand!r}"


@dataclass(frozen=True)
class And(Formula):
    """Truth-order meet."""

    left: Formula
    right: Formula

    def atoms(self) -> FrozenSet[str]:
        return self.left.atoms() | self.right.atoms()

    def evaluate(self, valuation: Valuation) -> FourValue:
        return self.left.evaluate(valuation).conj(self.right.evaluate(valuation))

    def __repr__(self) -> str:
        return f"({self.left!r} & {self.right!r})"


@dataclass(frozen=True)
class Or(Formula):
    """Truth-order join."""

    left: Formula
    right: Formula

    def atoms(self) -> FrozenSet[str]:
        return self.left.atoms() | self.right.atoms()

    def evaluate(self, valuation: Valuation) -> FourValue:
        return self.left.evaluate(valuation).disj(self.right.evaluate(valuation))

    def __repr__(self) -> str:
        return f"({self.left!r} | {self.right!r})"


@dataclass(frozen=True)
class MaterialImplies(Formula):
    """Material implication ``|->``, definable as ``~phi | psi``."""

    antecedent: Formula
    consequent: Formula

    def atoms(self) -> FrozenSet[str]:
        return self.antecedent.atoms() | self.consequent.atoms()

    def evaluate(self, valuation: Valuation) -> FourValue:
        return self.antecedent.evaluate(valuation).material_implies(
            self.consequent.evaluate(valuation)
        )

    def __repr__(self) -> str:
        return f"({self.antecedent!r} |-> {self.consequent!r})"


@dataclass(frozen=True)
class InternalImplies(Formula):
    """Internal implication ``>`` (the residuum-style implication of FOUR)."""

    antecedent: Formula
    consequent: Formula

    def atoms(self) -> FrozenSet[str]:
        return self.antecedent.atoms() | self.consequent.atoms()

    def evaluate(self, valuation: Valuation) -> FourValue:
        return self.antecedent.evaluate(valuation).internal_implies(
            self.consequent.evaluate(valuation)
        )

    def __repr__(self) -> str:
        return f"({self.antecedent!r} > {self.consequent!r})"


@dataclass(frozen=True)
class StrongImplies(Formula):
    """Strong implication ``->``, contraposable by construction."""

    antecedent: Formula
    consequent: Formula

    def atoms(self) -> FrozenSet[str]:
        return self.antecedent.atoms() | self.consequent.atoms()

    def evaluate(self, valuation: Valuation) -> FourValue:
        return self.antecedent.evaluate(valuation).strong_implies(
            self.consequent.evaluate(valuation)
        )

    def __repr__(self) -> str:
        return f"({self.antecedent!r} -> {self.consequent!r})"


def valuations(atom_names: Iterable[str]) -> Iterator[Dict[str, FourValue]]:
    """All valuations of the given atoms (``4**n`` of them)."""
    names = sorted(set(atom_names))
    for combo in itertools.product(ALL_VALUES, repeat=len(names)):
        yield dict(zip(names, combo))


def entails(premises: Iterable[Formula], conclusion: Formula) -> bool:
    """The four-valued consequence relation ``premises |=4 conclusion``.

    Holds iff every valuation designating all premises also designates
    the conclusion.  Decided exactly by enumerating all valuations of the
    atoms occurring in the sequent.
    """
    premises = tuple(premises)
    names: FrozenSet[str] = conclusion.atoms()
    for premise in premises:
        names |= premise.atoms()
    for valuation in valuations(names):
        if all(p.evaluate(valuation).is_designated for p in premises):
            if not conclusion.evaluate(valuation).is_designated:
                return False
    return True


def multi_entails(
    premises: Iterable[Formula], conclusions: Iterable[Formula]
) -> bool:
    """Multiple-conclusion consequence: some conclusion is designated.

    ``Gamma |=4 Delta`` holds iff every valuation designating all of
    ``Gamma`` designates at least one member of ``Delta``.  This is the
    sequent form used in the paper's Proposition 1.
    """
    premises = tuple(premises)
    conclusions = tuple(conclusions)
    names: FrozenSet[str] = frozenset()
    for formula in premises + conclusions:
        names |= formula.atoms()
    for valuation in valuations(names):
        if all(p.evaluate(valuation).is_designated for p in premises):
            if not any(c.evaluate(valuation).is_designated for c in conclusions):
                return False
    return True


def equivalent(left: Formula, right: Formula) -> bool:
    """Whether two formulas take the same value under every valuation."""
    names = left.atoms() | right.atoms()
    return all(
        left.evaluate(v) == right.evaluate(v) for v in valuations(names)
    )


def tautology(formula: Formula) -> bool:
    """Whether the formula is designated under every valuation."""
    return entails((), formula)
