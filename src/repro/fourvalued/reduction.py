"""Propositional four-valued reasoning by reduction to classical logic.

The paper's Section 5 credits Arieli & Denecker (refs [15]-[17]) with the
formula-transformation technique it lifts to description logics.  This
module implements that propositional original, mirroring Definitions 5-7
one level down:

* every atom ``p`` splits into two classical atoms ``p+`` (evidence for)
  and ``p-`` (evidence against);
* :func:`pos_encode` / :func:`neg_encode` translate a four-valued
  formula into the classical formulas asserting its truth / falsity
  evidence;
* ``Gamma |=4 phi`` reduces to classical UNSAT of
  ``{pos_encode(g) : g in Gamma} + {not pos_encode(phi)}``, decided by a
  small built-in DPLL SAT solver.

The truth-table engine of :mod:`repro.fourvalued.propositional` is the
independent reference; the property tests check the two agree on random
sequents, the propositional analogue of the repo-wide Theorem 6 checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .propositional import (
    And,
    Atom,
    Formula,
    InternalImplies,
    MaterialImplies,
    Not,
    Or,
    StrongImplies,
)


# ---------------------------------------------------------------------------
# Classical propositional formulas (the reduction target)
# ---------------------------------------------------------------------------

class Classical:
    """Base class of classical propositional formulas."""


@dataclass(frozen=True)
class CAtom(Classical):
    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class CNot(Classical):
    operand: Classical

    def __repr__(self) -> str:
        return f"~{self.operand!r}"


@dataclass(frozen=True)
class CAnd(Classical):
    left: Classical
    right: Classical

    def __repr__(self) -> str:
        return f"({self.left!r} & {self.right!r})"


@dataclass(frozen=True)
class COr(Classical):
    left: Classical
    right: Classical

    def __repr__(self) -> str:
        return f"({self.left!r} | {self.right!r})"


@dataclass(frozen=True)
class CTrue(Classical):
    def __repr__(self) -> str:
        return "T"


@dataclass(frozen=True)
class CFalse(Classical):
    def __repr__(self) -> str:
        return "F"


def positive_atom(name: str) -> CAtom:
    """The classical atom asserting evidence *for* ``name``."""
    return CAtom(name + "+")


def negative_atom(name: str) -> CAtom:
    """The classical atom asserting evidence *against* ``name``."""
    return CAtom(name + "-")


# ---------------------------------------------------------------------------
# The encoding (propositional Definition 5)
# ---------------------------------------------------------------------------

def pos_encode(formula: Formula) -> Classical:
    """Classical formula equivalent to "``formula`` has truth evidence".

    ``v(formula)`` is designated under a four-valued valuation iff the
    corresponding doubled-atom classical valuation satisfies
    ``pos_encode(formula)``.
    """
    if isinstance(formula, Atom):
        return positive_atom(formula.name)
    if isinstance(formula, Not):
        return neg_encode(formula.operand)
    if isinstance(formula, And):
        return CAnd(pos_encode(formula.left), pos_encode(formula.right))
    if isinstance(formula, Or):
        return COr(pos_encode(formula.left), pos_encode(formula.right))
    if isinstance(formula, MaterialImplies):
        # ~phi v psi, evidence-for = neg(phi) v pos(psi).
        return COr(neg_encode(formula.antecedent), pos_encode(formula.consequent))
    if isinstance(formula, InternalImplies):
        # Designated iff antecedent designated implies consequent designated.
        return COr(
            CNot(pos_encode(formula.antecedent)),
            pos_encode(formula.consequent),
        )
    if isinstance(formula, StrongImplies):
        forward = COr(
            CNot(pos_encode(formula.antecedent)),
            pos_encode(formula.consequent),
        )
        backward = COr(
            CNot(neg_encode(formula.consequent)),
            neg_encode(formula.antecedent),
        )
        return CAnd(forward, backward)
    raise TypeError(f"unknown formula kind: {formula!r}")


def neg_encode(formula: Formula) -> Classical:
    """Classical formula equivalent to "``formula`` has falsity evidence"."""
    if isinstance(formula, Atom):
        return negative_atom(formula.name)
    if isinstance(formula, Not):
        return pos_encode(formula.operand)
    if isinstance(formula, And):
        return COr(neg_encode(formula.left), neg_encode(formula.right))
    if isinstance(formula, Or):
        return CAnd(neg_encode(formula.left), neg_encode(formula.right))
    if isinstance(formula, MaterialImplies):
        return CAnd(pos_encode(formula.antecedent), neg_encode(formula.consequent))
    if isinstance(formula, InternalImplies):
        # v(phi > psi) = psi when phi designated, t otherwise: falsity
        # evidence iff phi designated and psi has falsity evidence.
        return CAnd(pos_encode(formula.antecedent), neg_encode(formula.consequent))
    if isinstance(formula, StrongImplies):
        # v(phi -> psi) = (phi > psi) & (~psi > ~phi): falsity evidence of
        # a conjunction is falsity of either conjunct.
        first = CAnd(pos_encode(formula.antecedent), neg_encode(formula.consequent))
        second = CAnd(
            neg_encode(formula.consequent), pos_encode(formula.antecedent)
        )
        return COr(first, second)
    raise TypeError(f"unknown formula kind: {formula!r}")


# ---------------------------------------------------------------------------
# CNF + DPLL
# ---------------------------------------------------------------------------

Literal = Tuple[str, bool]
Clause = FrozenSet[Literal]


def _to_nnf(formula: Classical, polarity: bool = True) -> Classical:
    if isinstance(formula, CAtom):
        return formula if polarity else CNot(formula)
    if isinstance(formula, CTrue):
        return formula if polarity else CFalse()
    if isinstance(formula, CFalse):
        return formula if polarity else CTrue()
    if isinstance(formula, CNot):
        return _to_nnf(formula.operand, not polarity)
    if isinstance(formula, CAnd):
        builder = CAnd if polarity else COr
        return builder(
            _to_nnf(formula.left, polarity), _to_nnf(formula.right, polarity)
        )
    if isinstance(formula, COr):
        builder = COr if polarity else CAnd
        return builder(
            _to_nnf(formula.left, polarity), _to_nnf(formula.right, polarity)
        )
    raise TypeError(f"unknown classical formula: {formula!r}")


def _cnf_clauses(formula: Classical) -> List[Set[Literal]]:
    """Clauses of an NNF formula (distribution-based; inputs are small)."""
    if isinstance(formula, CTrue):
        return []
    if isinstance(formula, CFalse):
        return [set()]
    if isinstance(formula, CAtom):
        return [{(formula.name, True)}]
    if isinstance(formula, CNot):
        assert isinstance(formula.operand, CAtom)
        return [{(formula.operand.name, False)}]
    if isinstance(formula, CAnd):
        return _cnf_clauses(formula.left) + _cnf_clauses(formula.right)
    if isinstance(formula, COr):
        left = _cnf_clauses(formula.left)
        right = _cnf_clauses(formula.right)
        if not left or not right:
            return []
        return [lc | rc for lc in left for rc in right]
    raise TypeError(f"unknown classical formula: {formula!r}")


def to_cnf(formulas: Iterable[Classical]) -> List[Clause]:
    """CNF of a conjunction of classical formulas."""
    clauses: List[Clause] = []
    for formula in formulas:
        for clause in _cnf_clauses(_to_nnf(formula)):
            clauses.append(frozenset(clause))
    return clauses


def dpll(clauses: List[Clause]) -> Optional[Dict[str, bool]]:
    """A satisfying assignment for CNF clauses, or ``None``.

    Unit propagation + pure-literal elimination + first-atom splitting —
    entirely sufficient for the doubled-atom encodings this module emits.
    """
    assignment: Dict[str, bool] = {}
    working = [set(clause) for clause in clauses]

    def simplify(name: str, value: bool) -> Optional[List[Set[Literal]]]:
        next_clauses: List[Set[Literal]] = []
        for clause in working:
            if (name, value) in clause:
                continue
            reduced = {lit for lit in clause if lit != (name, not value)}
            if not reduced:
                return None
            next_clauses.append(reduced)
        return next_clauses

    while True:
        unit = next((c for c in working if len(c) == 1), None)
        if unit is None:
            break
        ((name, value),) = unit
        assignment[name] = value
        simplified = simplify(name, value)
        if simplified is None:
            return None
        working = simplified
    if not working:
        return assignment
    if any(not clause for clause in working):
        return None
    # Split on the lexicographically first unassigned atom.
    name = min(name for clause in working for (name, _v) in clause)
    for value in (True, False):
        simplified = simplify(name, value)
        if simplified is None:
            continue
        result = dpll([frozenset(c) for c in simplified])
        if result is not None:
            result = dict(result)
            result[name] = value
            result.update(assignment)
            return result
    return None


# ---------------------------------------------------------------------------
# Four-valued consequence via the reduction
# ---------------------------------------------------------------------------

def entails_by_reduction(
    premises: Iterable[Formula], conclusion: Formula
) -> bool:
    """``premises |=4 conclusion`` decided by SAT over the doubled atoms.

    The countermodel search asks for a classical model of all premise
    encodings plus the negated conclusion encoding; unsatisfiability is
    entailment.  Agrees with
    :func:`repro.fourvalued.propositional.entails` (property-tested).
    """
    encodings: List[Classical] = [pos_encode(p) for p in premises]
    encodings.append(CNot(pos_encode(conclusion)))
    return dpll(to_cnf(encodings)) is None


def satisfiable_by_reduction(formulas: Iterable[Formula]) -> bool:
    """Whether some four-valued valuation designates every formula."""
    encodings = [pos_encode(f) for f in formulas]
    return dpll(to_cnf(encodings)) is not None


def tautology_by_reduction(formula: Formula) -> bool:
    """Whether the formula is designated under every valuation."""
    return entails_by_reduction((), formula)
