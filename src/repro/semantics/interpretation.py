"""Classical (two-valued) interpretations of SHOIN(D) — paper Table 1.

An :class:`Interpretation` is an explicit finite structure: a domain, an
extension for every atomic concept and role, and an individual assignment.
:meth:`Interpretation.extension` evaluates any concept expression by the
Table 1 equations, and :meth:`Interpretation.satisfies` checks any axiom,
making the class a direct executable transcription of the paper's Table 1.

This evaluator is the ground truth the tableau is cross-validated against
(via :mod:`repro.semantics.enumeration`) and the target of Definition 8's
classical induced interpretation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Set, Tuple

from ..dl import axioms as ax
from ..dl.concepts import (
    And,
    AtLeast,
    AtMost,
    AtomicConcept,
    Bottom,
    Concept,
    DataAtLeast,
    DataAtMost,
    DataExists,
    DataForall,
    Exists,
    Forall,
    Not,
    OneOf,
    Or,
    QualifiedAtLeast,
    QualifiedAtMost,
    Top,
)
from ..dl.individuals import DataValue, Individual
from ..dl.kb import KnowledgeBase
from ..dl.roles import AtomicRole, DatatypeRole, ObjectRole

Element = Hashable
Pair = Tuple[Element, Element]
DataPair = Tuple[Element, DataValue]


@dataclass
class Interpretation:
    """A finite classical interpretation ``I = (Delta, .^I)``.

    ``concept_ext`` and ``role_ext`` give the extensions of *atomic*
    names; complex expressions are evaluated recursively.  Individuals not
    listed in ``individual_map`` are unmapped and make ``satisfies`` raise
    ``KeyError`` — callers populate the map for the KB signature.
    """

    domain: FrozenSet[Element]
    concept_ext: Dict[AtomicConcept, FrozenSet[Element]] = field(default_factory=dict)
    role_ext: Dict[AtomicRole, FrozenSet[Pair]] = field(default_factory=dict)
    data_role_ext: Dict[DatatypeRole, FrozenSet[DataPair]] = field(
        default_factory=dict
    )
    individual_map: Dict[Individual, Element] = field(default_factory=dict)

    @staticmethod
    def named(
        individuals: Iterable[Individual],
        concept_ext: Mapping[AtomicConcept, Iterable[Element]] = (),
        role_ext: Mapping[AtomicRole, Iterable[Pair]] = (),
        data_role_ext: Mapping[DatatypeRole, Iterable[DataPair]] = (),
    ) -> "Interpretation":
        """An interpretation whose domain is the individuals themselves."""
        individuals = list(individuals)
        return Interpretation(
            domain=frozenset(individuals),
            concept_ext={c: frozenset(e) for c, e in dict(concept_ext).items()},
            role_ext={r: frozenset(e) for r, e in dict(role_ext).items()},
            data_role_ext={
                u: frozenset(e) for u, e in dict(data_role_ext).items()
            },
            individual_map={i: i for i in individuals},
        )

    # ------------------------------------------------------------------
    # Extension evaluation (Table 1)
    # ------------------------------------------------------------------
    def role_extension(self, role: ObjectRole) -> FrozenSet[Pair]:
        """The extension of an object role expression (inverse-aware)."""
        base = self.role_ext.get(role.named, frozenset())
        if role.is_inverse:
            return frozenset((y, x) for (x, y) in base)
        return base

    def data_role_extension(self, role: DatatypeRole) -> FrozenSet[DataPair]:
        """The extension of a datatype role."""
        return self.data_role_ext.get(role, frozenset())

    def extension(self, concept: Concept) -> FrozenSet[Element]:
        """The extension ``C^I`` per the Table 1 equations."""
        if isinstance(concept, AtomicConcept):
            return self.concept_ext.get(concept, frozenset())
        if isinstance(concept, Top):
            return self.domain
        if isinstance(concept, Bottom):
            return frozenset()
        if isinstance(concept, Not):
            return self.domain - self.extension(concept.operand)
        if isinstance(concept, And):
            result = self.domain
            for operand in concept.operands:
                result &= self.extension(operand)
            return result
        if isinstance(concept, Or):
            result: FrozenSet[Element] = frozenset()
            for operand in concept.operands:
                result |= self.extension(operand)
            return result
        if isinstance(concept, OneOf):
            return frozenset(
                self.individual_map[i]
                for i in concept.individuals
                if i in self.individual_map
            )
        if isinstance(concept, Exists):
            pairs = self.role_extension(concept.role)
            filler = self.extension(concept.filler)
            return frozenset(x for (x, y) in pairs if y in filler)
        if isinstance(concept, Forall):
            pairs = self.role_extension(concept.role)
            filler = self.extension(concept.filler)
            return frozenset(
                x
                for x in self.domain
                if all(y in filler for (x2, y) in pairs if x2 == x)
            )
        if isinstance(concept, AtLeast):
            pairs = self.role_extension(concept.role)
            return frozenset(
                x
                for x in self.domain
                if len({y for (x2, y) in pairs if x2 == x}) >= concept.n
            )
        if isinstance(concept, AtMost):
            pairs = self.role_extension(concept.role)
            return frozenset(
                x
                for x in self.domain
                if len({y for (x2, y) in pairs if x2 == x}) <= concept.n
            )
        if isinstance(concept, QualifiedAtLeast):
            pairs = self.role_extension(concept.role)
            filler = self.extension(concept.filler)
            return frozenset(
                x
                for x in self.domain
                if len({y for (x2, y) in pairs if x2 == x and y in filler})
                >= concept.n
            )
        if isinstance(concept, QualifiedAtMost):
            pairs = self.role_extension(concept.role)
            filler = self.extension(concept.filler)
            return frozenset(
                x
                for x in self.domain
                if len({y for (x2, y) in pairs if x2 == x and y in filler})
                <= concept.n
            )
        if isinstance(concept, DataExists):
            pairs = self.data_role_extension(concept.role)
            return frozenset(
                x for (x, v) in pairs if concept.range.contains(v)
            )
        if isinstance(concept, DataForall):
            pairs = self.data_role_extension(concept.role)
            return frozenset(
                x
                for x in self.domain
                if all(
                    concept.range.contains(v) for (x2, v) in pairs if x2 == x
                )
            )
        if isinstance(concept, DataAtLeast):
            pairs = self.data_role_extension(concept.role)
            return frozenset(
                x
                for x in self.domain
                if len({v for (x2, v) in pairs if x2 == x}) >= concept.n
            )
        if isinstance(concept, DataAtMost):
            pairs = self.data_role_extension(concept.role)
            return frozenset(
                x
                for x in self.domain
                if len({v for (x2, v) in pairs if x2 == x}) <= concept.n
            )
        raise TypeError(f"unknown concept kind: {concept!r}")

    # ------------------------------------------------------------------
    # Axiom satisfaction (Table 1, bottom block)
    # ------------------------------------------------------------------
    def satisfies(self, axiom: ax.Axiom) -> bool:
        """Whether the interpretation satisfies one axiom."""
        if isinstance(axiom, ax.ConceptInclusion):
            return self.extension(axiom.sub) <= self.extension(axiom.sup)
        if isinstance(axiom, ax.ConceptEquivalence):
            return self.extension(axiom.left) == self.extension(axiom.right)
        if isinstance(axiom, ax.RoleInclusion):
            return self.role_extension(axiom.sub) <= self.role_extension(axiom.sup)
        if isinstance(axiom, ax.DatatypeRoleInclusion):
            return self.data_role_extension(axiom.sub) <= self.data_role_extension(
                axiom.sup
            )
        if isinstance(axiom, ax.Transitivity):
            pairs = self.role_extension(axiom.role)
            return all(
                (x, z) in pairs
                for (x, y) in pairs
                for (y2, z) in pairs
                if y2 == y
            )
        if isinstance(axiom, ax.ConceptAssertion):
            return self.individual_map[axiom.individual] in self.extension(
                axiom.concept
            )
        if isinstance(axiom, ax.RoleAssertion):
            return (
                self.individual_map[axiom.source],
                self.individual_map[axiom.target],
            ) in self.role_extension(axiom.role)
        if isinstance(axiom, ax.NegativeRoleAssertion):
            return (
                self.individual_map[axiom.source],
                self.individual_map[axiom.target],
            ) not in self.role_extension(axiom.role)
        if isinstance(axiom, ax.DataAssertion):
            return (
                self.individual_map[axiom.source],
                axiom.value,
            ) in self.data_role_extension(axiom.role)
        if isinstance(axiom, ax.SameIndividual):
            return (
                self.individual_map[axiom.left] == self.individual_map[axiom.right]
            )
        if isinstance(axiom, ax.DifferentIndividuals):
            return (
                self.individual_map[axiom.left] != self.individual_map[axiom.right]
            )
        raise TypeError(f"unknown axiom kind: {axiom!r}")

    def is_model(self, kb: KnowledgeBase) -> bool:
        """Whether the interpretation satisfies every axiom of the KB."""
        return all(self.satisfies(axiom) for axiom in kb.axioms())
