"""Exhaustive finite-model enumeration, classical and four-valued.

On bounded domains both semantics are decidable by brute force: enumerate
every assignment of extensions to the atomic signature and keep the ones
satisfying the KB.  This gives the repository a *second, independent*
semantic engine:

* it cross-validates the tableau on randomised property tests (a finite
  model found here forces the tableau to answer "satisfiable"; a tableau
  "unsatisfiable" forbids any finite model);
* it regenerates the paper's Table 4 exactly — all four-valued models of
  Example 4 over ``{smith, kate}`` and their truth-value patterns;
* it verifies Lemma 5/Theorem 6 by enumerating models on both sides of
  the transformation.

Enumeration is exponential in ``|signature| * domain**2``; callers keep
domains at 1-3 elements and signatures at a handful of names.
"""

from __future__ import annotations

import itertools
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..dl.errors import UnsupportedFeature
from ..dl.individuals import Individual
from ..dl.kb import KnowledgeBase
from ..dl.roles import AtomicRole
from ..fourvalued.bilattice import BilatticePair
from ..four_dl.axioms4 import KnowledgeBase4
from .four_interpretation import FourInterpretation, RolePair
from .interpretation import Interpretation

Element = Hashable


def _subsets(items: Sequence[Element]) -> Iterator[FrozenSet[Element]]:
    """All subsets of a sequence, smallest first."""
    for size in range(len(items) + 1):
        for combo in itertools.combinations(items, size):
            yield frozenset(combo)


# ---------------------------------------------------------------------------
# Classical enumeration
# ---------------------------------------------------------------------------

def enumerate_classical_models(
    kb: KnowledgeBase,
    extra_elements: int = 0,
    enumerate_maps: bool = False,
) -> Iterator[Interpretation]:
    """All classical models of ``kb`` over a fixed finite domain.

    The domain is the KB's individuals plus ``extra_elements`` anonymous
    elements.  With ``enumerate_maps`` false (the default) individuals name
    themselves (unique-name reading); with it true every assignment of
    individuals to domain elements is tried, which is the faithful OWL
    reading when the KB contains equality axioms.
    """
    if list(kb.data_assertions) or kb.datatype_roles_in_signature():
        raise UnsupportedFeature("enumeration does not cover datatype roles")
    individuals = sorted(kb.individuals_in_signature())
    domain: List[Element] = list(individuals) + [
        f"_anon{i}" for i in range(extra_elements)
    ]
    if not domain:
        domain = ["_anon0"]
    concepts = sorted(kb.concepts_in_signature(), key=lambda c: c.name)
    roles = sorted(kb.object_roles_in_signature(), key=lambda r: r.name)
    pairs = list(itertools.product(domain, repeat=2))

    if enumerate_maps and individuals:
        maps: Iterable[Dict[Individual, Element]] = (
            dict(zip(individuals, assignment))
            for assignment in itertools.product(domain, repeat=len(individuals))
        )
    else:
        maps = iter([{i: i for i in individuals}])

    for individual_map in maps:
        for concept_extensions in itertools.product(
            *(list(_subsets(domain)) for _ in concepts)
        ):
            for role_extensions in itertools.product(
                *(list(_subsets(pairs)) for _ in roles)
            ):
                interpretation = Interpretation(
                    domain=frozenset(domain),
                    concept_ext=dict(zip(concepts, concept_extensions)),
                    role_ext=dict(zip(roles, role_extensions)),
                    individual_map=dict(individual_map),
                )
                if interpretation.is_model(kb):
                    yield interpretation


def classical_satisfiable_by_enumeration(
    kb: KnowledgeBase, max_extra_elements: int = 1
) -> bool:
    """Whether some finite model exists with up to ``max_extra_elements``
    anonymous elements added to the individual domain.

    ``True`` is definitive (a model is exhibited); ``False`` only means no
    *small* model exists — SHOIN KBs can require larger or infinite models.
    """
    for extra in range(max_extra_elements + 1):
        for _model in enumerate_classical_models(kb, extra_elements=extra):
            return True
    return False


# ---------------------------------------------------------------------------
# Four-valued enumeration
# ---------------------------------------------------------------------------

def enumerate_four_models(
    kb4: KnowledgeBase4,
    extra_elements: int = 0,
    irreflexive_roles: Iterable[AtomicRole] = (),
    product_roles: bool = False,
) -> Iterator[FourInterpretation]:
    """All four-valued models of ``kb4`` over the individual domain.

    ``irreflexive_roles`` implements the paper's end-of-Section-3.3 note:
    the *positive* extension of the named roles never contains a reflexive
    pair (Example 4 treats ``hasChild`` that way).  With ``product_roles``
    true, role evidence sets are restricted to the product form of
    Table 2; the default accepts arbitrary pair sets, matching the
    paper's own Example 4 models.
    """
    if list(kb4.data_assertions) or kb4.datatype_roles_in_signature():
        raise UnsupportedFeature("enumeration does not cover datatype roles")
    individuals = sorted(kb4.individuals_in_signature())
    domain: List[Element] = list(individuals) + [
        f"_anon{i}" for i in range(extra_elements)
    ]
    if not domain:
        domain = ["_anon0"]
    concepts = sorted(kb4.concepts_in_signature(), key=lambda c: c.name)
    roles = sorted(kb4.object_roles_in_signature(), key=lambda r: r.name)
    irreflexive = frozenset(irreflexive_roles)
    all_pairs = list(itertools.product(domain, repeat=2))

    concept_pairs = [
        BilatticePair(p, n)
        for p in _subsets(domain)
        for n in _subsets(domain)
    ]

    def role_pairs_for(role: AtomicRole) -> List[RolePair]:
        if role in irreflexive:
            positive_pool = [(x, y) for (x, y) in all_pairs if x != y]
        else:
            positive_pool = all_pairs
        candidates = [
            RolePair(p, n)
            for p in _subsets(positive_pool)
            for n in _subsets(all_pairs)
        ]
        if product_roles:
            candidates = [
                c
                for c in candidates
                if _is_product(c.positive) and _is_product(c.negative)
            ]
        return candidates

    role_choices = [role_pairs_for(role) for role in roles]

    for concept_extensions in itertools.product(
        *(concept_pairs for _ in concepts)
    ):
        for role_extensions in itertools.product(*role_choices):
            interpretation = FourInterpretation(
                domain=frozenset(domain),
                concept_ext=dict(zip(concepts, concept_extensions)),
                role_ext=dict(zip(roles, role_extensions)),
                individual_map={i: i for i in individuals},
            )
            if interpretation.is_model(kb4):
                yield interpretation


def four_satisfiable_by_enumeration(
    kb4: KnowledgeBase4, max_extra_elements: int = 0
) -> bool:
    """Whether a small four-valued model exists (definitive when ``True``)."""
    for extra in range(max_extra_elements + 1):
        for _model in enumerate_four_models(kb4, extra_elements=extra):
            return True
    return False


def truth_patterns(
    models: Iterable[FourInterpretation],
    queries: Sequence[Tuple[str, object]],
) -> FrozenSet[Tuple[str, ...]]:
    """Project models onto rows of truth values, as in the paper's Table 4.

    ``queries`` is a sequence of ``(label, probe)`` pairs where a probe is
    either ``(concept, individual)`` or ``(role, source, target)``.  The
    result is the set of distinct rows (as strings ``t``, ``f``, ``TOP``,
    ``BOT``) realised by the models.
    """
    rows = set()
    for model in models:
        row: List[str] = []
        for _label, probe in queries:
            if len(probe) == 2:
                concept, individual = probe
                row.append(str(model.concept_value(concept, individual)))
            else:
                role, source, target = probe
                row.append(str(model.role_value(role, source, target)))
        rows.add(tuple(row))
    return frozenset(rows)


def _is_product(pairs: FrozenSet[Tuple[Element, Element]]) -> bool:
    if not pairs:
        return True
    firsts = {x for (x, _) in pairs}
    seconds = {y for (_, y) in pairs}
    return len(pairs) == len(firsts) * len(seconds)
