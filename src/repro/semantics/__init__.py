"""Explicit model theory: Table 1 / Table 2-3 evaluators and enumerators.

The classes here are executable transcriptions of the paper's semantic
tables over finite structures, plus brute-force model enumeration used to
cross-validate the tableau and to regenerate Table 4.
"""

from .interpretation import Interpretation
from .four_interpretation import DataRolePair, FourInterpretation, RolePair
from .enumeration import (
    classical_satisfiable_by_enumeration,
    enumerate_classical_models,
    enumerate_four_models,
    four_satisfiable_by_enumeration,
    truth_patterns,
)

__all__ = [
    "Interpretation",
    "DataRolePair",
    "FourInterpretation",
    "RolePair",
    "classical_satisfiable_by_enumeration",
    "enumerate_classical_models",
    "enumerate_four_models",
    "four_satisfiable_by_enumeration",
    "truth_patterns",
]
