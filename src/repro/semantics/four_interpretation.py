"""Four-valued interpretations of SHOIN(D)4 — paper Tables 2 and 3.

A :class:`FourInterpretation` assigns every atomic concept an evidence
pair ``<P, N>`` over the domain and every role a pair of positive/negative
pair-sets; :meth:`FourInterpretation.extension` evaluates any concept by
the Table 2 equations and :meth:`FourInterpretation.satisfies` checks
four-valued axioms by Table 3.

Two places deliberately deviate from the paper's literal tables, both
documented in DESIGN.md:

* **Datatype quantifier rows.**  Table 2's datatype rows as printed break
  the De Morgan dualities the paper itself proves (Proposition 4) for the
  object case (they test ``y in D`` where the object analogue tests
  membership of the *negative* projection, and use ``proj-`` of the role
  where the analogue uses ``proj+``).  We implement the object-analogue
  semantics: ``(not some U.D) = all U.not D`` holds by construction.
* **Material role inclusion.**  Table 3 prints ``Delta x Delta \\
  proj+(R1) <= proj+(R2)``; the proof of Theorem 6 uses ``proj-`` (it maps
  ``R1 |-> R2`` to ``R1= [= R2+`` with ``(R1=) = complement of N1``), so we
  implement the proof's version.

The paper restricts role extensions to product form ``<P1 x P2, N1 x N2>``
in Table 2 but its own Example 4 models use non-product negative parts;
the class accepts arbitrary pair sets and offers :meth:`is_product_form`
for callers that want the restriction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Tuple

from ..dl import axioms as ax
from ..dl.concepts import (
    And,
    AtLeast,
    AtMost,
    AtomicConcept,
    Bottom,
    Concept,
    DataAtLeast,
    DataAtMost,
    DataExists,
    DataForall,
    Exists,
    Forall,
    Not,
    OneOf,
    Or,
    QualifiedAtLeast,
    QualifiedAtMost,
    Top,
)
from ..dl.individuals import DataValue, Individual
from ..dl.roles import AtomicRole, DatatypeRole, ObjectRole
from ..fourvalued.bilattice import BilatticePair
from ..fourvalued.truth import FourValue, from_evidence
from ..four_dl.axioms4 import (
    ConceptInclusion4,
    DatatypeRoleInclusion4,
    InclusionKind,
    KnowledgeBase4,
    RoleInclusion4,
    Transitivity4,
)

Element = Hashable
Pair = Tuple[Element, Element]
DataPair = Tuple[Element, DataValue]


@dataclass(frozen=True)
class RolePair:
    """Positive/negative evidence sets of pairs for one role."""

    positive: FrozenSet[Pair]
    negative: FrozenSet[Pair]

    @staticmethod
    def of(positive: Iterable[Pair] = (), negative: Iterable[Pair] = ()) -> "RolePair":
        return RolePair(frozenset(positive), frozenset(negative))


EMPTY_ROLE = RolePair(frozenset(), frozenset())


@dataclass
class FourInterpretation:
    """A finite four-valued interpretation of SHOIN(D)4.

    ``data_domain`` is the finite active concrete domain used when
    datatype restrictions quantify or count over data values (the abstract
    semantics uses the infinite value space; on finite structures the
    active domain is the standard surrogate).
    """

    domain: FrozenSet[Element]
    concept_ext: Dict[AtomicConcept, BilatticePair] = field(default_factory=dict)
    role_ext: Dict[AtomicRole, RolePair] = field(default_factory=dict)
    data_role_ext: Dict[DatatypeRole, "DataRolePair"] = field(default_factory=dict)
    individual_map: Dict[Individual, Element] = field(default_factory=dict)
    data_domain: FrozenSet[DataValue] = frozenset()

    @staticmethod
    def named(
        individuals: Iterable[Individual],
        concept_ext: Mapping[AtomicConcept, BilatticePair] = (),
        role_ext: Mapping[AtomicRole, RolePair] = (),
        data_role_ext: Mapping[DatatypeRole, "DataRolePair"] = (),
        data_domain: Iterable[DataValue] = (),
    ) -> "FourInterpretation":
        """An interpretation whose domain is the individuals themselves."""
        individuals = list(individuals)
        return FourInterpretation(
            domain=frozenset(individuals),
            concept_ext=dict(concept_ext),
            role_ext=dict(role_ext),
            data_role_ext=dict(data_role_ext),
            individual_map={i: i for i in individuals},
            data_domain=frozenset(data_domain),
        )

    # ------------------------------------------------------------------
    # Role extensions
    # ------------------------------------------------------------------
    def role_pair(self, role: ObjectRole) -> RolePair:
        """The ``<P, N>`` pair-set extension of a role expression."""
        base = self.role_ext.get(role.named, EMPTY_ROLE)
        if role.is_inverse:
            return RolePair(
                frozenset((y, x) for (x, y) in base.positive),
                frozenset((y, x) for (x, y) in base.negative),
            )
        return base

    def data_role_pair(self, role: DatatypeRole) -> "DataRolePair":
        return self.data_role_ext.get(role, DataRolePair(frozenset(), frozenset()))

    # ------------------------------------------------------------------
    # Concept extension (Table 2)
    # ------------------------------------------------------------------
    def extension(self, concept: Concept) -> BilatticePair:
        """The evidence pair ``C^I = <P, N>`` per Table 2."""
        if isinstance(concept, AtomicConcept):
            return self.concept_ext.get(
                concept, BilatticePair(frozenset(), frozenset())
            )
        if isinstance(concept, Top):
            return BilatticePair(self.domain, frozenset())
        if isinstance(concept, Bottom):
            return BilatticePair(frozenset(), self.domain)
        if isinstance(concept, Not):
            return self.extension(concept.operand).negate()
        if isinstance(concept, And):
            result = BilatticePair(self.domain, frozenset())
            for operand in concept.operands:
                result = result.meet_t(self.extension(operand))
            return result
        if isinstance(concept, Or):
            result = BilatticePair(frozenset(), self.domain)
            for operand in concept.operands:
                result = result.join_t(self.extension(operand))
            return result
        if isinstance(concept, OneOf):
            positive = frozenset(
                self.individual_map[i]
                for i in concept.individuals
                if i in self.individual_map
            )
            # Table 2 leaves the negative part N of a nominal unconstrained;
            # the least-information choice is the empty set.
            return BilatticePair(positive, frozenset())
        if isinstance(concept, Exists):
            role = self.role_pair(concept.role)
            filler = self.extension(concept.filler)
            positive = frozenset(
                x
                for x in self.domain
                if any(
                    (x, y) in role.positive and y in filler.positive
                    for y in self.domain
                )
            )
            negative = frozenset(
                x
                for x in self.domain
                if all(
                    y in filler.negative
                    for y in self.domain
                    if (x, y) in role.positive
                )
            )
            return BilatticePair(positive, negative)
        if isinstance(concept, Forall):
            role = self.role_pair(concept.role)
            filler = self.extension(concept.filler)
            positive = frozenset(
                x
                for x in self.domain
                if all(
                    y in filler.positive
                    for y in self.domain
                    if (x, y) in role.positive
                )
            )
            negative = frozenset(
                x
                for x in self.domain
                if any(
                    (x, y) in role.positive and y in filler.negative
                    for y in self.domain
                )
            )
            return BilatticePair(positive, negative)
        if isinstance(concept, AtLeast):
            role = self.role_pair(concept.role)
            positive = frozenset(
                x
                for x in self.domain
                if self._count_positive(role, x) >= concept.n
            )
            negative = frozenset(
                x
                for x in self.domain
                if self._count_not_negative(role, x) < concept.n
            )
            return BilatticePair(positive, negative)
        if isinstance(concept, AtMost):
            role = self.role_pair(concept.role)
            positive = frozenset(
                x
                for x in self.domain
                if self._count_not_negative(role, x) <= concept.n
            )
            negative = frozenset(
                x
                for x in self.domain
                if self._count_positive(role, x) > concept.n
            )
            return BilatticePair(positive, negative)
        if isinstance(concept, QualifiedAtLeast):
            # SHOIQ extension, by analogy with Table 2's unqualified rows:
            # positive counts positively-supported fillers, negative counts
            # the pairs not ruled out by either negative evidence.
            role = self.role_pair(concept.role)
            filler = self.extension(concept.filler)
            positive = frozenset(
                x
                for x in self.domain
                if sum(
                    1
                    for y in self.domain
                    if (x, y) in role.positive and y in filler.positive
                )
                >= concept.n
            )
            negative = frozenset(
                x
                for x in self.domain
                if sum(
                    1
                    for y in self.domain
                    if (x, y) not in role.negative and y not in filler.negative
                )
                < concept.n
            )
            return BilatticePair(positive, negative)
        if isinstance(concept, QualifiedAtMost):
            role = self.role_pair(concept.role)
            filler = self.extension(concept.filler)
            positive = frozenset(
                x
                for x in self.domain
                if sum(
                    1
                    for y in self.domain
                    if (x, y) not in role.negative and y not in filler.negative
                )
                <= concept.n
            )
            negative = frozenset(
                x
                for x in self.domain
                if sum(
                    1
                    for y in self.domain
                    if (x, y) in role.positive and y in filler.positive
                )
                > concept.n
            )
            return BilatticePair(positive, negative)
        if isinstance(concept, DataExists):
            role = self.data_role_pair(concept.role)
            positive = frozenset(
                x
                for x in self.domain
                if any(
                    (x, v) in role.positive and concept.range.contains(v)
                    for v in self.data_domain
                )
            )
            negative = frozenset(
                x
                for x in self.domain
                if all(
                    not concept.range.contains(v)
                    for v in self.data_domain
                    if (x, v) in role.positive
                )
            )
            return BilatticePair(positive, negative)
        if isinstance(concept, DataForall):
            role = self.data_role_pair(concept.role)
            positive = frozenset(
                x
                for x in self.domain
                if all(
                    concept.range.contains(v)
                    for v in self.data_domain
                    if (x, v) in role.positive
                )
            )
            negative = frozenset(
                x
                for x in self.domain
                if any(
                    (x, v) in role.positive and not concept.range.contains(v)
                    for v in self.data_domain
                )
            )
            return BilatticePair(positive, negative)
        if isinstance(concept, DataAtLeast):
            role = self.data_role_pair(concept.role)
            positive = frozenset(
                x
                for x in self.domain
                if self._count_data_positive(role, x) >= concept.n
            )
            negative = frozenset(
                x
                for x in self.domain
                if self._count_data_not_negative(role, x) < concept.n
            )
            return BilatticePair(positive, negative)
        if isinstance(concept, DataAtMost):
            role = self.data_role_pair(concept.role)
            positive = frozenset(
                x
                for x in self.domain
                if self._count_data_not_negative(role, x) <= concept.n
            )
            negative = frozenset(
                x
                for x in self.domain
                if self._count_data_positive(role, x) > concept.n
            )
            return BilatticePair(positive, negative)
        raise TypeError(f"unknown concept kind: {concept!r}")

    def _count_positive(self, role: RolePair, x: Element) -> int:
        return sum(1 for y in self.domain if (x, y) in role.positive)

    def _count_not_negative(self, role: RolePair, x: Element) -> int:
        return sum(1 for y in self.domain if (x, y) not in role.negative)

    def _count_data_positive(self, role: "DataRolePair", x: Element) -> int:
        return sum(1 for v in self.data_domain if (x, v) in role.positive)

    def _count_data_not_negative(self, role: "DataRolePair", x: Element) -> int:
        return sum(1 for v in self.data_domain if (x, v) not in role.negative)

    # ------------------------------------------------------------------
    # Pointwise truth values (Definition 3)
    # ------------------------------------------------------------------
    def concept_value(self, concept: Concept, individual: Individual) -> FourValue:
        """``C^I(a)`` as one of the four truth values."""
        element = self.individual_map[individual]
        return self.extension(concept).value_of(element)

    def role_value(
        self, role: ObjectRole, source: Individual, target: Individual
    ) -> FourValue:
        """``R^I(a, b)`` as one of the four truth values."""
        pair = (self.individual_map[source], self.individual_map[target])
        extension = self.role_pair(role)
        return from_evidence(pair in extension.positive, pair in extension.negative)

    # ------------------------------------------------------------------
    # Axiom satisfaction (Table 3)
    # ------------------------------------------------------------------
    def satisfies(self, axiom: object) -> bool:
        """Whether the interpretation satisfies one SHOIN(D)4 axiom."""
        if isinstance(axiom, ConceptInclusion4):
            sub = self.extension(axiom.sub)
            sup = self.extension(axiom.sup)
            if axiom.kind is InclusionKind.MATERIAL:
                return (self.domain - sub.negative) <= sup.positive
            if axiom.kind is InclusionKind.INTERNAL:
                return sub.positive <= sup.positive
            return (
                sub.positive <= sup.positive and sup.negative <= sub.negative
            )
        if isinstance(axiom, RoleInclusion4):
            sub = self.role_pair(axiom.sub)
            sup = self.role_pair(axiom.sup)
            if axiom.kind is InclusionKind.MATERIAL:
                all_pairs = frozenset(itertools.product(self.domain, repeat=2))
                return (all_pairs - sub.negative) <= sup.positive
            if axiom.kind is InclusionKind.INTERNAL:
                return sub.positive <= sup.positive
            return (
                sub.positive <= sup.positive and sup.negative <= sub.negative
            )
        if isinstance(axiom, DatatypeRoleInclusion4):
            sub = self.data_role_pair(axiom.sub)
            sup = self.data_role_pair(axiom.sup)
            if axiom.kind is InclusionKind.MATERIAL:
                all_pairs = frozenset(
                    itertools.product(self.domain, self.data_domain)
                )
                return (all_pairs - sub.negative) <= sup.positive
            if axiom.kind is InclusionKind.INTERNAL:
                return sub.positive <= sup.positive
            return (
                sub.positive <= sup.positive and sup.negative <= sub.negative
            )
        if isinstance(axiom, Transitivity4):
            positive = self.role_ext.get(axiom.role, EMPTY_ROLE).positive
            return all(
                (x, z) in positive
                for (x, y) in positive
                for (y2, z) in positive
                if y2 == y
            )
        if isinstance(axiom, ax.ConceptAssertion):
            element = self.individual_map[axiom.individual]
            return element in self.extension(axiom.concept).positive
        if isinstance(axiom, ax.RoleAssertion):
            pair = (
                self.individual_map[axiom.source],
                self.individual_map[axiom.target],
            )
            return pair in self.role_pair(axiom.role).positive
        if isinstance(axiom, ax.NegativeRoleAssertion):
            pair = (
                self.individual_map[axiom.source],
                self.individual_map[axiom.target],
            )
            return pair in self.role_pair(axiom.role).negative
        if isinstance(axiom, ax.DataAssertion):
            pair = (self.individual_map[axiom.source], axiom.value)
            return pair in self.data_role_pair(axiom.role).positive
        if isinstance(axiom, ax.SameIndividual):
            return (
                self.individual_map[axiom.left] == self.individual_map[axiom.right]
            )
        if isinstance(axiom, ax.DifferentIndividuals):
            return (
                self.individual_map[axiom.left] != self.individual_map[axiom.right]
            )
        raise TypeError(f"unknown axiom kind: {axiom!r}")

    def is_model(self, kb4: KnowledgeBase4) -> bool:
        """Whether the interpretation satisfies every axiom of the KB4."""
        return all(self.satisfies(axiom) for axiom in kb4.axioms())

    # ------------------------------------------------------------------
    # Structural properties
    # ------------------------------------------------------------------
    def is_classical(self) -> bool:
        """Whether every extension satisfies the two classical constraints.

        With all pairs disjoint and exhaustive the interpretation collapses
        to a Table 1 classical interpretation (paper Section 3.2 closing
        remark).
        """
        for pair in self.concept_ext.values():
            if not pair.is_classical_over(self.domain):
                return False
        all_pairs = frozenset(itertools.product(self.domain, repeat=2))
        for role in self.role_ext.values():
            if role.positive & role.negative:
                return False
            if role.positive | role.negative != all_pairs:
                return False
        return True

    def is_product_form(self, role: AtomicRole) -> bool:
        """Whether the role's extensions are products ``P1xP2`` / ``N1xN2``."""
        extension = self.role_ext.get(role, EMPTY_ROLE)
        return _is_product(extension.positive) and _is_product(extension.negative)


@dataclass(frozen=True)
class DataRolePair:
    """Positive/negative evidence sets of (element, value) pairs."""

    positive: FrozenSet[DataPair]
    negative: FrozenSet[DataPair]

    @staticmethod
    def of(
        positive: Iterable[DataPair] = (), negative: Iterable[DataPair] = ()
    ) -> "DataRolePair":
        return DataRolePair(frozenset(positive), frozenset(negative))


def _is_product(pairs: FrozenSet[Pair]) -> bool:
    """Whether a set of pairs equals the product of its projections."""
    if not pairs:
        return True
    firsts = {x for (x, _) in pairs}
    seconds = {y for (_, y) in pairs}
    return len(pairs) == len(firsts) * len(seconds)
