"""Deletion-based justification search (minimal entailing axiom sets).

Entailment from a knowledge base is monotone: adding axioms never
retracts an answer.  That makes the classic deletion (contraction)
algorithm sound for *any* entailment checker handed in as a callback:
walk the axiom list, drop each axiom in turn, and keep the drop exactly
when the remainder still entails the query.  The result is
subset-minimal — removing any single surviving axiom defeats the
entailment — though not necessarily globally smallest (computing a
cardinality-minimum justification is harder and not needed here).

The tableau's dependency-directed provenance (see
:mod:`repro.dl.tableau`) supplies an *unsat-core seed*: the axioms whose
tags reached the final clash.  The seed is only a hint — it is verified
by a real entailment check before use and the search falls back to the
full axiom list if it fails — so soundness never rests on the
provenance bookkeeping, only performance does.

Every candidate check runs on a freshly built sub-KB with the query
cache bypassed (cached answers describe the *full* KB and would poison
the shrink), and counts into ``ReasonerStats.shrink_probes``.
"""

from __future__ import annotations

from typing import Any, Callable, FrozenSet, List, Optional, Sequence

from ..obs.spans import span as obs_span
from .model import Justification

#: A monotone entailment check over a candidate axiom list.
CheckFn = Callable[[Sequence[Any]], bool]


def _probed(check: CheckFn) -> CheckFn:
    """``check`` wrapped in a ``shrink_probe`` observability span."""

    def probed(candidate: Sequence[Any]) -> bool:
        with obs_span("shrink_probe") as span:
            span.set("candidate_axioms", len(candidate))
            kept = check(candidate)
            span.set("entailed", kept)
            return kept

    return probed


def minimal_justification(
    axioms: Sequence[Any],
    check: CheckFn,
    seed: Optional[FrozenSet[Any]] = None,
) -> Justification:
    """Shrink ``axioms`` to a subset-minimal list still passing ``check``.

    ``axioms`` must already pass ``check`` (the caller establishes the
    entailment first).  ``seed``, when given, is a candidate core (for
    example the tableau's clash provenance); it is trusted only after
    ``check`` confirms it and is otherwise discarded.  Axioms are
    considered for deletion in list order, so the result is
    deterministic for a fixed knowledge base ordering regardless of
    cache state or prior queries.

    >>> axioms = ["a", "b", "c", "d"]
    >>> entails = lambda kept: "b" in kept and "d" in kept
    >>> minimal_justification(axioms, entails).axioms
    ('b', 'd')
    """
    with obs_span("justify") as span:
        check = _probed(check)
        core: List[Any] = list(axioms)
        span.set("candidates", len(core))
        span.set("seeded", seed is not None)
        if seed is not None and len(seed) < len(core):
            seeded = [axiom for axiom in core if axiom in seed]
            if check(seeded):
                core = seeded
        index = 0
        while index < len(core):
            candidate = core[:index] + core[index + 1 :]
            if check(candidate):
                core = candidate
            else:
                index += 1
        span.set("kept", len(core))
        return Justification(tuple(core))


def is_minimal(justification: Justification, check: CheckFn) -> bool:
    """True when ``check`` fails after removing any single axiom.

    Used by the test battery to verify minimality independently of the
    shrinking code that produced the justification.
    """
    axioms = list(justification.axioms)
    if not check(axioms):
        return False
    for index in range(len(axioms)):
        if check(axioms[:index] + axioms[index + 1 :]):
            return False
    return True
