"""Human-readable rendering of explanations, justifications, and traces.

Axioms print in the concrete syntax of :mod:`repro.dl.printer`.
Four-valued inclusions are additionally annotated with their Table 3
inclusion strength (``material |->``, ``internal <``, ``strong ->``) so
an explanation of a ``Reasoner4`` answer reads in terms of the original
SHOIN(D)4 ontology, never the induced ``A__pos``/``A__neg`` signature.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..dl import axioms as ax
from ..dl.printer import render_axiom, render_concept
from ..four_dl.axioms4 import (
    ConceptInclusion4,
    DatatypeRoleInclusion4,
    RoleInclusion4,
    Transitivity4,
)
from .model import Explanation, InconsistencyExplanation, Trace, TraceEvent


def axiom_annotation(axiom: Any) -> str:
    """A short tag describing the axiom's species and strength."""
    if isinstance(
        axiom, (ConceptInclusion4, RoleInclusion4, DatatypeRoleInclusion4)
    ):
        return f"{axiom.kind.name.lower()} inclusion ({axiom.kind.symbol})"
    if isinstance(axiom, Transitivity4):
        return "transitivity"
    if isinstance(axiom, ax.ABoxAxiom):
        return "assertion"
    if isinstance(axiom, ax.TBoxAxiom):
        return "classical axiom"
    return "axiom"


def render_justification_lines(axioms: Any, indent: str = "  ") -> List[str]:
    """One ``axiom  [annotation]`` line per justification member."""
    rendered = [(render_axiom(axiom), axiom_annotation(axiom)) for axiom in axioms]
    width = max((len(text) for text, _ in rendered), default=0)
    return [f"{indent}{text.ljust(width)}  [{tag}]" for text, tag in rendered]


def render_explanation(
    explanation: Explanation, heading: Optional[str] = None
) -> str:
    """Multi-line rendering of an :class:`Explanation`."""
    lines: List[str] = []
    if heading:
        lines.append(heading)
    query = explanation.query
    try:
        query_text = render_axiom(query)
    except Exception:
        query_text = repr(query)
    lines.append(f"query: {query_text}")
    if not explanation.entailed:
        lines.append("not entailed: no justification exists")
    else:
        many = len(explanation.justifications) > 1
        for index, justification in enumerate(explanation.justifications, 1):
            label = f" {index}" if many else ""
            lines.append(
                f"justification{label} ({len(justification)} axiom"
                f"{'s' if len(justification) != 1 else ''}, minimal):"
            )
            lines.extend(render_justification_lines(justification))
    for trace in explanation.traces:
        lines.append(render_trace_summary(trace))
    return "\n".join(lines)


def render_inconsistency(
    explanation: InconsistencyExplanation, heading: Optional[str] = None
) -> str:
    """Multi-line rendering of an :class:`InconsistencyExplanation`."""
    lines: List[str] = []
    if heading:
        lines.append(heading)
    if explanation.consistent:
        lines.append("consistent: nothing to explain")
    else:
        justification = explanation.justification
        if justification is None:
            lines.append("inconsistent (no minimal core computed)")
        else:
            lines.append(
                f"minimal inconsistent core ({len(justification)} axiom"
                f"{'s' if len(justification) != 1 else ''}):"
            )
            lines.extend(render_justification_lines(justification))
    for trace in explanation.traces:
        lines.append(render_trace_summary(trace))
    return "\n".join(lines)


def _render_fact_key(key: Any) -> str:
    """Compact rendering of a trail fact key for trace output."""
    if not isinstance(key, tuple) or not key:
        return repr(key)
    kind = key[0]
    if kind in ("L", "DL") and len(key) == 3:
        try:
            return f"{kind}(n{key[1]}: {render_concept(key[2])})"
        except Exception:
            return f"{kind}(n{key[1]}: {key[2]!r})"
    if kind in ("E", "DE", "F") and len(key) == 4:
        role = getattr(key[3], "name", key[3])
        return f"{kind}({role}: n{key[1]} -> n{key[2]})"
    return repr(key)


def render_trace_event(event: TraceEvent) -> str:
    """One line per :class:`TraceEvent`."""
    pad = "  " * min(event.depth, 8)
    if event.kind == "init":
        nodes, facts = event.payload
        return f"{pad}init: {nodes} nodes, {facts} facts"
    if event.kind == "derive":
        return f"{pad}derive {_render_fact_key(event.payload[0])}"
    if event.kind == "choice":
        level, description, alternatives = event.payload
        return f"{pad}branch point L{level}: {description} ({alternatives} alternatives)"
    if event.kind == "try":
        level, description = event.payload
        return f"{pad}try L{level}: {description}"
    if event.kind == "clash":
        reason, axioms = event.payload
        line = f"{pad}clash: {reason}"
        if axioms:
            cited = "; ".join(render_axiom(axiom) for axiom in axioms)
            line += f"  [from: {cited}]"
        return line
    if event.kind == "backjump":
        from_level, to_level, skipped = event.payload
        return (
            f"{pad}backjump L{from_level} -> L{to_level}"
            f" (skipped {skipped} branch points)"
        )
    if event.kind == "verdict":
        return f"{pad}verdict: {'satisfiable' if event.payload[0] else 'unsatisfiable'}"
    return f"{pad}{event.kind}: {event.payload!r}"


def render_trace(trace: Trace, max_lines: Optional[int] = None) -> str:
    """Full (optionally capped) line-per-event rendering of a trace."""
    events = trace.events if max_lines is None else trace.events[:max_lines]
    lines = [render_trace_event(event) for event in events]
    dropped = len(trace.events) - len(events)
    if dropped:
        lines.append(f"... {dropped} more events")
    if trace.truncated:
        lines.append(f"... trace truncated at {trace.max_events} events")
    return "\n".join(lines)


def render_trace_summary(trace: Trace) -> str:
    """A one-line digest of a trace (event counts + verdict)."""
    counts = trace.counts()
    bits = [
        f"{counts.get(kind, 0)} {label}"
        for kind, label in (
            ("derive", "facts derived"),
            ("choice", "branch points"),
            ("clash", "clashes"),
            ("backjump", "backjumps"),
        )
    ]
    verdict = trace.verdict
    tail = (
        "unfinished"
        if verdict is None
        else ("satisfiable" if verdict else "unsatisfiable")
    )
    return f"trace: {', '.join(bits)} -> {tail}"
