"""Explanation and provenance: justifications, clash traces, rendering.

The reasoning layers answer *whether* an entailment holds; this package
answers *why*.  It has three parts:

* :mod:`.model` — the :class:`~repro.explain.model.Trace` /
  :class:`~repro.explain.model.Explanation` /
  :class:`~repro.explain.model.Justification` containers;
* :mod:`.justify` — deletion-based shrinking to a subset-minimal axiom
  set, seeded (but never trusted blindly) by the tableau's clash
  provenance;
* :mod:`.render` — terminal rendering, annotating four-valued axioms
  with their Table 3 inclusion strength.

Entry points for users are
:meth:`repro.dl.reasoner.Reasoner.explain`,
:meth:`repro.four_dl.reasoner4.Reasoner4.explain`, and the CLI's
``--explain`` / ``--trace`` flags.
"""

from .justify import is_minimal, minimal_justification
from .model import (
    DEFAULT_MAX_EVENTS,
    Explanation,
    InconsistencyExplanation,
    Justification,
    Trace,
    TraceEvent,
)
from .render import (
    render_explanation,
    render_inconsistency,
    render_justification_lines,
    render_trace,
    render_trace_summary,
)

__all__ = [
    "DEFAULT_MAX_EVENTS",
    "Explanation",
    "InconsistencyExplanation",
    "Justification",
    "Trace",
    "TraceEvent",
    "is_minimal",
    "minimal_justification",
    "render_explanation",
    "render_inconsistency",
    "render_justification_lines",
    "render_trace",
    "render_trace_summary",
]
