"""Data model for explanations: traces, events, and justifications.

A :class:`Trace` is attached to a single tableau run and records the
structured search events — facts derived, branch points opened,
alternatives tried, clashes (with the facts and source axioms involved),
dependency-directed backjumps, and the final verdict.  A
:class:`Justification` is a subset-minimal set of knowledge-base axioms
that entails a query, and an :class:`Explanation` bundles the query, the
entailment verdict, the justification(s), and any traces gathered along
the way.

All three are plain containers; the search logic that fills a trace
lives in :mod:`repro.dl.tableau` and the minimisation logic in
:mod:`repro.explain.justify`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default cap on recorded events; runs emitting more mark the trace
#: ``truncated`` instead of growing without bound.
DEFAULT_MAX_EVENTS = 10_000


@dataclass(frozen=True)
class TraceEvent:
    """One structured search event.

    ``kind`` is one of:

    * ``"init"``     — run started; payload ``(node_count, fact_count)``;
    * ``"derive"``   — a fact was added; payload is the trail fact key
      (``("L", node, concept)``, ``("E", source, target, role)``, ...);
    * ``"choice"``   — a branch point was opened; payload
      ``(level, description, alternatives)``;
    * ``"try"``      — an alternative was applied; payload
      ``(level, description)``;
    * ``"clash"``    — a contradiction was found; payload
      ``(reason, axioms)`` where ``axioms`` are the source axioms the
      clash depends on (empty when provenance is not tracked);
    * ``"backjump"`` — the search jumped over branch points; payload
      ``(from_level, to_level, skipped)``;
    * ``"verdict"``  — run finished; payload ``(satisfiable,)``.

    ``depth`` is the branch-stack depth at emission time.
    """

    kind: str
    payload: Tuple[Any, ...]
    depth: int = 0


class Trace:
    """A bounded recorder of :class:`TraceEvent` objects for one run.

    Pass an instance as the ``trace=`` argument of
    :meth:`repro.dl.tableau.Tableau.is_satisfiable` (trail search only),
    or let :meth:`repro.dl.reasoner.Reasoner.explain` build one for you
    via ``trace=True``.

    >>> trace = Trace(max_events=2)
    >>> trace.emit("derive", (("L", 0, "C"),))
    >>> trace.emit("clash", ("complement", ()))
    >>> trace.emit("verdict", (False,))  # over the cap: dropped
    >>> [event.kind for event in trace.events], trace.truncated
    (['derive', 'clash'], True)
    """

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self.events: List[TraceEvent] = []
        self.max_events = max_events
        self.truncated = False
        #: Optional ReasonerStats; set by the tableau when the run starts
        #: so ``trace_events`` counts recorded events.
        self.stats: Optional[Any] = None

    def emit(self, kind: str, payload: Tuple[Any, ...], depth: int = 0) -> None:
        """Record one event (silently dropped once ``max_events`` is hit)."""
        if len(self.events) >= self.max_events:
            self.truncated = True
            return
        self.events.append(TraceEvent(kind, tuple(payload), depth))
        if self.stats is not None:
            self.stats.trace_events += 1

    def counts(self) -> Dict[str, int]:
        """Event counts per kind, in first-seen order."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    @property
    def clashes(self) -> List[TraceEvent]:
        """The recorded clash events."""
        return [event for event in self.events if event.kind == "clash"]

    @property
    def branch_points(self) -> List[TraceEvent]:
        """The recorded branch-point (``choice``) events."""
        return [event for event in self.events if event.kind == "choice"]

    @property
    def verdict(self) -> Optional[bool]:
        """The run's satisfiability verdict, or ``None`` if unfinished."""
        for event in reversed(self.events):
            if event.kind == "verdict":
                return bool(event.payload[0])
        return None

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        summary = ", ".join(f"{k}={v}" for k, v in self.counts().items())
        return f"Trace({summary or 'empty'})"


@dataclass(frozen=True)
class Justification:
    """A subset-minimal set of axioms entailing one query.

    ``axioms`` preserves knowledge-base order; removing any single
    member defeats the entailment (the minimality tests assert exactly
    this).  For four-valued queries the axioms are the *original* KB4
    axioms — material/internal/strong inclusions and assertions — not
    the induced classical ``A__pos``/``A__neg`` artifacts.
    """

    axioms: Tuple[Any, ...]

    def __len__(self) -> int:
        return len(self.axioms)

    def __iter__(self):
        return iter(self.axioms)

    def __contains__(self, axiom: Any) -> bool:
        return axiom in self.axioms


@dataclass(frozen=True)
class Explanation:
    """The full answer to ``explain(query)``.

    * ``query`` — the axiom (classical or four-valued) that was asked;
    * ``entailed`` — whether the knowledge base entails it;
    * ``justifications`` — one :class:`Justification` per independent
      evidence direction (empty when not entailed; a strong inclusion or
      an equivalence contributes a single merged justification because
      both directions must hold together);
    * ``traces`` — the clash traces of the probe runs, when requested.
    """

    query: Any
    entailed: bool
    justifications: Tuple[Justification, ...] = ()
    traces: Tuple[Trace, ...] = ()

    @property
    def justification(self) -> Optional[Justification]:
        """The first justification, or ``None`` when not entailed."""
        return self.justifications[0] if self.justifications else None

    def render(self, heading: Optional[str] = None) -> str:
        """Human-readable multi-line rendering (see :mod:`.render`)."""
        from .render import render_explanation

        return render_explanation(self, heading=heading)


@dataclass(frozen=True)
class InconsistencyExplanation:
    """Why a knowledge base is unsatisfiable/inconsistent.

    ``justification`` is a subset-minimal axiom set that is already
    unsatisfiable on its own (a MUPS); ``traces`` optionally carry the
    clash trace of the refutation run.
    """

    consistent: bool
    justification: Optional[Justification] = None
    traces: Tuple[Trace, ...] = field(default_factory=tuple)

    def render(self, heading: Optional[str] = None) -> str:
        """Human-readable multi-line rendering (see :mod:`.render`)."""
        from .render import render_inconsistency

        return render_inconsistency(self, heading=heading)
