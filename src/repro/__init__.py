"""repro: a paraconsistent OWL DL reasoning library.

Reproduction of "Inferring with Inconsistent OWL DL Ontology: A
Multi-valued Logic Approach" (Ma, Lin & Lin, 2006): the four-valued
description logic SHOIN(D)4, its polynomial reduction to classical
SHOIN(D), a from-scratch SHOIN(D) tableau reasoner, explicit model
theory for both semantics, baselines, workloads, and an experiment
harness regenerating every table and example of the paper.

Quick start::

    from repro.dl import AtomicConcept, ConceptAssertion, Individual, Not
    from repro.four_dl import KnowledgeBase4, Reasoner4, internal

    A = AtomicConcept("Penguin")
    kb4 = KnowledgeBase4().add(
        ConceptAssertion(Individual("tweety"), A),
        ConceptAssertion(Individual("tweety"), Not(A)),
    )
    Reasoner4(kb4).assertion_value(Individual("tweety"), A)  # -> BOTH
"""

__version__ = "1.0.0"

from . import (
    baselines,
    dl,
    eval,
    explain,
    four_dl,
    fourvalued,
    harness,
    obs,
    semantics,
    workloads,
)

__all__ = [
    "__version__",
    "baselines",
    "dl",
    "eval",
    "explain",
    "four_dl",
    "fourvalued",
    "harness",
    "obs",
    "semantics",
    "workloads",
]
