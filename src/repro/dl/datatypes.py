"""Concrete domain (datatype) ranges for SHOIN(D).

The paper keeps datatype concepts two-valued ("we don't consider the
four-valued semantics of datatype concepts"), so this module implements a
classical concrete domain: primitive datatypes (integer, float, string,
boolean), enumerations (``DataOneOf``), integer facet ranges, and Boolean
combinations.  Besides membership testing, ranges support a *witness
search* used by the tableau to decide satisfiability of conjunctions of
ranges and to produce the ``n`` distinct values needed by datatype at-least
restrictions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, List, Optional, Tuple

from .individuals import DataValue


class DataRange:
    """Base class of concrete-domain range expressions."""

    def contains(self, value: DataValue) -> bool:
        """Whether the data value belongs to this range."""
        raise NotImplementedError

    def negate(self) -> "DataRange":
        """The complement range (used when pushing negations inward)."""
        return DataComplement(self)

    def mentioned_values(self) -> Iterable[DataValue]:
        """Data values syntactically anchored in this range.

        The witness search seeds its candidate stream with these, so any
        subclass holding concrete values (enumerations, exact values,
        bounds) must report them here to stay findable.
        """
        return ()


@dataclass(frozen=True)
class DataTop(DataRange):
    """The universal data range (all data values)."""

    def contains(self, value: DataValue) -> bool:
        return True

    def __repr__(self) -> str:
        return "rdfs:Literal"


@dataclass(frozen=True)
class DataBottom(DataRange):
    """The empty data range."""

    def contains(self, value: DataValue) -> bool:
        return False

    def __repr__(self) -> str:
        return "owl:NothingData"


@dataclass(frozen=True)
class Datatype(DataRange):
    """A primitive datatype such as ``integer`` or ``string``."""

    name: str

    def contains(self, value: DataValue) -> bool:
        return value.datatype == self.name

    def __repr__(self) -> str:
        return f"xsd:{self.name}"


@dataclass(frozen=True)
class DataOneOf(DataRange):
    """An enumerated data range ``{v1, ...}`` (paper Table 1, datatype oneOf)."""

    values: FrozenSet[DataValue]

    @staticmethod
    def of(*values: object) -> "DataOneOf":
        """Build from raw Python values."""
        return DataOneOf(frozenset(DataValue.of(v) for v in values))

    def contains(self, value: DataValue) -> bool:
        return value in self.values

    def __repr__(self) -> str:
        inner = ", ".join(sorted(repr(v) for v in self.values))
        return "{" + inner + "}"


@dataclass(frozen=True)
class IntRange(DataRange):
    """An integer facet range ``[minimum, maximum]`` (either bound optional)."""

    minimum: Optional[int] = None
    maximum: Optional[int] = None

    def contains(self, value: DataValue) -> bool:
        if value.datatype != "integer":
            return False
        number = int(value.lexical)
        if self.minimum is not None and number < self.minimum:
            return False
        if self.maximum is not None and number > self.maximum:
            return False
        return True

    def __repr__(self) -> str:
        low = "-inf" if self.minimum is None else str(self.minimum)
        high = "+inf" if self.maximum is None else str(self.maximum)
        return f"int[{low}..{high}]"


@dataclass(frozen=True)
class DataComplement(DataRange):
    """The complement of a data range."""

    operand: DataRange

    def contains(self, value: DataValue) -> bool:
        return not self.operand.contains(value)

    def negate(self) -> DataRange:
        return self.operand

    def __repr__(self) -> str:
        return f"not({self.operand!r})"


@dataclass(frozen=True)
class DataAnd(DataRange):
    """Intersection of data ranges."""

    operands: Tuple[DataRange, ...]

    def contains(self, value: DataValue) -> bool:
        return all(r.contains(value) for r in self.operands)

    def __repr__(self) -> str:
        return "(" + " and ".join(repr(r) for r in self.operands) + ")"


@dataclass(frozen=True)
class DataOr(DataRange):
    """Union of data ranges."""

    operands: Tuple[DataRange, ...]

    def contains(self, value: DataValue) -> bool:
        return any(r.contains(value) for r in self.operands)

    def __repr__(self) -> str:
        return "(" + " or ".join(repr(r) for r in self.operands) + ")"


# ---------------------------------------------------------------------------
# Witness search
# ---------------------------------------------------------------------------

def _mentioned_values(range_: DataRange) -> Iterator[DataValue]:
    """Data values syntactically mentioned inside a range expression."""
    if isinstance(range_, DataOneOf):
        yield from range_.values
    elif isinstance(range_, DataComplement):
        yield from _mentioned_values(range_.operand)
    elif isinstance(range_, (DataAnd, DataOr)):
        for operand in range_.operands:
            yield from _mentioned_values(operand)
    elif isinstance(range_, IntRange):
        if range_.minimum is not None:
            yield DataValue.of(range_.minimum)
        if range_.maximum is not None:
            yield DataValue.of(range_.maximum)
    else:
        yield from range_.mentioned_values()


def _candidate_values(ranges: Iterable[DataRange], want: int) -> Iterator[DataValue]:
    """A stream of candidate witnesses for a conjunction of ranges.

    Mentioned values first (they decide enumerations), then integer values
    spiralling out from mentioned bounds, then fresh strings and floats.
    The stream is deterministic, which keeps the tableau reproducible.
    """
    seen = set()
    for range_ in ranges:
        for value in sorted(_mentioned_values(range_)):
            if value not in seen:
                seen.add(value)
                yield value
    anchors = sorted(
        {int(v.lexical) for v in seen if v.datatype == "integer"} or {0}
    )
    for offset in range(want + 8):
        for anchor in anchors:
            for number in (anchor + offset, anchor - offset):
                value = DataValue.of(number)
                if value not in seen:
                    seen.add(value)
                    yield value
    for index in range(want + 8):
        for value in (
            DataValue.of(f"witness_{index}"),
            DataValue.of(float(index) + 0.5),
            DataValue("boolean", "true" if index % 2 == 0 else "false"),
        ):
            if value not in seen:
                seen.add(value)
                yield value


def find_witnesses(ranges: Iterable[DataRange], count: int = 1) -> Optional[List[DataValue]]:
    """Find ``count`` distinct values satisfying every range, or ``None``.

    Complete for the range language implemented here: every satisfiable
    conjunction is witnessed either by a mentioned value, by an integer near
    a mentioned bound, or by a fresh string/float/boolean, all of which the
    candidate stream covers.
    """
    ranges = list(ranges)
    witnesses: List[DataValue] = []
    for value in itertools.islice(_candidate_values(ranges, count), 4096):
        if all(r.contains(value) for r in ranges):
            witnesses.append(value)
            if len(witnesses) >= count:
                return witnesses
    return None


def conjunction_satisfiable(ranges: Iterable[DataRange]) -> bool:
    """Whether a conjunction of data ranges has at least one member."""
    return find_witnesses(ranges, 1) is not None


INTEGER = Datatype("integer")
STRING = Datatype("string")
FLOAT = Datatype("float")
BOOLEAN = Datatype("boolean")
