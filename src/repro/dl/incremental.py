"""Fine-grained invalidation support: change logs and locality analysis.

Live ontology editing mutates a knowledge base constantly; recomputing
every derived structure (query cache, saturation closures, taxonomy)
from scratch after each edit throws away almost all of the work the
previous state paid for.  This module supplies the machinery that lets
the reasoners invalidate *only* what a mutation can actually affect:

* :class:`ChangeLog` — a bounded axiom-level mutation journal kept by
  :class:`~repro.dl.kb.KnowledgeBase` (and its four-valued counterpart).
  Each ``add``/``remove`` is recorded against the version counter it
  produced, so a consumer that remembers the version it last synced at
  can ask for exactly the records it missed.  When the journal window
  has been exceeded the log answers ``None`` — the signal to fall back
  to conservative wholesale invalidation, never to guess.
* :func:`net_delta` — multiset arithmetic over a record slice: an axiom
  removed and re-added nets out to no change at all.  The result is an
  over-approximation of the true set delta (safe to invalidate against).
* :func:`is_component_safe` / :func:`affected_atoms` — the locality
  analysis behind incremental classification.  A knowledge base whose
  axioms are all *component-safe* decomposes into signature-connected
  components that cannot constrain each other (disjoint unions of
  component models are models), so subsumption between atoms of
  untouched components survives an edit verbatim.  Safety is decided by
  evaluating each axiom under the empty interpretation: an axiom that
  is satisfied when every name it uses denotes the empty set places no
  constraint on foreign domain elements.  ``Thing subclassof {o}`` is
  the canonical unsafe axiom — its signature is tiny but it bounds the
  whole domain, which is why a syntactic signature-overlap test alone
  would be unsound.

The soundness contract for all of this (what a surviving cache entry or
taxonomy row is allowed to assume) is written up in ``docs/THEORY.md``
section 12.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from . import axioms as ax
from .concepts import (
    And,
    AtLeast,
    AtMost,
    AtomicConcept,
    Bottom,
    Concept,
    DataAtLeast,
    DataAtMost,
    DataExists,
    DataForall,
    Exists,
    Forall,
    Not,
    OneOf,
    Or,
    QualifiedAtLeast,
    QualifiedAtMost,
    Top,
    atomic_concepts,
    datatype_roles,
    nominals,
    object_roles,
)

__all__ = [
    "ChangeLog",
    "ChangeRecord",
    "EditTransaction",
    "net_delta",
    "axiom_signature",
    "is_component_safe",
    "affected_atoms",
]

#: One journal entry: ``("add" | "remove", axiom)``.
ChangeRecord = Tuple[str, ax.Axiom]

#: Journal window: consumers further behind than this get ``None``
#: (conservative full invalidation) instead of an incomplete delta.
LOG_LIMIT = 4096


class ChangeLog:
    """A bounded journal of axiom-level knowledge-base mutations.

    Records are appended with the version counter value the mutation
    produced, so they are version-ascending by construction.  The log
    keeps at least :data:`LOG_LIMIT` records; older entries are trimmed
    and :meth:`since` answers ``None`` for any version below the trimmed
    horizon — "I no longer know what changed", never a partial answer.
    """

    __slots__ = ("_records", "_floor")

    def __init__(self, floor: int = 0):
        self._records: List[Tuple[int, str, ax.Axiom]] = []
        self._floor = floor

    def record(self, version: int, op: str, axiom: ax.Axiom) -> None:
        """Journal one mutation (``op`` is ``"add"`` or ``"remove"``)."""
        self._records.append((version, op, axiom))
        if len(self._records) > 2 * LOG_LIMIT:
            cut = len(self._records) - LOG_LIMIT
            self._floor = self._records[cut - 1][0]
            del self._records[:cut]

    def since(self, version: int) -> Optional[List[ChangeRecord]]:
        """The records after ``version``, oldest first.

        ``None`` when ``version`` predates the journal window, meaning
        the caller must fall back to wholesale invalidation.
        """
        if version < self._floor:
            return None
        index = len(self._records)
        while index > 0 and self._records[index - 1][0] > version:
            index -= 1
        return [(op, axiom) for _, op, axiom in self._records[index:]]


class EditTransaction:
    """An atomic batch of mutations, applied on clean context exit.

    Returned by ``KnowledgeBase.edit()`` (and the four-valued mirror).
    Operations are *deferred*: nothing touches the knowledge base until
    the ``with`` block exits without an exception, at which point the
    whole batch is validated (strict ``remove`` of an absent axiom
    raises before anything is applied) and then journalled as ordinary
    ``add_axiom``/``remove_axiom`` calls.  An exception inside the block
    discards the batch, leaving the knowledge base untouched.

    The host knowledge base must provide the mutation protocol:
    ``add_axiom``/``remove_axiom`` plus the private ``_expanded`` (axiom
    to stored-form expansion) and ``_count`` (stored-form multiplicity)
    hooks.
    """

    def __init__(self, kb):
        self._kb = kb
        self._ops: List[Tuple[str, ax.Axiom]] = []

    def add(self, axiom: ax.Axiom) -> "EditTransaction":
        """Queue an addition."""
        self._ops.append(("add", axiom))
        return self

    def remove(self, axiom: ax.Axiom) -> "EditTransaction":
        """Queue a strict removal (absent axiom fails the whole batch)."""
        self._ops.append(("remove", axiom))
        return self

    def retract(self, axiom: ax.Axiom) -> "EditTransaction":
        """Queue a remove-if-present (absent axiom is a no-op)."""
        self._ops.append(("retract", axiom))
        return self

    def __enter__(self) -> "EditTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            return False  # abandon the batch, propagate the exception
        delta: Counter = Counter()
        plan: List[Tuple[str, ax.Axiom]] = []
        for op, axiom in self._ops:
            expanded = self._kb._expanded(axiom)
            if op == "add":
                for concrete in expanded:
                    delta[concrete] += 1
                plan.append(("add", axiom))
                continue
            need = Counter(expanded)
            present = all(
                self._kb._count(concrete) + delta[concrete] >= count
                for concrete, count in need.items()
            )
            if not present:
                if op == "remove":
                    raise ValueError(f"axiom not present: {axiom!r}")
                continue  # retract of an absent axiom: no-op
            for concrete in expanded:
                delta[concrete] -= 1
            plan.append(("remove", axiom))
        for op, axiom in plan:
            if op == "add":
                self._kb.add_axiom(axiom)
            else:
                self._kb.remove_axiom(axiom)
        return False


def net_delta(
    records: Iterable[ChangeRecord],
) -> Tuple[FrozenSet[ax.Axiom], FrozenSet[ax.Axiom]]:
    """The ``(added, removed)`` multiset delta of a record slice.

    An axiom removed and later re-added (or vice versa) cancels out.
    Because knowledge bases are axiom *multisets*, removing one copy of
    a duplicated axiom nets to "removed" here even though another copy
    remains — an over-approximation that only ever invalidates more
    than strictly necessary, never less.
    """
    counts: Counter = Counter()
    for op, axiom in records:
        counts[axiom] += 1 if op == "add" else -1
    added = frozenset(a for a, n in counts.items() if n > 0)
    removed = frozenset(a for a, n in counts.items() if n < 0)
    return added, removed


# ----------------------------------------------------------------------
# Signature graph
# ----------------------------------------------------------------------
def _concept_vertices(concept: Concept) -> Set[Tuple[str, str]]:
    found: Set[Tuple[str, str]] = set()
    found |= {("c", c.name) for c in atomic_concepts(concept)}
    found |= {("r", r.named.name) for r in object_roles(concept)}
    found |= {("d", r.name) for r in datatype_roles(concept)}
    found |= {("i", i.name) for i in nominals(concept)}
    return found


def axiom_signature(axiom: ax.Axiom) -> FrozenSet[Tuple[str, str]]:
    """The tagged signature vertices an axiom mentions.

    Vertices are ``("c", name)`` for atomic concepts, ``("r", name)``
    for named object roles (inverses collapse to their named role),
    ``("d", name)`` for datatype roles and ``("i", name)`` for
    individuals (asserted or mentioned in nominals).  Two axioms sharing
    a vertex land in the same component of the signature graph.
    """
    out: Set[Tuple[str, str]] = set()
    if isinstance(axiom, ax.ConceptInclusion):
        out |= _concept_vertices(axiom.sub)
        out |= _concept_vertices(axiom.sup)
    elif isinstance(axiom, ax.ConceptEquivalence):
        out |= _concept_vertices(axiom.left)
        out |= _concept_vertices(axiom.right)
    elif isinstance(axiom, ax.RoleInclusion):
        out |= {("r", axiom.sub.named.name), ("r", axiom.sup.named.name)}
    elif isinstance(axiom, ax.DatatypeRoleInclusion):
        out |= {("d", axiom.sub.name), ("d", axiom.sup.name)}
    elif isinstance(axiom, ax.Transitivity):
        out.add(("r", axiom.role.name))
    elif isinstance(axiom, ax.ConceptAssertion):
        out.add(("i", axiom.individual.name))
        out |= _concept_vertices(axiom.concept)
    elif isinstance(axiom, (ax.RoleAssertion, ax.NegativeRoleAssertion)):
        out |= {
            ("r", axiom.role.named.name),
            ("i", axiom.source.name),
            ("i", axiom.target.name),
        }
    elif isinstance(axiom, ax.DataAssertion):
        out |= {("d", axiom.role.name), ("i", axiom.source.name)}
    elif isinstance(axiom, (ax.SameIndividual, ax.DifferentIndividuals)):
        out |= {("i", axiom.left.name), ("i", axiom.right.name)}
    else:
        raise TypeError(f"unknown axiom kind: {axiom!r}")
    return frozenset(out)


# ----------------------------------------------------------------------
# Component safety (locality under the empty interpretation)
# ----------------------------------------------------------------------
def _empty_eval(concept: Concept) -> bool:
    """Membership of a fresh element in ``concept``, all names empty.

    Evaluates "x in C" for a padding element x of a foreign component:
    every atomic concept and role denotes the empty set, and x is not
    any named individual (so nominals evaluate to false).
    """
    if isinstance(concept, AtomicConcept):
        return False
    if isinstance(concept, Top):
        return True
    if isinstance(concept, Bottom):
        return False
    if isinstance(concept, Not):
        return not _empty_eval(concept.operand)
    if isinstance(concept, And):
        return all(_empty_eval(c) for c in concept.operands)
    if isinstance(concept, Or):
        return any(_empty_eval(c) for c in concept.operands)
    if isinstance(concept, OneOf):
        return False
    if isinstance(concept, (Exists, DataExists)):
        return False
    if isinstance(concept, (Forall, DataForall)):
        return True
    if isinstance(concept, (AtLeast, QualifiedAtLeast, DataAtLeast)):
        return concept.n == 0
    if isinstance(concept, (AtMost, QualifiedAtMost, DataAtMost)):
        return True
    raise TypeError(f"unknown concept kind: {concept!r}")


def is_component_safe(axiom: ax.Axiom) -> bool:
    """Whether an axiom constrains only its own signature component.

    An axiom is component-safe when the empty interpretation satisfies
    it — then a domain element touching none of the axiom's names can
    never violate it, so disjoint unions of per-component models are
    models of the whole knowledge base.  Assertions and role axioms are
    always safe (they constrain named individuals or empty roles);
    concept inclusions are safe iff a foreign element vacuously
    satisfies them, e.g. ``A subclassof B`` is safe while
    ``Thing subclassof {o}`` or ``Thing subclassof A`` are not.
    """
    if isinstance(axiom, ax.ConceptInclusion):
        return not _empty_eval(axiom.sub) or _empty_eval(axiom.sup)
    if isinstance(axiom, ax.ConceptEquivalence):
        return all(is_component_safe(inc) for inc in axiom.inclusions())
    return True


def affected_atoms(
    axioms: Iterable[ax.Axiom],
    dirty_signature: FrozenSet[Tuple[str, str]],
) -> Optional[FrozenSet[AtomicConcept]]:
    """Atomic concepts whose component a dirty signature touches.

    Unions each axiom's signature into connected components and returns
    the atomic concepts reachable from ``dirty_signature``.  Answers
    ``None`` as soon as any axiom is not component-safe — then the
    component decomposition proves nothing and the caller must treat
    every atom as affected.
    """
    parent: Dict[Tuple[str, str], Tuple[str, str]] = {}

    def find(vertex: Tuple[str, str]) -> Tuple[str, str]:
        root = vertex
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[vertex] != root:  # path compression
            parent[vertex], vertex = root, parent[vertex]
        return root

    def union(left: Tuple[str, str], right: Tuple[str, str]) -> None:
        parent[find(left)] = find(right)

    atoms: Set[AtomicConcept] = set()
    for axiom in axioms:
        if not is_component_safe(axiom):
            return None
        signature = axiom_signature(axiom)
        atoms |= {
            AtomicConcept(name) for kind, name in signature if kind == "c"
        }
        first = None
        for vertex in signature:
            if first is None:
                first = find(vertex)
            else:
                union(first, vertex)
    dirty_roots = {find(v) for v in dirty_signature if v in parent}
    # Dirty names not present in the surviving KB still name themselves.
    affected = {
        AtomicConcept(name)
        for kind, name in dirty_signature
        if kind == "c"
    }
    affected |= {
        atom for atom in atoms if find(("c", atom.name)) in dirty_roots
    }
    return frozenset(affected)
