"""Rendering concepts, axioms and KBs back to the concrete syntax.

The inverse of :mod:`repro.dl.parser`: ``parse_concept(render_concept(c))``
returns a concept equal to ``c`` (modulo ``And``/``Or`` flattening, which
the parser also performs).  Round-trip stability is property-tested.
"""

from __future__ import annotations

from typing import Iterable, List

from ..four_dl.axioms4 import (
    ConceptInclusion4,
    DatatypeRoleInclusion4,
    KnowledgeBase4,
    RoleInclusion4,
    Transitivity4,
)
from . import axioms as ax
from .concepts import (
    And,
    AtLeast,
    AtMost,
    AtomicConcept,
    Bottom,
    Concept,
    DataAtLeast,
    DataAtMost,
    DataExists,
    DataForall,
    Exists,
    Forall,
    Not,
    OneOf,
    Or,
    QualifiedAtLeast,
    QualifiedAtMost,
    Top,
)
from .datatypes import (
    DataAnd,
    DataBottom,
    DataComplement,
    DataOneOf,
    DataOr,
    DataRange,
    DataTop,
    Datatype,
    IntRange,
)
from .individuals import DataValue
from .kb import KnowledgeBase
from .roles import DatatypeRole, ObjectRole


def render_role(role: ObjectRole) -> str:
    """Render an object role expression."""
    if role.is_inverse:
        return f"inverse({role.named.name})"
    return role.named.name


def render_range(range_: DataRange) -> str:
    """Render a data range expression."""
    if isinstance(range_, Datatype):
        return range_.name
    if isinstance(range_, DataTop):
        return "(string or not string)"  # no dedicated literal
    if isinstance(range_, DataBottom):
        return "(integer and not integer)"
    if isinstance(range_, IntRange):
        low = "" if range_.minimum is None else str(range_.minimum)
        high = "" if range_.maximum is None else str(range_.maximum)
        return f"integer[{low}..{high}]"
    if isinstance(range_, DataOneOf):
        inner = ", ".join(sorted(_render_literal(v) for v in range_.values))
        return "{" + inner + "}"
    if isinstance(range_, DataComplement):
        return f"not ({render_range(range_.operand)})"
    if isinstance(range_, DataAnd):
        inner = " and ".join(render_range(o) for o in range_.operands)
        return f"({inner})"
    if isinstance(range_, DataOr):
        inner = " or ".join(render_range(o) for o in range_.operands)
        return f"({inner})"
    raise TypeError(f"unknown data range: {range_!r}")


def _render_literal(value: DataValue) -> str:
    if value.datatype == "string":
        return f'"{value.lexical}"'
    return value.lexical


def render_concept(concept: Concept, parenthesize: bool = False) -> str:
    """Render a concept in the parser's grammar."""
    text = _render(concept)
    if parenthesize and " " in text:
        return f"({text})"
    return text


def _render(concept: Concept) -> str:
    if isinstance(concept, AtomicConcept):
        return concept.name
    if isinstance(concept, Top):
        return "Thing"
    if isinstance(concept, Bottom):
        return "Nothing"
    if isinstance(concept, Not):
        return f"not {_wrap(concept.operand)}"
    if isinstance(concept, And):
        return " and ".join(_wrap(c, for_and=True) for c in concept.operands)
    if isinstance(concept, Or):
        return " or ".join(_wrap(c) for c in concept.operands)
    if isinstance(concept, OneOf):
        inner = ", ".join(sorted(i.name for i in concept.individuals))
        return "{" + inner + "}"
    if isinstance(concept, Exists):
        return f"{render_role(concept.role)} some {_wrap(concept.filler)}"
    if isinstance(concept, Forall):
        return f"{render_role(concept.role)} only {_wrap(concept.filler)}"
    if isinstance(concept, AtLeast):
        return f"{render_role(concept.role)} min {concept.n}"
    if isinstance(concept, AtMost):
        return f"{render_role(concept.role)} max {concept.n}"
    if isinstance(concept, QualifiedAtLeast):
        return (
            f"{render_role(concept.role)} min {concept.n} "
            f"{_wrap_filler(concept.filler)}"
        )
    if isinstance(concept, QualifiedAtMost):
        return (
            f"{render_role(concept.role)} max {concept.n} "
            f"{_wrap_filler(concept.filler)}"
        )
    if isinstance(concept, DataExists):
        return f"{concept.role.name} some {render_range(concept.range)}"
    if isinstance(concept, DataForall):
        return f"{concept.role.name} only {render_range(concept.range)}"
    if isinstance(concept, DataAtLeast):
        return f"{concept.role.name} min {concept.n}"
    if isinstance(concept, DataAtMost):
        return f"{concept.role.name} max {concept.n}"
    raise TypeError(f"unknown concept kind: {concept!r}")


def _wrap_filler(concept: Concept) -> str:
    """Qualified-cardinality fillers need parens unless they are leaves."""
    text = _render(concept)
    if " " in text and not text.startswith("{"):
        return f"({text})"
    return text


def _wrap(concept: Concept, for_and: bool = False) -> str:
    """Parenthesize operands whose top connective binds less tightly."""
    needs_parens = isinstance(concept, (Or, Exists, Forall, AtLeast, AtMost,
                                        DataExists, DataForall, DataAtLeast,
                                        DataAtMost))
    if for_and and isinstance(concept, And):
        needs_parens = True
    if not for_and and isinstance(concept, (And,)):
        needs_parens = True
    text = _render(concept)
    return f"({text})" if needs_parens else text


def render_axiom(axiom: object) -> str:
    """Render one classical or four-valued axiom as a KB line."""
    if isinstance(axiom, ax.ConceptInclusion):
        return f"{render_concept(axiom.sub)} subclassof {render_concept(axiom.sup)}"
    if isinstance(axiom, ax.RoleInclusion):
        return f"{render_role(axiom.sub)} subpropertyof {render_role(axiom.sup)}"
    if isinstance(axiom, ax.DatatypeRoleInclusion):
        return f"{axiom.sub.name} subpropertyof {axiom.sup.name}"
    if isinstance(axiom, ax.Transitivity):
        return f"transitive {axiom.role.name}"
    if isinstance(axiom, ax.ConceptAssertion):
        return f"{axiom.individual.name} : {render_concept(axiom.concept)}"
    if isinstance(axiom, ax.RoleAssertion):
        return f"{axiom.role.named.name}({axiom.source.name}, {axiom.target.name})"
    if isinstance(axiom, ax.NegativeRoleAssertion):
        normalised = axiom.normalised()
        return (
            f"not {normalised.role.named.name}"
            f"({normalised.source.name}, {normalised.target.name})"
        )
    if isinstance(axiom, ax.DataAssertion):
        return f"{axiom.role.name}({axiom.source.name}, {_render_literal(axiom.value)})"
    if isinstance(axiom, ax.SameIndividual):
        return f"{axiom.left.name} = {axiom.right.name}"
    if isinstance(axiom, ax.DifferentIndividuals):
        return f"{axiom.left.name} != {axiom.right.name}"
    if isinstance(axiom, ConceptInclusion4):
        symbol = axiom.kind.symbol
        return f"{render_concept(axiom.sub)} {symbol} {render_concept(axiom.sup)}"
    if isinstance(axiom, RoleInclusion4):
        return f"{render_role(axiom.sub)} {axiom.kind.symbol} {render_role(axiom.sup)}"
    if isinstance(axiom, DatatypeRoleInclusion4):
        return f"{axiom.sub.name} {axiom.kind.symbol} {axiom.sup.name}"
    if isinstance(axiom, Transitivity4):
        return f"transitive {axiom.role.name}"
    raise TypeError(f"unknown axiom kind: {axiom!r}")


def _declarations(
    datatype_roles: Iterable[DatatypeRole],
    object_role_names: Iterable[str] = (),
) -> List[str]:
    lines = [f"dataproperty {role.name}" for role in sorted(datatype_roles)]
    lines += [f"property {name}" for name in sorted(object_role_names)]
    return lines


def render_kb(kb: KnowledgeBase) -> str:
    """Render a classical KB to the line-based syntax (parse round-trip)."""
    lines = _declarations(kb.datatype_roles_in_signature())
    lines += [render_axiom(axiom) for axiom in kb.axioms()]
    return "\n".join(lines) + "\n"


def render_kb4(kb4: KnowledgeBase4) -> str:
    """Render a SHOIN(D)4 KB to the line-based syntax.

    Object roles used in role inclusions are declared with ``property``
    lines so their ``<``/``|->``/``->`` axioms re-parse as role (not
    concept) inclusions.
    """
    role_names = {
        inclusion.sub.named.name
        for inclusion in kb4.role_inclusions
    } | {inclusion.sup.named.name for inclusion in kb4.role_inclusions}
    lines = _declarations(kb4.datatype_roles_in_signature(), role_names)
    lines += [render_axiom(axiom) for axiom in kb4.axioms()]
    return "\n".join(lines) + "\n"
