"""A cross-query cache for satisfiability answers, keyed on canonical probes.

Every reasoning service (Corollary 7 reduces the four-valued ones too)
bottoms out in "is the KB plus these extra assertions satisfiable?".  The
cache memoises exactly that question.  Soundness rests on two invariants:

* **Canonical keys.**  A probe set is keyed by the NNF of its concept
  assertions (plus normalised role/equality assertions), so syntactically
  different but tableau-identical probes share one entry — the tableau
  itself NNF-normalises assertions on graph construction, which is why NNF
  equality implies answer equality.
* **Invalidation on mutation.**  Keys say nothing about the KB; the owning
  reasoner compares the KB's monotone ``version`` counter on every query
  and invalidates whenever the KB changed.  When the KB's change log can
  name the net ``(added, removed)`` axiom delta, the reasoner calls
  :meth:`QueryCache.invalidate_delta` to drop only the entries the edit
  can affect (see below); otherwise it falls back to :meth:`QueryCache.clear`.
  A cache instance must therefore only ever be shared by reasoners over
  the *same* knowledge base (e.g. a :class:`~repro.four_dl.reasoner4.Reasoner4`
  and the classical reasoner it delegates to).

**Fine-grained invalidation.**  Each entry optionally carries the set of
KB axioms its verdict is known to depend on (an unsat core harvested
from the trail tableau's provenance tags; ``None`` means "depends on
everything", the conservative fallback for verdicts answered without
provenance).  Survival across an edit follows from monotonicity of
classical entailment (``docs/THEORY.md`` section 12):

* a **satisfiable** verdict survives removals (fewer constraints cannot
  create a clash) but dies on any addition;
* an **unsatisfiable** verdict survives additions (more constraints
  cannot repair a clash) and survives removals iff its recorded
  dependency set — a superset of at least one justification — is
  disjoint from the removed axioms.

The cache never stores completion graphs, only boolean verdicts, so a
model-extraction request always re-runs the tableau.

**Abort-safety audit (decided-only commit).**  Budgeted searches can be
aborted mid-run (:class:`~repro.dl.errors.BudgetExceeded`, cooperative
cancellation, or an injected chaos fault), which raises the question of
poisoning: could a half-finished search commit a wrong verdict?  It
cannot, by construction — the only call site that writes this cache is
``Reasoner._satisfiable_with``, and its ``store`` happens strictly
*after* ``Tableau.is_satisfiable`` returns a boolean.  Every abort is an
exception, which propagates past the store; the aborted probe leaves no
entry, and the next ask recomputes cold.  The same argument covers the
:class:`~repro.four_dl.reasoner4.Reasoner4` pathway: its transform memo
(:func:`~repro.four_dl.transform.cached_transform_kb`) is a *purely
syntactic* rewrite that never runs a tableau, so no abort can occur
inside it, and its satisfiability answers flow through this cache via
the delegated classical reasoner.  The invariant is enforced by the
fault-injection suite (:mod:`repro.harness.chaos`), which interleaves
aborted and successful probes and demands post-abort answers identical
to a cold reasoner's.

Capacity is bounded: entries live in LRU order and the least recently
used verdict is evicted once ``maxsize`` is exceeded, so long sessions
issuing millions of distinct probes cannot grow the cache without bound.
``maxsize=None`` restores the old unbounded behaviour.

**Concurrency.**  The long-lived service (:mod:`repro.serve`) shares one
cache across concurrent requests, so every mutating path — lookup (which
reorders the LRU list), store (which may evict), ``invalidate_delta``,
and ``clear`` — runs under one re-entrant lock.  The lock protects the
*structure* only; the soundness story is unchanged because verdicts are
deterministic per KB state (two threads racing to store the same key
either agree or trip the :class:`~repro.dl.errors.CacheConflictError`
tripwire exactly as in the single-threaded case).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, FrozenSet, Iterable, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .stats import ReasonerStats

from . import axioms as ax
from ..obs.spans import add_event
from .errors import CacheConflictError
from .nnf import nnf

#: One canonical probe: a small tagged tuple (hashable, order-free).
ProbeKey = Tuple
#: A full cache key: the canonical probe set (empty = plain consistency).
CacheKey = FrozenSet[ProbeKey]

CONSISTENCY_KEY: CacheKey = frozenset()


def probe_key(axiom: ax.ABoxAxiom) -> ProbeKey:
    """The canonical key of one extra assertion.

    Concept assertions are keyed by NNF; role assertions by their
    normalised (named-role) form; equality axioms order-insensitively.
    """
    if isinstance(axiom, ax.ConceptAssertion):
        return ("c", axiom.individual, nnf(axiom.concept))
    if isinstance(axiom, ax.RoleAssertion):
        normalised = axiom.normalised()
        return ("r", normalised.role, normalised.source, normalised.target)
    if isinstance(axiom, ax.NegativeRoleAssertion):
        normalised = axiom.normalised()
        return ("nr", normalised.role, normalised.source, normalised.target)
    if isinstance(axiom, ax.SameIndividual):
        left, right = sorted((axiom.left, axiom.right))
        return ("same", left, right)
    if isinstance(axiom, ax.DifferentIndividuals):
        left, right = sorted((axiom.left, axiom.right))
        return ("diff", left, right)
    if isinstance(axiom, ax.DataAssertion):
        return ("d", axiom.role, axiom.source, axiom.value)
    raise TypeError(f"not a cacheable probe: {axiom!r}")


def probe_set_key(axioms: Iterable[ax.ABoxAxiom]) -> CacheKey:
    """The canonical, order-free key of a whole probe set."""
    return frozenset(probe_key(axiom) for axiom in axioms)


class QueryCache:
    """Memoised satisfiability verdicts, shared across reasoning services.

    ``enabled=False`` turns the cache into a transparent no-op (every
    lookup misses, nothing is stored) — used by differential tests and
    ablation benchmarks to compare cached against cold runs.

    ``maxsize`` bounds the number of retained verdicts; the least
    recently *used* (looked up or stored) entry is evicted first.
    ``maxsize=None`` keeps the old unbounded behaviour.  Evictions are
    counted on the cache itself (``evictions``) and, when a
    :class:`~repro.dl.stats.ReasonerStats` is attached via ``stats``,
    on its ``cache_evictions`` counter too.
    """

    def __init__(
        self,
        enabled: bool = True,
        maxsize: Optional[int] = 4096,
        stats: "Optional[ReasonerStats]" = None,
    ):
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be >= 1 or None, got {maxsize!r}")
        self.enabled = enabled
        self.maxsize = maxsize
        self.stats = stats
        self.evictions = 0
        #: Guards every structural access; re-entrant so an instrumented
        #: store that re-enters (e.g. via a stats callback) cannot
        #: deadlock against itself.
        self._lock = threading.RLock()
        self._entries: "OrderedDict[CacheKey, Tuple[bool, Optional[FrozenSet]]]" = (
            OrderedDict()
        )

    def lookup(self, key: CacheKey) -> Optional[bool]:
        """The cached verdict for a canonical key, or ``None`` on a miss."""
        if not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            return entry[0]

    def store(
        self,
        key: CacheKey,
        value: bool,
        deps: Optional[FrozenSet] = None,
    ) -> None:
        """Record a verdict (no-op when disabled), evicting LRU overflow.

        ``deps`` is the set of KB axioms the verdict is known to depend
        on (``None`` = depends on everything); it steers
        :meth:`invalidate_delta`.  Re-storing the value a key already
        holds refreshes its LRU slot (and upgrades a ``None`` dependency
        set to a concrete one); storing the *opposite* value raises
        :class:`~repro.dl.errors.CacheConflictError` (after counting it
        on ``stats.cache_conflicts``) — decided verdicts are
        deterministic per KB state, so a disagreement between the
        engines sharing this cache is a soundness bug that must surface,
        never be silently overwritten.
        """
        if not self.enabled:
            return
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                if cached[0] != value:
                    add_event(
                        "cache_conflict",
                        {"cached": cached[0], "attempted": value},
                    )
                    if self.stats is not None:
                        self.stats.cache_conflicts += 1
                    raise CacheConflictError(key, cached[0], value)
                if cached[1] is None and deps is not None:
                    self._entries[key] = (value, deps)
                self._entries.move_to_end(key)
                return
            self._entries[key] = (value, deps)
            if self.maxsize is not None and len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
                add_event("cache_eviction", {"entries": len(self._entries)})
                if self.stats is not None:
                    self.stats.cache_evictions += 1

    def invalidate_delta(
        self,
        added: FrozenSet,
        removed: FrozenSet,
    ) -> Tuple[int, int]:
        """Drop only the entries a net axiom delta can affect.

        Applies the monotonicity rules from the class docstring:
        satisfiable verdicts survive pure removals, unsatisfiable
        verdicts survive additions plus any removal disjoint from their
        recorded dependency set.  Returns ``(invalidated, survived)``
        counts; LRU order of the survivors is preserved.  An empty delta
        (an edit that netted out, e.g. remove-then-re-add) keeps every
        entry.
        """
        if not self.enabled or (not added and not removed):
            return (0, len(self._entries))
        with self._lock:
            survivors: "OrderedDict[CacheKey, Tuple[bool, Optional[FrozenSet]]]" = (
                OrderedDict()
            )
            invalidated = 0
            for key, (value, deps) in self._entries.items():
                if value:
                    keep = not added
                else:
                    keep = not removed or (
                        deps is not None and deps.isdisjoint(removed)
                    )
                if keep:
                    survivors[key] = (value, deps)
                else:
                    invalidated += 1
            self._entries = survivors
            return (invalidated, len(survivors))

    def clear(self) -> None:
        """Drop every entry (wholesale invalidation on KB mutation)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
