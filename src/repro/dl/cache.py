"""A cross-query cache for satisfiability answers, keyed on canonical probes.

Every reasoning service (Corollary 7 reduces the four-valued ones too)
bottoms out in "is the KB plus these extra assertions satisfiable?".  The
cache memoises exactly that question.  Soundness rests on two invariants:

* **Canonical keys.**  A probe set is keyed by the NNF of its concept
  assertions (plus normalised role/equality assertions), so syntactically
  different but tableau-identical probes share one entry — the tableau
  itself NNF-normalises assertions on graph construction, which is why NNF
  equality implies answer equality.
* **Invalidation on mutation.**  Keys say nothing about the KB; the owning
  reasoner compares the KB's monotone ``version`` counter on every query
  and clears the cache (and rebuilds its tableau) whenever the KB changed.
  A cache instance must therefore only ever be shared by reasoners over
  the *same* knowledge base (e.g. a :class:`~repro.four_dl.reasoner4.Reasoner4`
  and the classical reasoner it delegates to).

The cache never stores completion graphs, only boolean verdicts, so a
model-extraction request always re-runs the tableau.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from . import axioms as ax
from .nnf import nnf

#: One canonical probe: a small tagged tuple (hashable, order-free).
ProbeKey = Tuple
#: A full cache key: the canonical probe set (empty = plain consistency).
CacheKey = FrozenSet[ProbeKey]

CONSISTENCY_KEY: CacheKey = frozenset()


def probe_key(axiom: ax.ABoxAxiom) -> ProbeKey:
    """The canonical key of one extra assertion.

    Concept assertions are keyed by NNF; role assertions by their
    normalised (named-role) form; equality axioms order-insensitively.
    """
    if isinstance(axiom, ax.ConceptAssertion):
        return ("c", axiom.individual, nnf(axiom.concept))
    if isinstance(axiom, ax.RoleAssertion):
        normalised = axiom.normalised()
        return ("r", normalised.role, normalised.source, normalised.target)
    if isinstance(axiom, ax.NegativeRoleAssertion):
        normalised = axiom.normalised()
        return ("nr", normalised.role, normalised.source, normalised.target)
    if isinstance(axiom, ax.SameIndividual):
        left, right = sorted((axiom.left, axiom.right))
        return ("same", left, right)
    if isinstance(axiom, ax.DifferentIndividuals):
        left, right = sorted((axiom.left, axiom.right))
        return ("diff", left, right)
    if isinstance(axiom, ax.DataAssertion):
        return ("d", axiom.role, axiom.source, axiom.value)
    raise TypeError(f"not a cacheable probe: {axiom!r}")


def probe_set_key(axioms: Iterable[ax.ABoxAxiom]) -> CacheKey:
    """The canonical, order-free key of a whole probe set."""
    return frozenset(probe_key(axiom) for axiom in axioms)


class QueryCache:
    """Memoised satisfiability verdicts, shared across reasoning services.

    ``enabled=False`` turns the cache into a transparent no-op (every
    lookup misses, nothing is stored) — used by differential tests and
    ablation benchmarks to compare cached against cold runs.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._entries: Dict[CacheKey, bool] = {}

    def lookup(self, key: CacheKey) -> Optional[bool]:
        """The cached verdict for a canonical key, or ``None`` on a miss."""
        if not self.enabled:
            return None
        return self._entries.get(key)

    def store(self, key: CacheKey, value: bool) -> None:
        """Record a verdict (no-op when disabled)."""
        if self.enabled:
            self._entries[key] = value

    def clear(self) -> None:
        """Drop every entry (called by reasoners on KB mutation)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
