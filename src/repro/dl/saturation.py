"""Consequence-driven saturation for the tractable DL fragment.

A polynomial fast path in front of the tableau (ROADMAP item 3).  The
engine natively handles the EL/DL-Lite-style fragment — atomic and
conjunctive inclusions, existential restrictions on named roles, global
domain/range axioms, disjointness, named role hierarchies and plain
ABox assertions — over integer-interned symbols and bitset concept
sets, and declines (returns ``None``) whenever an answer would require
the axioms it cannot model: disjunction, number restrictions, inverse
roles, nominals, datatype constraints, transitivity or individual
equality.  The trail tableau stays behind it as the complete engine and
as a differential oracle.

Design
======

Axioms are compiled into a normalised rule *program*:

* ``H1`` conjunction rules ``A1 ⊓ … ⊓ An ⊑ B`` — an LHS bitmask plus a
  consequent atom (``⊥`` encodes disjointness: ``A ⊓ B ⊑ ⊥``);
* ``H2`` existential rules ``A ⊑ ∃R.B`` — keyed by the LHS atom;
* ``H3`` domain rules ``∃R.A ⊑ B`` — fire over the role hierarchy;
* ``H4`` global range axioms ``⊤ ⊑ ∀R.B``.

Complex sides are structurally decomposed through fresh marker atoms
(``__sat…__``), the standard EL normalisation, so completeness of the
saturation w.r.t. the compiled program is the textbook result.

Two further *awkward* shapes stay in the fragment through padding
rather than rules, because the induced KB of the paper's doubled-
signature reduction (:mod:`repro.four_dl.transform`) produces them from
material and strong inclusions:

* ``N1``: ``¬A ⊑ X`` — satisfied by any interpretation where ``A`` is
  universal, so ``A`` joins the *pad set* ``P``;
* ``N2``: ``∀R.C ⊑ X`` — satisfied whenever ``X`` holds everywhere, so
  a fresh padded marker ``Q`` is minted with the rule ``Q ⊑ X``.

The engine then maintains up to two saturation closures over shared
context graphs (one context per ABox individual, per reachable
``(filler, range)`` pair, and per query concept):

* ``S_entail`` — the closure of the Horn rules alone, with the pad set
  *ignored*.  Everything it derives is a consequence of a subset of the
  KB, so by monotonicity any **UNSAT/entailed** answer read off it is
  sound even when the KB carries residue axioms the fragment dropped.
* ``S_model`` — the closure with every pad atom seeded into every
  context.  When the whole KB compiled (no residue), the resulting
  context graph *is* a model (the padded canonical model): padding
  makes every ``N1``/``N2`` left-hand side empty or right-hand side
  universal, so those axioms hold by construction, and the Horn axioms
  hold because the closure is saturated.  A **SAT** answer is therefore
  justified exactly when no individual context derives ``⊥`` and the
  query context stays clean of ``⊥`` and of every negated probe atom.

When the pad set is empty the two closures coincide and pure-Horn KBs
never fall back on a parseable probe; the disjunction property of Horn
theories is what makes the per-negated-atom check complete there.
Queries the parser cannot express — or SAT questions the padded model
cannot witness — return ``None`` and the caller falls back to the
tableau, so the fast path is sound by construction in both directions.

Budgets thread through as a :class:`~repro.dl.budget.BudgetMeter`
ticked while the worklist drains: deadline and cancellation are
honoured (node/branch/trail caps are tableau-specific and do not
apply to saturation work).  A :class:`~repro.dl.errors.BudgetExceeded`
abort leaves the closure half-saturated but monotone, so a later retry
resumes instead of restarting.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    Deque,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .axioms import (
    Axiom,
    ConceptAssertion,
    ConceptInclusion,
    DataAssertion,
    DatatypeRoleInclusion,
    DifferentIndividuals,
    NegativeRoleAssertion,
    RoleAssertion,
    RoleInclusion,
    SameIndividual,
    Transitivity,
)
from .budget import BudgetMeter
from .concepts import And, AtomicConcept, Bottom, Concept, Exists, Forall, Not, Top
from .individuals import Individual
from .kb import KnowledgeBase

__all__ = [
    "FRESH_PREFIX",
    "FragmentReport",
    "SaturationEngine",
    "axiom_residue_reason",
    "fragment_report",
]

#: Prefix of marker atoms minted during normalisation; never user-visible.
FRESH_PREFIX = "__sat"

_BOT = 0  # interned index of ⊥
_TOP = 1  # interned index of ⊤ (present in every context)
_TOP_MASK = 1 << _TOP


class _OutOfFragment(Exception):
    """An axiom (or probe conjunct) the fragment cannot express."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass(frozen=True)
class FragmentReport:
    """How much of a KB the saturation fragment covers.

    ``residue`` pairs each rejected axiom with the reason it fell
    outside the fragment; an empty residue means the engine runs in
    *complete* mode (it may answer SAT as well as UNSAT).
    """

    total: int
    residue: Tuple[Tuple[Axiom, str], ...]

    @property
    def tractable(self) -> int:
        """Number of axioms the saturation program absorbed."""
        return self.total - len(self.residue)

    @property
    def complete(self) -> bool:
        """Whether every axiom compiled (SAT answers are justified)."""
        return not self.residue

    def render(self) -> str:
        """One line, e.g. ``saturation fragment: 12/14 axioms (core)``."""
        mode = "complete" if self.complete else "core"
        return f"saturation fragment: {self.tractable}/{self.total} axioms ({mode})"


def _bits(mask: int) -> Iterator[int]:
    """Indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class _Program:
    """The normalised rule program compiled from a KB (plus probes)."""

    def __init__(self) -> None:
        self._atom_index: Dict[AtomicConcept, int] = {}
        self._atom_count = 2  # ⊥ and ⊤ are pre-interned
        self._fresh_counter = 0
        self._role_index: Dict[str, int] = {}
        # H1: (lhs mask, consequent atom), indexed by every LHS atom.
        self.conj_rules: List[Tuple[int, int]] = []
        self.rules_by_atom: Dict[int, List[int]] = {}
        # H2: lhs atom -> [(role, filler atom)].
        self.exists_by_atom: Dict[int, List[Tuple[int, int]]] = {}
        # H3: role -> [(filler atom, consequent atom)] + filler index.
        self.domain_rules: Dict[int, List[Tuple[int, int]]] = {}
        self.domain_by_filler: Dict[int, List[Tuple[int, int]]] = {}
        # H4: role -> mask of declared range atoms.
        self.range_by_role: Dict[int, int] = {}
        # Named role hierarchy (told edges; closed lazily).
        self.role_edges: Dict[int, Set[int]] = {}
        # Awkward axioms: atoms padded into every model-closure context.
        self.pad_mask = 0
        # ABox: per-individual seeds, told edges, ∃-assertions, and the
        # mask of atoms a "a : ¬A" assertion forbids at that individual.
        self.individual_init: Dict[Individual, int] = {}
        self.individual_edges: List[Tuple[Individual, int, Individual]] = []
        self.individual_exists: List[Tuple[Individual, int, int]] = []
        self.forbidden: Dict[Individual, int] = {}
        # Memo tables for structural decomposition.
        self._mask_atom: Dict[int, int] = {}
        self._rhs_atom_memo: Dict[Concept, int] = {}
        self._domain_marker: Dict[Tuple[int, int], int] = {}
        # Lazy role-hierarchy caches (told edges are fixed after KB load).
        self._superroles: Dict[int, FrozenSet[int]] = {}
        self._range_for: Dict[int, int] = {}

    # -- interning ------------------------------------------------------

    def intern(self, atom: AtomicConcept) -> int:
        index = self._atom_index.get(atom)
        if index is None:
            index = self._atom_count
            self._atom_index[atom] = index
            self._atom_count += 1
        return index

    def fresh(self) -> int:
        while True:
            name = f"{FRESH_PREFIX}{self._fresh_counter}__"
            self._fresh_counter += 1
            atom = AtomicConcept(name)
            if atom not in self._atom_index:
                return self.intern(atom)

    def intern_role(self, name: str) -> int:
        index = self._role_index.get(name)
        if index is None:
            index = len(self._role_index)
            self._role_index[name] = index
        return index

    # -- role hierarchy (lazy, cached) ----------------------------------

    def superroles_of(self, role: int) -> FrozenSet[int]:
        cached = self._superroles.get(role)
        if cached is None:
            seen = {role}
            frontier = [role]
            while frontier:
                current = frontier.pop()
                for sup in self.role_edges.get(current, ()):
                    if sup not in seen:
                        seen.add(sup)
                        frontier.append(sup)
            cached = frozenset(seen)
            self._superroles[role] = cached
        return cached

    def range_for(self, role: int) -> int:
        cached = self._range_for.get(role)
        if cached is None:
            cached = 0
            for sup in self.superroles_of(role):
                cached |= self.range_by_role.get(sup, 0)
            self._range_for[role] = cached
        return cached

    # -- rule construction ----------------------------------------------

    def _conj_rule(self, mask: int, consequent: int) -> None:
        rule_id = len(self.conj_rules)
        self.conj_rules.append((mask, consequent))
        for atom in _bits(mask):
            self.rules_by_atom.setdefault(atom, []).append(rule_id)

    def _exists_rule(self, lhs_atom: int, role: int, filler: int) -> None:
        self.exists_by_atom.setdefault(lhs_atom, []).append((role, filler))

    def _domain_rule(self, role: int, filler: int, consequent: int) -> None:
        self.domain_rules.setdefault(role, []).append((filler, consequent))
        self.domain_by_filler.setdefault(filler, []).append((role, consequent))

    def atom_for_mask(self, mask: int) -> int:
        """An atom equivalent to the conjunction ``mask`` (fresh if needed)."""
        only = mask & (mask - 1)
        if only == 0:  # single bit
            return mask.bit_length() - 1
        cached = self._mask_atom.get(mask)
        if cached is None:
            cached = self.fresh()
            self._conj_rule(mask, cached)
            self._mask_atom[mask] = cached
        return cached

    def _named_role(self, role) -> int:
        if role.is_inverse:
            raise _OutOfFragment("inverse role")
        return self.intern_role(role.named.name)

    def rhs_atom(self, filler: Concept) -> int:
        """An atom that *implies* ``filler`` (for ∃/∀ right-hand fillers)."""
        if isinstance(filler, AtomicConcept):
            return self.intern(filler)
        if isinstance(filler, Top):
            return _TOP
        if isinstance(filler, Bottom):
            return _BOT
        cached = self._rhs_atom_memo.get(filler)
        if cached is None:
            cached = self.fresh()
            self.add_rhs(1 << cached, filler)
            self._rhs_atom_memo[filler] = cached
        return cached

    def add_rhs(self, mask: int, concept: Concept) -> None:
        """Compile ``mask ⊑ concept`` into rules (raises when residue)."""
        if isinstance(concept, AtomicConcept):
            self._conj_rule(mask, self.intern(concept))
        elif isinstance(concept, Top):
            pass
        elif isinstance(concept, Bottom):
            self._conj_rule(mask, _BOT)
        elif isinstance(concept, And):
            for part in concept.operands:
                self.add_rhs(mask, part)
        elif isinstance(concept, Not):
            inner = concept.operand
            if isinstance(inner, AtomicConcept):
                self._conj_rule(mask | (1 << self.intern(inner)), _BOT)
            elif isinstance(inner, Top):
                self._conj_rule(mask, _BOT)
            elif isinstance(inner, Bottom):
                pass
            else:
                raise _OutOfFragment("complement of a non-atomic concept")
        elif isinstance(concept, Exists):
            role = self._named_role(concept.role)
            filler = self.rhs_atom(concept.filler)
            self._exists_rule(self.atom_for_mask(mask), role, filler)
        elif isinstance(concept, Forall):
            if mask != _TOP_MASK:
                raise _OutOfFragment(
                    "universal restriction below a non-Top left-hand side"
                )
            role = self._named_role(concept.role)
            filler = self.rhs_atom(concept.filler)
            self.range_by_role[role] = self.range_by_role.get(role, 0) | (
                1 << filler
            )
        else:
            raise _OutOfFragment(
                f"{type(concept).__name__} on the right-hand side"
            )

    def _require_rhs(self, concept: Concept) -> None:
        """Validate that ``concept`` *would* compile as a right-hand side.

        Used for ``N1`` axioms, whose right-hand side is dropped (the
        padding alone satisfies them) but must still be expressible for
        the fragment boundary to stay honest.
        """
        if isinstance(concept, (AtomicConcept, Top, Bottom)):
            return
        if isinstance(concept, And):
            for part in concept.operands:
                self._require_rhs(part)
            return
        if isinstance(concept, Not):
            if not isinstance(concept.operand, (AtomicConcept, Top, Bottom)):
                raise _OutOfFragment("complement of a non-atomic concept")
            return
        if isinstance(concept, Exists):
            if concept.role.is_inverse:
                raise _OutOfFragment("inverse role")
            self._require_rhs(concept.filler)
            return
        raise _OutOfFragment(f"{type(concept).__name__} on the right-hand side")

    def lhs_mask(self, concept: Concept) -> Optional[int]:
        """Compile a left-hand side into a detection mask.

        Returns ``None`` when the LHS is unsatisfiable (``⊥`` somewhere
        in the conjunction), making the axiom vacuous.
        """
        if isinstance(concept, AtomicConcept):
            return 1 << self.intern(concept)
        if isinstance(concept, Top):
            return _TOP_MASK
        if isinstance(concept, Bottom):
            return None
        if isinstance(concept, And):
            mask = 0
            for part in concept.operands:
                part_mask = self.lhs_mask(part)
                if part_mask is None:
                    return None
                mask |= part_mask
            if mask & ~_TOP_MASK:
                mask &= ~_TOP_MASK
            return mask or _TOP_MASK
        if isinstance(concept, Exists):
            role = self._named_role(concept.role)
            filler_mask = self.lhs_mask(concept.filler)
            if filler_mask is None:
                return None  # ∃R.⊥ is empty: the axiom is vacuous
            filler_atom = self.atom_for_mask(filler_mask)
            key = (role, filler_atom)
            marker = self._domain_marker.get(key)
            if marker is None:
                marker = self.fresh()
                self._domain_rule(role, filler_atom, marker)
                self._domain_marker[key] = marker
            return 1 << marker
        raise _OutOfFragment(f"{type(concept).__name__} on the left-hand side")

    # -- axiom compilation ----------------------------------------------

    def add_axiom(self, axiom: Axiom) -> None:
        """Absorb one KB axiom; raises :class:`_OutOfFragment` on residue."""
        if isinstance(axiom, ConceptInclusion):
            self._add_inclusion(axiom.sub, axiom.sup)
        elif isinstance(axiom, RoleInclusion):
            if axiom.sub.is_inverse or axiom.sup.is_inverse:
                raise _OutOfFragment("inverse role in a role inclusion")
            sub = self.intern_role(axiom.sub.named.name)
            sup = self.intern_role(axiom.sup.named.name)
            self.role_edges.setdefault(sub, set()).add(sup)
        elif isinstance(axiom, DatatypeRoleInclusion):
            # Datatype roles never occur in fragment concepts, so the
            # inclusion is inert: the canonical model interprets every
            # datatype role as empty, which satisfies it vacuously.
            pass
        elif isinstance(axiom, ConceptAssertion):
            self._assert_concept(axiom.individual, axiom.concept)
        elif isinstance(axiom, RoleAssertion):
            normalised = axiom.normalised()
            role = self._named_role(normalised.role)
            self.touch(normalised.source)
            self.touch(normalised.target)
            self.individual_edges.append(
                (normalised.source, role, normalised.target)
            )
        elif isinstance(axiom, DifferentIndividuals):
            if axiom.left == axiom.right:
                raise _OutOfFragment("an individual distinct from itself")
            # The canonical model maps distinct names to distinct
            # contexts, so a well-formed inequality is inert.
            self.touch(axiom.left)
            self.touch(axiom.right)
        elif isinstance(axiom, Transitivity):
            raise _OutOfFragment("transitive role composition")
        elif isinstance(axiom, NegativeRoleAssertion):
            raise _OutOfFragment("negated role assertion")
        elif isinstance(axiom, SameIndividual):
            raise _OutOfFragment("individual equality")
        elif isinstance(axiom, DataAssertion):
            raise _OutOfFragment("datatype assertion")
        else:
            raise _OutOfFragment(f"{type(axiom).__name__}")

    def _add_inclusion(self, sub: Concept, sup: Concept) -> None:
        if isinstance(sub, Not) and isinstance(sub.operand, AtomicConcept):
            # N1: ¬A ⊑ X — padding A empties the left-hand side.  X is
            # validated (fragment honesty) but compiles to nothing.
            self._require_rhs(sup)
            self.pad_mask |= 1 << self.intern(sub.operand)
            return
        if isinstance(sub, Forall):
            if sub.role.is_inverse:
                raise _OutOfFragment("inverse role")
            # N2: ∀R.C ⊑ X — a fresh padded marker makes X universal in
            # the model, which satisfies the axiom whatever C is.
            marker = self.fresh()
            self.pad_mask |= 1 << marker
            self.add_rhs(1 << marker, sup)
            return
        mask = self.lhs_mask(sub)
        if mask is None:
            return  # ⊥ on the left: vacuous
        self.add_rhs(mask, sup)

    def _assert_concept(self, individual: Individual, concept: Concept) -> None:
        self.touch(individual)
        if isinstance(concept, AtomicConcept):
            self.individual_init[individual] |= 1 << self.intern(concept)
        elif isinstance(concept, Top):
            pass
        elif isinstance(concept, Bottom):
            self.individual_init[individual] |= 1 << _BOT
        elif isinstance(concept, And):
            for part in concept.operands:
                self._assert_concept(individual, part)
        elif isinstance(concept, Not):
            inner = concept.operand
            if isinstance(inner, AtomicConcept):
                self.forbidden[individual] = self.forbidden.get(
                    individual, 0
                ) | (1 << self.intern(inner))
            elif isinstance(inner, Top):
                self.individual_init[individual] |= 1 << _BOT
            elif isinstance(inner, Bottom):
                pass
            else:
                raise _OutOfFragment(
                    "complement of a non-atomic concept in an assertion"
                )
        elif isinstance(concept, Exists):
            role = self._named_role(concept.role)
            filler = self.rhs_atom(concept.filler)
            self.individual_exists.append((individual, role, filler))
        else:
            raise _OutOfFragment(
                f"{type(concept).__name__} in a concept assertion"
            )

    def touch(self, individual: Individual) -> None:
        self.individual_init.setdefault(individual, 0)


class _Closure:
    """One saturated context graph (entailment or padded-model universe).

    Contexts are keyed by ABox individual or by ``(atom, range-mask)``
    for ∃-successors and query concepts; keying successor contexts by
    the incoming role's effective range prevents range pollution across
    roles sharing a filler.  The worklist invariant: every conjunction
    rule is re-checked whenever one of its LHS atoms is added to a
    context, and probe-time rules always carry a fresh atom in their
    LHS, so adding rules after saturation stays complete.
    """

    def __init__(self, program: _Program, padded: bool) -> None:
        self.program = program
        self.padded = padded
        self.sets: List[int] = []
        self.forbid: List[int] = []
        self.is_individual: List[bool] = []
        self.out_edges: List[Set[Tuple[int, int]]] = []
        self.preds: List[List[Tuple[int, int]]] = []
        self._index: Dict[object, int] = {}
        self.queue: Deque[Tuple[int, int]] = deque()
        self.inconsistent = False
        self.inferences = 0
        for individual in sorted(
            program.individual_init, key=lambda ind: ind.name
        ):
            self.context(individual)
        for source, role, target in program.individual_edges:
            self._add_edge(
                self.context(source), role, self.context(target)
            )
        for source, role, filler in program.individual_exists:
            self._add_edge(
                self.context(source),
                role,
                self.concept_context(filler, program.range_for(role)),
            )

    # -- contexts -------------------------------------------------------

    def context(self, individual: Individual) -> int:
        key = individual
        ctx = self._index.get(key)
        if ctx is None:
            ctx = self._new_context(
                forbid=self.program.forbidden.get(individual, 0),
                is_individual=True,
            )
            self._index[key] = ctx
            self._seed(ctx, self.program.individual_init[individual])
        return ctx

    def concept_context(self, atom: int, range_mask: int) -> int:
        key = (atom, range_mask)
        ctx = self._index.get(key)
        if ctx is None:
            ctx = self._new_context(forbid=0, is_individual=False)
            self._index[key] = ctx
            self._seed(ctx, (1 << atom) | range_mask)
        return ctx

    def _new_context(self, forbid: int, is_individual: bool) -> int:
        ctx = len(self.sets)
        self.sets.append(0)
        self.forbid.append(forbid)
        self.is_individual.append(is_individual)
        self.out_edges.append(set())
        self.preds.append([])
        return ctx

    def _seed(self, ctx: int, mask: int) -> None:
        mask |= _TOP_MASK
        if self.padded:
            mask |= self.program.pad_mask
        for atom in _bits(mask):
            self.add_atom(ctx, atom)

    # -- saturation -----------------------------------------------------

    def add_atom(self, ctx: int, atom: int) -> None:
        bit = 1 << atom
        if self.sets[ctx] & bit:
            return
        self.sets[ctx] |= bit
        self.inferences += 1
        self.queue.append((ctx, atom))

    def _add_edge(self, src: int, role: int, dst: int) -> None:
        edge = (role, dst)
        if edge in self.out_edges[src]:
            return
        self.out_edges[src].add(edge)
        self.inferences += 1
        self.preds[dst].append((role, src))
        program = self.program
        if self.sets[dst] & (1 << _BOT):
            self.add_atom(src, _BOT)
        range_mask = program.range_for(role)
        if range_mask:
            for atom in _bits(range_mask & ~self.sets[dst]):
                self.add_atom(dst, atom)
        superroles = program.superroles_of(role)
        for sup in superroles:
            for filler, consequent in program.domain_rules.get(sup, ()):
                if self.sets[dst] >> filler & 1:
                    self.add_atom(src, consequent)

    def run(self, meter: Optional[BudgetMeter] = None) -> None:
        """Drain the worklist to a fixpoint (resumable after an abort)."""
        program = self.program
        queue = self.queue
        while queue:
            if meter is not None:
                meter.tick()
            ctx, atom = queue.popleft()
            if atom == _BOT:
                if self.is_individual[ctx]:
                    self.inconsistent = True
                for _role, src in self.preds[ctx]:
                    self.add_atom(src, _BOT)
                continue
            current = self.sets[ctx]
            if self.forbid[ctx] >> atom & 1:
                self.add_atom(ctx, _BOT)
            for rule_id in program.rules_by_atom.get(atom, ()):
                mask, consequent = program.conj_rules[rule_id]
                if current & mask == mask:
                    self.add_atom(ctx, consequent)
            for role, filler in program.exists_by_atom.get(atom, ()):
                self._add_edge(
                    ctx,
                    role,
                    self.concept_context(filler, program.range_for(role)),
                )
            for rule_role, consequent in program.domain_by_filler.get(
                atom, ()
            ):
                for role, src in self.preds[ctx]:
                    if rule_role in program.superroles_of(role):
                        self.add_atom(src, consequent)


def _kb_axioms(kb: KnowledgeBase) -> Iterator[Axiom]:
    yield from kb.concept_inclusions
    yield from kb.role_inclusions
    yield from kb.datatype_role_inclusions
    yield from kb.transitivity_axioms
    yield from kb.concept_assertions
    yield from kb.role_assertions
    yield from kb.negative_role_assertions
    yield from kb.data_assertions
    yield from kb.same_individuals
    yield from kb.different_individuals


def axiom_residue_reason(axiom: Axiom) -> Optional[str]:
    """Why one axiom falls outside the fragment (``None`` when inside)."""
    program = _Program()
    try:
        program.add_axiom(axiom)
    except _OutOfFragment as out:
        return out.reason
    return None


def fragment_report(kb: KnowledgeBase) -> FragmentReport:
    """Classify every axiom of ``kb`` against the saturation fragment."""
    return SaturationEngine(kb).report


#: Parse verdicts of :meth:`SaturationEngine._parse_probes`.
_UNPARSEABLE = object()
_TRIVIALLY_UNSAT = object()


class SaturationEngine:
    """Saturation fast path over one (snapshot of a) KB.

    The engine compiles the KB once at construction; per-query work is
    incremental (new query contexts joining an already-saturated
    graph).  The caller owns KB-version invalidation: on mutation it
    either offers the net delta to :meth:`update` (which absorbs
    ABox-only additions in place, re-firing just the dirty frontier) or
    rebuilds the engine wholesale when :meth:`update` declines.
    """

    def __init__(self, kb: KnowledgeBase) -> None:
        self._program = _Program()
        residue: List[Tuple[Axiom, str]] = []
        total = 0
        for axiom in _kb_axioms(kb):
            total += 1
            try:
                self._program.add_axiom(axiom)
            except _OutOfFragment as out:
                residue.append((axiom, out.reason))
        self.report = FragmentReport(total=total, residue=tuple(residue))
        self._known_individuals = frozenset(self._program.individual_init)
        self._entail: Optional[_Closure] = None
        self._model: Optional[_Closure] = None
        self._probe_atoms: Dict[FrozenSet[Concept], Optional[int]] = {}

    @property
    def complete(self) -> bool:
        """Whether SAT answers are justified (no residue axioms)."""
        return self.report.complete

    @property
    def useful(self) -> bool:
        """Whether dispatching queries here can ever pay off."""
        return self.complete or self.report.tractable > 0

    @property
    def inferences(self) -> int:
        """Total atom/edge additions across both closures so far."""
        total = self._entail.inferences if self._entail is not None else 0
        if self._model is not None and self._model is not self._entail:
            total += self._model.inferences
        return total

    # -- incremental update ---------------------------------------------

    #: Addition kinds the in-place updater can absorb: plain ABox
    #: axioms.  TBox/RBox growth rewires the rule tables underneath
    #: already-saturated closures, so it forces a rebuild instead.
    _INCREMENTAL_KINDS = (
        ConceptAssertion,
        RoleAssertion,
        DifferentIndividuals,
        NegativeRoleAssertion,
        SameIndividual,
        DataAssertion,
    )

    def update(
        self,
        added: FrozenSet[Axiom],
        removed: FrozenSet[Axiom],
    ) -> Optional[int]:
        """Absorb an ABox-only addition delta in place, or decline.

        Returns the number of new closure inferences — the
        re-saturation *cone*, i.e. exactly the consequences the new
        assertions force through the already-saturated context graphs —
        or ``None`` when the caller must rebuild the engine: any
        removal (saturation is monotone, facts cannot be un-derived) or
        any TBox/RBox addition (compiled rule tables would have to
        re-fire against every context).

        Sound by the same two-closure argument as construction: the
        entailment closure gains only consequences of actual KB axioms,
        and residue additions (equality, negated role assertions, ...)
        merely flip :attr:`complete` off, disabling SAT answers.
        """
        if removed:
            return None
        ordered = sorted(added, key=repr)
        if not all(
            isinstance(axiom, self._INCREMENTAL_KINDS) for axiom in ordered
        ):
            return None
        program = self._program
        before_init = dict(program.individual_init)
        before_forbidden = dict(program.forbidden)
        n_exists = len(program.individual_exists)
        n_edges = len(program.individual_edges)
        residue: List[Tuple[Axiom, str]] = []
        for axiom in ordered:
            try:
                program.add_axiom(axiom)
            except _OutOfFragment as out:
                residue.append((axiom, out.reason))
        self.report = FragmentReport(
            total=self.report.total + len(ordered),
            residue=self.report.residue + tuple(residue),
        )
        cone = 0
        for closure in self._live_closures():
            before = closure.inferences
            self._reseed(
                closure, before_init, before_forbidden, n_exists, n_edges
            )
            closure.run()
            cone += closure.inferences - before
        self._known_individuals = frozenset(program.individual_init)
        return cone

    def _live_closures(self) -> List[_Closure]:
        """The closures that already exist (a lazy one needs no reseed)."""
        live = []
        if self._entail is not None:
            live.append(self._entail)
        if self._model is not None and self._model is not self._entail:
            live.append(self._model)
        return live

    def _reseed(
        self,
        closure: _Closure,
        before_init: Dict[Individual, int],
        before_forbidden: Dict[Individual, int],
        n_exists: int,
        n_edges: int,
    ) -> None:
        """Push the program delta since the snapshot into one closure.

        New individuals get fresh (fully seeded) contexts; existing
        contexts receive only their new atom/forbid bits and edges —
        the dirty frontier the subsequent ``run()`` saturates from.
        """
        program = self._program
        for individual, mask in program.individual_init.items():
            if individual not in before_init:
                closure.context(individual)
                continue
            new_bits = mask & ~before_init[individual]
            if new_bits:
                ctx = closure.context(individual)
                for atom in _bits(new_bits):
                    closure.add_atom(ctx, atom)
        for individual, mask in program.forbidden.items():
            new_forbid = mask & ~before_forbidden.get(individual, 0)
            if not new_forbid:
                continue
            ctx = closure.context(individual)
            closure.forbid[ctx] |= new_forbid
            if closure.sets[ctx] & new_forbid:
                # Already-derived atoms never re-enter the worklist, so
                # a clash with a *new* prohibition is raised here.
                closure.add_atom(ctx, _BOT)
        for source, role, target in program.individual_edges[n_edges:]:
            closure._add_edge(
                closure.context(source), role, closure.context(target)
            )
        for source, role, filler in program.individual_exists[n_exists:]:
            closure._add_edge(
                closure.context(source),
                role,
                closure.concept_context(filler, program.range_for(role)),
            )

    # -- closures -------------------------------------------------------

    def _entail_closure(self, meter: Optional[BudgetMeter]) -> _Closure:
        if self._entail is None:
            self._entail = _Closure(self._program, padded=False)
        self._entail.run(meter)
        return self._entail

    def _model_closure(self, meter: Optional[BudgetMeter]) -> _Closure:
        if self._model is None:
            if self._program.pad_mask == 0:
                self._model = self._entail_closure(meter)
            else:
                self._model = _Closure(self._program, padded=True)
        self._model.run(meter)
        return self._model

    # -- probe parsing --------------------------------------------------

    def _parse_probes(self, probes: Optional[Sequence[ConceptAssertion]]):
        """Group probes into ``{individual: (positives, negated-atoms)}``.

        Returns ``_UNPARSEABLE`` when any conjunct falls outside the
        query language, ``_TRIVIALLY_UNSAT`` when a probe asserts ``⊥``
        (unsatisfiable whatever the KB says), or the group dict.
        """
        groups: Dict[Individual, Tuple[List[Concept], List[AtomicConcept]]] = {}
        for probe in probes or ():
            if not isinstance(probe, ConceptAssertion):
                return _UNPARSEABLE
            positives, negated = groups.setdefault(
                probe.individual, ([], [])
            )
            flattened = And.of(probe.concept)
            conjuncts = (
                flattened.operands
                if isinstance(flattened, And)
                else (flattened,)
            )
            for conjunct in conjuncts:
                if isinstance(conjunct, Top):
                    continue
                if isinstance(conjunct, Bottom):
                    return _TRIVIALLY_UNSAT
                if isinstance(conjunct, Not):
                    inner = conjunct.operand
                    if isinstance(inner, Bottom):
                        continue
                    if isinstance(inner, Top):
                        return _TRIVIALLY_UNSAT
                    if isinstance(inner, AtomicConcept):
                        negated.append(inner)
                        continue
                    return _UNPARSEABLE
                if isinstance(conjunct, AtomicConcept) or isinstance(
                    conjunct, (Exists, And)
                ):
                    positives.append(conjunct)
                    continue
                return _UNPARSEABLE
        for individual, (positives, _negated) in groups.items():
            if positives and individual in self._known_individuals:
                # Positive facts on a KB individual would have to join
                # the shared closure (and leak through domain rules
                # into other answers), so those probes go to the
                # tableau instead.
                return _UNPARSEABLE
        return groups

    def _positive_atom(self, positives: Sequence[Concept]) -> Optional[int]:
        """The (memoised) atom encoding a probe's positive conjunction."""
        if not positives:
            return _TOP
        if len(positives) == 1 and isinstance(positives[0], AtomicConcept):
            return self._program.intern(positives[0])
        key = frozenset(positives)
        if key in self._probe_atoms:
            return self._probe_atoms[key]
        atom: Optional[int] = self._program.fresh()
        try:
            for conjunct in positives:
                self._program.add_rhs(1 << atom, conjunct)
        except _OutOfFragment:
            # Partially-compiled rules are keyed by the fresh atom,
            # which is never seeded anywhere — they stay inert.
            atom = None
        self._probe_atoms[key] = atom
        return atom

    # -- the one public query -------------------------------------------

    def satisfiable_with(
        self,
        probes: Optional[Sequence[ConceptAssertion]] = None,
        meter: Optional[BudgetMeter] = None,
    ) -> Optional[bool]:
        """``KB + probes`` satisfiable? ``None`` when saturation cannot say.

        ``False`` answers are sound in both modes (they come from the
        pad-free entailment closure, i.e. from a subset of the KB).
        ``True`` answers are only issued in complete mode, justified by
        the padded canonical model staying clash-free.
        """
        groups = self._parse_probes(probes)
        if groups is _TRIVIALLY_UNSAT:
            return False
        if groups is _UNPARSEABLE:
            return None
        contexts: List[Tuple[object, List[int]]] = []
        for individual, (positives, negated) in groups.items():
            negated_atoms = [self._program.intern(atom) for atom in negated]
            if individual in self._known_individuals:
                contexts.append((individual, negated_atoms))
            else:
                atom = self._positive_atom(positives)
                if atom is None:
                    return None
                contexts.append(((atom, 0), negated_atoms))
        entail = self._entail_closure(meter)
        if entail.inconsistent:
            return False
        entail_sets = []
        for key, negated_atoms in contexts:
            ctx = (
                entail.context(key)
                if isinstance(key, Individual)
                else entail.concept_context(*key)
            )
            entail.run(meter)
            entail_sets.append((ctx, negated_atoms))
        if entail.inconsistent:
            return False
        for ctx, negated_atoms in entail_sets:
            atoms = entail.sets[ctx]
            if atoms & (1 << _BOT):
                return False
            for atom in negated_atoms:
                if atoms >> atom & 1:
                    return False
        if not self.complete:
            return None
        model = self._model_closure(meter)
        if model.inconsistent:
            return None
        for key, negated_atoms in contexts:
            ctx = (
                model.context(key)
                if isinstance(key, Individual)
                else model.concept_context(*key)
            )
            model.run(meter)
            if model.inconsistent:
                return None
            atoms = model.sets[ctx]
            if atoms & (1 << _BOT):
                return None
            for atom in negated_atoms:
                if atoms >> atom & 1:
                    return None
        return True
