"""Concept expressions of SHOIN(D) (paper Table 1).

Every constructor of the paper's Table 1 is represented by an immutable
AST node: atomic concepts, top/bottom, Boolean connectives, nominals
(``OneOf``), object-role quantifiers and unqualified number restrictions,
and their datatype counterparts.  Nodes are hashable so they can live in
sets and serve as dictionary keys throughout the reasoners.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, Tuple

from .datatypes import DataRange
from .individuals import Individual
from .roles import DatatypeRole, ObjectRole


class Concept:
    """Base class of concept expressions."""

    def __and__(self, other: "Concept") -> "Concept":
        return And.of(self, other)

    def __or__(self, other: "Concept") -> "Concept":
        return Or.of(self, other)

    def __invert__(self) -> "Concept":
        return Not(self)

    def subconcepts(self) -> Iterator["Concept"]:
        """This concept and all concepts nested inside it."""
        yield self

    def size(self) -> int:
        """The number of AST nodes (a syntactic size measure)."""
        return sum(1 for _ in self.subconcepts())


@dataclass(frozen=True)
class AtomicConcept(Concept):
    """A named (atomic) concept ``A``."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Top(Concept):
    """The universal concept, interpreted as the whole domain."""

    def __repr__(self) -> str:
        return "Thing"


@dataclass(frozen=True)
class Bottom(Concept):
    """The empty concept."""

    def __repr__(self) -> str:
        return "Nothing"


TOP = Top()
BOTTOM = Bottom()


@dataclass(frozen=True)
class Not(Concept):
    """Full negation ``not C``."""

    operand: Concept

    def subconcepts(self) -> Iterator[Concept]:
        yield self
        yield from self.operand.subconcepts()

    def __repr__(self) -> str:
        return f"(not {self.operand!r})"


@dataclass(frozen=True)
class And(Concept):
    """Conjunction ``C1 and C2 and ...`` (n-ary, order preserved)."""

    operands: Tuple[Concept, ...]

    @staticmethod
    def of(*operands: Concept) -> Concept:
        """Build a flattened conjunction; a single operand stays itself."""
        flat: Tuple[Concept, ...] = ()
        for operand in operands:
            if isinstance(operand, And):
                flat += operand.operands
            else:
                flat += (operand,)
        if len(flat) == 1:
            return flat[0]
        return And(flat)

    def subconcepts(self) -> Iterator[Concept]:
        yield self
        for operand in self.operands:
            yield from operand.subconcepts()

    def __repr__(self) -> str:
        return "(" + " and ".join(repr(c) for c in self.operands) + ")"


@dataclass(frozen=True)
class Or(Concept):
    """Disjunction ``C1 or C2 or ...`` (n-ary, order preserved)."""

    operands: Tuple[Concept, ...]

    @staticmethod
    def of(*operands: Concept) -> Concept:
        """Build a flattened disjunction; a single operand stays itself."""
        flat: Tuple[Concept, ...] = ()
        for operand in operands:
            if isinstance(operand, Or):
                flat += operand.operands
            else:
                flat += (operand,)
        if len(flat) == 1:
            return flat[0]
        return Or(flat)

    def subconcepts(self) -> Iterator[Concept]:
        yield self
        for operand in self.operands:
            yield from operand.subconcepts()

    def __repr__(self) -> str:
        return "(" + " or ".join(repr(c) for c in self.operands) + ")"


@dataclass(frozen=True)
class OneOf(Concept):
    """A nominal concept ``{o1, ...}`` enumerating individuals."""

    individuals: FrozenSet[Individual]

    @staticmethod
    def of(*names: str) -> "OneOf":
        """Build a nominal from individual names."""
        return OneOf(frozenset(Individual(n) for n in names))

    def __repr__(self) -> str:
        inner = ", ".join(sorted(i.name for i in self.individuals))
        return "{" + inner + "}"


@dataclass(frozen=True)
class Exists(Concept):
    """Full existential restriction ``some R.C``."""

    role: ObjectRole
    filler: Concept

    def subconcepts(self) -> Iterator[Concept]:
        yield self
        yield from self.filler.subconcepts()

    def __repr__(self) -> str:
        return f"(some {self.role!r} {self.filler!r})"


@dataclass(frozen=True)
class Forall(Concept):
    """Value restriction ``all R.C``."""

    role: ObjectRole
    filler: Concept

    def subconcepts(self) -> Iterator[Concept]:
        yield self
        yield from self.filler.subconcepts()

    def __repr__(self) -> str:
        return f"(all {self.role!r} {self.filler!r})"


@dataclass(frozen=True)
class AtLeast(Concept):
    """Unqualified at-least restriction ``>= n R``."""

    n: int
    role: ObjectRole

    def __repr__(self) -> str:
        return f"(atleast {self.n} {self.role!r})"


@dataclass(frozen=True)
class AtMost(Concept):
    """Unqualified at-most restriction ``<= n R``."""

    n: int
    role: ObjectRole

    def __repr__(self) -> str:
        return f"(atmost {self.n} {self.role!r})"


@dataclass(frozen=True)
class QualifiedAtLeast(Concept):
    """Qualified at-least restriction ``>= n R.C`` (SHOIQ extension).

    Not part of the paper's SHOIN(D) (which has only unqualified
    counting); provided as the natural OWL 2 direction.  The four-valued
    semantics and the transformation generalise Definition 5 clauses
    (9)/(16) — see ``repro.four_dl.transform``.
    """

    n: int
    role: ObjectRole
    filler: Concept

    def subconcepts(self) -> Iterator[Concept]:
        yield self
        yield from self.filler.subconcepts()

    def __repr__(self) -> str:
        return f"(atleast {self.n} {self.role!r} {self.filler!r})"


@dataclass(frozen=True)
class QualifiedAtMost(Concept):
    """Qualified at-most restriction ``<= n R.C`` (SHOIQ extension)."""

    n: int
    role: ObjectRole
    filler: Concept

    def subconcepts(self) -> Iterator[Concept]:
        yield self
        yield from self.filler.subconcepts()

    def __repr__(self) -> str:
        return f"(atmost {self.n} {self.role!r} {self.filler!r})"


@dataclass(frozen=True)
class DataExists(Concept):
    """Datatype existential restriction ``some U.D``."""

    role: DatatypeRole
    range: DataRange

    def __repr__(self) -> str:
        return f"(some {self.role!r} {self.range!r})"


@dataclass(frozen=True)
class DataForall(Concept):
    """Datatype value restriction ``all U.D``."""

    role: DatatypeRole
    range: DataRange

    def __repr__(self) -> str:
        return f"(all {self.role!r} {self.range!r})"


@dataclass(frozen=True)
class DataAtLeast(Concept):
    """Datatype at-least restriction ``>= n U``."""

    n: int
    role: DatatypeRole

    def __repr__(self) -> str:
        return f"(atleast {self.n} {self.role!r})"


@dataclass(frozen=True)
class DataAtMost(Concept):
    """Datatype at-most restriction ``<= n U``."""

    n: int
    role: DatatypeRole

    def __repr__(self) -> str:
        return f"(atmost {self.n} {self.role!r})"


def atomic_concepts(concept: Concept) -> FrozenSet[AtomicConcept]:
    """All atomic concepts occurring in a concept expression."""
    return frozenset(
        c for c in concept.subconcepts() if isinstance(c, AtomicConcept)
    )


def object_roles(concept: Concept) -> FrozenSet[ObjectRole]:
    """All object-role expressions occurring in a concept expression."""
    found = set()
    for sub in concept.subconcepts():
        if isinstance(
            sub, (Exists, Forall, AtLeast, AtMost, QualifiedAtLeast, QualifiedAtMost)
        ):
            found.add(sub.role)
    return frozenset(found)


def datatype_roles(concept: Concept) -> FrozenSet[DatatypeRole]:
    """All datatype roles occurring in a concept expression."""
    found = set()
    for sub in concept.subconcepts():
        if isinstance(sub, (DataExists, DataForall, DataAtLeast, DataAtMost)):
            found.add(sub.role)
    return frozenset(found)


def nominals(concept: Concept) -> FrozenSet[Individual]:
    """All individuals mentioned by nominals inside a concept expression."""
    found = set()
    for sub in concept.subconcepts():
        if isinstance(sub, OneOf):
            found |= sub.individuals
    return frozenset(found)
