"""Classical SHOIN(D) knowledge bases: TBox + ABox containers.

A :class:`KnowledgeBase` bundles terminological axioms (concept and role
inclusions, transitivity) with assertional axioms, and exposes the
signature queries (concept/role/individual names) that the transformation
layer and the workload generators rely on.  Role-hierarchy reachability
(with inverses) and transitivity lookup live here because both the tableau
and the model checker need them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from . import axioms as ax
from .incremental import ChangeLog, ChangeRecord, EditTransaction, net_delta
from .concepts import (
    AtomicConcept,
    Concept,
    atomic_concepts,
    datatype_roles,
    nominals,
    object_roles,
)
from .individuals import Individual
from .roles import AtomicRole, DatatypeRole, ObjectRole


@dataclass
class KnowledgeBase:
    """A classical SHOIN(D) knowledge base.

    Attributes hold the axioms grouped by kind; the class is mutable by
    design (KBs are built incrementally by parsers, generators, and the
    four-valued transformation) but all axiom objects are immutable.
    """

    concept_inclusions: List[ax.ConceptInclusion] = field(default_factory=list)
    role_inclusions: List[ax.RoleInclusion] = field(default_factory=list)
    datatype_role_inclusions: List[ax.DatatypeRoleInclusion] = field(
        default_factory=list
    )
    transitivity_axioms: List[ax.Transitivity] = field(default_factory=list)
    concept_assertions: List[ax.ConceptAssertion] = field(default_factory=list)
    role_assertions: List[ax.RoleAssertion] = field(default_factory=list)
    negative_role_assertions: List[ax.NegativeRoleAssertion] = field(
        default_factory=list
    )
    data_assertions: List[ax.DataAssertion] = field(default_factory=list)
    same_individuals: List[ax.SameIndividual] = field(default_factory=list)
    different_individuals: List[ax.DifferentIndividuals] = field(
        default_factory=list
    )

    def __post_init__(self) -> None:
        # Monotone mutation counter (not a dataclass field: equality and
        # repr stay purely axiom-based).  Reasoners compare it on every
        # query to detect mutation, then ask the change log *what*
        # changed to invalidate only the affected derived state.
        self._version = 0
        self._log = ChangeLog()

    @property
    def version(self) -> int:
        """A counter incremented by every mutation; caches key on it."""
        return self._version

    # ------------------------------------------------------------------
    # Construction & mutation
    # ------------------------------------------------------------------
    def _expanded(self, axiom: ax.Axiom) -> Tuple[ax.Axiom, ...]:
        """The stored form of an axiom: normalised, equivalences split.

        Mutations journal (and remove) exactly these stored forms, so
        an axiom added and then removed through the public API always
        nets out of :meth:`delta_since`.
        """
        if isinstance(axiom, ax.ConceptEquivalence):
            return axiom.inclusions()
        if isinstance(axiom, (ax.RoleAssertion, ax.NegativeRoleAssertion)):
            return (axiom.normalised(),)
        return (axiom,)

    def _list_for(self, axiom: ax.Axiom) -> List[ax.Axiom]:
        """The per-kind bucket a stored-form axiom lives in."""
        if isinstance(axiom, ax.ConceptInclusion):
            return self.concept_inclusions
        if isinstance(axiom, ax.RoleInclusion):
            return self.role_inclusions
        if isinstance(axiom, ax.DatatypeRoleInclusion):
            return self.datatype_role_inclusions
        if isinstance(axiom, ax.Transitivity):
            return self.transitivity_axioms
        if isinstance(axiom, ax.ConceptAssertion):
            return self.concept_assertions
        if isinstance(axiom, ax.RoleAssertion):
            return self.role_assertions
        if isinstance(axiom, ax.NegativeRoleAssertion):
            return self.negative_role_assertions
        if isinstance(axiom, ax.DataAssertion):
            return self.data_assertions
        if isinstance(axiom, ax.SameIndividual):
            return self.same_individuals
        if isinstance(axiom, ax.DifferentIndividuals):
            return self.different_individuals
        raise TypeError(f"unknown axiom kind: {axiom!r}")

    def _count(self, axiom: ax.Axiom) -> int:
        """Multiplicity of a stored-form axiom (KBs are multisets)."""
        return self._list_for(axiom).count(axiom)

    def add(self, *axioms_: ax.Axiom) -> "KnowledgeBase":
        """Add axioms of any kind; returns self for chaining."""
        for axiom in axioms_:
            self._version += 1
            for concrete in self._expanded(axiom):
                self._list_for(concrete).append(concrete)
                self._log.record(self._version, "add", concrete)
        return self

    def add_axiom(self, axiom: ax.Axiom) -> "KnowledgeBase":
        """Add one axiom (the mutation-API spelling of :meth:`add`)."""
        return self.add(axiom)

    def remove_axiom(self, axiom: ax.Axiom) -> "KnowledgeBase":
        """Remove one occurrence of an axiom; absent axioms raise.

        Equivalence axioms remove both of their stored inclusions —
        all-or-nothing: if either is missing, ``ValueError`` is raised
        and nothing is changed.  Role assertions are matched in their
        normalised (named-role) form, mirroring :meth:`add`.
        """
        expanded = self._expanded(axiom)
        need = Counter(expanded)
        for concrete, count in need.items():
            if self._count(concrete) < count:
                raise ValueError(f"axiom not present: {concrete!r}")
        self._version += 1
        for concrete in expanded:
            self._list_for(concrete).remove(concrete)
            self._log.record(self._version, "remove", concrete)
        return self

    def retract(self, axiom: ax.Axiom) -> bool:
        """Remove an axiom if present; True when something was removed."""
        try:
            self.remove_axiom(axiom)
        except ValueError:
            return False
        return True

    def edit(self) -> EditTransaction:
        """An atomic batch of mutations::

            with kb.edit() as tx:
                tx.remove(old_axiom)
                tx.add(new_axiom)

        Nothing is applied until the block exits cleanly; an exception
        inside the block (including a strict ``remove`` of an absent
        axiom, validated before anything is applied) leaves the
        knowledge base untouched.
        """
        return EditTransaction(self)

    def changes_since(self, version: int) -> Optional[List[ChangeRecord]]:
        """The journalled mutations after ``version``, oldest first.

        ``None`` when ``version`` predates the bounded change-log
        window — consumers must then invalidate wholesale.
        """
        return self._log.since(version)

    def delta_since(
        self, version: int
    ) -> Optional[Tuple[FrozenSet[ax.Axiom], FrozenSet[ax.Axiom]]]:
        """The net ``(added, removed)`` axiom sets after ``version``.

        Multiset arithmetic over the change log: an axiom removed and
        re-added nets out.  ``None`` when the log window was exceeded.
        """
        records = self._log.since(version)
        if records is None:
            return None
        return net_delta(records)

    @staticmethod
    def of(axioms_: Iterable[ax.Axiom]) -> "KnowledgeBase":
        """Build a knowledge base from an iterable of axioms."""
        return KnowledgeBase().add(*axioms_)

    def copy(self) -> "KnowledgeBase":
        """A shallow copy (axioms are immutable, so this is safe)."""
        return KnowledgeBase.of(self.axioms())

    # ------------------------------------------------------------------
    # Iteration & size
    # ------------------------------------------------------------------
    def tbox(self) -> Iterator[ax.TBoxAxiom]:
        """All terminological axioms."""
        yield from self.concept_inclusions
        yield from self.role_inclusions
        yield from self.datatype_role_inclusions
        yield from self.transitivity_axioms

    def abox(self) -> Iterator[ax.ABoxAxiom]:
        """All assertional axioms."""
        yield from self.concept_assertions
        yield from self.role_assertions
        yield from self.negative_role_assertions
        yield from self.data_assertions
        yield from self.same_individuals
        yield from self.different_individuals

    def axioms(self) -> Iterator[ax.Axiom]:
        """All axioms, TBox then ABox."""
        yield from self.tbox()
        yield from self.abox()

    def __len__(self) -> int:
        return sum(1 for _ in self.axioms())

    def size(self) -> int:
        """Total syntactic size: AST nodes across all axioms."""
        total = 0
        for axiom in self.axioms():
            if isinstance(axiom, ax.ConceptInclusion):
                total += axiom.sub.size() + axiom.sup.size()
            elif isinstance(axiom, ax.ConceptAssertion):
                total += 1 + axiom.concept.size()
            else:
                total += 2
        return total

    # ------------------------------------------------------------------
    # Signature
    # ------------------------------------------------------------------
    def concepts_in_signature(self) -> FrozenSet[AtomicConcept]:
        """All atomic concept names occurring anywhere in the KB."""
        found: Set[AtomicConcept] = set()
        for concept in self._all_concepts():
            found |= atomic_concepts(concept)
        return frozenset(found)

    def object_roles_in_signature(self) -> FrozenSet[AtomicRole]:
        """All named object roles occurring anywhere in the KB."""
        found: Set[AtomicRole] = set()
        for concept in self._all_concepts():
            found |= {r.named for r in object_roles(concept)}
        for inclusion in self.role_inclusions:
            found.add(inclusion.sub.named)
            found.add(inclusion.sup.named)
        for transitivity in self.transitivity_axioms:
            found.add(transitivity.role)
        for assertion in self.role_assertions:
            found.add(assertion.role.named)
        for negative in self.negative_role_assertions:
            found.add(negative.role.named)
        return frozenset(found)

    def datatype_roles_in_signature(self) -> FrozenSet[DatatypeRole]:
        """All datatype roles occurring anywhere in the KB."""
        found: Set[DatatypeRole] = set()
        for concept in self._all_concepts():
            found |= datatype_roles(concept)
        for inclusion in self.datatype_role_inclusions:
            found.add(inclusion.sub)
            found.add(inclusion.sup)
        for assertion in self.data_assertions:
            found.add(assertion.role)
        return frozenset(found)

    def individuals_in_signature(self) -> FrozenSet[Individual]:
        """All individuals, asserted or mentioned in nominals."""
        found: Set[Individual] = set()
        for concept in self._all_concepts():
            found |= nominals(concept)
        for assertion in self.concept_assertions:
            found.add(assertion.individual)
        for assertion in self.role_assertions:
            found.add(assertion.source)
            found.add(assertion.target)
        for negative in self.negative_role_assertions:
            found.add(negative.source)
            found.add(negative.target)
        for assertion in self.data_assertions:
            found.add(assertion.source)
        for equality in self.same_individuals:
            found.add(equality.left)
            found.add(equality.right)
        for inequality in self.different_individuals:
            found.add(inequality.left)
            found.add(inequality.right)
        return frozenset(found)

    def _all_concepts(self) -> Iterator[Concept]:
        for inclusion in self.concept_inclusions:
            yield inclusion.sub
            yield inclusion.sup
        for assertion in self.concept_assertions:
            yield assertion.concept

    # ------------------------------------------------------------------
    # Role hierarchy
    # ------------------------------------------------------------------
    def role_superroles(self) -> Dict[ObjectRole, FrozenSet[ObjectRole]]:
        """Reflexive-transitive closure of the object-role hierarchy.

        Includes the mirrored inverse inclusions (``R [= S`` implies
        ``R- [= S-``), as required by SHOIN semantics.
        """
        edges: Dict[ObjectRole, Set[ObjectRole]] = {}

        def add_edge(sub: ObjectRole, sup: ObjectRole) -> None:
            edges.setdefault(sub, set()).add(sup)

        roles: Set[ObjectRole] = set()
        for named in self.object_roles_in_signature():
            roles.add(named)
            roles.add(named.inverse())
        for inclusion in self.role_inclusions:
            add_edge(inclusion.sub, inclusion.sup)
            add_edge(inclusion.sub.inverse(), inclusion.sup.inverse())
            roles |= {
                inclusion.sub,
                inclusion.sup,
                inclusion.sub.inverse(),
                inclusion.sup.inverse(),
            }
        closure: Dict[ObjectRole, FrozenSet[ObjectRole]] = {}
        for role in roles:
            reached = {role}
            frontier = [role]
            while frontier:
                current = frontier.pop()
                for nxt in edges.get(current, ()):
                    if nxt not in reached:
                        reached.add(nxt)
                        frontier.append(nxt)
            closure[role] = frozenset(reached)
        return closure

    def transitive_roles(self) -> FrozenSet[AtomicRole]:
        """The named roles declared transitive."""
        return frozenset(t.role for t in self.transitivity_axioms)

    def is_transitive(self, role: ObjectRole) -> bool:
        """Whether a role expression is transitive (``Trans(R)`` iff ``Trans(R-)``)."""
        return role.named in self.transitive_roles()

    def merged(self, other: "KnowledgeBase") -> "KnowledgeBase":
        """A new KB containing the axioms of both."""
        result = self.copy()
        result.add(*other.axioms())
        return result


def simple_roles(kb: KnowledgeBase) -> FrozenSet[AtomicRole]:
    """Named roles with no transitive subrole (usable in number restrictions).

    SHOIN requires roles in number restrictions to be *simple*; this helper
    lets generators and validity checks enforce that.
    """
    hierarchy = kb.role_superroles()
    transitive = kb.transitive_roles()
    unsimple: Set[AtomicRole] = set()
    for sub, supers in hierarchy.items():
        if sub.named in transitive:
            for sup in supers:
                unsimple.add(sup.named)
    return frozenset(r for r in kb.object_roles_in_signature() if r not in unsimple)
