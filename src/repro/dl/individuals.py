"""Individuals and data values of SHOIN(D) (paper Table 1, rows I and v)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, order=True)
class Individual:
    """A named individual of the abstract (object) domain."""

    name: str

    def __repr__(self) -> str:
        return self.name

    def renamed(self, suffix: str = "_c") -> "Individual":
        """The renamed copy used by the classical induced KB (Def. 6)."""
        return Individual(self.name + suffix)


@dataclass(frozen=True, order=True)
class DataValue:
    """A typed literal of the concrete (datatype) domain.

    ``datatype`` names the concrete type (``"integer"``, ``"string"``,
    ``"float"``); ``lexical`` is its printable lexical form.  Values compare
    by (datatype, lexical form), matching the paper's ``v^I = v^D``.
    """

    datatype: str
    lexical: str

    @staticmethod
    def of(value: Union[int, float, str]) -> "DataValue":
        """Wrap a Python value in the matching concrete datatype."""
        if isinstance(value, bool):
            return DataValue("boolean", "true" if value else "false")
        if isinstance(value, int):
            return DataValue("integer", str(value))
        if isinstance(value, float):
            return DataValue("float", repr(value))
        return DataValue("string", str(value))

    def to_python(self) -> Union[int, float, str, bool]:
        """The Python value this literal denotes."""
        if self.datatype == "integer":
            return int(self.lexical)
        if self.datatype == "float":
            return float(self.lexical)
        if self.datatype == "boolean":
            return self.lexical == "true"
        return self.lexical

    def __repr__(self) -> str:
        if self.datatype == "string":
            return f'"{self.lexical}"'
        return self.lexical
