"""A tableau satisfiability procedure for SHOIN(D) knowledge bases.

This is the classical reasoning substrate the paper assumes ("mature
reasoning mechanisms of classical description logic"): a completion-graph
tableau in the style of Horrocks & Sattler covering

* Boolean constructors, full existential/value restrictions;
* unqualified number restrictions (the SHOIN ``>= n R`` / ``<= n R``);
* role hierarchies with inverse roles, transitive roles via the
  ``all+``-propagation rule;
* nominals (``OneOf``), individual (in)equality, ABox reasoning;
* datatype roles and ranges with a witness-search concrete domain.

The TBox is *internalised*: each inclusion ``C [= D`` contributes the
universal constraint ``nnf(not C or D)`` added to every node.  Termination
on blockable nodes uses anywhere pairwise (double) blocking, as required in
the presence of inverse roles.  Nondeterminism (disjunction, at-most
merging, nominal choice) is explored by depth-first search in one of two
modes, selected by the ``search`` constructor flag:

* ``search="trail"`` (the default) mutates one completion graph in
  place, records an undo entry on a *trail* for every effect, and rolls
  back to the last choice point instead of copying.  Every derived fact
  carries the set of branch points its derivation used, and on a clash
  the search *backjumps* straight to the deepest branch point the clash
  actually depends on, skipping irrelevant pending alternatives
  (dependency-directed backtracking in the style of FaCT/HermiT).
  Blocking is maintained incrementally: node signatures are cached and
  recomputed only when the node, its parent, or the search state
  changed.
* ``search="copying"`` is the original copy-per-branch chronological
  search, kept verbatim as the reference oracle for differential tests
  (the same pattern as ``classify`` vs ``classify_pairwise``).

Both modes apply the same rules in the same order, so their verdicts
always agree; the trail mode merely prunes alternatives a clash provably
cannot depend on.

Known limitation (documented in README): the corner where nominals,
inverse roles and number restrictions interact (the "NIO" case needing the
NN-rule) is handled by merging alone, which can in exotic KBs miss
satisfiability; the finite-model enumerator cross-checks the tableau on
randomised tests to keep this honest.
"""

from __future__ import annotations

import itertools
from collections import ChainMap
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from .axioms import ConceptInclusion
from .concepts import (
    And,
    AtLeast,
    AtMost,
    AtomicConcept,
    Bottom,
    Concept,
    DataAtLeast,
    DataAtMost,
    DataExists,
    DataForall,
    Exists,
    Forall,
    Not,
    OneOf,
    Or,
    QualifiedAtLeast,
    QualifiedAtMost,
    Top,
)
from .budget import BudgetMeter
from .datatypes import DataRange, DataTop, find_witnesses
from .errors import BudgetExceeded, DegradationReason
from .individuals import Individual
from .kb import KnowledgeBase
from .nnf import negation_nnf, nnf
from .roles import AtomicRole, DatatypeRole, ObjectRole
from .stats import ReasonerStats
from ..obs.spans import span as obs_span

NodeId = int
DEFAULT_MAX_NODES = 4000
DEFAULT_MAX_BRANCHES = 200_000


@dataclass
class _Graph:
    """A completion graph: nodes, labels, edges, and distinctness facts.

    Object edges are stored in the named-role direction only (an ``R-``
    edge is recorded as an ``R`` edge the other way).  Data nodes live in a
    separate namespace with range labels.
    """

    labels: Dict[NodeId, Set[Concept]] = field(default_factory=dict)
    edges: Dict[Tuple[NodeId, NodeId], Set[AtomicRole]] = field(default_factory=dict)
    parent: Dict[NodeId, Optional[NodeId]] = field(default_factory=dict)
    roots: Dict[Individual, NodeId] = field(default_factory=dict)
    root_nodes: Set[NodeId] = field(default_factory=set)
    distinct: Set[FrozenSet[NodeId]] = field(default_factory=set)
    data_labels: Dict[NodeId, Set[DataRange]] = field(default_factory=dict)
    data_edges: Dict[Tuple[NodeId, NodeId], Set[DatatypeRole]] = field(
        default_factory=dict
    )
    data_distinct: Set[FrozenSet[NodeId]] = field(default_factory=set)
    forbidden: Dict[Tuple[NodeId, NodeId], Set[AtomicRole]] = field(
        default_factory=dict
    )
    next_id: int = 0
    creation_order: Dict[NodeId, int] = field(default_factory=dict)

    def copy(self) -> "_Graph":
        clone = _Graph(
            labels={n: set(s) for n, s in self.labels.items()},
            edges={e: set(s) for e, s in self.edges.items()},
            parent=dict(self.parent),
            roots=dict(self.roots),
            root_nodes=set(self.root_nodes),
            distinct=set(self.distinct),
            data_labels={n: set(s) for n, s in self.data_labels.items()},
            data_edges={e: set(s) for e, s in self.data_edges.items()},
            data_distinct=set(self.data_distinct),
            forbidden={e: set(s) for e, s in self.forbidden.items()},
            next_id=self.next_id,
            creation_order=dict(self.creation_order),
        )
        return clone

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def new_node(self, parent: Optional[NodeId]) -> NodeId:
        node = self.next_id
        self.next_id += 1
        self.labels[node] = set()
        self.parent[node] = parent
        self.creation_order[node] = node
        return node

    def new_data_node(self) -> NodeId:
        node = self.next_id
        self.next_id += 1
        self.data_labels[node] = set()
        return node

    def nodes(self) -> List[NodeId]:
        return sorted(self.labels)

    def is_root(self, node: NodeId) -> bool:
        return node in self.root_nodes

    # ------------------------------------------------------------------
    # Edges and neighbours
    # ------------------------------------------------------------------
    def add_edge(self, source: NodeId, target: NodeId, role: ObjectRole) -> None:
        if role.is_inverse:
            source, target, role = target, source, role.named
        self.edges.setdefault((source, target), set()).add(role)

    def successors(self, node: NodeId) -> Iterator[Tuple[NodeId, Set[AtomicRole]]]:
        for (source, target), roles in self.edges.items():
            if source == node:
                yield target, roles

    def predecessors(self, node: NodeId) -> Iterator[Tuple[NodeId, Set[AtomicRole]]]:
        for (source, target), roles in self.edges.items():
            if target == node:
                yield source, roles

    def neighbours(
        self,
        node: NodeId,
        role: ObjectRole,
        hierarchy: Dict[ObjectRole, FrozenSet[ObjectRole]],
    ) -> Set[NodeId]:
        """All ``role``-neighbours of ``node`` respecting hierarchy and inverses."""
        found: Set[NodeId] = set()
        for target, roles in self.successors(node):
            for edge_role in roles:
                if role in hierarchy.get(edge_role, frozenset({edge_role})):
                    found.add(target)
                    break
        for source, roles in self.predecessors(node):
            for edge_role in roles:
                inverse = edge_role.inverse()
                if role in hierarchy.get(inverse, frozenset({inverse})):
                    found.add(source)
                    break
        return found

    def edge_roles_between(
        self,
        source: NodeId,
        target: NodeId,
    ) -> FrozenSet[ObjectRole]:
        """Role expressions connecting ``source`` to ``target`` (both directions)."""
        roles: Set[ObjectRole] = set(self.edges.get((source, target), ()))
        for role in self.edges.get((target, source), ()):
            roles.add(role.inverse())
        return frozenset(roles)

    def data_neighbours(
        self,
        node: NodeId,
        role: DatatypeRole,
        hierarchy: Dict[DatatypeRole, FrozenSet[DatatypeRole]],
    ) -> Set[NodeId]:
        found: Set[NodeId] = set()
        for (source, target), roles in self.data_edges.items():
            if source != node:
                continue
            for edge_role in roles:
                if role in hierarchy.get(edge_role, frozenset({edge_role})):
                    found.add(target)
                    break
        return found

    def are_distinct(self, left: NodeId, right: NodeId) -> bool:
        return frozenset({left, right}) in self.distinct

    def set_distinct(self, left: NodeId, right: NodeId) -> None:
        if left != right:
            self.distinct.add(frozenset({left, right}))

    # ------------------------------------------------------------------
    # Merging (the <=-rule and nominal identification)
    # ------------------------------------------------------------------
    def merge(self, victim: NodeId, survivor: NodeId) -> bool:
        """Merge ``victim`` into ``survivor``; False signals an immediate clash."""
        if victim == survivor:
            return True
        if self.are_distinct(victim, survivor):
            return False
        self.labels[survivor] |= self.labels.pop(victim)
        for (source, target) in list(self.edges):
            if victim in (source, target):
                roles = self.edges.pop((source, target))
                new_source = survivor if source == victim else source
                new_target = survivor if target == victim else target
                self.edges.setdefault((new_source, new_target), set()).update(roles)
        for (source, target) in list(self.data_edges):
            if source == victim:
                roles = self.data_edges.pop((source, target))
                self.data_edges.setdefault((survivor, target), set()).update(roles)
        for pair in list(self.distinct):
            if victim in pair:
                self.distinct.discard(pair)
                (other,) = pair - {victim}
                if other == survivor:
                    return False
                self.distinct.add(frozenset({survivor, other}))
        for (source, target) in list(self.forbidden):
            if victim in (source, target):
                roles = self.forbidden.pop((source, target))
                new_source = survivor if source == victim else source
                new_target = survivor if target == victim else target
                self.forbidden.setdefault((new_source, new_target), set()).update(
                    roles
                )
        for individual, node in list(self.roots.items()):
            if node == victim:
                self.roots[individual] = survivor
        if victim in self.root_nodes:
            self.root_nodes.discard(victim)
            self.root_nodes.add(survivor)
        self.parent.pop(victim, None)
        # Children of the victim re-hang under the survivor so blocking
        # ancestry stays acyclic.
        for node, parent in list(self.parent.items()):
            if parent == victim:
                self.parent[node] = survivor
        self.creation_order[survivor] = min(
            self.creation_order.get(survivor, survivor),
            self.creation_order.get(victim, victim),
        )
        self.creation_order.pop(victim, None)
        return True

    def merge_data(self, victim: NodeId, survivor: NodeId) -> bool:
        if victim == survivor:
            return True
        if frozenset({victim, survivor}) in self.data_distinct:
            return False
        self.data_labels[survivor] |= self.data_labels.pop(victim)
        for (source, target) in list(self.data_edges):
            if target == victim:
                roles = self.data_edges.pop((source, target))
                self.data_edges.setdefault((source, survivor), set()).update(roles)
        for pair in list(self.data_distinct):
            if victim in pair:
                self.data_distinct.discard(pair)
                (other,) = pair - {victim}
                if other == survivor:
                    return False
                self.data_distinct.add(frozenset({survivor, other}))
        return True


@dataclass
class _Choice:
    """One nondeterministic choice point found on a stable graph.

    ``alternatives`` are plain-data descriptors (see
    :meth:`Tableau._apply_descriptor`), one per branch, tried in order:

    * ``("add", node, concept)`` — add ``concept`` to the node label;
    * ``("nominal", node, individual)`` — resolve a multi-nominal to one
      individual (merging with its root node if bound);
    * ``("merge", victim, survivor)`` — identify two object nodes;
    * ``("data_merge", victim, survivor)`` — identify two data nodes.

    ``trigger`` lists the dependency keys of the facts whose presence
    created this choice (used by trail search to seed the branch point's
    dependency set); ``None`` means the trigger is not tracked precisely
    and the choice must be assumed to depend on every open branch point.
    An empty ``alternatives`` list is a clash: the triggering disjunction
    has no open operand left.
    """

    alternatives: List[Tuple]
    trigger: Optional[List[Tuple]] = None


class Tableau:
    """Tableau satisfiability checker for one knowledge base.

    The expensive KB preprocessing (NNF of universal constraints, role
    hierarchy closure) happens once in the constructor; each
    :meth:`is_satisfiable` call explores a fresh completion graph, with
    optional extra assertions (used for entailment-by-refutation).

    With ``track_provenance=True`` (trail search only) every KB axiom is
    assigned a negative *axiom tag* threaded through the trail engine's
    per-fact dependency sets alongside the non-negative branch-point
    levels.  After an unsatisfiable run, :attr:`last_unsat_core` holds
    the axioms whose tags reached the final clash — an unsat-core *seed*
    for justification search (callers re-verify it; see
    :mod:`repro.explain.justify`).  Axioms acting through preprocessed
    closures (role inclusions, transitivity, datatype role inclusions)
    are not tracked individually and are always included in the core.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        max_nodes: int = DEFAULT_MAX_NODES,
        max_branches: int = DEFAULT_MAX_BRANCHES,
        use_bcp: bool = True,
        use_absorption: bool = True,
        stats: Optional["ReasonerStats"] = None,
        search: str = "trail",
        track_provenance: bool = False,
    ):
        """Compile ``kb`` into a reusable satisfiability engine.

        ``use_bcp`` / ``use_absorption`` toggle the two switchable
        optimisations (ablation studies only); ``search`` picks the
        trail or copying engine; ``track_provenance=True`` additionally
        tags every axiom so refutations expose
        :attr:`last_unsat_core` and clash traces (trail search only).
        Reasoners enable it on their trail-search tableaux: the cores
        feed both explanation seeding and the dependency sets behind
        fine-grained cache invalidation, and the per-run cost is
        O(probes) since the KB tag table is shared across runs.
        """
        if search not in ("trail", "copying"):
            raise ValueError(
                f"search must be 'trail' or 'copying', got {search!r}"
            )
        self.kb = kb
        self.max_nodes = max_nodes
        self.max_branches = max_branches
        #: ``"trail"`` for in-place search with dependency-directed
        #: backjumping, ``"copying"`` for the copy-per-branch oracle.
        self.search = search
        #: Optional shared counters (runs, branches) updated by every call.
        self.stats = stats
        #: Boolean constraint propagation on disjunctions (fail-first +
        #: immediate-clash screening).  Disable only for ablation studies.
        self.use_bcp = use_bcp
        #: Absorption: inclusions with an atomic left side fire lazily
        #: (``A in label -> add C``) instead of contributing a universal
        #: disjunction to every node.  Sound and complete because the
        #: canonical model interprets atomic concepts by their labels.
        self.use_absorption = use_absorption
        self.hierarchy = kb.role_superroles()
        self.data_hierarchy = self._datatype_hierarchy()
        self.transitive = kb.transitive_roles()
        #: Provenance bookkeeping (all empty when tracking is off, so the
        #: default search path carries no extra per-fact work).
        self.track_provenance = track_provenance
        self._axiom_tags: Dict[int, object] = {}
        self._tag_of: Dict[object, int] = {}
        self.universal_deps: Dict[Concept, FrozenSet[int]] = {}
        self.absorbed_deps: Dict[Tuple, FrozenSet[int]] = {}
        self.last_unsat_core: Optional[FrozenSet] = None
        if track_provenance:
            for axiom in kb.axioms():
                if axiom not in self._tag_of:
                    tag = -(len(self._tag_of) + 1)
                    self._tag_of[axiom] = tag
                    self._axiom_tags[tag] = axiom
            #: Axioms whose effect flows through preprocessed closures
            #: (hierarchies, transitivity); never tracked per-fact, always
            #: part of any reported core.
            self._background_axioms = frozenset(
                itertools.chain(
                    kb.role_inclusions,
                    kb.datatype_role_inclusions,
                    kb.transitivity_axioms,
                )
            )
        else:
            self._background_axioms = frozenset()
        self.universal: List[Concept] = []
        self.absorbed: Dict[AtomicConcept, List[Concept]] = {}
        for inclusion in kb.concept_inclusions:
            tag = self._tag_of.get(inclusion)
            if use_absorption and isinstance(inclusion.sub, AtomicConcept):
                consequence = nnf(inclusion.sup)
                self.absorbed.setdefault(inclusion.sub, []).append(consequence)
                if tag is not None:
                    akey = (inclusion.sub, consequence)
                    self.absorbed_deps[akey] = self.absorbed_deps.get(
                        akey, EMPTY
                    ) | frozenset({tag})
            else:
                constraint = nnf(
                    Or.of(negation_nnf(inclusion.sub), inclusion.sup)
                )
                self.universal.append(constraint)
                if tag is not None:
                    self.universal_deps[constraint] = self.universal_deps.get(
                        constraint, EMPTY
                    ) | frozenset({tag})
        self._branches_used = 0
        #: The active budget meter of the current run (None = unbudgeted).
        self._meter: Optional[BudgetMeter] = None
        self._sort_keys: Dict[Concept, str] = {}
        # Per-run provenance/trace state (populated by is_satisfiable).
        # The KB tag table itself is shared read-only across runs; only
        # the probe-tag overlay is per-run (see _prepare_run_tags).
        self._active_trace = None
        self._run_tag_axioms: Dict[int, object] = self._axiom_tags
        self._run_tags: FrozenSet[int] = frozenset(self._axiom_tags)
        self._pending_init_deps: Dict[Tuple, FrozenSet[int]] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def is_satisfiable(
        self,
        extra_assertions: Iterable = (),
        trace=None,
        meter: Optional[BudgetMeter] = None,
    ) -> bool:
        """Whether the KB (plus optional extra ABox axioms) has a model.

        ``trace``, when given, is a :class:`repro.explain.model.Trace`
        that records the run's structured search events (trail search
        only; the copying oracle records just the verdict).

        ``meter``, when given, is a :class:`~repro.dl.budget.BudgetMeter`
        ticked at rule-application and choice-point boundaries; an
        exhausted budget aborts the run with
        :class:`~repro.dl.errors.BudgetExceeded`.  The same meter may
        span several runs, so cumulative limits (deadline, branches,
        trail) govern a whole service call.

        Each run is wrapped in a ``tableau_run`` observability span
        (search strategy, probe count, verdict, and the stats counters
        it incremented); with tracing disabled the wrapper is a no-op.
        """
        with obs_span("tableau_run", stats=self.stats) as span:
            span.set("search", self.search)
            result = self._run_satisfiable(extra_assertions, trace, meter, span)
            span.set("satisfiable", result)
            return result

    def _run_satisfiable(
        self,
        extra_assertions: Iterable,
        trace,
        meter: Optional[BudgetMeter],
        span,
    ) -> bool:
        self._meter = meter
        if self.stats is not None:
            self.stats.tableau_runs += 1
        self._complete_graph: Optional[_Graph] = None
        self.last_unsat_core = None
        self._active_trace = trace
        if trace is not None and trace.stats is None:
            trace.stats = self.stats
        extra = list(extra_assertions)
        span.set("probes", len(extra))
        record: Optional[List] = None
        if self.track_provenance:
            record = []
            self._prepare_run_tags(extra)
        graph = self._initial_graph(extra, record=record)
        if graph is None:
            # Only SameIndividual/DifferentIndividuals conflicts abort
            # graph construction, so they bound the core seed.
            if self.track_provenance:
                self.last_unsat_core = frozenset(
                    itertools.chain(
                        self.kb.same_individuals, self.kb.different_individuals
                    )
                )
            if trace is not None:
                trace.emit("verdict", (False,))
            return False
        if self.track_provenance:
            self._pending_init_deps = self._seed_provenance(
                graph, extra, record or []
            )
        if trace is not None:
            trace.emit(
                "init", (len(graph.labels), len(self._pending_init_deps))
            )
        self._branches_used = 0
        if self.search == "copying":
            result = self._solve(graph)
            if trace is not None:
                trace.emit("verdict", (result,))
            return result
        engine = _TrailEngine(self, graph)
        try:
            result = engine.solve()
            if self.track_provenance and not result:
                self.last_unsat_core = self._resolve_core(engine.final_clash)
            if trace is not None:
                trace.emit("verdict", (result,))
            return result
        finally:
            if self.stats is not None:
                self.stats.trail_length += engine.trail_total

    def _prepare_run_tags(self, extra: List) -> None:
        """Assign fresh (negative) tags to this run's probe assertions.

        Probe tags live in a small per-run overlay chained in front of
        the shared KB tag table, so preparation costs O(|probes|), not
        O(|KB|).  ``_run_tags`` (consumed by the conservative
        depends-on-everything clash paths) deliberately stays the KB
        tag set alone: probe tags never survive into unsat cores, and
        the branch-level arithmetic filters on sign, not membership.
        """
        self._probe_tag_of: Dict[object, int] = {}
        next_tag = -(len(self._axiom_tags) + 1)
        probe_tags: Dict[int, object] = {}
        for axiom in extra:
            if axiom in self._tag_of or axiom in self._probe_tag_of:
                continue
            self._probe_tag_of[axiom] = next_tag
            probe_tags[next_tag] = axiom
            next_tag -= 1
        if probe_tags:
            self._run_tag_axioms = ChainMap(probe_tags, self._axiom_tags)
        else:
            self._run_tag_axioms = self._axiom_tags

    def _seed_provenance(
        self, graph: _Graph, extra: List, record: List
    ) -> Dict[Tuple, FrozenSet[int]]:
        """Initial-fact dependency map: trail fact key -> axiom tags.

        Keys are computed against the *final* root bindings (after the
        SameIndividual merges of graph construction), so they match the
        facts the trail engine actually sees.
        """
        from .axioms import (
            ConceptAssertion,
            DataAssertion,
            DifferentIndividuals,
            NegativeRoleAssertion,
            RoleAssertion,
            SameIndividual,
        )

        out: Dict[Tuple, Set[int]] = {}
        data_nodes = iter(record)

        def note(key: Tuple, tag: int) -> None:
            out.setdefault(key, set()).add(tag)

        for axiom in itertools.chain(self.kb.abox(), extra):
            tag = self._tag_of.get(axiom)
            if tag is None:
                tag = self._probe_tag_of.get(axiom)
            if isinstance(axiom, DataAssertion):
                recorded_axiom, data_node = next(data_nodes)
                assert recorded_axiom is axiom
            if tag is None:
                continue
            if isinstance(axiom, ConceptAssertion):
                node = graph.roots[axiom.individual]
                note(("L", node, nnf(axiom.concept)), tag)
            elif isinstance(axiom, RoleAssertion):
                source, target, role = axiom.source, axiom.target, axiom.role
                if role.is_inverse:
                    source, target, role = target, source, role.named
                note(("E", graph.roots[source], graph.roots[target], role), tag)
            elif isinstance(axiom, NegativeRoleAssertion):
                normalised = axiom.normalised()
                note(
                    (
                        "F",
                        graph.roots[normalised.source],
                        graph.roots[normalised.target],
                        normalised.role,
                    ),
                    tag,
                )
            elif isinstance(axiom, DataAssertion):
                note(("DN", data_node), tag)
                note(
                    (
                        "DL",
                        data_node,
                        _ExactValue(axiom.value.datatype, axiom.value.lexical),
                    ),
                    tag,
                )
                note(
                    ("DE", graph.roots[axiom.source], data_node, axiom.role),
                    tag,
                )
            elif isinstance(axiom, SameIndividual):
                # The merge's effects spread over the surviving node;
                # over-approximate by tagging the node's existence.
                note(("N", graph.roots[axiom.left]), tag)
            elif isinstance(axiom, DifferentIndividuals):
                pair = frozenset(
                    {graph.roots[axiom.left], graph.roots[axiom.right]}
                )
                note(("NEQ", pair), tag)
        return {key: frozenset(tags) for key, tags in out.items()}

    def _resolve_core(self, clash: FrozenSet[int]) -> FrozenSet:
        """Map final-clash tags back to KB axioms (probe tags dropped)."""
        core = {
            self._axiom_tags[tag]
            for tag in clash
            if tag < 0 and tag in self._axiom_tags
        }
        return frozenset(core) | self._background_axioms

    def concept_satisfiable(self, concept: Concept) -> bool:
        """Whether ``concept`` is satisfiable w.r.t. the KB."""
        from .axioms import ConceptAssertion

        probe = Individual("__probe__")
        return self.is_satisfiable([ConceptAssertion(probe, concept)])

    def extract_model(self):
        """A finite model from the last successful satisfiability run.

        Returns an :class:`~repro.semantics.interpretation.Interpretation`
        built from the completion graph, or ``None`` when no finite model
        can be read off: no successful run yet, or the candidate fails
        verification against the KB (extraction is *checked*, never
        trusted — in particular, graphs completed through blocking
        usually describe infinite canonical models and fail the check).

        Construction: alive nodes form the domain; atomic concept labels
        give concept extensions; role extensions start from
        hierarchy-expanded neighbour pairs and are closed under
        transitivity and sub-role propagation to a fixpoint; data values
        come from the witness assignment of the final concrete-domain
        check.
        """
        from ..semantics.interpretation import Interpretation

        graph = getattr(self, "_complete_graph", None)
        if graph is None:
            return None
        nodes = graph.nodes()
        concept_ext = {
            concept: frozenset(
                node
                for node in nodes
                if concept in graph.labels[node]
            )
            for concept in self.kb.concepts_in_signature()
        }
        named_roles = sorted(self.kb.object_roles_in_signature())
        role_ext: Dict[AtomicRole, Set[Tuple[NodeId, NodeId]]] = {
            role: {
                (x, y)
                for x in nodes
                for y in graph.neighbours(x, role, self.hierarchy)
            }
            for role in named_roles
        }
        changed = True
        while changed:
            changed = False
            for role in named_roles:
                if self.kb.is_transitive(role):
                    closed = _transitive_closure(role_ext[role])
                    if closed != role_ext[role]:
                        role_ext[role] = closed
                        changed = True
            for inclusion in self.kb.role_inclusions:
                sub_pairs = _role_expression_pairs(role_ext, inclusion.sub)
                sup_name = inclusion.sup.named
                oriented = (
                    {(y, x) for (x, y) in sub_pairs}
                    if inclusion.sup.is_inverse
                    else sub_pairs
                )
                if not oriented <= role_ext.get(sup_name, set()):
                    role_ext.setdefault(sup_name, set()).update(oriented)
                    changed = True
        data_role_ext: Dict[DatatypeRole, Set] = {}
        assignment = getattr(self, "_data_assignment", {})
        for (node, data_node), roles in graph.data_edges.items():
            value = assignment.get(data_node)
            if value is None:
                continue
            for role in roles:
                for super_role in self.data_hierarchy.get(
                    role, frozenset({role})
                ):
                    data_role_ext.setdefault(super_role, set()).add(
                        (node, value)
                    )
        interpretation = Interpretation(
            domain=frozenset(nodes),
            concept_ext={c: frozenset(e) for c, e in concept_ext.items()},
            role_ext={r: frozenset(e) for r, e in role_ext.items()},
            data_role_ext={
                u: frozenset(e) for u, e in data_role_ext.items()
            },
            individual_map={
                individual: node
                for individual, node in graph.roots.items()
                if node in graph.labels
            },
        )
        if not interpretation.is_model(self.kb):
            return None
        return interpretation

    # ------------------------------------------------------------------
    # Initialisation
    # ------------------------------------------------------------------
    def _datatype_hierarchy(self) -> Dict[DatatypeRole, FrozenSet[DatatypeRole]]:
        edges: Dict[DatatypeRole, Set[DatatypeRole]] = {}
        roles: Set[DatatypeRole] = set(self.kb.datatype_roles_in_signature())
        for inclusion in self.kb.datatype_role_inclusions:
            edges.setdefault(inclusion.sub, set()).add(inclusion.sup)
            roles |= {inclusion.sub, inclusion.sup}
        closure: Dict[DatatypeRole, FrozenSet[DatatypeRole]] = {}
        for role in roles:
            reached = {role}
            frontier = [role]
            while frontier:
                current = frontier.pop()
                for nxt in edges.get(current, ()):
                    if nxt not in reached:
                        reached.add(nxt)
                        frontier.append(nxt)
            closure[role] = frozenset(reached)
        return closure

    def _initial_graph(
        self, extra_assertions: Iterable, record: Optional[List] = None
    ) -> Optional[_Graph]:
        from .axioms import (
            ConceptAssertion,
            DataAssertion,
            DifferentIndividuals,
            NegativeRoleAssertion,
            RoleAssertion,
            SameIndividual,
        )

        graph = _Graph()
        individuals = set(self.kb.individuals_in_signature())
        extra = list(extra_assertions)
        for axiom in extra:
            if isinstance(axiom, ConceptAssertion):
                individuals.add(axiom.individual)
            elif isinstance(axiom, (RoleAssertion, NegativeRoleAssertion)):
                individuals |= {axiom.source, axiom.target}
            elif isinstance(axiom, (SameIndividual, DifferentIndividuals)):
                individuals |= {axiom.left, axiom.right}
            elif isinstance(axiom, DataAssertion):
                individuals.add(axiom.source)
        if not individuals:
            individuals = {Individual("__root__")}
        for individual in sorted(individuals):
            node = graph.new_node(None)
            graph.roots[individual] = node
            graph.root_nodes.add(node)
            graph.labels[node].add(OneOf(frozenset({individual})))

        def node_of(individual: Individual) -> NodeId:
            return graph.roots[individual]

        for axiom in itertools.chain(self.kb.abox(), extra):
            if isinstance(axiom, ConceptAssertion):
                graph.labels[node_of(axiom.individual)].add(nnf(axiom.concept))
            elif isinstance(axiom, RoleAssertion):
                graph.add_edge(
                    node_of(axiom.source), node_of(axiom.target), axiom.role
                )
            elif isinstance(axiom, NegativeRoleAssertion):
                normalised = axiom.normalised()
                named = normalised.role
                assert isinstance(named, AtomicRole)
                graph.forbidden.setdefault(
                    (node_of(normalised.source), node_of(normalised.target)),
                    set(),
                ).add(named)
            elif isinstance(axiom, DataAssertion):
                data_node = graph.new_data_node()
                if record is not None:
                    # Provenance seeding needs to know which data node
                    # each assertion created (see _seed_provenance).
                    record.append((axiom, data_node))
                graph.data_labels[data_node].add(
                    _ExactValue(axiom.value.datatype, axiom.value.lexical)
                )
                graph.data_edges.setdefault(
                    (node_of(axiom.source), data_node), set()
                ).add(axiom.role)
            elif isinstance(axiom, SameIndividual):
                if not graph.merge(
                    node_of(axiom.left), node_of(axiom.right)
                ):
                    return None
            elif isinstance(axiom, DifferentIndividuals):
                left, right = node_of(axiom.left), node_of(axiom.right)
                if left == right:
                    return None
                graph.set_distinct(left, right)
        return graph

    # ------------------------------------------------------------------
    # Search driver
    # ------------------------------------------------------------------
    def _use_branch(self) -> None:
        """Count one explored branch against the shared budget."""
        self._branches_used += 1
        if self.stats is not None:
            self.stats.branches_explored += 1
        if self._branches_used > self.max_branches:
            raise BudgetExceeded(
                f"tableau exceeded {self.max_branches} branches",
                DegradationReason.BRANCHES,
            )
        if self._meter is not None:
            self._meter.note_branch()

    def _node_cap(self) -> int:
        """The effective per-run node cap (budget tightens, never loosens)."""
        meter = self._meter
        if meter is not None and meter.max_nodes is not None:
            return min(self.max_nodes, meter.max_nodes)
        return self.max_nodes

    def _check_nodes(self, graph: _Graph) -> None:
        """Abort when the completion graph outgrew the node cap."""
        cap = self._node_cap()
        if len(graph.labels) > cap:
            raise BudgetExceeded(
                f"tableau exceeded {cap} nodes", DegradationReason.NODES
            )

    def _solve(self, graph: _Graph) -> bool:
        self._use_branch()
        while True:
            if self._meter is not None:
                self._meter.tick()
            self._check_nodes(graph)
            status = self._apply_deterministic(graph)
            if status == "clash":
                return False
            if status == "changed":
                continue
            choice = self._find_choice(graph, self._blocked_nodes(graph))
            if choice is None:
                return self._final_checks(graph)
            for descriptor in choice.alternatives:
                branch = graph.copy()
                if self._apply_descriptor(branch, descriptor) and self._solve(
                    branch
                ):
                    return True
            return False

    # ------------------------------------------------------------------
    # Deterministic expansion
    # ------------------------------------------------------------------
    def _apply_deterministic(self, graph: _Graph) -> str:
        changed = False
        # Negative role assertions: a forbidden pair that became an actual
        # neighbour pair (directly, through hierarchy/merging, or through a
        # chain of a transitive subrole) clashes.
        for (source, target), roles in graph.forbidden.items():
            if source not in graph.labels or target not in graph.labels:
                continue
            for role in roles:
                if target in graph.neighbours(source, role, self.hierarchy):
                    return "clash"
                for sub_role, supers in self.hierarchy.items():
                    if role not in supers or not self.kb.is_transitive(sub_role):
                        continue
                    if self._chain_reachable(graph, source, target, sub_role):
                        return "clash"
        blocked = self._blocked_nodes(graph)
        for node in graph.nodes():
            label = graph.labels[node]
            if self._has_clash(graph, node):
                return "clash"
            for concept in list(label):
                if isinstance(concept, Top):
                    continue
                if isinstance(concept, And):
                    for operand in concept.operands:
                        if operand not in label:
                            label.add(operand)
                            changed = True
                # Absorbed inclusions: A in label fires its definitions.
                if isinstance(concept, AtomicConcept):
                    for consequence in self.absorbed.get(concept, ()):
                        if consequence not in label:
                            label.add(consequence)
                            changed = True
            # Universal (internalised TBox) constraints.
            for constraint in self.universal:
                if constraint not in label:
                    label.add(constraint)
                    changed = True
            if changed:
                continue
            # all-rule and all+-rule.
            for concept in list(label):
                if isinstance(concept, Forall):
                    for neighbour in graph.neighbours(
                        node, concept.role, self.hierarchy
                    ):
                        if concept.filler not in graph.labels[neighbour]:
                            graph.labels[neighbour].add(concept.filler)
                            changed = True
                    changed |= self._propagate_transitive(graph, node, concept)
                elif isinstance(concept, DataForall):
                    for neighbour in graph.data_neighbours(
                        node, concept.role, self.data_hierarchy
                    ):
                        if concept.range not in graph.data_labels[neighbour]:
                            graph.data_labels[neighbour].add(concept.range)
                            changed = True
            if changed:
                continue
            if node in blocked:
                continue
            # some-rule.
            for concept in list(label):
                if isinstance(concept, Exists):
                    if not any(
                        concept.filler in graph.labels[n]
                        for n in graph.neighbours(node, concept.role, self.hierarchy)
                    ):
                        fresh = graph.new_node(node)
                        graph.add_edge(node, fresh, concept.role)
                        graph.labels[fresh].add(concept.filler)
                        changed = True
                elif isinstance(concept, AtLeast):
                    neighbours = graph.neighbours(node, concept.role, self.hierarchy)
                    if not self._has_n_pairwise_distinct(
                        graph, neighbours, concept.n
                    ):
                        fresh_nodes = []
                        for _ in range(concept.n):
                            fresh = graph.new_node(node)
                            graph.add_edge(node, fresh, concept.role)
                            fresh_nodes.append(fresh)
                        for left, right in itertools.combinations(fresh_nodes, 2):
                            graph.set_distinct(left, right)
                        if concept.n > 0:
                            changed = True
                elif isinstance(concept, QualifiedAtLeast):
                    matching = {
                        y
                        for y in graph.neighbours(node, concept.role, self.hierarchy)
                        if concept.filler in graph.labels[y]
                    }
                    if not self._has_n_pairwise_distinct(
                        graph, matching, concept.n
                    ):
                        fresh_nodes = []
                        for _ in range(concept.n):
                            fresh = graph.new_node(node)
                            graph.add_edge(node, fresh, concept.role)
                            graph.labels[fresh].add(concept.filler)
                            fresh_nodes.append(fresh)
                        for left, right in itertools.combinations(fresh_nodes, 2):
                            graph.set_distinct(left, right)
                        if concept.n > 0:
                            changed = True
                elif isinstance(concept, DataExists):
                    if not any(
                        concept.range in graph.data_labels[n]
                        for n in graph.data_neighbours(
                            node, concept.role, self.data_hierarchy
                        )
                    ):
                        fresh = graph.new_data_node()
                        graph.data_edges.setdefault((node, fresh), set()).add(
                            concept.role
                        )
                        graph.data_labels[fresh].add(concept.range)
                        changed = True
                elif isinstance(concept, DataAtLeast):
                    neighbours = graph.data_neighbours(
                        node, concept.role, self.data_hierarchy
                    )
                    distinct_count = self._max_pairwise_distinct_data(
                        graph, neighbours
                    )
                    if distinct_count < concept.n:
                        fresh_nodes = []
                        for _ in range(concept.n):
                            fresh = graph.new_data_node()
                            graph.data_edges.setdefault((node, fresh), set()).add(
                                concept.role
                            )
                            graph.data_labels[fresh].add(DataTop())
                            fresh_nodes.append(fresh)
                        for left, right in itertools.combinations(fresh_nodes, 2):
                            graph.data_distinct.add(frozenset({left, right}))
                        if concept.n > 0:
                            changed = True
            if changed:
                continue
        # Deterministic nominal identification: two alive nodes sharing a
        # singleton nominal must be the same element.
        for concept, holders in self._nominal_holders(graph).items():
            if len(holders) > 1:
                ordered = sorted(holders, key=lambda n: graph.creation_order[n])
                survivor = ordered[0]
                for victim in ordered[1:]:
                    if not graph.merge(victim, survivor):
                        return "clash"
                return "changed"
        if changed:
            return "changed"
        return "stable"

    def _chain_reachable(
        self, graph: _Graph, source: NodeId, target: NodeId, role: ObjectRole
    ) -> bool:
        """Whether ``target`` is reachable from ``source`` by >= 1 step of
        ``role``-neighbour edges (a transitive role's closure)."""
        frontier = [source]
        seen: Set[NodeId] = set()
        while frontier:
            current = frontier.pop()
            for neighbour in graph.neighbours(current, role, self.hierarchy):
                if neighbour == target:
                    return True
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return False

    def _propagate_transitive(
        self, graph: _Graph, node: NodeId, concept: Forall
    ) -> bool:
        """The all+-rule: push ``all S.C`` through transitive subroles of S."""
        changed = False
        for sub_role, supers in self.hierarchy.items():
            if concept.role not in supers:
                continue
            if not self.kb.is_transitive(sub_role):
                continue
            carried = Forall(sub_role, concept.filler)
            for neighbour in graph.neighbours(node, sub_role, self.hierarchy):
                if carried not in graph.labels[neighbour]:
                    graph.labels[neighbour].add(carried)
                    changed = True
        return changed

    def _nominal_holders(self, graph: _Graph) -> Dict[OneOf, List[NodeId]]:
        holders: Dict[OneOf, List[NodeId]] = {}
        for node in graph.nodes():
            for concept in graph.labels[node]:
                if isinstance(concept, OneOf) and len(concept.individuals) == 1:
                    holders.setdefault(concept, []).append(node)
        return holders

    # ------------------------------------------------------------------
    # Clash detection
    # ------------------------------------------------------------------
    def _has_clash(self, graph: _Graph, node: NodeId) -> bool:
        label = graph.labels[node]
        for concept in label:
            if isinstance(concept, Bottom):
                return True
            if isinstance(concept, Not):
                if concept.operand in label:
                    return True
                if isinstance(concept.operand, OneOf):
                    for other in concept.operand.individuals:
                        if graph.roots.get(other) == node:
                            return True
            if isinstance(concept, AtMost):
                # Clash once more than n neighbours remain and none can be
                # merged (all provably pairwise distinct); until then the
                # <=-choice rule proposes merges.
                neighbours = graph.neighbours(node, concept.role, self.hierarchy)
                if len(neighbours) > concept.n and all(
                    graph.are_distinct(a, b)
                    for a, b in itertools.combinations(sorted(neighbours), 2)
                ):
                    return True
            if isinstance(concept, QualifiedAtMost):
                matching = {
                    y
                    for y in graph.neighbours(node, concept.role, self.hierarchy)
                    if concept.filler in graph.labels[y]
                }
                if len(matching) > concept.n and all(
                    graph.are_distinct(a, b)
                    for a, b in itertools.combinations(sorted(matching), 2)
                ):
                    return True
            if isinstance(concept, DataAtMost):
                neighbours = graph.data_neighbours(
                    node, concept.role, self.data_hierarchy
                )
                if len(neighbours) > concept.n and all(
                    frozenset({a, b}) in graph.data_distinct
                    for a, b in itertools.combinations(sorted(neighbours), 2)
                ):
                    return True
        return False

    @staticmethod
    def _has_n_pairwise_distinct(
        graph: _Graph, nodes: Set[NodeId], n: int
    ) -> bool:
        """Whether ``nodes`` contains ``n`` provably pairwise-distinct members.

        Exact maximum-clique on the distinctness graph is exponential; for
        the small neighbour sets the tableau produces a greedy clique is
        computed over every start node, which is exact for the cliques of
        size <= 3 that unqualified SHOIN restrictions generate in practice.
        """
        if n <= 0:
            return True
        if len(nodes) < n:
            return False
        ordered = sorted(nodes)
        for start in ordered:
            clique = [start]
            for candidate in ordered:
                if candidate in clique:
                    continue
                if all(graph.are_distinct(candidate, member) for member in clique):
                    clique.append(candidate)
                if len(clique) >= n:
                    return True
        return False

    @staticmethod
    def _max_pairwise_distinct_data(graph: _Graph, nodes: Set[NodeId]) -> int:
        ordered = sorted(nodes)
        best = 1 if ordered else 0
        for start in ordered:
            clique = [start]
            for candidate in ordered:
                if candidate in clique:
                    continue
                if all(
                    frozenset({candidate, member}) in graph.data_distinct
                    for member in clique
                ):
                    clique.append(candidate)
            best = max(best, len(clique))
        return best

    # ------------------------------------------------------------------
    # Blocking
    # ------------------------------------------------------------------
    def _blocked_nodes(self, graph: _Graph) -> Set[NodeId]:
        """Anywhere pairwise-blocked blockable nodes (and their descendants)."""
        blocked: Set[NodeId] = set()
        blockable = [
            n
            for n in graph.nodes()
            if not graph.is_root(n) and graph.parent.get(n) is not None
        ]
        order = graph.creation_order
        directly_blocked: Set[NodeId] = set()
        for node in blockable:
            parent = graph.parent[node]
            if parent is None or parent not in graph.labels:
                continue
            node_label = frozenset(graph.labels[node])
            parent_label = frozenset(graph.labels[parent])
            in_roles = graph.edge_roles_between(parent, node)
            for witness in blockable:
                if order[witness] >= order[node] or witness == node:
                    continue
                witness_parent = graph.parent[witness]
                if witness_parent is None or witness_parent not in graph.labels:
                    continue
                if (
                    frozenset(graph.labels[witness]) == node_label
                    and frozenset(graph.labels[witness_parent]) == parent_label
                    and graph.edge_roles_between(witness_parent, witness) == in_roles
                ):
                    directly_blocked.add(node)
                    break
        # Indirect blocking: descendants of blocked nodes.
        for node in blockable:
            current = node
            while current is not None:
                if current in directly_blocked:
                    blocked.add(node)
                    break
                current = graph.parent.get(current)
        return blocked

    # ------------------------------------------------------------------
    # Nondeterministic choices
    # ------------------------------------------------------------------
    def _find_choice(
        self, graph: _Graph, blocked: Set[NodeId]
    ) -> Optional[_Choice]:
        """The next choice point on a stable graph, or ``None`` (complete).

        Disjunctions are screened by Boolean constraint propagation:
        operands that clash immediately with the node label are dropped,
        and among all open disjunctions the one with the fewest open
        operands is branched first (fail-first).  A disjunction with no
        open operand returns a choice with an empty alternative list,
        failing the branch without further search.
        """
        best_or: Optional[_Choice] = None
        for node in graph.nodes():
            label = graph.labels[node]
            for concept in sorted(label, key=self._sort_key):
                if isinstance(concept, Or) and not any(
                    operand in label for operand in concept.operands
                ):
                    if not self.use_bcp:
                        return _Choice(
                            [("add", node, operand) for operand in concept.operands],
                            [("N", node), ("L", node, concept)],
                        )
                    open_operands = []
                    trigger = [("N", node), ("L", node, concept)]
                    for operand in concept.operands:
                        if not self._immediately_clashes(graph, node, operand):
                            open_operands.append(operand)
                        elif isinstance(operand, AtomicConcept):
                            # Screened by Not(operand) in the label.
                            trigger.append(("L", node, Not(operand)))
                        elif isinstance(operand, Not):
                            # Screened by the un-negated atom in the label.
                            trigger.append(("L", node, operand.operand))
                        # A Bottom operand clashes unconditionally.
                    if not open_operands:
                        return _Choice([], trigger)
                    if best_or is None or len(open_operands) < len(
                        best_or.alternatives
                    ):
                        best_or = _Choice(
                            [("add", node, operand) for operand in open_operands],
                            trigger,
                        )
                        if len(best_or.alternatives) == 1:
                            return best_or
                # Nominal choice: {o1,...,ok} with k > 1, not yet resolved
                # by a singleton nominal already in the label.
                if isinstance(concept, OneOf) and len(concept.individuals) > 1:
                    resolved = any(
                        isinstance(other, OneOf)
                        and len(other.individuals) == 1
                        and other.individuals <= concept.individuals
                        for other in label
                    )
                    if not resolved:
                        return _Choice(
                            [
                                ("nominal", node, individual)
                                for individual in sorted(concept.individuals)
                            ],
                            [("N", node), ("L", node, concept)],
                        )
        if best_or is not None:
            return best_or
        for node in graph.nodes():
            label = graph.labels[node]
            # choose-rule: a qualified at-most needs every neighbour's
            # filler membership decided before counting is meaningful.
            for concept in sorted(label, key=self._sort_key):
                if isinstance(concept, QualifiedAtMost):
                    negated = negation_nnf(concept.filler)
                    for neighbour in sorted(
                        graph.neighbours(node, concept.role, self.hierarchy)
                    ):
                        neighbour_label = graph.labels[neighbour]
                        if (
                            concept.filler not in neighbour_label
                            and negated not in neighbour_label
                        ):
                            return _Choice(
                                [
                                    ("add", neighbour, concept.filler),
                                    ("add", neighbour, negated),
                                ]
                            )
            if node in blocked:
                continue
            # <=-rule: choose two non-distinct neighbours to merge.
            for concept in sorted(label, key=self._sort_key):
                if isinstance(concept, QualifiedAtMost):
                    matching = {
                        y
                        for y in graph.neighbours(
                            node, concept.role, self.hierarchy
                        )
                        if concept.filler in graph.labels[y]
                    }
                    if len(matching) > concept.n:
                        pairs = [
                            (a, b)
                            for a, b in itertools.combinations(sorted(matching), 2)
                            if not graph.are_distinct(a, b)
                        ]
                        if pairs:
                            return _Choice(
                                [self._merge_descriptor(a, b, graph) for a, b in pairs]
                            )
                if isinstance(concept, AtMost):
                    neighbours = graph.neighbours(node, concept.role, self.hierarchy)
                    if len(neighbours) > concept.n:
                        pairs = [
                            (a, b)
                            for a, b in itertools.combinations(sorted(neighbours), 2)
                            if not graph.are_distinct(a, b)
                        ]
                        if pairs:
                            return _Choice(
                                [self._merge_descriptor(a, b, graph) for a, b in pairs]
                            )
                if isinstance(concept, DataAtMost):
                    neighbours = graph.data_neighbours(
                        node, concept.role, self.data_hierarchy
                    )
                    if len(neighbours) > concept.n:
                        pairs = [
                            (a, b)
                            for a, b in itertools.combinations(sorted(neighbours), 2)
                            if frozenset({a, b}) not in graph.data_distinct
                        ]
                        if pairs:
                            return _Choice(
                                [
                                    ("data_merge", max(a, b), min(a, b))
                                    for a, b in pairs
                                ]
                            )
        return None

    def _sort_key(self, concept: Concept) -> str:
        """A cached deterministic ordering key for label iteration."""
        key = self._sort_keys.get(concept)
        if key is None:
            key = repr(concept)
            self._sort_keys[concept] = key
        return key

    @staticmethod
    def _immediately_clashes(graph: _Graph, node: NodeId, concept: Concept) -> bool:
        """Whether adding ``concept`` to the node label clashes on the spot.

        Sound screening only (NNF literals): ``Bottom``, an atom whose
        negation is present, or a negated atom whose atom is present.
        """
        label = graph.labels[node]
        if isinstance(concept, Bottom):
            return True
        if isinstance(concept, AtomicConcept):
            return Not(concept) in label
        if isinstance(concept, Not) and isinstance(concept.operand, AtomicConcept):
            return concept.operand in label
        return False

    @staticmethod
    def _merge_descriptor(left: NodeId, right: NodeId, graph: _Graph) -> Tuple:
        """A ``("merge", victim, survivor)`` descriptor for two nodes.

        Merges the younger (and preferably blockable) node into the older.
        """
        order = graph.creation_order
        survivor, victim = (left, right) if order[left] <= order[right] else (right, left)
        if graph.is_root(victim) and not graph.is_root(survivor):
            survivor, victim = victim, survivor
        return ("merge", victim, survivor)

    @staticmethod
    def _apply_descriptor(branch: _Graph, descriptor: Tuple) -> bool:
        """Apply one choice alternative to a branch copy (copying search).

        Returns False when the alternative immediately clashes, mirroring
        the trail engine's :meth:`_TrailEngine._apply_choice`.
        """
        kind = descriptor[0]
        if kind == "add":
            _, node, concept = descriptor
            if node not in branch.labels:
                return False
            branch.labels[node].add(concept)
            return True
        if kind == "nominal":
            _, node, individual = descriptor
            if node not in branch.labels:
                return False
            # The multi-nominal stays in the label (labels are monotone;
            # removing it would make the or-rule refire forever).
            branch.labels[node].add(OneOf(frozenset({individual})))
            existing = branch.roots.get(individual)
            if existing is not None:
                if existing == node:
                    return True
                return branch.merge(node, existing)
            branch.roots[individual] = node
            branch.root_nodes.add(node)
            return True
        if kind == "merge":
            _, victim, survivor = descriptor
            if victim not in branch.labels or survivor not in branch.labels:
                return False
            return branch.merge(victim, survivor)
        if kind == "data_merge":
            _, victim, survivor = descriptor
            if (
                victim not in branch.data_labels
                or survivor not in branch.data_labels
            ):
                return False
            return branch.merge_data(victim, survivor)
        raise AssertionError(f"unknown choice descriptor {descriptor!r}")

    # ------------------------------------------------------------------
    # Final (datatype) checks
    # ------------------------------------------------------------------
    def _final_checks(self, graph: _Graph) -> bool:
        """Check the concrete domain: every data node needs a value, and
        pairwise-distinct nodes need distinct values."""
        assigned: Dict[NodeId, object] = {}
        for node in sorted(graph.data_labels):
            ranges = list(graph.data_labels[node])
            taboo = {
                assigned[other]
                for other in assigned
                if frozenset({node, other}) in graph.data_distinct
            }
            witnesses = find_witnesses(ranges, count=len(taboo) + 1)
            if witnesses is None:
                return False
            chosen = next((w for w in witnesses if w not in taboo), None)
            if chosen is None:
                return False
            assigned[node] = chosen
        self._data_assignment = assigned
        self._complete_graph = graph
        return True


#: The empty dependency set (facts present since graph initialisation).
EMPTY: FrozenSet[int] = frozenset()


@dataclass
class _ChoicePoint:
    """One open branch point on the trail engine's search stack.

    ``mark`` is the trail length when the point was pushed (rolling back
    to it restores the exact graph the choice was found on); ``base_deps``
    are the branch-point levels the *existence* of the choice depends on;
    ``failure_deps`` accumulates the dependency sets of failed
    alternatives (minus this point's own level) for backjump propagation.
    """

    level: int
    mark: int
    alternatives: List[Tuple]
    base_deps: FrozenSet[int]
    index: int = 0
    failure_deps: Set[int] = field(default_factory=set)


class _TrailEngine:
    """In-place tableau search with a trail and dependency-directed
    backjumping.

    The engine mutates one :class:`_Graph`; every effect pushes an undo
    entry on ``trail``.  Alongside the graph it keeps ``deps``: for every
    derived fact, the frozenset of branch-point levels its derivation
    used (facts from the initial graph have the empty set and are simply
    absent from the mapping).  On a clash, the union of the participating
    facts' dependency sets tells the search the deepest branch point the
    clash can possibly be fixed at; everything above is rolled back and
    its untried alternatives discarded (``branch_points_skipped``).  An
    empty clash dependency set proves unsatisfiability outright.

    Dependency sets are deliberately over-approximated where precise
    tracking would be costly (transitive-role chains, merge and
    choose-rule choices, concrete-domain failures); an over-approximation
    only reduces how far a jump goes, never its soundness.

    Fact keys in ``deps``:

    * ``("N", node)`` / ``("DN", node)`` — (data) node existence;
    * ``("L", node, concept)`` / ``("DL", node, range)`` — label facts;
    * ``("E", s, t, role)`` / ``("DE", s, t, role)`` — edge facts
      (object edges keyed in stored named-role direction);
    * ``("NEQ", pair)`` / ``("DNEQ", pair)`` — distinctness facts;
    * ``("F", s, t, role)`` — forbidden (negated role) facts;
    * ``("ROOT", individual)`` — a root binding made by a nominal choice.
    """

    def __init__(self, tableau: Tableau, graph: _Graph):
        self.t = tableau
        self.g = graph
        self.trail: List[Tuple] = []
        self.trail_total = 0
        self.deps: Dict[Tuple, FrozenSet[int]] = {}
        # Axiom provenance: negative tags live in the same dependency
        # sets as branch-point levels; the initial facts are pre-seeded
        # (never undone — the trail never rolls below mark 0).  Probe
        # tags are excluded from _tags (they never reach unsat cores);
        # _filter_tags alone decides whether dependency sets may carry
        # negative members that backjump arithmetic must skip.
        self._tags: FrozenSet[int] = tableau._run_tags
        self._filter_tags: bool = tableau.track_provenance
        if tableau.track_provenance:
            self.deps.update(tableau._pending_init_deps)
        #: Dependency set of the clash that exhausted the search (only
        #: meaningful after solve() returned False).
        self.final_clash: FrozenSet[int] = EMPTY
        self.trace = tableau._active_trace
        self.stack: List[_ChoicePoint] = []
        self._last_blocked: Set[NodeId] = set()
        # Incremental blocking state: per-node monotone change counters, a
        # global epoch bumped on merges/rollbacks/root changes, and the
        # signature cache keyed on all three.
        self._versions: Dict[NodeId, int] = {n: 0 for n in graph.labels}
        self._sig_cache: Dict[NodeId, Tuple] = {}
        self._epoch = 0

    # ------------------------------------------------------------------
    # Search driver
    # ------------------------------------------------------------------
    def solve(self) -> bool:
        t = self.t
        meter = t._meter
        t._use_branch()
        reported_trail = 0
        while True:
            if meter is not None:
                meter.tick()
                if self.trail_total > reported_trail:
                    meter.note_trail(self.trail_total - reported_trail)
                    reported_trail = self.trail_total
            t._check_nodes(self.g)
            status = self._expand_once()
            if status == "changed":
                continue
            if status != "stable":
                _, clash = status
                self._trace_clash("expansion clash", clash)
                if not self._backjump(clash):
                    return False
                continue
            choice = t._find_choice(self.g, self._last_blocked)
            if choice is None:
                if t._final_checks(self.g):
                    return True
                # Concrete-domain failure: the witness search spans the
                # whole graph, so its dependencies are not tracked.
                self._trace_clash("concrete-domain failure", EMPTY)
                if not self._backjump(self._all_levels()):
                    return False
                continue
            cp = _ChoicePoint(
                level=len(self.stack),
                mark=len(self.trail),
                alternatives=choice.alternatives,
                base_deps=self._choice_base_deps(choice),
            )
            self.stack.append(cp)
            if self.trace is not None:
                self.trace.emit(
                    "choice",
                    (
                        cp.level,
                        self._describe(cp.alternatives[0])
                        if cp.alternatives
                        else "empty disjunction",
                        len(cp.alternatives),
                    ),
                    len(self.stack) - 1,
                )
            if not self._advance(cp):
                clash = frozenset(cp.base_deps | cp.failure_deps)
                self.stack.pop()
                if not self._backjump(clash):
                    return False

    def _advance(self, cp: _ChoicePoint) -> bool:
        """Apply the next untried alternative at ``cp``; False = exhausted."""
        deps = cp.base_deps | frozenset({cp.level})
        while cp.index < len(cp.alternatives):
            descriptor = cp.alternatives[cp.index]
            cp.index += 1
            if self.trace is not None:
                self.trace.emit(
                    "try",
                    (cp.level, self._describe(descriptor)),
                    len(self.stack),
                )
            clash = self._apply_choice(descriptor, deps)
            if clash is None:
                self.t._use_branch()
                return True
            self._trace_clash("alternative failed", clash)
            cp.failure_deps |= clash - {cp.level}
            self._undo_to(cp.mark)
        return False

    def _backjump(self, clash: FrozenSet[int]) -> bool:
        """Resume the search after a clash with dependency set ``clash``.

        Returns True when an alternative was applied at the deepest branch
        point in ``clash`` (search continues), False when the whole search
        space is exhausted (unsatisfiable).  With provenance tracking,
        negative axiom tags ride along in ``clash``; only the
        non-negative branch-point levels steer the jump, and the tag part
        of the final clash survives in :attr:`final_clash` as the
        unsat-core seed.
        """
        stats = self.t.stats
        while True:
            levels = self._levels(clash)
            if not self.stack:
                self.final_clash = clash
                return False
            if not levels:
                # The clash depends on no choice at all: unsatisfiable
                # regardless of every pending alternative.
                if stats is not None:
                    stats.backjumps += 1
                    stats.branch_points_skipped += len(self.stack)
                self.stack.clear()
                self.final_clash = clash
                return False
            target = max(levels)
            skipped = len(self.stack) - 1 - target
            if skipped > 0:
                if stats is not None:
                    stats.backjumps += 1
                    stats.branch_points_skipped += skipped
                if self.trace is not None:
                    self.trace.emit(
                        "backjump",
                        (len(self.stack) - 1, target, skipped),
                        len(self.stack),
                    )
                del self.stack[target + 1:]
            cp = self.stack[-1]
            self._undo_to(cp.mark)
            cp.failure_deps |= clash - {cp.level}
            if self._advance(cp):
                return True
            clash = frozenset(cp.base_deps | cp.failure_deps)
            self.stack.pop()

    def _levels(self, deps: FrozenSet[int]) -> FrozenSet[int]:
        """The branch-point part of a dependency set (axiom tags dropped)."""
        if not self._filter_tags:
            return deps
        return frozenset(level for level in deps if level >= 0)

    def _all_levels(self) -> FrozenSet[int]:
        return frozenset(range(len(self.stack))) | self._tags

    # ------------------------------------------------------------------
    # Trace emission
    # ------------------------------------------------------------------
    def _trace_clash(self, reason: str, clash: FrozenSet[int]) -> None:
        if self.trace is None:
            return
        axioms = self._resolve_axioms(clash)
        self.trace.emit("clash", (reason, axioms), len(self.stack))

    def _resolve_axioms(self, deps: FrozenSet[int]) -> Tuple:
        """The source axioms named by a dependency set, in KB order."""
        tag_axioms = self.t._run_tag_axioms
        return tuple(
            tag_axioms[tag]
            for tag in sorted((t for t in deps if t < 0), reverse=True)
            if tag in tag_axioms
        )

    @staticmethod
    def _describe(descriptor: Tuple) -> str:
        """A compact human-readable label for a choice descriptor."""
        from .printer import render_concept

        kind = descriptor[0]
        if kind == "add":
            return f"add {render_concept(descriptor[2])} to n{descriptor[1]}"
        if kind == "nominal":
            return f"bind n{descriptor[1]} to {descriptor[2].name}"
        if kind == "merge":
            return f"merge n{descriptor[1]} into n{descriptor[2]}"
        if kind == "data_merge":
            return f"merge data node n{descriptor[1]} into n{descriptor[2]}"
        return repr(descriptor)

    def _choice_base_deps(self, choice: _Choice) -> FrozenSet[int]:
        if choice.trigger is None:
            return self._all_levels()
        out = EMPTY
        for key in choice.trigger:
            out |= self._dep(key)
        return out

    # ------------------------------------------------------------------
    # Choice application
    # ------------------------------------------------------------------
    def _apply_choice(
        self, descriptor: Tuple, deps: FrozenSet[int]
    ) -> Optional[FrozenSet[int]]:
        """Apply one alternative; None on success, clash deps on failure."""
        g = self.g
        kind = descriptor[0]
        if kind == "add":
            _, node, concept = descriptor
            self._add_label(node, concept, deps)
            return None
        if kind == "nominal":
            _, node, individual = descriptor
            self._add_label(node, OneOf(frozenset({individual})), deps)
            existing = g.roots.get(individual)
            if existing is not None:
                if existing == node:
                    return None
                return self._merge(
                    node, existing, deps | self._dep(("ROOT", individual))
                )
            self._log(("dictset", g.roots, individual, False, None))
            g.roots[individual] = node
            self._set_deps(("ROOT", individual), deps | self._dep(("N", node)))
            if node not in g.root_nodes:
                g.root_nodes.add(node)
                self._log(("setadd", g.root_nodes, node))
                self._epoch += 1
            return None
        if kind == "merge":
            _, victim, survivor = descriptor
            return self._merge(victim, survivor, deps)
        if kind == "data_merge":
            _, victim, survivor = descriptor
            return self._merge_data(victim, survivor, deps)
        raise AssertionError(f"unknown choice descriptor {descriptor!r}")

    # ------------------------------------------------------------------
    # Trail bookkeeping
    # ------------------------------------------------------------------
    def _log(self, entry: Tuple) -> None:
        self.trail.append(entry)
        self.trail_total += 1

    def _undo_to(self, mark: int) -> None:
        trail = self.trail
        if len(trail) <= mark:
            return
        g = self.g
        deps = self.deps
        while len(trail) > mark:
            entry = trail.pop()
            op = entry[0]
            if op == "setadd":
                entry[1].discard(entry[2])
            elif op == "deps":
                _, key, old = entry
                if old is None:
                    deps.pop(key, None)
                else:
                    deps[key] = old
            elif op == "dictpop":
                entry[1][entry[2]] = entry[3]
            elif op == "dictnew":
                del entry[1][entry[2]]
            elif op == "setdel":
                entry[1].add(entry[2])
            elif op == "dictset":
                _, mapping, key, had, old = entry
                if had:
                    mapping[key] = old
                else:
                    mapping.pop(key, None)
            elif op == "node":
                node = entry[1]
                g.labels.pop(node, None)
                g.parent.pop(node, None)
                g.creation_order.pop(node, None)
                g.next_id = node
                self._versions.pop(node, None)
                self._sig_cache.pop(node, None)
            elif op == "dnode":
                node = entry[1]
                g.data_labels.pop(node, None)
                g.next_id = node
        self._epoch += 1

    def _dep(self, key: Tuple) -> FrozenSet[int]:
        return self.deps.get(key, EMPTY)

    def _set_deps(self, key: Tuple, new: FrozenSet[int]) -> None:
        old = self.deps.get(key)
        if new == old or (not new and old is None):
            return
        self._log(("deps", key, old))
        if new:
            self.deps[key] = new
        else:
            self.deps.pop(key, None)

    def _bump(self, node: NodeId) -> None:
        self._versions[node] = self._versions.get(node, 0) + 1

    # ------------------------------------------------------------------
    # Logged graph mutations
    # ------------------------------------------------------------------
    def _add_label(
        self, node: NodeId, concept: Concept, deps: FrozenSet[int]
    ) -> bool:
        label = self.g.labels[node]
        if concept in label:
            # Keep the existing (older, still-valid) justification.
            return False
        label.add(concept)
        self._log(("setadd", label, concept))
        self._bump(node)
        full = deps | self._dep(("N", node))
        if full:
            self._set_deps(("L", node, concept), full)
        if self.trace is not None:
            self.trace.emit(
                "derive", (("L", node, concept),), len(self.stack)
            )
        return True

    def _add_edge(
        self, source: NodeId, target: NodeId, role: ObjectRole, deps: FrozenSet[int]
    ) -> bool:
        if role.is_inverse:
            source, target, role = target, source, role.named
        return self._add_edge_raw(source, target, role, deps)

    def _add_edge_raw(
        self, source: NodeId, target: NodeId, role: AtomicRole, deps: FrozenSet[int]
    ) -> bool:
        edges = self.g.edges
        key = (source, target)
        roles = edges.get(key)
        if roles is None:
            roles = set()
            edges[key] = roles
            self._log(("dictnew", edges, key))
        if role in roles:
            return False
        roles.add(role)
        self._log(("setadd", roles, role))
        self._bump(source)
        self._bump(target)
        full = deps | self._dep(("N", source)) | self._dep(("N", target))
        if full:
            self._set_deps(("E", source, target, role), full)
        if self.trace is not None:
            self.trace.emit(
                "derive", (("E", source, target, role),), len(self.stack)
            )
        return True

    def _add_data_label(
        self, node: NodeId, rng: DataRange, deps: FrozenSet[int]
    ) -> bool:
        labels = self.g.data_labels[node]
        if rng in labels:
            return False
        labels.add(rng)
        self._log(("setadd", labels, rng))
        full = deps | self._dep(("DN", node))
        if full:
            self._set_deps(("DL", node, rng), full)
        if self.trace is not None:
            self.trace.emit("derive", (("DL", node, rng),), len(self.stack))
        return True

    def _add_data_edge(
        self, source: NodeId, target: NodeId, role: DatatypeRole, deps: FrozenSet[int]
    ) -> bool:
        edges = self.g.data_edges
        key = (source, target)
        roles = edges.get(key)
        if roles is None:
            roles = set()
            edges[key] = roles
            self._log(("dictnew", edges, key))
        if role in roles:
            return False
        roles.add(role)
        self._log(("setadd", roles, role))
        full = deps | self._dep(("N", source)) | self._dep(("DN", target))
        if full:
            self._set_deps(("DE", source, target, role), full)
        if self.trace is not None:
            self.trace.emit(
                "derive", (("DE", source, target, role),), len(self.stack)
            )
        return True

    def _new_node(self, parent: Optional[NodeId], deps: FrozenSet[int]) -> NodeId:
        node = self.g.new_node(parent)
        self._log(("node", node))
        self._versions[node] = 0
        if deps:
            self._set_deps(("N", node), deps)
        return node

    def _new_data_node(self, deps: FrozenSet[int]) -> NodeId:
        node = self.g.new_data_node()
        self._log(("dnode", node))
        if deps:
            self._set_deps(("DN", node), deps)
        return node

    def _set_distinct(
        self, left: NodeId, right: NodeId, deps: FrozenSet[int]
    ) -> None:
        if left == right:
            return
        pair = frozenset({left, right})
        if pair in self.g.distinct:
            return
        self.g.distinct.add(pair)
        self._log(("setadd", self.g.distinct, pair))
        if deps:
            self._set_deps(("NEQ", pair), deps)

    def _set_data_distinct(
        self, left: NodeId, right: NodeId, deps: FrozenSet[int]
    ) -> None:
        if left == right:
            return
        pair = frozenset({left, right})
        if pair in self.g.data_distinct:
            return
        self.g.data_distinct.add(pair)
        self._log(("setadd", self.g.data_distinct, pair))
        if deps:
            self._set_deps(("DNEQ", pair), deps)

    # ------------------------------------------------------------------
    # Logged merging (mirrors _Graph.merge / merge_data)
    # ------------------------------------------------------------------
    def _merge(
        self, victim: NodeId, survivor: NodeId, rdeps: FrozenSet[int]
    ) -> Optional[FrozenSet[int]]:
        """Merge ``victim`` into ``survivor``; clash deps on failure."""
        g = self.g
        if victim == survivor:
            return None
        pair = frozenset({victim, survivor})
        if pair in g.distinct:
            return (
                rdeps
                | self._dep(("NEQ", pair))
                | self._dep(("N", victim))
                | self._dep(("N", survivor))
            )
        # Every moved fact additionally depends on the merge reason and
        # on the victim having existed.
        base = rdeps | self._dep(("N", victim))
        victim_label = g.labels.pop(victim)
        self._log(("dictpop", g.labels, victim, victim_label))
        for concept in victim_label:
            self._add_label(
                survivor, concept, base | self._dep(("L", victim, concept))
            )
        for key in [k for k in g.edges if victim in k]:
            roles = g.edges.pop(key)
            self._log(("dictpop", g.edges, key, roles))
            source, target = key
            new_source = survivor if source == victim else source
            new_target = survivor if target == victim else target
            for role in roles:
                self._add_edge_raw(
                    new_source,
                    new_target,
                    role,
                    base | self._dep(("E", source, target, role)),
                )
        for key in [k for k in g.data_edges if k[0] == victim]:
            roles = g.data_edges.pop(key)
            self._log(("dictpop", g.data_edges, key, roles))
            for role in roles:
                self._add_data_edge(
                    survivor,
                    key[1],
                    role,
                    base | self._dep(("DE", victim, key[1], role)),
                )
        for dpair in [p for p in g.distinct if victim in p]:
            g.distinct.discard(dpair)
            self._log(("setdel", g.distinct, dpair))
            (other,) = dpair - {victim}
            moved = base | self._dep(("NEQ", dpair))
            if other == survivor:
                return moved | self._dep(("N", survivor))
            npair = frozenset({survivor, other})
            if npair not in g.distinct:
                g.distinct.add(npair)
                self._log(("setadd", g.distinct, npair))
                if moved:
                    self._set_deps(("NEQ", npair), moved)
        for key in [k for k in g.forbidden if victim in k]:
            roles = g.forbidden.pop(key)
            self._log(("dictpop", g.forbidden, key, roles))
            source, target = key
            new_source = survivor if source == victim else source
            new_target = survivor if target == victim else target
            nkey = (new_source, new_target)
            existing = g.forbidden.get(nkey)
            if existing is None:
                existing = set()
                g.forbidden[nkey] = existing
                self._log(("dictnew", g.forbidden, nkey))
            for role in roles:
                if role not in existing:
                    existing.add(role)
                    self._log(("setadd", existing, role))
                    fdeps = base | self._dep(("F", source, target, role))
                    if fdeps:
                        self._set_deps(
                            ("F", new_source, new_target, role), fdeps
                        )
        for individual in [i for i, n in g.roots.items() if n == victim]:
            self._log(("dictset", g.roots, individual, True, victim))
            g.roots[individual] = survivor
            rd = base | self._dep(("ROOT", individual))
            if rd:
                self._set_deps(("ROOT", individual), rd)
        if victim in g.root_nodes:
            g.root_nodes.discard(victim)
            self._log(("setdel", g.root_nodes, victim))
            if survivor not in g.root_nodes:
                g.root_nodes.add(survivor)
                self._log(("setadd", g.root_nodes, survivor))
        if victim in g.parent:
            self._log(("dictset", g.parent, victim, True, g.parent[victim]))
            g.parent.pop(victim)
        # Children of the victim re-hang under the survivor so blocking
        # ancestry stays acyclic.
        for child in [c for c, p in g.parent.items() if p == victim]:
            self._log(("dictset", g.parent, child, True, victim))
            g.parent[child] = survivor
        old_order = g.creation_order.get(survivor, survivor)
        new_order = min(old_order, g.creation_order.get(victim, victim))
        if new_order != old_order:
            self._log(("dictset", g.creation_order, survivor, True, old_order))
            g.creation_order[survivor] = new_order
        if victim in g.creation_order:
            self._log(
                ("dictset", g.creation_order, victim, True, g.creation_order[victim])
            )
            g.creation_order.pop(victim)
        self._bump(survivor)
        self._epoch += 1
        return None

    def _merge_data(
        self, victim: NodeId, survivor: NodeId, rdeps: FrozenSet[int]
    ) -> Optional[FrozenSet[int]]:
        g = self.g
        if victim == survivor:
            return None
        pair = frozenset({victim, survivor})
        if pair in g.data_distinct:
            return (
                rdeps
                | self._dep(("DNEQ", pair))
                | self._dep(("DN", victim))
                | self._dep(("DN", survivor))
            )
        base = rdeps | self._dep(("DN", victim))
        victim_labels = g.data_labels.pop(victim)
        self._log(("dictpop", g.data_labels, victim, victim_labels))
        for rng in victim_labels:
            self._add_data_label(
                survivor, rng, base | self._dep(("DL", victim, rng))
            )
        for key in [k for k in g.data_edges if k[1] == victim]:
            roles = g.data_edges.pop(key)
            self._log(("dictpop", g.data_edges, key, roles))
            for role in roles:
                self._add_data_edge(
                    key[0],
                    survivor,
                    role,
                    base | self._dep(("DE", key[0], victim, role)),
                )
        for dpair in [p for p in g.data_distinct if victim in p]:
            g.data_distinct.discard(dpair)
            self._log(("setdel", g.data_distinct, dpair))
            (other,) = dpair - {victim}
            moved = base | self._dep(("DNEQ", dpair))
            if other == survivor:
                return moved | self._dep(("DN", survivor))
            npair = frozenset({survivor, other})
            if npair not in g.data_distinct:
                g.data_distinct.add(npair)
                self._log(("setadd", g.data_distinct, npair))
                if moved:
                    self._set_deps(("DNEQ", npair), moved)
        return None

    # ------------------------------------------------------------------
    # Deterministic expansion (mirrors Tableau._apply_deterministic)
    # ------------------------------------------------------------------
    def _expand_once(self):
        """One deterministic expansion pass.

        Returns ``"changed"``, ``"stable"``, or ``("clash", deps)``; the
        rule order mirrors :meth:`Tableau._apply_deterministic` exactly so
        both search modes explore comparable branches.
        """
        t, g = self.t, self.g
        changed = False
        for (source, target), roles in g.forbidden.items():
            if source not in g.labels or target not in g.labels:
                continue
            for role in roles:
                if target in g.neighbours(source, role, t.hierarchy):
                    return (
                        "clash",
                        self._dep(("F", source, target, role))
                        | self._pair_edge_deps(source, target)
                        | self._dep(("N", source))
                        | self._dep(("N", target)),
                    )
                for sub_role, supers in t.hierarchy.items():
                    if role not in supers or not t.kb.is_transitive(sub_role):
                        continue
                    if t._chain_reachable(g, source, target, sub_role):
                        # The chain may thread through many edges; deps
                        # are not tracked along it.
                        return ("clash", self._all_levels())
        blocked = self._blocked_nodes()
        self._last_blocked = blocked
        for node in g.nodes():
            label = g.labels[node]
            clash = self._clash_deps(node)
            if clash is not None:
                return ("clash", clash)
            for concept in list(label):
                if isinstance(concept, Top):
                    continue
                if isinstance(concept, And):
                    cdeps = self._dep(("L", node, concept))
                    for operand in concept.operands:
                        if self._add_label(node, operand, cdeps):
                            changed = True
                # Absorbed inclusions: A in label fires its definitions.
                if isinstance(concept, AtomicConcept):
                    consequences = t.absorbed.get(concept, ())
                    if consequences:
                        cdeps = self._dep(("L", node, concept))
                        for consequence in consequences:
                            adeps = cdeps
                            if t.absorbed_deps:
                                adeps = cdeps | t.absorbed_deps.get(
                                    (concept, consequence), EMPTY
                                )
                            if self._add_label(node, consequence, adeps):
                                changed = True
            # Universal (internalised TBox) constraints; with provenance
            # each carries the tags of the inclusions it internalises.
            universal_deps = t.universal_deps
            for constraint in t.universal:
                udeps = (
                    universal_deps.get(constraint, EMPTY)
                    if universal_deps
                    else EMPTY
                )
                if self._add_label(node, constraint, udeps):
                    changed = True
            if changed:
                continue
            # all-rule and all+-rule.
            for concept in list(label):
                if isinstance(concept, Forall):
                    cdeps = self._dep(("L", node, concept)) | self._dep(
                        ("N", node)
                    )
                    for neighbour in g.neighbours(
                        node, concept.role, t.hierarchy
                    ):
                        if self._add_label(
                            neighbour,
                            concept.filler,
                            cdeps | self._pair_edge_deps(node, neighbour),
                        ):
                            changed = True
                    if self._propagate_transitive(node, concept, cdeps):
                        changed = True
                elif isinstance(concept, DataForall):
                    cdeps = self._dep(("L", node, concept)) | self._dep(
                        ("N", node)
                    )
                    for neighbour in g.data_neighbours(
                        node, concept.role, t.data_hierarchy
                    ):
                        if self._add_data_label(
                            neighbour,
                            concept.range,
                            cdeps | self._data_edge_deps(node, neighbour),
                        ):
                            changed = True
            if changed:
                continue
            if node in blocked:
                continue
            # some-rule.
            for concept in list(label):
                if isinstance(concept, Exists):
                    if not any(
                        concept.filler in g.labels[n]
                        for n in g.neighbours(node, concept.role, t.hierarchy)
                    ):
                        cdeps = self._dep(("L", node, concept)) | self._dep(
                            ("N", node)
                        )
                        fresh = self._new_node(node, cdeps)
                        self._add_edge(node, fresh, concept.role, cdeps)
                        self._add_label(fresh, concept.filler, cdeps)
                        changed = True
                elif isinstance(concept, AtLeast):
                    neighbours = g.neighbours(node, concept.role, t.hierarchy)
                    if not t._has_n_pairwise_distinct(g, neighbours, concept.n):
                        cdeps = self._dep(("L", node, concept)) | self._dep(
                            ("N", node)
                        )
                        fresh_nodes = []
                        for _ in range(concept.n):
                            fresh = self._new_node(node, cdeps)
                            self._add_edge(node, fresh, concept.role, cdeps)
                            fresh_nodes.append(fresh)
                        for left, right in itertools.combinations(fresh_nodes, 2):
                            self._set_distinct(left, right, cdeps)
                        if concept.n > 0:
                            changed = True
                elif isinstance(concept, QualifiedAtLeast):
                    matching = {
                        y
                        for y in g.neighbours(node, concept.role, t.hierarchy)
                        if concept.filler in g.labels[y]
                    }
                    if not t._has_n_pairwise_distinct(g, matching, concept.n):
                        cdeps = self._dep(("L", node, concept)) | self._dep(
                            ("N", node)
                        )
                        fresh_nodes = []
                        for _ in range(concept.n):
                            fresh = self._new_node(node, cdeps)
                            self._add_edge(node, fresh, concept.role, cdeps)
                            self._add_label(fresh, concept.filler, cdeps)
                            fresh_nodes.append(fresh)
                        for left, right in itertools.combinations(fresh_nodes, 2):
                            self._set_distinct(left, right, cdeps)
                        if concept.n > 0:
                            changed = True
                elif isinstance(concept, DataExists):
                    if not any(
                        concept.range in g.data_labels[n]
                        for n in g.data_neighbours(
                            node, concept.role, t.data_hierarchy
                        )
                    ):
                        cdeps = self._dep(("L", node, concept)) | self._dep(
                            ("N", node)
                        )
                        fresh = self._new_data_node(cdeps)
                        self._add_data_edge(node, fresh, concept.role, cdeps)
                        self._add_data_label(fresh, concept.range, cdeps)
                        changed = True
                elif isinstance(concept, DataAtLeast):
                    neighbours = g.data_neighbours(
                        node, concept.role, t.data_hierarchy
                    )
                    if t._max_pairwise_distinct_data(g, neighbours) < concept.n:
                        cdeps = self._dep(("L", node, concept)) | self._dep(
                            ("N", node)
                        )
                        fresh_nodes = []
                        for _ in range(concept.n):
                            fresh = self._new_data_node(cdeps)
                            self._add_data_edge(node, fresh, concept.role, cdeps)
                            self._add_data_label(fresh, DataTop(), cdeps)
                            fresh_nodes.append(fresh)
                        for left, right in itertools.combinations(fresh_nodes, 2):
                            self._set_data_distinct(left, right, cdeps)
                        if concept.n > 0:
                            changed = True
            if changed:
                continue
        # Deterministic nominal identification: two alive nodes sharing a
        # singleton nominal must be the same element.
        for concept, holders in t._nominal_holders(g).items():
            if len(holders) > 1:
                ordered = sorted(holders, key=lambda n: g.creation_order[n])
                survivor = ordered[0]
                rdeps = EMPTY
                for holder in ordered:
                    rdeps = (
                        rdeps
                        | self._dep(("L", holder, concept))
                        | self._dep(("N", holder))
                    )
                for victim in ordered[1:]:
                    clash = self._merge(victim, survivor, rdeps)
                    if clash is not None:
                        return ("clash", clash)
                return "changed"
        if changed:
            return "changed"
        return "stable"

    def _propagate_transitive(
        self, node: NodeId, concept: Forall, cdeps: FrozenSet[int]
    ) -> bool:
        """The all+-rule with dependency propagation."""
        t, g = self.t, self.g
        changed = False
        for sub_role, supers in t.hierarchy.items():
            if concept.role not in supers:
                continue
            if not t.kb.is_transitive(sub_role):
                continue
            carried = Forall(sub_role, concept.filler)
            for neighbour in g.neighbours(node, sub_role, t.hierarchy):
                if self._add_label(
                    neighbour,
                    carried,
                    cdeps | self._pair_edge_deps(node, neighbour),
                ):
                    changed = True
        return changed

    # ------------------------------------------------------------------
    # Clash dependency extraction (mirrors Tableau._has_clash)
    # ------------------------------------------------------------------
    def _clash_deps(self, node: NodeId) -> Optional[FrozenSet[int]]:
        """The clash's dependency set, or None when the node is clash-free."""
        t, g = self.t, self.g
        label = g.labels[node]
        ndeps = self._dep(("N", node))
        for concept in label:
            if isinstance(concept, Bottom):
                return ndeps | self._dep(("L", node, concept))
            if isinstance(concept, Not):
                if concept.operand in label:
                    return (
                        ndeps
                        | self._dep(("L", node, concept))
                        | self._dep(("L", node, concept.operand))
                    )
                if isinstance(concept.operand, OneOf):
                    for other in concept.operand.individuals:
                        if g.roots.get(other) == node:
                            return (
                                ndeps
                                | self._dep(("L", node, concept))
                                | self._dep(("ROOT", other))
                            )
            if isinstance(concept, AtMost):
                neighbours = g.neighbours(node, concept.role, t.hierarchy)
                if len(neighbours) > concept.n and all(
                    g.are_distinct(a, b)
                    for a, b in itertools.combinations(sorted(neighbours), 2)
                ):
                    out = ndeps | self._dep(("L", node, concept))
                    for y in neighbours:
                        out |= self._pair_edge_deps(node, y) | self._dep(
                            ("N", y)
                        )
                    for a, b in itertools.combinations(sorted(neighbours), 2):
                        out |= self._dep(("NEQ", frozenset({a, b})))
                    return out
            if isinstance(concept, QualifiedAtMost):
                matching = {
                    y
                    for y in g.neighbours(node, concept.role, t.hierarchy)
                    if concept.filler in g.labels[y]
                }
                if len(matching) > concept.n and all(
                    g.are_distinct(a, b)
                    for a, b in itertools.combinations(sorted(matching), 2)
                ):
                    out = ndeps | self._dep(("L", node, concept))
                    for y in matching:
                        out |= (
                            self._pair_edge_deps(node, y)
                            | self._dep(("N", y))
                            | self._dep(("L", y, concept.filler))
                        )
                    for a, b in itertools.combinations(sorted(matching), 2):
                        out |= self._dep(("NEQ", frozenset({a, b})))
                    return out
            if isinstance(concept, DataAtMost):
                neighbours = g.data_neighbours(
                    node, concept.role, t.data_hierarchy
                )
                if len(neighbours) > concept.n and all(
                    frozenset({a, b}) in g.data_distinct
                    for a, b in itertools.combinations(sorted(neighbours), 2)
                ):
                    out = ndeps | self._dep(("L", node, concept))
                    for y in neighbours:
                        out |= self._data_edge_deps(node, y) | self._dep(
                            ("DN", y)
                        )
                    for a, b in itertools.combinations(sorted(neighbours), 2):
                        out |= self._dep(("DNEQ", frozenset({a, b})))
                    return out
        return None

    def _pair_edge_deps(self, a: NodeId, b: NodeId) -> FrozenSet[int]:
        """Union of the deps of every edge fact between two object nodes."""
        out = EMPTY
        for role in self.g.edges.get((a, b), ()):
            out |= self._dep(("E", a, b, role))
        for role in self.g.edges.get((b, a), ()):
            out |= self._dep(("E", b, a, role))
        return out

    def _data_edge_deps(self, source: NodeId, target: NodeId) -> FrozenSet[int]:
        out = EMPTY
        for role in self.g.data_edges.get((source, target), ()):
            out |= self._dep(("DE", source, target, role))
        return out

    # ------------------------------------------------------------------
    # Incremental blocking
    # ------------------------------------------------------------------
    def _blocked_nodes(self) -> Set[NodeId]:
        """Anywhere pairwise-blocked nodes, via cached blocking signatures.

        Equivalent to :meth:`Tableau._blocked_nodes` — a node is directly
        blocked iff an earlier (by creation order) blockable node has the
        same (label, parent label, connecting roles) signature — but nodes
        are hash-grouped by signature instead of compared pairwise, and a
        signature is recomputed only when the node or its parent changed
        since it was cached (``blocking_checks`` counts recomputations).
        """
        g = self.g
        order = g.creation_order
        groups: Dict[Tuple, List[NodeId]] = {}
        blockable = [
            n
            for n in g.nodes()
            if not g.is_root(n) and g.parent.get(n) is not None
        ]
        for node in blockable:
            parent = g.parent[node]
            if parent is None or parent not in g.labels:
                continue
            groups.setdefault(self._signature(node, parent), []).append(node)
        directly_blocked: Set[NodeId] = set()
        for members in groups.values():
            if len(members) > 1:
                members.sort(key=lambda n: order[n])
                directly_blocked.update(members[1:])
        blocked: Set[NodeId] = set()
        for node in blockable:
            current: Optional[NodeId] = node
            while current is not None:
                if current in directly_blocked:
                    blocked.add(node)
                    break
                current = g.parent.get(current)
        return blocked

    def _signature(self, node: NodeId, parent: NodeId) -> Tuple:
        own_version = self._versions.get(node, 0)
        parent_version = self._versions.get(parent, 0)
        cached = self._sig_cache.get(node)
        if cached is not None:
            sig, c_parent, c_own, c_pv, c_epoch = cached
            if (
                c_epoch == self._epoch
                and c_parent == parent
                and c_own == own_version
                and c_pv == parent_version
            ):
                return sig
        if self.t.stats is not None:
            self.t.stats.blocking_checks += 1
        g = self.g
        sig = (
            frozenset(g.labels[node]),
            frozenset(g.labels[parent]),
            g.edge_roles_between(parent, node),
        )
        self._sig_cache[node] = (
            sig,
            parent,
            own_version,
            parent_version,
            self._epoch,
        )
        return sig


def _transitive_closure(pairs: Set[Tuple[NodeId, NodeId]]) -> Set[Tuple[NodeId, NodeId]]:
    closed = set(pairs)
    changed = True
    while changed:
        changed = False
        for (x, y) in list(closed):
            for (y2, z) in list(closed):
                if y2 == y and (x, z) not in closed:
                    closed.add((x, z))
                    changed = True
    return closed


def _role_expression_pairs(
    role_ext: Dict[AtomicRole, Set[Tuple[NodeId, NodeId]]], role: ObjectRole
) -> Set[Tuple[NodeId, NodeId]]:
    base = role_ext.get(role.named, set())
    if role.is_inverse:
        return {(y, x) for (x, y) in base}
    return set(base)


@dataclass(frozen=True)
class _ExactValue(DataRange):
    """A data range holding exactly one literal (for asserted data edges)."""

    datatype: str
    lexical: str

    def contains(self, value) -> bool:
        return value.datatype == self.datatype and value.lexical == self.lexical

    def mentioned_values(self):
        from .individuals import DataValue

        return (DataValue(self.datatype, self.lexical),)

    def __repr__(self) -> str:
        return f"={self.lexical}"
